"""Microoperation statistics recorder.

Every CSB microoperation performed by the bit-level simulator is recorded
here. The instruction model (paper Section VI-B) combines these counts with
the circuit-level delay/energy tables to derive per-instruction cycle and
energy figures — this is how the reproduction *measures* Table I rather
than hard-coding it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.circuits.microops import CircuitModel, Microop


@dataclass
class MicroopStats:
    """Counts of executed microoperations, split by flavour.

    Keys are ``(microop, bit_parallel)`` pairs; a bit-serial search on one
    subarray and a bit-parallel search across all subarrays of a chain are
    tallied separately because their energies differ (Table II).

    With ``keep_trace=True`` the full microop sequence is also recorded —
    the microcode listing used for documentation and debugging.

    ``muted`` suspends recording entirely. The VCU broadcasts each
    microoperation to every chain at once, so when the reference backend
    *walks* the chains in Python, only the first chain's walk charges the
    sequence — the rest run muted. This keeps the tally the broadcast
    count (what the hardware issues), identical across backends.
    """

    counts: Counter = field(default_factory=Counter)
    keep_trace: bool = False
    muted: bool = field(default=False, repr=False, compare=False)
    trace: List[Tuple[Microop, bool]] = field(default_factory=list)
    observer: Optional[object] = field(default=None, repr=False, compare=False)
    _obs_labels: Dict[str, object] = field(
        default_factory=dict, repr=False, compare=False
    )
    _obs_counters: Dict[Tuple[Microop, bool], object] = field(
        default_factory=dict, repr=False, compare=False
    )

    def attach_observer(self, observer, **labels: object) -> None:
        """Mirror future records into ``observer``'s ``csb.microops`` family.

        Disabled (null) observers are dropped so :meth:`record` stays a
        single ``is None`` check on the hot path. Labels (``backend``,
        ``device``, ...) are stamped onto every published series.
        """
        live = observer is not None and observer.enabled
        self.observer = observer if live else None
        self._obs_labels = dict(labels)
        self._obs_counters.clear()

    def record(self, op: Microop, bit_parallel: bool = False, n: int = 1) -> None:
        """Record ``n`` executions of ``op`` in the given flavour."""
        if self.muted:
            return
        self.counts[(op, bit_parallel)] += n
        obs = self.observer
        if obs is not None:
            handle = self._obs_counters.get((op, bit_parallel))
            if handle is None:
                handle = obs.counter(
                    "csb.microops",
                    op=op.value,
                    flavor="bp" if bit_parallel else "bs",
                    **self._obs_labels,
                )
                self._obs_counters[(op, bit_parallel)] = handle
            handle.inc(n)
        if self.keep_trace:
            self.trace.extend([(op, bit_parallel)] * n)

    def count(self, op: Microop, bit_parallel: bool = None) -> int:
        """Total executions of ``op``; filter by flavour if given."""
        if bit_parallel is None:
            return sum(v for (o, _), v in self.counts.items() if o is op)
        return self.counts[(op, bit_parallel)]

    @property
    def total_microops(self) -> int:
        """Total microoperations of any kind."""
        return sum(self.counts.values())

    def cycles(self) -> int:
        """Cycle count: one microoperation per CSB cycle.

        The CSB clock is set by the slowest microoperation, so each microop
        occupies exactly one cycle regardless of kind (Section VI-B).
        """
        return self.total_microops

    def energy_per_chain(self, circuit: CircuitModel) -> float:
        """Dynamic energy in joules consumed by one chain, per Table II."""
        total = 0.0
        for (op, bit_parallel), n in self.counts.items():
            total += n * circuit.energy(op, bit_parallel=bit_parallel)
        return total

    def merged_with(self, other: "MicroopStats") -> "MicroopStats":
        """Return a new stats object combining both tallies."""
        merged = MicroopStats()
        merged.counts = self.counts + other.counts
        return merged

    def snapshot(self) -> Mapping[Tuple[Microop, bool], int]:
        """An immutable copy of the raw counters, for reporting."""
        return dict(self.counts)

    def clear(self) -> None:
        """Reset all counters to zero."""
        self.counts.clear()
        self.trace.clear()


def trace_microcode(mnemonic: str, width: int = 8, lanes: int = 8) -> List[str]:
    """Return the human-readable microoperation listing of an instruction.

    Runs the instruction's microcode on a traced chain and renders one
    line per microoperation (the debugging/teaching view of the Table I
    walks; cf. docs/MICROCODE.md).
    """
    import numpy as np

    from repro.assoc.emulator import AssociativeEmulator

    emulator = AssociativeEmulator(num_subarrays=width, num_cols=lanes)
    emulator.chain.stats.keep_trace = True
    rng = np.random.default_rng(1)
    a = rng.integers(0, 1 << width, size=lanes)
    b = rng.integers(0, 1 << width, size=lanes)
    kwargs: Dict[str, object] = {"a": a, "width": width}
    if mnemonic.endswith(".vx"):
        kwargs["scalar"] = int(a[0])
    elif mnemonic.endswith(".vi"):
        kwargs["scalar"] = width // 2
    elif mnemonic == "vmv.v.x":
        kwargs["scalar"] = 7
    elif mnemonic == "vmerge.vv":
        kwargs["b"] = b
        kwargs["mask"] = rng.integers(0, 2, size=lanes)
    elif mnemonic not in ("vredsum.vs", "vmv.v.v"):
        kwargs["b"] = b
    emulator.run(mnemonic, **kwargs)
    return [
        f"{i:4d}: {'BP' if bp else 'BS'} {op.value}"
        for i, (op, bp) in enumerate(emulator.chain.stats.trace)
    ]
