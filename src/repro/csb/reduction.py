"""Global reduction tree across chains (Sections IV-E and VI-C).

Each chain reduces its own 32 tag bits with a local pop-count; the global
tree then sums the per-chain partial counts. The synthesized design for
1,024 chains is pipelined into 5 stages with a 217 ps critical path; the
paper models other CSB capacities by replicating or removing pipeline
stages. Each stage merges four inputs (a radix-4 adder level), which is
what makes ceil(log4(1024)) = 5 stages.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.common.errors import ConfigError

#: Fan-in of one pipeline stage of the synthesized tree.
STAGE_RADIX = 4


@dataclass(frozen=True)
class ReductionTree:
    """Timing/behaviour model of the pipelined global reduction tree.

    Attributes:
        num_chains: number of chain partial sums feeding the tree.
    """

    num_chains: int = 1024

    def __post_init__(self) -> None:
        if self.num_chains <= 0:
            raise ConfigError(f"num_chains must be positive, got {self.num_chains}")

    @property
    def num_stages(self) -> int:
        """Pipeline depth: one radix-4 level per stage (5 at 1,024 chains)."""
        if self.num_chains == 1:
            return 1
        return max(1, math.ceil(math.log(self.num_chains, STAGE_RADIX)))

    def latency_cycles(self, bits: int) -> int:
        """Cycles to reduce a ``bits``-wide vector across all chains.

        The per-bit pop-count/shift/accumulate steps stream through the
        pipelined tree: ``bits`` issue cycles plus the pipeline fill.
        """
        if bits <= 0:
            raise ConfigError(f"bits must be positive, got {bits}")
        return bits + self.num_stages

    def reduce(self, partials: Sequence[int]) -> int:
        """Functionally sum the per-chain partial values.

        Walks the tree stage by stage (radix-4 groups) so tests can check
        that the staged structure computes the same result as a flat sum.
        """
        values = [int(v) for v in partials]
        if len(values) != self.num_chains:
            raise ConfigError(
                f"expected {self.num_chains} partials, got {len(values)}"
            )
        while len(values) > 1:
            values = [
                sum(values[i : i + STAGE_RADIX])
                for i in range(0, len(values), STAGE_RADIX)
            ]
        return values[0] if values else 0
