"""The Compute-Storage Block: a collection of chains plus reduction tree.

At the published design points the CSB holds 1,024 chains (CAPE32k:
1,024 x 32 = 32,768 lanes) or 4,096 chains (CAPE131k: 131,072 lanes). The
bit-level CSB here is used for functional validation, the memory-only modes
of Section VII, and instruction-model derivation; the system-level
simulator charges timing from the instruction model instead of stepping
every chain (mirroring the paper's gem5 methodology).

Adjacent vector elements are interleaved across chains by the VMU (element
``e`` lives in chain ``e % num_chains``, column ``e // num_chains``), so a
memory sub-request can stream one element into every chain in one cycle.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.common.errors import CapacityError, ConfigError
from repro.csb.chain import NUM_VREGS, Chain
from repro.csb.counter import MicroopStats
from repro.csb.reduction import ReductionTree


class CSB:
    """A bit-level compute-storage block of ``num_chains`` chains.

    Args:
        num_chains: chains in the block (1,024 / 4,096 at the paper's
            design points; tests use small counts).
        num_subarrays: subarrays (bit-slices) per chain.
        num_cols: columns (elements) per chain.
    """

    def __init__(
        self,
        num_chains: int = 4,
        num_subarrays: int = 32,
        num_cols: int = 32,
    ) -> None:
        if num_chains <= 0:
            raise ConfigError(f"num_chains must be positive, got {num_chains}")
        self.stats = MicroopStats()
        self.chains: List[Chain] = [
            Chain(num_subarrays, num_cols, stats=self.stats)
            for _ in range(num_chains)
        ]
        self.reduction_tree = ReductionTree(num_chains)
        self.num_chains = num_chains
        self.num_subarrays = num_subarrays
        self.num_cols = num_cols

    @property
    def max_vl(self) -> int:
        """MAX_VL: total lanes available (chains x columns)."""
        return self.num_chains * self.num_cols

    # ------------------------------------------------------------------
    # Element placement (VMU interleaving)
    # ------------------------------------------------------------------

    def locate(self, element: int) -> tuple:
        """Map an element index to its (chain, column) home."""
        if not 0 <= element < self.max_vl:
            raise CapacityError(
                f"element {element} outside CSB capacity {self.max_vl}"
            )
        return element % self.num_chains, element // self.num_chains

    def set_vector_length(self, vl: int, vstart: int = 0) -> None:
        """Program the active window on every chain (Section V-F).

        Chains whose columns are entirely outside [vstart, vl) compute an
        all-zero mask and may power-gate their peripherals.
        """
        if not 0 <= vl <= self.max_vl:
            raise CapacityError(f"vl {vl} outside [0, {self.max_vl}]")
        if not 0 <= vstart <= vl:
            raise ConfigError(f"vstart {vstart} outside [0, vl={vl}]")
        for chain_id, chain in enumerate(self.chains):
            # Elements chain_id, chain_id + C, chain_id + 2C, ... live here.
            element_ids = chain_id + self.num_chains * np.arange(chain.num_cols)
            active = (element_ids >= vstart) & (element_ids < vl)
            chain.active_columns = active.astype(np.uint8)

    # ------------------------------------------------------------------
    # Whole-vector host access (used by tests and the VMU model)
    # ------------------------------------------------------------------

    def write_vector(self, vreg: int, values: Sequence[int]) -> None:
        """Scatter ``values`` into register ``vreg`` with chain interleave."""
        self._check_vreg(vreg)
        values = np.asarray(values)
        if len(values) > self.max_vl:
            raise CapacityError(
                f"vector of {len(values)} elements exceeds MAX_VL {self.max_vl}"
            )
        for element, value in enumerate(values):
            chain, col = self.locate(element)
            self.chains[chain].write_element(vreg, col, int(value))

    def read_vector(self, vreg: int, vl: Optional[int] = None) -> np.ndarray:
        """Gather register ``vreg`` back into element order."""
        self._check_vreg(vreg)
        vl = self.max_vl if vl is None else vl
        out = np.zeros(vl, dtype=np.int64)
        for element in range(vl):
            chain, col = self.locate(element)
            out[element] = self.chains[chain].read_element(vreg, col)
        return out

    def peek_vector(self, vreg: int, vl: Optional[int] = None, signed: bool = False) -> np.ndarray:
        """Host-side gather without microop cost (validation fixture)."""
        self._check_vreg(vreg)
        vl = self.max_vl if vl is None else vl
        per_chain = [c.peek_register(vreg, signed=signed) for c in self.chains]
        out = np.zeros(vl, dtype=np.int64)
        for element in range(vl):
            chain, col = self.locate(element)
            out[element] = per_chain[chain][col]
        return out

    def poke_vector(self, vreg: int, values: Sequence[int]) -> None:
        """Host-side scatter without microop cost (validation fixture)."""
        self._check_vreg(vreg)
        values = np.asarray(values)
        if len(values) > self.max_vl:
            raise CapacityError(
                f"vector of {len(values)} elements exceeds MAX_VL {self.max_vl}"
            )
        per_chain = [c.peek_register(vreg) for c in self.chains]
        for element, value in enumerate(values):
            chain, col = self.locate(element)
            per_chain[chain][col] = value
        for chain, vals in zip(self.chains, per_chain):
            chain.poke_register(vreg, vals)

    # ------------------------------------------------------------------
    # Global reduction
    # ------------------------------------------------------------------

    def redsum(self, vreg: int, width: Optional[int] = None) -> int:
        """Reduction sum of ``vreg`` across every chain and the global tree."""
        self._check_vreg(vreg)
        partials = [chain.redsum(vreg, width) for chain in self.chains]
        return self.reduction_tree.reduce(partials)

    def _check_vreg(self, vreg: int) -> None:
        if not 0 <= vreg < NUM_VREGS:
            raise ConfigError(f"vector register {vreg} out of range [0, {NUM_VREGS})")
