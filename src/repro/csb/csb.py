"""The Compute-Storage Block: a collection of chains plus reduction tree.

At the published design points the CSB holds 1,024 chains (CAPE32k:
1,024 x 32 = 32,768 lanes) or 4,096 chains (CAPE131k: 131,072 lanes). The
bit-level CSB here is used for functional validation, the memory-only modes
of Section VII, and instruction-model derivation; the system-level
simulator charges timing from the instruction model instead of stepping
every chain (mirroring the paper's gem5 methodology).

Adjacent vector elements are interleaved across chains by the VMU (element
``e`` lives in chain ``e % num_chains``, column ``e // num_chains``), so a
memory sub-request can stream one element into every chain in one cycle.

Under ``backend="bitplane"`` the whole block is stored as one fused
bit-plane matrix of ``num_chains * num_cols`` columns. The interleave
makes the fused layout trivial: chain ``c``'s column ``j`` holds element
``c + j * num_chains``, so laying chain ``c`` at fused columns
``c::num_chains`` puts element ``e`` exactly at fused column ``e``. The
:attr:`CSB.ganged` chain then drives every column of every chain in one
vectorized microoperation (the paper's lockstep execution, literally),
while ``csb.chains[c]`` remain live column windows of the same storage.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.circuits.microops import Microop
from repro.common.bitutils import bits_to_ints, ints_to_bits
from repro.common.errors import CapacityError, ConfigError
from repro.csb.backend import BackendLike
from repro.csb.chain import NUM_VREGS, Chain, MetaRow
from repro.csb.counter import MicroopStats
from repro.csb.reduction import ReductionTree


class CSB:
    """A bit-level compute-storage block of ``num_chains`` chains.

    Args:
        num_chains: chains in the block (1,024 / 4,096 at the paper's
            design points; tests use small counts).
        num_subarrays: subarrays (bit-slices) per chain.
        num_cols: columns (elements) per chain.
        backend: execution backend for every chain — ``"reference"``
            (default, per-subarray objects) or ``"bitplane"`` (one fused
            bit-plane matrix; enables :attr:`ganged` and the vectorized
            vector-IO fast paths).
        observer: optional :class:`repro.obs.Observer`; microop counts
            are mirrored into its ``csb.microops`` family, labelled with
            the backend name.
        fault_injector: optional :class:`repro.faults.FaultInjector`;
            when its plan carries CSB-site faults the execution backends
            are wrapped in a :class:`repro.faults.FaultyBackend` that
            asserts those faults into the live storage. With no CSB
            faults (or no injector) the backends are used untouched —
            the null path stays fault-free code.
    """

    def __init__(
        self,
        num_chains: int = 4,
        num_subarrays: int = 32,
        num_cols: int = 32,
        backend: BackendLike = "reference",
        observer=None,
        fault_injector=None,
    ) -> None:
        if num_chains <= 0:
            raise ConfigError(f"num_chains must be positive, got {num_chains}")
        self.stats = MicroopStats()
        self.num_chains = num_chains
        self.num_subarrays = num_subarrays
        self.num_cols = num_cols
        self.backend_name = backend if isinstance(backend, str) else backend.name
        if observer is not None:
            self.stats.attach_observer(observer, backend=self.backend_name)
        num_rows = NUM_VREGS + len(MetaRow)
        inject = fault_injector is not None and fault_injector.has_csb_faults
        if inject:
            fault_injector.bind_csb(
                num_chains, num_subarrays, num_rows, num_chains * num_cols
            )
        self.ganged: Optional[Chain] = None
        if self.backend_name == "bitplane":
            from repro.csb.bitplane import BitplaneBackend

            base = BitplaneBackend(
                num_subarrays, num_rows, num_chains * num_cols
            )
            self.chains: List[Chain] = [
                Chain(
                    num_subarrays,
                    num_cols,
                    stats=self.stats,
                    backend=base.column_view(slice(c, None, num_chains)),
                )
                for c in range(num_chains)
            ]
            # Faults are asserted through the fused backend, which owns
            # the storage every per-chain window aliases.
            fused = (
                fault_injector.wrap_fused(base, num_chains) if inject else base
            )
            # The ganged chain spans every column of every chain; because
            # fused column k holds element k, its active window is simply
            # [vstart, vl) and one microoperation covers the whole block.
            self.ganged = Chain(
                num_subarrays,
                num_chains * num_cols,
                stats=self.stats,
                backend=fused,
            )
            self.base = fused
        else:
            if inject and isinstance(backend, str):
                from repro.csb.backend import make_backend

                self.chains = [
                    Chain(
                        num_subarrays,
                        num_cols,
                        stats=self.stats,
                        backend=fault_injector.wrap_chain(
                            make_backend(
                                backend, num_subarrays, num_rows, num_cols
                            ),
                            c,
                            num_chains,
                        ),
                    )
                    for c in range(num_chains)
                ]
            else:
                self.chains = [
                    Chain(num_subarrays, num_cols, stats=self.stats, backend=backend)
                    for _ in range(num_chains)
                ]
            self.base = None
        self.reduction_tree = ReductionTree(num_chains)

    @property
    def max_vl(self) -> int:
        """MAX_VL: total lanes available (chains x columns)."""
        return self.num_chains * self.num_cols

    # ------------------------------------------------------------------
    # Element placement (VMU interleaving)
    # ------------------------------------------------------------------

    def locate(self, element: int) -> tuple:
        """Map an element index to its (chain, column) home."""
        if not 0 <= element < self.max_vl:
            raise CapacityError(
                f"element {element} outside CSB capacity {self.max_vl}"
            )
        return element % self.num_chains, element // self.num_chains

    def set_vector_length(self, vl: int, vstart: int = 0) -> None:
        """Program the active window on every chain (Section V-F).

        Chains whose columns are entirely outside [vstart, vl) compute an
        all-zero mask and may power-gate their peripherals.
        """
        if not 0 <= vl <= self.max_vl:
            raise CapacityError(f"vl {vl} outside [0, {self.max_vl}]")
        if not 0 <= vstart <= vl:
            raise ConfigError(f"vstart {vstart} outside [0, vl={vl}]")
        for chain_id, chain in enumerate(self.chains):
            # Elements chain_id, chain_id + C, chain_id + 2C, ... live here.
            element_ids = chain_id + self.num_chains * np.arange(chain.num_cols)
            active = (element_ids >= vstart) & (element_ids < vl)
            chain.active_columns = active.astype(np.uint8)
        if self.ganged is not None:
            self.ganged.set_active_window(vstart, vl - vstart)

    # ------------------------------------------------------------------
    # Whole-vector host access (used by tests and the VMU model)
    # ------------------------------------------------------------------

    def write_vector(self, vreg: int, values: Sequence[int]) -> None:
        """Scatter ``values`` into register ``vreg`` with chain interleave."""
        self._check_vreg(vreg)
        values = np.asarray(values)
        if len(values) > self.max_vl:
            raise CapacityError(
                f"vector of {len(values)} elements exceeds MAX_VL {self.max_vl}"
            )
        if self.base is not None and len(values):
            # Fused column e = element e: one strided store, same microop
            # tally as the per-element loop (one WRITE per element).
            bits = ints_to_bits(values, self.num_subarrays)
            self.base.set_register_planes(vreg, bits, cols=slice(0, len(values)))
            self.stats.record(Microop.WRITE, bit_parallel=True, n=len(values))
            return
        for element, value in enumerate(values):
            chain, col = self.locate(element)
            self.chains[chain].write_element(vreg, col, int(value))

    def read_vector(self, vreg: int, vl: Optional[int] = None) -> np.ndarray:
        """Gather register ``vreg`` back into element order."""
        self._check_vreg(vreg)
        vl = self.max_vl if vl is None else vl
        if vl > self.max_vl:
            raise CapacityError(
                f"element {self.max_vl} outside CSB capacity {self.max_vl}"
            )
        if self.base is not None and vl:
            out = bits_to_ints(self.base.bits[:, vreg, :vl])
            self.stats.record(Microop.READ, bit_parallel=True, n=vl)
            return out
        out = np.zeros(vl, dtype=np.int64)
        for element in range(vl):
            chain, col = self.locate(element)
            out[element] = self.chains[chain].read_element(vreg, col)
        return out

    def peek_vector(self, vreg: int, vl: Optional[int] = None, signed: bool = False) -> np.ndarray:
        """Host-side gather without microop cost (validation fixture)."""
        self._check_vreg(vreg)
        vl = self.max_vl if vl is None else vl
        if vl > self.max_vl:
            raise CapacityError(
                f"element {self.max_vl} outside CSB capacity {self.max_vl}"
            )
        if self.base is not None:
            out = bits_to_ints(self.base.bits[:, vreg, :vl])
            if signed:
                sign = np.int64(1) << (self.num_subarrays - 1)
                out = (out ^ sign) - sign
            return out
        per_chain = [c.peek_register(vreg, signed=signed) for c in self.chains]
        out = np.zeros(vl, dtype=np.int64)
        for element in range(vl):
            chain, col = self.locate(element)
            out[element] = per_chain[chain][col]
        return out

    def poke_vector(self, vreg: int, values: Sequence[int]) -> None:
        """Host-side scatter without microop cost (validation fixture)."""
        self._check_vreg(vreg)
        values = np.asarray(values)
        if len(values) > self.max_vl:
            raise CapacityError(
                f"vector of {len(values)} elements exceeds MAX_VL {self.max_vl}"
            )
        if self.base is not None:
            bits = ints_to_bits(values, self.num_subarrays)
            self.base.set_register_planes(vreg, bits, cols=slice(0, len(values)))
            return
        per_chain = [c.peek_register(vreg) for c in self.chains]
        for element, value in enumerate(values):
            chain, col = self.locate(element)
            per_chain[chain][col] = value
        for chain, vals in zip(self.chains, per_chain):
            chain.poke_register(vreg, vals)

    # ------------------------------------------------------------------
    # Global reduction
    # ------------------------------------------------------------------

    def redsum(self, vreg: int, width: Optional[int] = None) -> int:
        """Reduction sum of ``vreg`` across every chain and the global tree."""
        self._check_vreg(vreg)
        if self.ganged is not None:
            partials = self._redsum_partials_ganged(vreg, width)
        else:
            # Every chain runs the bit-serial reduction walk in lockstep
            # off one VCU broadcast: charge the first chain's walk only.
            partials = []
            try:
                for i, chain in enumerate(self.chains):
                    self.stats.muted = i > 0
                    partials.append(chain.redsum(vreg, width))
            finally:
                self.stats.muted = False
        return self.reduction_tree.reduce(partials)

    def _redsum_partials_ganged(self, vreg: int, width: Optional[int]) -> List[int]:
        """Per-chain reduction partials via the fused backend.

        Each bit-step searches one bit-slice of every chain in lockstep
        (one SEARCH + one REDUCE microop, the bit-parallel flavour of
        Figure 6) and pop-counts each chain's columns separately, so the
        partials feed the same global reduction tree as the per-chain
        path.
        """
        width = self.num_subarrays if width is None else width
        ganged = self.ganged
        active = ganged.active_columns.astype(bool)
        partials = np.zeros(self.num_chains, dtype=np.int64)
        for bit in reversed(range(width)):
            tags = ganged.backend.search(bit, {vreg: 1})
            hits = (tags.astype(bool) & active).reshape(
                self.num_cols, self.num_chains
            )
            self.stats.record(Microop.SEARCH, bit_parallel=True)
            self.stats.record(Microop.REDUCE, bit_parallel=True)
            partials = (partials << 1) + hits.sum(axis=0)
        return [int(p) for p in partials]

    def _check_vreg(self, vreg: int) -> None:
        if not 0 <= vreg < NUM_VREGS:
            raise ConfigError(f"vector register {vreg} out of range [0, {NUM_VREGS})")
