"""A CAPE chain: 32 subarrays with bit-sliced operand layout (Section IV).

Layout (Figure 4/5 of the paper): a chain stores 32 vector elements, one
per column. Element bits are *bit-sliced* across the chain's subarrays —
subarray ``i`` holds bit ``i`` of every vector register. Row ``r`` of every
subarray belongs to vector register ``v<r>``; four extra metadata rows hold
the running carry/borrow, the replicated mask register, and scratch flags.

This layout maximises operand locality: a search touching bit ``i`` of
several registers activates only subarray ``i`` (bit-serial flavour), while
logic and comparison instructions drive the same rows of *all* subarrays at
once (bit-parallel flavour). Updates re-use the tag bits latched by the
previous search to select columns; a chain can route subarray ``i``'s tags
to subarray ``i+1`` to realise carry propagation in the same cycle
(UPDATE_PROP: "arithmetic instructions update two subarrays simultaneously,
but only one row per subarray").

Reads and writes access the same (row, column) bitcell of *all* subarrays
in one microoperation, i.e. they transfer a whole element (Section VI-A).

The chain itself is backend-agnostic: it owns the paper-visible semantics
(microoperation accounting, active-window masking, tag routing) and drives
an :class:`~repro.csb.backend.ExecutionBackend` for the bitcell state and
raw kernels. ``backend="reference"`` (default) keeps the per-subarray
model; ``backend="bitplane"`` swaps in the vectorized engine of
:mod:`repro.csb.bitplane` with identical semantics and microop charges.
"""

from __future__ import annotations

import enum
from typing import List, Mapping, Optional, Sequence

import numpy as np

from repro.circuits.microops import Microop
from repro.common.bitutils import bits_to_ints, ints_to_bits
from repro.common.errors import ConfigError
from repro.csb.backend import BackendLike, ExecutionBackend, make_backend
from repro.csb.counter import MicroopStats

#: Vector register rows per subarray (one row per RISC-V vector name).
NUM_VREGS = 32


class MetaRow(enum.IntEnum):
    """The four metadata rows appended to the 32 vector-register rows."""

    CARRY = 32    # running carry / borrow for bit-serial arithmetic
    MASK = 33     # replicated copy of the active mask register
    FLAG = 34     # per-element scratch flag (e.g. "decided" in compares)
    SCRATCH = 35  # general scratch bit


class Chain:
    """One chain of ``num_subarrays`` subarrays, plus its tag routing.

    Args:
        num_subarrays: bit-slices per element; 32 for the published design
            (32-bit elements).
        num_cols: elements per chain; 32 for the published design.
        stats: microoperation recorder; a fresh one is created if omitted.
            Multiple chains may share one recorder.
        backend: execution backend — ``"reference"`` (default) for the
            per-subarray model, ``"bitplane"`` for the vectorized engine,
            or a ready :class:`~repro.csb.backend.ExecutionBackend`
            instance (e.g. a column window of a fused CSB-level backend).
    """

    def __init__(
        self,
        num_subarrays: int = 32,
        num_cols: int = 32,
        stats: Optional[MicroopStats] = None,
        backend: BackendLike = "reference",
        observer=None,
    ) -> None:
        if num_subarrays <= 0 or num_cols <= 0:
            raise ConfigError("chain dimensions must be positive")
        self.num_subarrays = num_subarrays
        self.num_cols = num_cols
        self.stats = stats if stats is not None else MicroopStats()
        if stats is None and observer is not None:
            name = backend if isinstance(backend, str) else getattr(backend, "name", "custom")
            self.stats.attach_observer(observer, backend=name)
        num_rows = NUM_VREGS + len(MetaRow)
        self.backend: ExecutionBackend = make_backend(
            backend, num_subarrays, num_rows, num_cols
        )
        # Active-window column mask (vstart/vl support, Section V-F).
        self.active_columns = np.ones(num_cols, dtype=np.uint8)

    @property
    def subarrays(self) -> List:
        """Per-subarray state windows (real :class:`Subarray` objects under
        the reference backend; live views under the bitplane backend)."""
        return self.backend.subarrays

    # ------------------------------------------------------------------
    # Active window (vstart / vl)
    # ------------------------------------------------------------------

    def set_active_window(self, start: int, length: int) -> None:
        """Mask the chain's columns to ``[start, start + length)``.

        The chain controller computes this mask locally from its chain ID
        and the vstart/vl CSRs; masked columns are excluded from updates so
        tail elements remain unchanged, per the RISC-V VLA semantics.
        """
        if start < 0 or length < 0 or start + length > self.num_cols:
            raise ConfigError(
                f"active window [{start}, {start + length}) outside "
                f"[0, {self.num_cols})"
            )
        mask = np.zeros(self.num_cols, dtype=np.uint8)
        mask[start : start + length] = 1
        self.active_columns = mask

    @property
    def is_power_gated(self) -> bool:
        """True when every column is masked: peripherals may power-gate."""
        return not self.active_columns.any()

    # ------------------------------------------------------------------
    # Element (read/write) microoperations — whole 32-bit element at once
    # ------------------------------------------------------------------

    def read_element(self, vreg: int, col: int) -> int:
        """Read one element: bit ``i`` comes from subarray ``i``."""
        self._check_vreg(vreg)
        bits = self.backend.element_bits(vreg, col)
        self.stats.record(Microop.READ, bit_parallel=True)
        return int(bits_to_ints(bits[:, None])[0])

    def write_element(self, vreg: int, col: int, value: int) -> None:
        """Write one element across all subarrays in one microoperation."""
        self._check_vreg(vreg)
        bits = ints_to_bits(np.array([value]), self.num_subarrays)[:, 0]
        self.backend.set_element_bits(vreg, col, bits)
        self.stats.record(Microop.WRITE, bit_parallel=True)

    def read_register(self, vreg: int) -> np.ndarray:
        """Read all elements of a register (one READ microop per column)."""
        self._check_vreg(vreg)
        bits = self.backend.register_planes(vreg)
        self.stats.record(Microop.READ, bit_parallel=True, n=self.num_cols)
        return bits_to_ints(bits)

    def write_register(self, vreg: int, values: Sequence[int]) -> None:
        """Write all elements of a register (one WRITE microop per column)."""
        self._check_vreg(vreg)
        values = np.asarray(values)
        if values.shape != (self.num_cols,):
            raise ConfigError(
                f"register write expects {self.num_cols} elements, "
                f"got shape {values.shape}"
            )
        self.backend.set_register_planes(vreg, ints_to_bits(values, self.num_subarrays))
        self.stats.record(Microop.WRITE, bit_parallel=True, n=self.num_cols)

    def rmw_register(self, vd: int, vs1: int, fn, width: Optional[int] = None) -> None:
        """Element-wise read-modify-write of a whole register.

        Models the chain controller's per-column rewrite path used by the
        shift instructions: each element of ``vs1`` is read (one READ
        microop), passed through ``fn`` (which must accept both Python
        ints and int64 arrays), truncated to ``width`` bits, and written
        to ``vd`` (one WRITE microop). The sweep visits only columns in
        the active window (masked tail elements keep their data) and
        costs one READ plus one WRITE per visited column, exactly like
        the explicit per-column loop it replaces — but the backend may
        fuse the whole sweep into one vectorized kernel.
        """
        self._check_vreg(vd)
        self._check_vreg(vs1)
        width = self.num_subarrays if width is None else width
        mask = (1 << width) - 1
        self.backend.map_register(vd, vs1, fn, mask, active=self.active_columns)
        n = int(self.active_columns.sum())
        if n:
            self.stats.record(Microop.READ, bit_parallel=True, n=n)
            self.stats.record(Microop.WRITE, bit_parallel=True, n=n)

    # ------------------------------------------------------------------
    # Search microoperations
    # ------------------------------------------------------------------

    def search(
        self,
        subarray: int,
        key: Mapping[int, int],
        accumulate: bool = False,
    ) -> np.ndarray:
        """Bit-serial search: drive rows of one subarray only.

        Args:
            subarray: the active subarray (operand locality means the
                others stay idle, which is where the energy win comes
                from).
            key: row -> searched bit value; absent rows are don't-care.
            accumulate: OR the result into the subarray's tag bits.

        Returns:
            The subarray's tag bits after the search.
        """
        self._check_subarray(subarray)
        tags = self.backend.search(subarray, key, accumulate=accumulate)
        self.stats.record(Microop.SEARCH, bit_parallel=False)
        return tags

    def search_accumulate_next(
        self,
        subarray: int,
        key: Mapping[int, int],
        accumulate: bool = True,
    ) -> np.ndarray:
        """Bit-serial search whose matches land in the *next* subarray's tags.

        Models the tag-routing path of Figure 5: the match outcome of
        subarray ``i`` is routed to the tag bits of subarray ``i+1``
        (wrapping at the chain's end), so a later single update there can
        commit e.g. a carry-out. With ``accumulate`` the match is OR-ed
        into the destination tags, otherwise it overwrites them. The
        search itself still costs one SEARCH microop.
        """
        self._check_subarray(subarray)
        nxt = (subarray + 1) % self.num_subarrays
        # Compute the match without disturbing the source subarray's tags.
        match = self.backend.match(subarray, key)
        if accumulate:
            self.backend.or_tags(nxt, match)
        else:
            self.backend.set_tags(nxt, match)
        self.stats.record(Microop.SEARCH, bit_parallel=False)
        return match

    def search_bit_parallel(
        self,
        keys: Sequence[Mapping[int, int]],
        accumulate: bool = False,
    ) -> np.ndarray:
        """Bit-parallel search: drive every subarray in the same cycle.

        Args:
            keys: one key per subarray (e.g. the bits of a scalar comparand
                for ``vmseq.vx``, or the same row pattern replicated for
                logic instructions).
            accumulate: OR results into each subarray's tag bits.

        Returns:
            Array of shape ``(num_subarrays, num_cols)`` of tag bits.
        """
        if len(keys) != self.num_subarrays:
            raise ConfigError(
                f"expected {self.num_subarrays} keys, got {len(keys)}"
            )
        tags = self.backend.search_all(keys, accumulate=accumulate)
        self.stats.record(Microop.SEARCH, bit_parallel=True)
        return tags

    # ------------------------------------------------------------------
    # Update microoperations
    # ------------------------------------------------------------------

    def update(self, subarray: int, row: int, value: int) -> None:
        """Bit-serial update of one row in one subarray, on local tags."""
        self._check_subarray(subarray)
        select = self.backend.tags_of(subarray) & self.active_columns
        self.backend.update(subarray, row, value, select)
        self.stats.record(Microop.UPDATE, bit_parallel=False)

    def update_prop(
        self,
        subarray: int,
        row: int,
        value: int,
        next_row: int,
        next_value: int,
    ) -> None:
        """Dual-subarray update: one row here and one in subarray ``i+1``.

        Subarray ``i`` is updated on its local tags and subarray ``i+1`` on
        *its own* tag register (typically filled by
        :meth:`search_accumulate_next`). One row per subarray, two
        subarrays, one cycle — the "update with propagation" flavour.
        """
        self._check_subarray(subarray)
        nxt = (subarray + 1) % self.num_subarrays
        here = self.backend.tags_of(subarray) & self.active_columns
        there = self.backend.tags_of(nxt) & self.active_columns
        self.backend.update(subarray, row, value, here)
        self.backend.update(nxt, next_row, next_value, there)
        self.stats.record(Microop.UPDATE_PROP, bit_parallel=False)

    def update_next(self, subarray: int, next_row: int, value: int) -> None:
        """Update one row of subarray ``i+1`` using *its* tag register.

        The propagation-only flavour: commits e.g. a carry accumulated by
        :meth:`search_accumulate_next` without touching subarray ``i``.
        """
        self._check_subarray(subarray)
        nxt = (subarray + 1) % self.num_subarrays
        select = self.backend.tags_of(nxt) & self.active_columns
        self.backend.update(nxt, next_row, value, select)
        self.stats.record(Microop.UPDATE, bit_parallel=False)

    def update_row_full(self, subarray: int, row: int, value: int) -> None:
        """Bulk-write one row of one subarray, all active columns selected.

        A single-subarray clear/preset (e.g. initialising a flag row before
        spilling tags into it).
        """
        self._check_subarray(subarray)
        self.backend.update(subarray, row, value, self.active_columns)
        self.stats.record(Microop.UPDATE, bit_parallel=False)

    def update_bit_parallel_select(
        self,
        row: int,
        value: int,
        select: np.ndarray,
    ) -> None:
        """Bit-parallel update of the same row everywhere with a routed
        column select.

        Models broadcasting one subarray's tag bits onto the chain's column
        bus so every subarray commits the same per-element condition (used
        to replicate a mask register into the MASK metadata rows).
        """
        select = np.asarray(select, dtype=np.uint8)
        if select.shape != (self.num_cols,):
            raise ConfigError(
                f"column select expects {self.num_cols} bits, got {select.shape}"
            )
        fanned = np.broadcast_to(
            select & self.active_columns, (self.num_subarrays, self.num_cols)
        )
        self.backend.update_all(row, value, fanned)
        self.stats.record(Microop.UPDATE, bit_parallel=True)

    def update_bit_parallel(
        self,
        row: int,
        value: int,
        use_tags: bool = True,
    ) -> None:
        """Bit-parallel update: the same row of every subarray in one cycle.

        With ``use_tags=False`` all active columns are written — this is
        the bulk clear/preset used to initialise a destination register or
        the carry rows ("+2" initialisation cycles of Table I).
        """
        if use_tags:
            select = self.backend.all_tags() & self.active_columns
        else:
            select = np.broadcast_to(
                self.active_columns, (self.num_subarrays, self.num_cols)
            )
        self.backend.update_all(row, value, select)
        self.stats.record(Microop.UPDATE, bit_parallel=True)

    def update_bit_parallel_values(
        self,
        row: int,
        values: Sequence[int],
        use_tags: bool = False,
    ) -> None:
        """Bit-parallel update with a distinct data bit per subarray.

        Each subarray's write drivers are independent, so one update cycle
        can deposit a different bit in each bit-slice — this is how a
        scalar is broadcast to every element (``vmv.v.x``) in one cycle.
        """
        if len(values) != self.num_subarrays:
            raise ConfigError(
                f"expected {self.num_subarrays} values, got {len(values)}"
            )
        if use_tags:
            select = self.backend.all_tags() & self.active_columns
        else:
            select = np.broadcast_to(
                self.active_columns, (self.num_subarrays, self.num_cols)
            )
        self.backend.update_all_values(row, values, select)
        self.stats.record(Microop.UPDATE, bit_parallel=True)

    def set_tags(self, subarray: int, tags: np.ndarray) -> None:
        """Load one subarray's tag register from the chain's tag bus.

        Part of the tag-routing fabric — no microop cost of its own (it
        happens in the shadow of the reduce that produced ``tags``).
        """
        self._check_subarray(subarray)
        self.backend.set_tags(subarray, tags)

    # ------------------------------------------------------------------
    # Tag plumbing
    # ------------------------------------------------------------------

    def clear_tags(self) -> None:
        """Zero every subarray's tag register (no microop cost: part of
        the idle-state precharge)."""
        self.backend.clear_tags()

    def tags_of(self, subarray: int) -> np.ndarray:
        """The tag bits currently latched in one subarray."""
        self._check_subarray(subarray)
        return self.backend.tags_of(subarray)

    def combine_tags_serial(self, limit: Optional[int] = None) -> np.ndarray:
        """AND the first ``limit`` subarrays' tags into one bit per element.

        This is the bit-serial post-processing used by equality compares:
        each element is bit-sliced, so per-subarray matches must be reduced
        into a single match/mismatch value (Section V-A). Costs one REDUCE
        microop per subarray combined (n cycles for n-bit elements).
        """
        limit = self.num_subarrays if limit is None else limit
        combined = np.ones(self.num_cols, dtype=np.uint8)
        if limit:
            tags = self.backend.all_tags()
            combined = np.bitwise_and.reduce(tags[:limit], axis=0)
            self.stats.record(Microop.REDUCE, bit_parallel=False, n=limit)
        return combined

    def combine_tags_serial_or(self, limit: Optional[int] = None) -> np.ndarray:
        """OR the first ``limit`` subarrays' tags into one bit per element."""
        limit = self.num_subarrays if limit is None else limit
        combined = np.zeros(self.num_cols, dtype=np.uint8)
        if limit:
            tags = self.backend.all_tags()
            combined = np.bitwise_or.reduce(tags[:limit], axis=0)
            self.stats.record(Microop.REDUCE, bit_parallel=False, n=limit)
        return combined

    # ------------------------------------------------------------------
    # Reduction-sum support (Section IV-E)
    # ------------------------------------------------------------------

    def redsum_step(self, subarray: int, row: int) -> int:
        """One step of the bit-serial reduction sum.

        Searches for value 1 on ``row`` of one subarray (masking all other
        rows), then pop-counts the matching tag bits. The caller shifts and
        accumulates (Figure 6). Costs one SEARCH (bit-parallel flavour: all
        chains do this simultaneously) and one REDUCE microop.
        """
        self._check_subarray(subarray)
        tags = self.backend.search(subarray, {row: 1})
        self.stats.record(Microop.SEARCH, bit_parallel=True)
        self.stats.record(Microop.REDUCE, bit_parallel=True)
        return int((tags & self.active_columns).sum())

    def redsum(self, vreg: int, width: Optional[int] = None) -> int:
        """Full intra-chain reduction sum of one vector register.

        Walks bits from most to least significant: echo the bit-vector
        through the tags, pop-count, shift the accumulator left and add
        (Figure 6). Returns this chain's partial scalar sum.
        """
        self._check_vreg(vreg)
        width = self.num_subarrays if width is None else width
        total = 0
        for bit in reversed(range(width)):
            total = (total << 1) + self.redsum_step(bit, vreg)
        return total

    # ------------------------------------------------------------------
    # Convenience views (no microop cost — host-side inspection)
    # ------------------------------------------------------------------

    def peek_register(self, vreg: int, signed: bool = False) -> np.ndarray:
        """Host-side view of a register's values; free of microop cost."""
        self._check_vreg(vreg)
        vals = bits_to_ints(self.backend.register_planes(vreg))
        if signed:
            sign = np.int64(1) << (self.num_subarrays - 1)
            vals = (vals ^ sign) - sign
        return vals

    def poke_register(self, vreg: int, values: Sequence[int]) -> None:
        """Host-side register load; free of microop cost (test fixture)."""
        self._check_vreg(vreg)
        values = np.asarray(values)
        self.backend.set_register_planes(
            vreg, ints_to_bits(values, self.num_subarrays)
        )

    def peek_row(self, subarray: int, row: int) -> np.ndarray:
        """Host-side view of one subarray row (metadata inspection)."""
        self._check_subarray(subarray)
        return self.backend.plane(subarray, row)

    # ------------------------------------------------------------------

    def _check_vreg(self, vreg: int) -> None:
        if not 0 <= vreg < NUM_VREGS:
            raise ConfigError(f"vector register {vreg} out of range [0, {NUM_VREGS})")

    def _check_subarray(self, subarray: int) -> None:
        if not 0 <= subarray < self.num_subarrays:
            raise ConfigError(
                f"subarray {subarray} out of range [0, {self.num_subarrays})"
            )
