"""A push-rule 6T SRAM subarray with split wordlines (paper Figure 3).

Each row of the subarray has two wordlines — wordline left (WLL) and
wordline right (WLR) — which double as searchlines. Driving them encodes a
per-row search key:

* search for 1:  WLR=VDD, WLL=GND
* search for 0:  WLR=GND, WLL=VDD
* don't care:    WLR=GND, WLL=GND (row excluded)

During a search the bitlines act as matchlines; ANDing BL and BLB per
column yields 1 only if every searched row matched. The match outcome is
latched into one *tag bit* per column, optionally OR-accumulated across
searches (the peripheral "tag bit accumulator").

A bulk update asserts both wordlines of exactly one row and drives the
bitlines of the columns selected by a column mask (normally the tag bits),
writing the same bit value to all selected columns at once.

Circuit constraints enforced (Section V-A / VI-A): a search may drive at
most four rows; an update writes at most one row of the subarray.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from repro.common.errors import ConfigError, ProtocolError

#: Maximum rows that may be searched simultaneously (sensing constraint).
MAX_SEARCH_ROWS = 4


class WordlineDrive(enum.Enum):
    """Per-row wordline drive pattern during a search."""

    SEARCH_ONE = "search_one"    # WLR=VDD, WLL=GND
    SEARCH_ZERO = "search_zero"  # WLR=GND, WLL=VDD
    DONT_CARE = "dont_care"      # WLR=GND, WLL=GND


@dataclass
class Subarray:
    """One 6T BCAM subarray: a bit matrix plus tag-bit peripherals.

    Attributes:
        num_rows: wordline count (36 in CAPE: 32 vector names + 4 metadata).
        num_cols: bitline-pair count (32 vector elements per chain).
    """

    num_rows: int = 36
    num_cols: int = 32

    def __post_init__(self) -> None:
        if self.num_rows <= 0 or self.num_cols <= 0:
            raise ConfigError("subarray dimensions must be positive")
        self.bits = np.zeros((self.num_rows, self.num_cols), dtype=np.uint8)
        self.tags = np.zeros(self.num_cols, dtype=np.uint8)

    # ------------------------------------------------------------------
    # Conventional SRAM accesses
    # ------------------------------------------------------------------

    def read_bit(self, row: int, col: int) -> int:
        """Read a single bitcell (conventional SRAM read)."""
        self._check_row(row)
        self._check_col(col)
        return int(self.bits[row, col])

    def write_bit(self, row: int, col: int, value: int) -> None:
        """Write a single bitcell (conventional SRAM write)."""
        self._check_row(row)
        self._check_col(col)
        self.bits[row, col] = 1 if value else 0

    def read_row(self, row: int) -> np.ndarray:
        """Read an entire row (used by memory-only mode, Section VII)."""
        self._check_row(row)
        return self.bits[row].copy()

    def write_row(self, row: int, values: np.ndarray) -> None:
        """Write an entire row (used by memory-only mode, Section VII)."""
        self._check_row(row)
        values = np.asarray(values, dtype=np.uint8)
        if values.shape != (self.num_cols,):
            raise ConfigError(
                f"row write expects {self.num_cols} bits, got shape {values.shape}"
            )
        self.bits[row] = values & 1

    # ------------------------------------------------------------------
    # Associative microoperations
    # ------------------------------------------------------------------

    def search(
        self,
        key: Mapping[int, int],
        accumulate: bool = False,
    ) -> np.ndarray:
        """Search all columns in parallel against a per-row key.

        Args:
            key: map from row index to the bit value searched on that row;
                rows absent from the map are "don't care".
            accumulate: if True, OR the match outcome into the tag bits
                instead of overwriting them (the tag-bit accumulator).

        Returns:
            The updated tag-bit vector (one bit per column).

        Raises:
            ProtocolError: if more than four rows are driven.
        """
        if len(key) > MAX_SEARCH_ROWS:
            raise ProtocolError(
                f"search may drive at most {MAX_SEARCH_ROWS} rows, got {len(key)}"
            )
        match = np.ones(self.num_cols, dtype=np.uint8)
        for row, want in key.items():
            self._check_row(row)
            drive = WordlineDrive.SEARCH_ONE if want else WordlineDrive.SEARCH_ZERO
            match &= self._matchline(row, drive)
        if accumulate:
            self.tags |= match
        else:
            self.tags = match
        return self.tags.copy()

    def update(
        self,
        row: int,
        value: int,
        column_select: Optional[np.ndarray] = None,
    ) -> None:
        """Bulk-update one row: write ``value`` to all selected columns.

        Args:
            row: the single row whose wordlines are asserted.
            value: the bit driven on the bitlines (same for all columns).
            column_select: per-column enable; defaults to this subarray's
                tag bits (the normal associative-update path). The chain
                may instead pass the *previous* subarray's tags to realise
                carry propagation (Figure 5).
        """
        self._check_row(row)
        select = self.tags if column_select is None else np.asarray(column_select)
        if select.shape != (self.num_cols,):
            raise ConfigError(
                f"column select expects {self.num_cols} bits, got {select.shape}"
            )
        cols = select.astype(bool)
        self.bits[row, cols] = 1 if value else 0

    def set_tags(self, tags: np.ndarray) -> None:
        """Load the tag bits directly (used by the chain's tag routing)."""
        tags = np.asarray(tags, dtype=np.uint8)
        if tags.shape != (self.num_cols,):
            raise ConfigError(f"tags expect {self.num_cols} bits, got {tags.shape}")
        self.tags = tags & 1

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _matchline(self, row: int, drive: WordlineDrive) -> np.ndarray:
        """Per-column match outcome of driving one row's wordlines.

        Models the BL/BLB sensing: a cell matches a SEARCH_ONE drive iff it
        stores 1, a SEARCH_ZERO drive iff it stores 0; don't-care rows
        leave the matchlines precharged (all match).
        """
        if drive is WordlineDrive.DONT_CARE:
            return np.ones(self.num_cols, dtype=np.uint8)
        if drive is WordlineDrive.SEARCH_ONE:
            return self.bits[row]
        return (1 - self.bits[row]).astype(np.uint8)

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.num_rows:
            raise ConfigError(f"row {row} out of range [0, {self.num_rows})")

    def _check_col(self, col: int) -> None:
        if not 0 <= col < self.num_cols:
            raise ConfigError(f"column {col} out of range [0, {self.num_cols})")
