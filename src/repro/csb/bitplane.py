"""Vectorized bit-plane execution backend for the CSB.

The reference model walks a chain subarray by subarray (and, for element
rewrites, column by column) in Python. This backend stores the same state
as two dense numpy matrices —

* ``bits`` of shape ``(num_subarrays, num_rows, num_cols)``: plane
  ``[i, r]`` is row ``r`` of subarray ``i`` across every column, and
* ``tags`` of shape ``(num_subarrays, num_cols)``: the tag registers —

so every microoperation becomes a whole-array boolean kernel: a
bit-parallel search is a handful of elementwise AND/ANDNOTs over the
``(subarrays, cols)`` planes, an update is one masked assignment, and a
popcount is one ``sum()``. This is the same bulk-bitwise mapping of
associative microoperations used by DRAMA and the FPGA CAM processors.

Fusing goes one level further at the CSB: because the VMU interleaves
element ``e`` to chain ``e % C``, column ``e // C``, laying the ``C``
chains side by side in an ``(S, R, C * N)`` matrix with chain ``c`` at
columns ``c::C`` puts element ``e`` at fused column ``e`` — so a single
*ganged* chain over the fused matrix runs a truth-table step across the
whole block in one numpy operation, and the per-chain windows
``bits[:, :, c::C]`` remain live views of the same storage. All kernels
therefore mutate strictly in place (masked assignment, never rebinding),
so the fused and per-chain views stay coherent by construction.

Semantics are bit-for-bit those of :class:`~repro.csb.subarray.Subarray`,
enforced by the differential suite in ``tests/csb/test_backend_equiv.py``.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

import numpy as np

from repro.common.bitutils import bits_to_ints, ints_to_bits
from repro.common.errors import ConfigError, ProtocolError
from repro.csb.subarray import MAX_SEARCH_ROWS


class PlaneView:
    """A :class:`~repro.csb.subarray.Subarray`-compatible window onto one
    bit-slice of a :class:`BitplaneBackend`.

    ``bits`` and ``tags`` are live views into the backend's fused storage,
    so host-side inspection and the memory-only modes (which address
    ``chain.subarrays[i]`` directly) keep working under the bitplane
    backend without copying state around.
    """

    def __init__(self, backend: "BitplaneBackend", sub: int) -> None:
        self._backend = backend
        self._sub = sub
        self.num_rows = backend.num_rows
        self.num_cols = backend.num_cols

    @property
    def bits(self) -> np.ndarray:
        return self._backend.bits[self._sub]

    @property
    def tags(self) -> np.ndarray:
        return self._backend.tags[self._sub]

    @tags.setter
    def tags(self, value) -> None:
        # In-place, so the fused backend (and any ganged view) sees it.
        self._backend.tags[self._sub][:] = np.asarray(value, dtype=np.uint8) & 1

    def read_bit(self, row: int, col: int) -> int:
        self._backend._check_row(row)
        self._backend._check_col(col)
        return int(self.bits[row, col])

    def write_bit(self, row: int, col: int, value: int) -> None:
        self._backend._check_row(row)
        self._backend._check_col(col)
        self.bits[row, col] = 1 if value else 0

    def read_row(self, row: int) -> np.ndarray:
        self._backend._check_row(row)
        return self.bits[row].copy()

    def write_row(self, row: int, values: np.ndarray) -> None:
        self._backend._check_row(row)
        values = np.asarray(values, dtype=np.uint8)
        if values.shape != (self.num_cols,):
            raise ConfigError(
                f"row write expects {self.num_cols} bits, got shape {values.shape}"
            )
        self.bits[row][:] = values & 1

    def search(self, key: Mapping[int, int], accumulate: bool = False) -> np.ndarray:
        return self._backend.search(self._sub, key, accumulate=accumulate)

    def update(
        self, row: int, value: int, column_select: Optional[np.ndarray] = None
    ) -> None:
        select = self.tags if column_select is None else np.asarray(column_select)
        if select.shape != (self.num_cols,):
            raise ConfigError(
                f"column select expects {self.num_cols} bits, got {select.shape}"
            )
        self._backend.update(self._sub, row, value, select)

    def set_tags(self, tags: np.ndarray) -> None:
        self._backend.set_tags(self._sub, tags)


class BitplaneBackend:
    """Dense bit-plane state + vectorized kernels (``name="bitplane"``).

    Args:
        num_subarrays: bit-slices per element.
        num_rows: wordlines per subarray (32 vregs + 4 metadata rows).
        num_cols: columns covered — a single chain's, or, for a fused
            CSB-level instance, ``num_chains * cols_per_chain``.
        bits / tags: adopt existing storage (possibly strided views of a
            larger backend) instead of allocating; used by
            :meth:`column_view`.
    """

    name = "bitplane"

    def __init__(
        self,
        num_subarrays: int,
        num_rows: int,
        num_cols: int,
        bits: Optional[np.ndarray] = None,
        tags: Optional[np.ndarray] = None,
    ) -> None:
        if num_subarrays <= 0 or num_rows <= 0 or num_cols <= 0:
            raise ConfigError("bitplane dimensions must be positive")
        self.num_subarrays = num_subarrays
        self.num_rows = num_rows
        self.num_cols = num_cols
        shape = (num_subarrays, num_rows, num_cols)
        if bits is None:
            bits = np.zeros(shape, dtype=np.uint8)
        elif bits.shape != shape:
            raise ConfigError(f"bits shape {bits.shape} != {shape}")
        if tags is None:
            tags = np.zeros((num_subarrays, num_cols), dtype=np.uint8)
        elif tags.shape != (num_subarrays, num_cols):
            raise ConfigError(
                f"tags shape {tags.shape} != {(num_subarrays, num_cols)}"
            )
        self.bits = bits
        self.tags = tags
        self._views: Optional[List[PlaneView]] = None

    def column_view(self, cols: slice) -> "BitplaneBackend":
        """A backend over a strided column window of this one's storage.

        The view shares (never copies) the underlying arrays: the CSB
        hands each chain the window ``c::num_chains`` of one fused
        backend, so per-chain and ganged execution see the same bits.
        """
        bits = self.bits[:, :, cols]
        tags = self.tags[:, cols]
        return BitplaneBackend(
            self.num_subarrays,
            self.num_rows,
            bits.shape[2],
            bits=bits,
            tags=tags,
        )

    @property
    def subarrays(self) -> List[PlaneView]:
        """Subarray-shaped windows, one per bit-slice (lazily built)."""
        if self._views is None:
            self._views = [PlaneView(self, s) for s in range(self.num_subarrays)]
        return self._views

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------

    def element_bits(self, row: int, col: int) -> np.ndarray:
        return self.bits[:, row, col].copy()

    def set_element_bits(self, row: int, col: int, bits: np.ndarray) -> None:
        self.bits[:, row, col] = np.asarray(bits, dtype=np.uint8) & 1

    def register_planes(self, row: int) -> np.ndarray:
        return self.bits[:, row, :].copy()

    def set_register_planes(
        self, row: int, bits: np.ndarray, cols: Optional[slice] = None
    ) -> None:
        if cols is None:
            self.bits[:, row, :] = np.asarray(bits, dtype=np.uint8) & 1
        else:
            self.bits[:, row, cols] = np.asarray(bits, dtype=np.uint8) & 1

    def plane(self, sub: int, row: int) -> np.ndarray:
        return self.bits[sub, row].copy()

    # ------------------------------------------------------------------
    # Tag access
    # ------------------------------------------------------------------

    def tags_of(self, sub: int) -> np.ndarray:
        return self.tags[sub].copy()

    def all_tags(self) -> np.ndarray:
        return self.tags.copy()

    def set_tags(self, sub: int, tags: np.ndarray) -> None:
        tags = np.asarray(tags, dtype=np.uint8)
        if tags.shape != (self.num_cols,):
            raise ConfigError(f"tags expect {self.num_cols} bits, got {tags.shape}")
        self.tags[sub][:] = tags & 1

    def or_tags(self, sub: int, tags: np.ndarray) -> None:
        self.tags[sub] |= np.asarray(tags, dtype=np.uint8) & 1

    def clear_tags(self) -> None:
        self.tags[:] = 0

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------

    def match(self, sub: int, key: Mapping[int, int]) -> np.ndarray:
        self._check_key(key)
        match = np.ones(self.num_cols, dtype=np.uint8)
        for row, want in key.items():
            plane = self.bits[sub, row]
            match &= plane if want else plane ^ 1
        return match

    def search(
        self, sub: int, key: Mapping[int, int], accumulate: bool = False
    ) -> np.ndarray:
        match = self.match(sub, key)
        if accumulate:
            self.tags[sub] |= match
        else:
            self.tags[sub][:] = match
        return self.tags[sub].copy()

    def search_all(
        self, keys: Sequence[Mapping[int, int]], accumulate: bool = False
    ) -> np.ndarray:
        # One fused kernel over all subarrays: for each distinct row any
        # key drives, build the per-subarray drive column (1 = search-one,
        # 0 = search-zero, -1 = don't care) and AND the outcome planes.
        for key in keys:
            self._check_key(key)
        rows = sorted({row for key in keys for row in key})
        match = np.ones((self.num_subarrays, self.num_cols), dtype=np.uint8)
        for row in rows:
            want = np.array(
                [key.get(row, -1) for key in keys], dtype=np.int8
            )[:, None]
            planes = self.bits[:, row, :]
            match &= np.where(
                want == 1, planes, np.where(want == 0, planes ^ 1, np.uint8(1))
            )
        if accumulate:
            self.tags |= match
        else:
            self.tags[:] = match
        return self.tags.copy()

    def update(self, sub: int, row: int, value: int, select: np.ndarray) -> None:
        self._check_row(row)
        np.copyto(
            self.bits[sub, row],
            np.uint8(1 if value else 0),
            where=np.asarray(select).astype(bool),
        )

    def update_all(self, row: int, value: int, select: np.ndarray) -> None:
        self._check_row(row)
        np.copyto(
            self.bits[:, row, :],
            np.uint8(1 if value else 0),
            where=np.asarray(select).astype(bool),
        )

    def update_all_values(
        self, row: int, values: Sequence[int], select: np.ndarray
    ) -> None:
        self._check_row(row)
        data = (np.asarray(values, dtype=np.uint8) & 1)[:, None]
        np.copyto(
            self.bits[:, row, :],
            np.broadcast_to(data, (self.num_subarrays, self.num_cols)),
            where=np.asarray(select).astype(bool),
        )

    def map_register(
        self,
        dst_row: int,
        src_row: int,
        fn,
        mask: int,
        active: Optional[np.ndarray] = None,
    ) -> None:
        # Element read-modify-write fused over all columns: collapse the
        # source planes to integers, apply fn elementwise, re-explode.
        # Columns outside the active window keep their data.
        self._check_row(src_row)
        self._check_row(dst_row)
        values = bits_to_ints(self.bits[:, src_row, :]) & mask
        out = np.asarray(fn(values)) & mask
        planes = ints_to_bits(out, self.num_subarrays)
        if active is None:
            self.bits[:, dst_row, :] = planes
        else:
            sel = np.asarray(active).astype(bool)
            self.bits[:, dst_row, sel] = planes[:, sel]

    # -- fault-injection hooks ------------------------------------------

    def force_bit(self, sub: int, row: int, col: int, value: int) -> None:
        self._check_row(row)
        self._check_col(col)
        self.bits[sub, row, col] = np.uint8(value & 1)

    def zero_columns(self, cols: np.ndarray) -> None:
        self.bits[:, :, cols] = 0
        self.tags[:, cols] = 0

    # ------------------------------------------------------------------

    def _check_key(self, key: Mapping[int, int]) -> None:
        if len(key) > MAX_SEARCH_ROWS:
            raise ProtocolError(
                f"search may drive at most {MAX_SEARCH_ROWS} rows, got {len(key)}"
            )
        for row in key:
            self._check_row(row)

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.num_rows:
            raise ConfigError(f"row {row} out of range [0, {self.num_rows})")

    def _check_col(self, col: int) -> None:
        if not 0 <= col < self.num_cols:
            raise ConfigError(f"column {col} out of range [0, {self.num_cols})")
