"""Execution backends: pluggable state + kernel engines behind a Chain.

A :class:`~repro.csb.chain.Chain` is split into two layers:

* the **chain facade** owns the paper-visible semantics — microoperation
  accounting, the active-window column mask, tag routing between
  subarrays — and is backend-agnostic;
* an **execution backend** owns the bitcell/tag *state* and the raw
  array kernels (search matchlines, bulk row updates, register-plane
  transfers) the facade drives.

Two backends ship:

``reference``
    The always-available per-subarray model: a list of
    :class:`~repro.csb.subarray.Subarray` objects, each a standalone
    6T-SRAM matrix, walked with Python loops. This is the bit-accurate
    model the reproduction has validated since the seed; every other
    backend must match it bit-for-bit.

``bitplane``
    A vectorized engine (:mod:`repro.csb.bitplane`) storing the whole
    chain — or, fused at the CSB level, *all* chains — as a single
    ``(subarrays, rows, columns)`` bit matrix, so each microoperation is
    one whole-array boolean kernel instead of a per-subarray/per-column
    loop. Same semantics, orders of magnitude faster at scale.

Both implement the :class:`ExecutionBackend` protocol below. Because the
chain facade performs all microop recording, the two backends charge
*identical* microoperation counts by construction; the differential test
suite (``tests/csb/test_backend_equiv.py``) additionally pins down
bit-identical register state, tag bits, and reduction results.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Protocol, Sequence, Union, runtime_checkable

import numpy as np

from repro.common.errors import ConfigError
from repro.csb.subarray import Subarray

#: Names accepted wherever a backend can be selected.
BACKEND_NAMES = ("reference", "bitplane")

#: A backend selector: a name from :data:`BACKEND_NAMES` or an instance.
BackendLike = Union[str, "ExecutionBackend"]


@runtime_checkable
class ExecutionBackend(Protocol):
    """State + kernels a :class:`~repro.csb.chain.Chain` executes on.

    All bit arrays use dtype ``uint8`` with values 0/1; ``sub`` indexes a
    subarray (bit-slice), ``row`` a wordline, and column vectors have one
    entry per chain column. Implementations mutate their arrays strictly
    in place so external views (e.g. the per-chain windows of a fused
    CSB-level backend) stay coherent.
    """

    #: Identifying name ("reference" / "bitplane").
    name: str
    num_subarrays: int
    num_rows: int
    num_cols: int

    # -- state access ---------------------------------------------------

    def element_bits(self, row: int, col: int) -> np.ndarray:
        """Bits of one element: ``(num_subarrays,)``, slice ``i`` = bit ``i``."""

    def set_element_bits(self, row: int, col: int, bits: np.ndarray) -> None:
        """Write one element's bits across every subarray."""

    def register_planes(self, row: int) -> np.ndarray:
        """Copy of one row across all subarrays: ``(num_subarrays, num_cols)``."""

    def set_register_planes(
        self, row: int, bits: np.ndarray, cols: Optional[slice] = None
    ) -> None:
        """Write one row across all subarrays (optionally a column slice)."""

    def plane(self, sub: int, row: int) -> np.ndarray:
        """Copy of a single subarray row: ``(num_cols,)``."""

    # -- tag access -----------------------------------------------------

    def tags_of(self, sub: int) -> np.ndarray:
        """Copy of one subarray's tag bits."""

    def all_tags(self) -> np.ndarray:
        """Copy of every subarray's tags: ``(num_subarrays, num_cols)``."""

    def set_tags(self, sub: int, tags: np.ndarray) -> None:
        """Overwrite one subarray's tag bits."""

    def or_tags(self, sub: int, tags: np.ndarray) -> None:
        """OR into one subarray's tag bits (the tag accumulator)."""

    def clear_tags(self) -> None:
        """Zero every subarray's tag register."""

    # -- kernels --------------------------------------------------------

    def match(self, sub: int, key: Mapping[int, int]) -> np.ndarray:
        """Matchline outcome of a search, *without* touching the tags."""

    def search(
        self, sub: int, key: Mapping[int, int], accumulate: bool = False
    ) -> np.ndarray:
        """Search one subarray; latch (or OR) the match into its tags."""

    def search_all(
        self, keys: Sequence[Mapping[int, int]], accumulate: bool = False
    ) -> np.ndarray:
        """Search every subarray in one cycle (one key per subarray)."""

    def update(
        self, sub: int, row: int, value: int, select: np.ndarray
    ) -> None:
        """Write ``value`` to the selected columns of one subarray row."""

    def update_all(self, row: int, value: int, select: np.ndarray) -> None:
        """Write ``value`` to the same row of every subarray.

        ``select`` is a per-subarray column enable of shape
        ``(num_subarrays, num_cols)``.
        """

    def update_all_values(
        self, row: int, values: Sequence[int], select: np.ndarray
    ) -> None:
        """Like :meth:`update_all` with a distinct data bit per subarray."""

    def map_register(
        self,
        dst_row: int,
        src_row: int,
        fn,
        mask: int,
        active: Optional[np.ndarray] = None,
    ) -> None:
        """Element read-modify-write: ``dst[c] = fn(src[c] & mask) & mask``.

        Models the chain controller's per-column element rewrite path
        (shifts); ``fn`` must accept both Python ints and int64 arrays.
        ``active`` optionally restricts the sweep to the enabled columns
        (the chain's vstart/vl window); masked columns keep their data.
        """

    # -- fault-injection hooks ------------------------------------------

    def force_bit(self, sub: int, row: int, col: int, value: int) -> None:
        """Force one bitcell to ``value``, bypassing kernel semantics.

        The physical write a stuck-at fault models; used by
        :class:`repro.faults.FaultyBackend` to re-assert persistent
        faults after every mutation.
        """

    def zero_columns(self, cols: np.ndarray) -> None:
        """Zero the given columns' bitcells and tags in every subarray.

        Models a dead chain going dark (bitcells read 0, matchlines
        never discharge); used by the fault injector for chain kills.
        """


class ReferenceBackend:
    """The per-subarray reference model (a list of :class:`Subarray`).

    Kernels iterate subarrays (and, for the element rewrite path,
    columns) in Python — bit-for-bit the model the reproduction has
    always used, kept as the always-available ground truth.
    """

    name = "reference"

    def __init__(self, num_subarrays: int, num_rows: int, num_cols: int) -> None:
        self.num_subarrays = num_subarrays
        self.num_rows = num_rows
        self.num_cols = num_cols
        self.subarrays: List[Subarray] = [
            Subarray(num_rows=num_rows, num_cols=num_cols)
            for _ in range(num_subarrays)
        ]

    # -- state access ---------------------------------------------------

    def element_bits(self, row: int, col: int) -> np.ndarray:
        return np.array(
            [sub.read_bit(row, col) for sub in self.subarrays], dtype=np.uint8
        )

    def set_element_bits(self, row: int, col: int, bits: np.ndarray) -> None:
        for sub, bit in zip(self.subarrays, bits):
            sub.write_bit(row, col, int(bit))

    def register_planes(self, row: int) -> np.ndarray:
        return np.stack([sub.bits[row] for sub in self.subarrays])

    def set_register_planes(
        self, row: int, bits: np.ndarray, cols: Optional[slice] = None
    ) -> None:
        for sub, plane in zip(self.subarrays, bits):
            if cols is None:
                sub.bits[row] = plane & 1
            else:
                sub.bits[row, cols] = plane & 1

    def plane(self, sub: int, row: int) -> np.ndarray:
        return self.subarrays[sub].bits[row].copy()

    # -- tag access -----------------------------------------------------

    def tags_of(self, sub: int) -> np.ndarray:
        return self.subarrays[sub].tags.copy()

    def all_tags(self) -> np.ndarray:
        return np.stack([sub.tags for sub in self.subarrays])

    def set_tags(self, sub: int, tags: np.ndarray) -> None:
        self.subarrays[sub].set_tags(tags)

    def or_tags(self, sub: int, tags: np.ndarray) -> None:
        self.subarrays[sub].tags |= np.asarray(tags, dtype=np.uint8) & 1

    def clear_tags(self) -> None:
        for sub in self.subarrays:
            sub.tags[:] = 0

    # -- kernels --------------------------------------------------------

    def match(self, sub: int, key: Mapping[int, int]) -> np.ndarray:
        # Compute the matchlines without disturbing the latched tags.
        target = self.subarrays[sub]
        saved = target.tags
        target.tags = saved.copy()
        outcome = target.search(key, accumulate=False).copy()
        target.tags = saved
        return outcome

    def search(
        self, sub: int, key: Mapping[int, int], accumulate: bool = False
    ) -> np.ndarray:
        return self.subarrays[sub].search(key, accumulate=accumulate)

    def search_all(
        self, keys: Sequence[Mapping[int, int]], accumulate: bool = False
    ) -> np.ndarray:
        return np.stack(
            [
                sub.search(key, accumulate=accumulate)
                for sub, key in zip(self.subarrays, keys)
            ]
        )

    def update(self, sub: int, row: int, value: int, select: np.ndarray) -> None:
        self.subarrays[sub].update(row, value, column_select=select)

    def update_all(self, row: int, value: int, select: np.ndarray) -> None:
        for sub, sel in zip(self.subarrays, select):
            sub.update(row, value, column_select=sel)

    def update_all_values(
        self, row: int, values: Sequence[int], select: np.ndarray
    ) -> None:
        for sub, value, sel in zip(self.subarrays, values, select):
            sub.update(row, value, column_select=sel)

    def map_register(
        self,
        dst_row: int,
        src_row: int,
        fn,
        mask: int,
        active: Optional[np.ndarray] = None,
    ) -> None:
        # The controller walks columns one element at a time (2 microops
        # per column, charged by the chain facade), skipping columns
        # outside the active window.
        from repro.common.bitutils import bits_to_ints, ints_to_bits

        for col in range(self.num_cols):
            if active is not None and not active[col]:
                continue
            bits = self.element_bits(src_row, col)
            value = int(bits_to_ints(bits[:, None])[0]) & mask
            out = int(fn(value)) & mask
            self.set_element_bits(
                dst_row, col, ints_to_bits(np.array([out]), self.num_subarrays)[:, 0]
            )

    # -- fault-injection hooks ------------------------------------------

    def force_bit(self, sub: int, row: int, col: int, value: int) -> None:
        self.subarrays[sub].write_bit(row, col, int(value))

    def zero_columns(self, cols: np.ndarray) -> None:
        for sub in self.subarrays:
            sub.bits[:, cols] = 0
            sub.tags[cols] = 0


def make_backend(
    backend: BackendLike, num_subarrays: int, num_rows: int, num_cols: int
) -> "ExecutionBackend":
    """Resolve a backend selector into an instance with the given shape.

    Accepts a name from :data:`BACKEND_NAMES` or a ready instance (used
    by the CSB to hand chains column-windows of one fused backend); an
    instance must already have matching dimensions.
    """
    if isinstance(backend, str):
        if backend == "reference":
            return ReferenceBackend(num_subarrays, num_rows, num_cols)
        if backend == "bitplane":
            from repro.csb.bitplane import BitplaneBackend

            return BitplaneBackend(num_subarrays, num_rows, num_cols)
        raise ConfigError(
            f"unknown execution backend {backend!r}; expected one of "
            f"{BACKEND_NAMES}"
        )
    shape = (backend.num_subarrays, backend.num_rows, backend.num_cols)
    if shape != (num_subarrays, num_rows, num_cols):
        raise ConfigError(
            f"backend shape {shape} does not match chain shape "
            f"{(num_subarrays, num_rows, num_cols)}"
        )
    return backend
