"""Bit-level model of CAPE's Compute-Storage Block (CSB).

The CSB is built from 32x32 push-rule 6T SRAM subarrays with split
wordlines (Jeloka et al.), organised into *chains* of 32 subarrays. A
vector element lives in one column; its 32 bits are bit-sliced across the
chain's subarrays (subarray *i* holds bit *i* of every vector register).

This package simulates the four CSB microoperations — read, write, search,
update — at the bit level, enforcing the paper's circuit constraints
(at most four active rows per search, one updated row per subarray, tag-
driven column selection with optional propagation to the next subarray),
plus the intra-chain reduction-sum logic and the global reduction tree.
"""

from repro.csb.backend import (
    BACKEND_NAMES,
    ExecutionBackend,
    ReferenceBackend,
    make_backend,
)
from repro.csb.bitplane import BitplaneBackend, PlaneView
from repro.csb.counter import MicroopStats
from repro.csb.chain import Chain, MetaRow
from repro.csb.csb import CSB
from repro.csb.reduction import ReductionTree
from repro.csb.subarray import Subarray, WordlineDrive

__all__ = [
    "BACKEND_NAMES",
    "BitplaneBackend",
    "CSB",
    "Chain",
    "ExecutionBackend",
    "MetaRow",
    "MicroopStats",
    "PlaneView",
    "ReductionTree",
    "ReferenceBackend",
    "Subarray",
    "WordlineDrive",
    "make_backend",
]
