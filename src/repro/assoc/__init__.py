"""Associative computing layer: truth tables, algorithms, and emulator.

Associative (bit-serial, element-parallel) algorithms express each vector
instruction as a sequence of search/update pairs over the rows of a chain,
encoded as truth tables walked by the chain controller's sequencer
(Sections II, IV, V-D). This package holds:

* the truth-table memory (TTM) entry format,
* the microcoded algorithm for every supported vector instruction,
* a behavioural emulator that executes the microcode on a bit-level chain
  and records microoperation statistics, and
* the instruction-level timing/energy model derived from those statistics
  plus the circuit layer — the reproduction of the paper's Table I.
"""

from repro.assoc.algorithms import ALGORITHMS, AlgorithmInfo
from repro.assoc.emulator import AssociativeEmulator, InstructionRun
from repro.assoc.instruction_model import (
    TABLE_I_ROWS,
    InstructionMetrics,
    InstructionModel,
)
from repro.assoc.truthtable import TruthTable, TTEntry, UpdateOp

__all__ = [
    "ALGORITHMS",
    "TABLE_I_ROWS",
    "AlgorithmInfo",
    "AssociativeEmulator",
    "InstructionMetrics",
    "InstructionModel",
    "InstructionRun",
    "TTEntry",
    "TruthTable",
    "UpdateOp",
]
