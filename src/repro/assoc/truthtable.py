"""Truth-table memory (TTM) entry format (Section V-D).

Each TTM entry describes one search-update-reduce "data pack": the rows and
bit values driven during the search, the row(s) written during the update
(at most one row per subarray, at most two subarrays), and control flags —
search/update valid bits, the tag-accumulator enable, and the reduce
enable. Entries use symbolic *operand roles* (``vd``, ``vs1``, ``vs2``,
``carry``, ``mask``, ...) that the truth-table decoder binds to physical
rows when the VCU dispatches an instruction; this is the "standard format
to represent any associative algorithm's truth table".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.common.errors import ConfigError, ProtocolError
from repro.csb.subarray import MAX_SEARCH_ROWS

#: Operand roles a TT entry may reference. ``vd``/``vs1``/``vs2`` bind to
#: the instruction's register operands; the rest bind to metadata rows.
ROLES = ("vd", "vs1", "vs2", "carry", "mask", "flag", "scratch")


@dataclass(frozen=True)
class UpdateOp:
    """One row write of an update microoperation.

    Attributes:
        role: operand role naming the row to write.
        value: the bit driven onto the selected columns.
        next_subarray: write happens in subarray ``i+1`` (carry/borrow
            propagation) instead of the subarray being processed.
    """

    role: str
    value: int
    next_subarray: bool = False

    def __post_init__(self) -> None:
        if self.role not in ROLES:
            raise ConfigError(f"unknown operand role {self.role!r}")
        if self.value not in (0, 1):
            raise ConfigError(f"update value must be 0 or 1, got {self.value}")


@dataclass(frozen=True)
class TTEntry:
    """One TTM entry: a search key plus optional update and flags.

    Attributes:
        search: role -> bit searched; empty means no search this entry.
        updates: row writes committed by the update phase (empty = none).
        accumulate: OR this search's matches into the tag bits.
        route_next: route this search's matches to subarray ``i+1``'s tags.
        reduce: engage the reduction logic on the tag bits this entry.
    """

    search: Tuple[Tuple[str, int], ...] = ()
    updates: Tuple[UpdateOp, ...] = ()
    accumulate: bool = False
    route_next: bool = False
    reduce: bool = False

    def __post_init__(self) -> None:
        if len(self.search) > MAX_SEARCH_ROWS:
            raise ProtocolError(
                f"TT entry searches {len(self.search)} rows, "
                f"maximum is {MAX_SEARCH_ROWS}"
            )
        local_rows = [u for u in self.updates if not u.next_subarray]
        next_rows = [u for u in self.updates if u.next_subarray]
        if len(local_rows) > 1 or len(next_rows) > 1:
            raise ProtocolError(
                "update may write at most one row per subarray "
                "(one local, one in the next subarray)"
            )
        for role, bit in self.search:
            if role not in ROLES:
                raise ConfigError(f"unknown operand role {role!r}")
            if bit not in (0, 1):
                raise ConfigError(f"search bit must be 0 or 1, got {bit}")

    @property
    def search_key(self) -> Dict[str, int]:
        """The search pattern as a role -> bit mapping."""
        return dict(self.search)

    @property
    def has_search(self) -> bool:
        return bool(self.search)

    @property
    def has_update(self) -> bool:
        return bool(self.updates)


@dataclass(frozen=True)
class TruthTable:
    """A named sequence of TTM entries for one associative algorithm.

    Attributes:
        name: the vector instruction mnemonic this table implements.
        entries: the search-update-reduce packs, in sequencer order.
        max_entries: capacity of the chain controller's TTM.
    """

    name: str
    entries: Tuple[TTEntry, ...]
    max_entries: int = 16

    def __post_init__(self) -> None:
        if len(self.entries) > self.max_entries:
            raise ProtocolError(
                f"truth table {self.name!r} has {len(self.entries)} entries, "
                f"TTM capacity is {self.max_entries}"
            )

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def max_search_rows(self) -> int:
        """Largest number of rows driven by any entry's search."""
        return max((len(e.search) for e in self.entries), default=0)

    @property
    def max_update_rows(self) -> int:
        """Largest number of row writes in any entry's update (<= 2)."""
        return max((len(e.updates) for e in self.entries), default=0)

    def encoded_bits(self, row_address_bits: int = 6) -> int:
        """Size of this table in TTM storage bits.

        Each entry stores, per referenced row: an address and a data bit;
        plus the four control bits (search/update valid, accumulator
        enable, reduce enable) noted in Section V-D. Unreferenced rows are
        not stored — "encoded efficiently to only store values for the
        bits involved in the operations".
        """
        total = 0
        for entry in self.entries:
            rows = len(entry.search) + len(entry.updates)
            total += rows * (row_address_bits + 1) + 4
        return total
