"""Microcoded associative algorithms for CAPE's vector instructions.

Each function realises one RISC-V vector instruction as the paper's
search/update choreography over a bit-level :class:`~repro.csb.Chain`:

* Logic instructions are *bit-parallel*: one search-update pass drives the
  same rows of every subarray at once (3-4 cycles total, Table I).
* Arithmetic is *bit-serial*: a truth-table walk per bit with carry/borrow
  propagation through the inter-subarray tag routing. `vadd`/`vsub` spend
  8 microoperations per bit plus 2 initialisation updates (8n + 2).
* Comparisons produce RVV-style mask values (bit 0 of the destination
  register), using either the bit-parallel search plus a bit-serial tag
  combine (`vmseq`) or a borrow chain (`vmslt`).
* `vmul` walks the add truth table a quadratic number of times
  (Horner/shift-and-add, conditioned on the multiplier bit broadcast into
  the MASK metadata row).

Functional correctness of every algorithm is property-tested against plain
integer arithmetic. Microoperation counts are *measured* by running these
algorithms; the instruction model compares them against the paper's closed
forms (see ``instruction_model.py`` and EXPERIMENTS.md for the cases where
our reconstructed microcode spends more cycles than the published counts).

Masked variants implement RVV semantics: inactive elements of the
destination are left unchanged. The mask must first be replicated into the
MASK metadata row of every subarray with :func:`broadcast_mask`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional

import numpy as np

from repro.common.errors import ConfigError
from repro.csb.chain import Chain, MetaRow
from repro.csb.subarray import Subarray


def _resolve_width(chain: Chain, width: Optional[int]) -> int:
    width = chain.num_subarrays if width is None else width
    if not 1 <= width <= chain.num_subarrays:
        raise ConfigError(
            f"width {width} outside [1, {chain.num_subarrays}]"
        )
    return width


def _guard(masked: bool) -> Dict[int, int]:
    """Search-key fragment restricting matches to active (masked-on) lanes."""
    return {int(MetaRow.MASK): 1} if masked else {}


# ---------------------------------------------------------------------------
# Mask plumbing
# ---------------------------------------------------------------------------

def broadcast_mask(chain: Chain, vm: int) -> None:
    """Replicate mask register ``vm`` (its bit 0) into every MASK row.

    A mask value has one bit per element, held in bit 0 of a vector
    register (subarray 0). Bit-parallel instructions need the mask visible
    in *every* subarray, so the VCU echoes it onto the chain's column bus:
    clear the MASK rows, search the mask bit, commit the broadcast (3
    microoperations).
    """
    chain.update_bit_parallel(int(MetaRow.MASK), 0, use_tags=False)
    tags = chain.search(0, {vm: 1})
    chain.update_bit_parallel_select(int(MetaRow.MASK), 1, tags)


# ---------------------------------------------------------------------------
# Moves / broadcast
# ---------------------------------------------------------------------------

def vmv_vv(chain: Chain, vd: int, vs1: int, masked: bool = False) -> None:
    """``vmv.v.v vd, vs1`` — bit-parallel register copy (3 microops)."""
    if vd == vs1:
        return
    _clear_dest(chain, vd, masked)
    key = {vs1: 1, **_guard(masked)}
    chain.search_bit_parallel([key] * chain.num_subarrays)
    chain.update_bit_parallel(vd, 1, use_tags=True)


def vmv_vx(chain: Chain, vd: int, scalar: int, masked: bool = False) -> None:
    """``vmv.v.x vd, rs1`` — broadcast a scalar to every element.

    Each subarray's write drivers carry one bit of the scalar, so the
    whole broadcast is a single bit-parallel update (plus the masked-lane
    selection when a mask is active).
    """
    bits = [(scalar >> i) & 1 for i in range(chain.num_subarrays)]
    if masked:
        key = {int(MetaRow.MASK): 1}
        chain.search_bit_parallel([key] * chain.num_subarrays)
        chain.update_bit_parallel_values(vd, bits, use_tags=True)
    else:
        chain.update_bit_parallel_values(vd, bits, use_tags=False)


# ---------------------------------------------------------------------------
# Logic instructions (bit-parallel)
# ---------------------------------------------------------------------------

def _clear_dest(chain: Chain, vd: int, masked: bool, value: int = 0) -> None:
    """Initialise the destination: bulk write, restricted to active lanes.

    Unmasked: one full-column bit-parallel update. Masked: select active
    lanes via the MASK rows first so inactive elements stay unchanged.
    """
    if masked:
        key = {int(MetaRow.MASK): 1}
        chain.search_bit_parallel([key] * chain.num_subarrays)
        chain.update_bit_parallel(vd, value, use_tags=True)
    else:
        chain.update_bit_parallel(vd, value, use_tags=False)


def vand_vv(chain: Chain, vd: int, vs1: int, vs2: int, masked: bool = False) -> None:
    """``vand.vv`` — clear vd, search (a=1, b=1), set matching bits (3 cycles)."""
    _require_not_aliased("vand.vv", vd, vs1, vs2)
    _clear_dest(chain, vd, masked)
    key = {vs1: 1, vs2: 1, **_guard(masked)}
    chain.search_bit_parallel([key] * chain.num_subarrays)
    chain.update_bit_parallel(vd, 1, use_tags=True)


def vor_vv(chain: Chain, vd: int, vs1: int, vs2: int, masked: bool = False) -> None:
    """``vor.vv`` — preset vd to 1, search (a=0, b=0), clear (3 cycles)."""
    _require_not_aliased("vor.vv", vd, vs1, vs2)
    _clear_dest(chain, vd, masked, value=1)
    key = {vs1: 0, vs2: 0, **_guard(masked)}
    chain.search_bit_parallel([key] * chain.num_subarrays)
    chain.update_bit_parallel(vd, 0, use_tags=True)


def vxor_vv(chain: Chain, vd: int, vs1: int, vs2: int, masked: bool = False) -> None:
    """``vxor.vv`` — clear vd, two accumulated searches, one set (4 cycles)."""
    _require_not_aliased("vxor.vv", vd, vs1, vs2)
    _clear_dest(chain, vd, masked)
    g = _guard(masked)
    keys1 = [{vs1: 1, vs2: 0, **g}] * chain.num_subarrays
    keys2 = [{vs1: 0, vs2: 1, **g}] * chain.num_subarrays
    chain.search_bit_parallel(keys1)
    chain.search_bit_parallel(keys2, accumulate=True)
    chain.update_bit_parallel(vd, 1, use_tags=True)


# ---------------------------------------------------------------------------
# Bit-serial addition / subtraction
# ---------------------------------------------------------------------------

def _add_core(
    chain: Chain,
    dest: int,
    a_row: int,
    b_row: int,
    width: int,
    masked: bool,
    borrow: bool,
) -> None:
    """The 8-cycles-per-bit add/sub truth-table walk into a fresh ``dest``.

    Per bit ``i`` (all rows live in subarray ``i``; the carry/borrow for
    bit ``i+1`` is committed into subarray ``i+1`` through the tag routing,
    matching "arithmetic instructions update two subarrays simultaneously,
    but only one row per subarray"):

    * four searches accumulate the sum=1 cases (odd parity of a, b, carry)
      into the local tags,
    * three searches accumulate the carry-out cases — the majority function
      of (a, b, carry) for add, of (NOT a, b, borrow) for subtract — into
      the next subarray's tags,
    * one dual-subarray update commits ``dest[i]`` and ``carry[i+1]``.

    Initialisation (the "+2" of Table I's 8n + 2): bulk-clear ``dest`` and
    the carry rows. ``dest`` must not alias ``a_row``/``b_row`` — callers
    route aliasing cases through the SCRATCH row.
    """
    carry = int(MetaRow.CARRY)
    g = _guard(masked)
    if masked:
        # Clear dest/carry on active lanes only (3 init microops).
        key = {int(MetaRow.MASK): 1}
        chain.search_bit_parallel([key] * chain.num_subarrays)
        chain.update_bit_parallel(dest, 0, use_tags=True)
        chain.update_bit_parallel(carry, 0, use_tags=True)
    else:
        chain.update_bit_parallel(dest, 0, use_tags=False)
        chain.update_bit_parallel(carry, 0, use_tags=False)

    sum_patterns = ((0, 0, 1), (0, 1, 0), (1, 0, 0), (1, 1, 1))
    a_for_carry = 0 if borrow else 1
    for i in range(width):
        for n, (pa, pb, pc) in enumerate(sum_patterns):
            key = {a_row: pa, b_row: pb, carry: pc, **g}
            chain.search(i, key, accumulate=n > 0)
        carry_patterns = (
            {a_row: a_for_carry, b_row: 1, **g},
            {a_row: a_for_carry, carry: 1, **g},
            {b_row: 1, carry: 1, **g},
        )
        for n, key in enumerate(carry_patterns):
            chain.search_accumulate_next(i, key, accumulate=n > 0)
        chain.update_prop(i, dest, 1, carry, 1)


def _copy_register(chain: Chain, dest: int, src: int, masked: bool = False) -> None:
    """Bit-parallel copy ``dest <- src`` (3 microops), like ``vmv.v.v``."""
    _clear_dest(chain, dest, masked)
    key = {src: 1, **_guard(masked)}
    chain.search_bit_parallel([key] * chain.num_subarrays)
    chain.update_bit_parallel(dest, 1, use_tags=True)


def _add_like(
    chain: Chain,
    vd: int,
    vs1: int,
    vs2: int,
    width: Optional[int],
    masked: bool,
    borrow: bool,
) -> None:
    width = _resolve_width(chain, width)
    scratch = int(MetaRow.SCRATCH)
    if vd in (vs1, vs2):
        # In-place form: compute into SCRATCH, then copy back (3 extra).
        _add_core(chain, scratch, vs1, vs2, width, masked, borrow)
        _copy_register(chain, vd, scratch, masked)
    else:
        _add_core(chain, vd, vs1, vs2, width, masked, borrow)


def vadd_vv(
    chain: Chain,
    vd: int,
    vs1: int,
    vs2: int,
    width: Optional[int] = None,
    masked: bool = False,
) -> None:
    """``vadd.vv vd, vs1, vs2`` — bit-serial addition, 8n + 2 microops."""
    _add_like(chain, vd, vs1, vs2, width, masked, borrow=False)


def vsub_vv(
    chain: Chain,
    vd: int,
    vs1: int,
    vs2: int,
    width: Optional[int] = None,
    masked: bool = False,
) -> None:
    """``vsub.vv vd, vs1, vs2`` — bit-serial subtraction, 8n + 2 microops.

    Same structure as addition: difference = a XOR b XOR borrow; the
    borrow-out is the majority of (NOT a, b, borrow).
    """
    _add_like(chain, vd, vs1, vs2, width, masked, borrow=True)


def vadd_vx(
    chain: Chain,
    vd: int,
    vs1: int,
    scalar: int,
    width: Optional[int] = None,
    masked: bool = False,
) -> None:
    """``vadd.vx vd, vs1, rs1`` — add a scalar to every element.

    The sequencer folds the scalar's bit into the truth table, halving the
    searched cases per bit relative to ``vadd.vv`` (4-5 microops per bit).
    """
    width = _resolve_width(chain, width)
    carry = int(MetaRow.CARRY)
    g = _guard(masked)
    scratch = int(MetaRow.SCRATCH)
    in_place = vd == vs1
    dest = scratch if in_place else vd
    _clear_dest(chain, dest, masked)
    chain.update_bit_parallel(carry, 0, use_tags=False)
    for i in range(width):
        b = (scalar >> i) & 1
        # sum = a XOR b XOR c = 1 cases, with b fixed.
        if b == 0:
            sum_patterns = ({vs1: 0, carry: 1}, {vs1: 1, carry: 0})
            carry_patterns = ({vs1: 1, carry: 1},)
        else:
            sum_patterns = ({vs1: 0, carry: 0}, {vs1: 1, carry: 1})
            carry_patterns = ({vs1: 1}, {carry: 1})
        for n, key in enumerate(sum_patterns):
            chain.search(i, {**key, **g}, accumulate=n > 0)
        for n, key in enumerate(carry_patterns):
            chain.search_accumulate_next(i, {**key, **g}, accumulate=n > 0)
        chain.update_prop(i, dest, 1, carry, 1)
    if in_place:
        _copy_register(chain, vd, scratch, masked)


# ---------------------------------------------------------------------------
# Multiplication (bit-serial, quadratic truth-table traversal)
# ---------------------------------------------------------------------------

def _shift_left_one(chain: Chain, vreg: int, width: int) -> None:
    """Shift a register left by one bit via the inter-subarray tag routing.

    Walks bits from MSB down: bit ``i`` is echoed into subarray ``i+1``'s
    tags and committed there; bit 0 is then cleared. 3 microops per bit.
    """
    for i in range(width - 2, -1, -1):
        chain.search_accumulate_next(i, {vreg: 1}, accumulate=False)
        chain.update_row_full((i + 1) % chain.num_subarrays, vreg, 0)
        chain.update_next(i, vreg, 1)
    chain.update_row_full(0, vreg, 0)


def vmul_vv(
    chain: Chain,
    vd: int,
    vs1: int,
    vs2: int,
    width: Optional[int] = None,
) -> None:
    """``vmul.vv vd, vs1, vs2`` — low half of the product (Horner form).

    For each multiplier bit, most significant first: shift the accumulator
    left, broadcast the multiplier bit into the MASK rows, and run a
    masked add of the multiplicand — re-traversing the add truth table a
    quadratic number of times, which is what makes multiplication the most
    expensive CAPE instruction (Table I: 4n^2 - 4n cycles, >3,000 searches
    and updates at n=32). Low-half semantics hold for signed and unsigned
    operands alike. ``vd`` must not alias either source.
    """
    width = _resolve_width(chain, width)
    if vd in (vs1, vs2):
        raise ConfigError("vmul.vv requires vd distinct from vs1/vs2")
    mask_row = int(MetaRow.MASK)
    scratch = int(MetaRow.SCRATCH)
    chain.update_bit_parallel(vd, 0, use_tags=False)
    for j in range(width - 1, -1, -1):
        _shift_left_one(chain, vd, width)
        # Broadcast multiplier bit j into every subarray's MASK row.
        chain.update_bit_parallel(mask_row, 0, use_tags=False)
        tags = chain.search(j, {vs2: 1})
        chain.update_bit_parallel_select(mask_row, 1, tags)
        # vd += vs1 where MASK, via a fresh sum in SCRATCH.
        _add_core(chain, scratch, vd, vs1, width, masked=True, borrow=False)
        _copy_register(chain, vd, scratch, masked=True)


# ---------------------------------------------------------------------------
# Comparisons (mask-producing)
# ---------------------------------------------------------------------------

def vmseq_vx(
    chain: Chain,
    vd: int,
    vs1: int,
    scalar: int,
    width: Optional[int] = None,
) -> None:
    """``vmseq.vx vd, vs1, rs1`` — equality against a scalar.

    One bit-parallel search (subarray ``i`` drives the scalar's bit ``i``)
    followed by the bit-serial combine of the per-subarray tags into a
    single match bit per element (Table I: n + 1 cycles).
    """
    width = _resolve_width(chain, width)
    # Mask results are tail-agnostic: only bit 0 (the mask bit) is defined,
    # so no full-register clear is needed.
    chain.update_row_full(0, vd, 0)
    keys = []
    for i in range(chain.num_subarrays):
        if i < width:
            keys.append({vs1: (scalar >> i) & 1})
        else:
            keys.append({})  # excluded slice: matchlines stay precharged
    chain.search_bit_parallel(keys)
    combined = chain.combine_tags_serial(limit=width)
    chain.set_tags(0, combined)
    chain.update(0, vd, 1)


def vmseq_vv(
    chain: Chain,
    vd: int,
    vs1: int,
    vs2: int,
    width: Optional[int] = None,
) -> None:
    """``vmseq.vv vd, vs1, vs2`` — element equality of two vectors.

    Two bit-parallel searches accumulate per-subarray *mismatch* tags;
    the bit-serial OR combine yields mismatch per element, which clears a
    preset result bit (Table I: n + 4 cycles).
    """
    width = _resolve_width(chain, width)
    # Tail-agnostic mask destination: preset only the mask bit.
    chain.update_row_full(0, vd, 1)
    keys1 = [{vs1: 1, vs2: 0}] * chain.num_subarrays
    keys2 = [{vs1: 0, vs2: 1}] * chain.num_subarrays
    chain.search_bit_parallel(keys1)
    chain.search_bit_parallel(keys2, accumulate=True)
    mismatch = chain.combine_tags_serial_or(limit=width)
    chain.set_tags(0, mismatch)
    chain.update(0, vd, 0)


def _borrow_chain(chain: Chain, vs1: int, vs2: int, width: int) -> None:
    """Run the borrow recurrence of ``vs1 - vs2`` through the carry rows.

    borrow(i+1) = majority(NOT a_i, b_i, borrow_i), realised with three
    two-row searches routed into the next subarray plus one update there —
    matching Table I's two active search rows for ``vmslt``.
    """
    carry = int(MetaRow.CARRY)
    for i in range(width):
        chain.search_accumulate_next(i, {vs1: 0, vs2: 1}, accumulate=False)
        chain.search_accumulate_next(i, {vs1: 0, carry: 1})
        chain.search_accumulate_next(i, {vs2: 1, carry: 1})
        chain.update_next(i, carry, 1)


def _walk_tags_to_zero(chain: Chain, start: int) -> None:
    """Move a tag vector from subarray ``start`` to subarray 0, one hop at
    a time through the FLAG row (3 microops per hop; only needed when the
    element width is smaller than the chain's subarray count)."""
    flag = int(MetaRow.FLAG)
    k = start
    while k != 0:
        chain.update_row_full(k, flag, 0)
        chain.update(k, flag, 1)
        chain.search_accumulate_next(k, {flag: 1}, accumulate=False)
        k = (k + 1) % chain.num_subarrays


def vmslt_vv(
    chain: Chain,
    vd: int,
    vs1: int,
    vs2: int,
    width: Optional[int] = None,
    signed: bool = True,
) -> None:
    """``vmslt.vv vd, vs1, vs2`` — (signed) less-than, mask result.

    Runs the subtract borrow chain without storing the difference; the
    final borrow is the unsigned less-than outcome. For the signed form
    the outcome is XOR-corrected with the operands' sign bits
    (lt_signed = borrow XOR sign(a) XOR sign(b)). Linear in the element
    width, like Table I's 3n + 6.
    """
    width = _resolve_width(chain, width)
    carry = int(MetaRow.CARRY)
    flag = int(MetaRow.FLAG)
    chain.update_bit_parallel(carry, 0, use_tags=False)
    chain.update_row_full(0, vd, 0)
    _borrow_chain(chain, vs1, vs2, width)
    m = width % chain.num_subarrays
    if signed:
        # flip = sign(a) XOR sign(b), landed in subarray m's tags.
        chain.search_accumulate_next(width - 1, {vs1: 1, vs2: 0}, accumulate=False)
        chain.search_accumulate_next(width - 1, {vs1: 0, vs2: 1})
        chain.update_row_full(m, flag, 0)
        chain.update_next(width - 1, flag, 1)
        # lt = borrow XOR flip.
        chain.search(m, {carry: 1, flag: 0})
        chain.search(m, {carry: 0, flag: 1}, accumulate=True)
    else:
        chain.search(m, {carry: 1})
    _walk_tags_to_zero(chain, m)
    chain.update(0, vd, 1)


def vmsltu_vv(
    chain: Chain,
    vd: int,
    vs1: int,
    vs2: int,
    width: Optional[int] = None,
) -> None:
    """``vmsltu.vv`` — unsigned less-than (borrow chain, no sign fixup)."""
    vmslt_vv(chain, vd, vs1, vs2, width, signed=False)


# ---------------------------------------------------------------------------
# Merge (select)
# ---------------------------------------------------------------------------

def vmerge_vvm(
    chain: Chain,
    vd: int,
    vs1: int,
    vs2: int,
    vm: int = 0,
) -> None:
    """``vmerge.vvm vd, vs1, vs2, v0`` — vd = mask ? vs1 : vs2.

    After the mask broadcast, four bit-parallel search-update pairs cover
    the truth table {(m=1, a), (m=0, b)} for both bit polarities.
    """
    _require_not_aliased("vmerge.vvm", vd, vs1, vs2)
    mask_row = int(MetaRow.MASK)
    broadcast_mask(chain, vm)
    cases = (
        ({mask_row: 1, vs1: 1}, 1),
        ({mask_row: 1, vs1: 0}, 0),
        ({mask_row: 0, vs2: 1}, 1),
        ({mask_row: 0, vs2: 0}, 0),
    )
    for key, value in cases:
        chain.search_bit_parallel([key] * chain.num_subarrays)
        chain.update_bit_parallel(vd, value, use_tags=True)


# ---------------------------------------------------------------------------
# Shifts (controller-assisted element rewrite)
# ---------------------------------------------------------------------------

def _shift_rmw(chain: Chain, vd: int, vs1: int, shift, width: int) -> None:
    """Shift via the controller's element read-modify-write path.

    Reads and writes access one (row, column) bitcell of *all* subarrays
    at once (a whole element, Section VI-A), so the chain controller can
    rewrite a register column-by-column: 2 x num_cols microoperations for
    any shift amount — cheaper than walking the tag-routing network once
    per position. Dispatches through the chain's backend protocol
    (:meth:`~repro.csb.chain.Chain.rmw_register`) so a vectorized backend
    can fuse the whole column sweep into one kernel.
    """
    chain.rmw_register(vd, vs1, shift, width)


def vsll_vi(chain: Chain, vd: int, vs1: int, shamt: int, width: Optional[int] = None) -> None:
    """``vsll.vi vd, vs1, shamt`` — logical shift left by an immediate."""
    width = _resolve_width(chain, width)
    _check_shamt(shamt, width)
    _shift_rmw(chain, vd, vs1, lambda v: v << shamt, width)


def vsrl_vi(chain: Chain, vd: int, vs1: int, shamt: int, width: Optional[int] = None) -> None:
    """``vsrl.vi vd, vs1, shamt`` — logical shift right by an immediate."""
    width = _resolve_width(chain, width)
    _check_shamt(shamt, width)
    _shift_rmw(chain, vd, vs1, lambda v: v >> shamt, width)


def vsra_vi(chain: Chain, vd: int, vs1: int, shamt: int, width: Optional[int] = None) -> None:
    """``vsra.vi vd, vs1, shamt`` — arithmetic shift right by an immediate."""
    width = _resolve_width(chain, width)
    _check_shamt(shamt, width)
    sign = 1 << (width - 1)

    def shift(value: int) -> int:
        signed = (value ^ sign) - sign
        return signed >> shamt

    _shift_rmw(chain, vd, vs1, shift, width)


def _check_shamt(shamt: int, width: int) -> None:
    if not 0 <= shamt < width:
        raise ConfigError(f"shift amount {shamt} outside [0, {width})")


# ---------------------------------------------------------------------------
# Min / max (compare + merge composition)
# ---------------------------------------------------------------------------

def _merge_core(chain: Chain, vd: int, vs1: int, vs2: int) -> None:
    """The four bit-parallel merge cases, assuming MASK rows are loaded.

    Safe when ``vd`` aliases either source: the aliasing cases degenerate
    to writes of the bit value already stored.
    """
    mask_row = int(MetaRow.MASK)
    cases = (
        ({mask_row: 1, vs1: 1}, 1),
        ({mask_row: 1, vs1: 0}, 0),
        ({mask_row: 0, vs2: 1}, 1),
        ({mask_row: 0, vs2: 0}, 0),
    )
    for key, value in cases:
        chain.search_bit_parallel([key] * chain.num_subarrays)
        chain.update_bit_parallel(vd, value, use_tags=True)


def _minmax(
    chain: Chain,
    vd: int,
    vs1: int,
    vs2: int,
    width: Optional[int],
    signed: bool,
    take_smaller: bool,
) -> None:
    """min/max = a compare into the SCRATCH mask plus a merge.

    The sequencer keeps the compare outcome in the SCRATCH metadata row
    (vmslt's internal rows are CARRY and FLAG, so SCRATCH is free),
    broadcasts it into the MASK rows, and merges.
    """
    width = _resolve_width(chain, width)
    scratch = int(MetaRow.SCRATCH)
    vmslt_vv(chain, scratch, vs1, vs2, width, signed=signed)
    # Broadcast the mask bit (bit 0 of the scratch row) into MASK rows.
    chain.update_bit_parallel(int(MetaRow.MASK), 0, use_tags=False)
    tags = chain.search(0, {scratch: 1})
    chain.update_bit_parallel_select(int(MetaRow.MASK), 1, tags)
    if take_smaller:
        _merge_core(chain, vd, vs1, vs2)   # a < b ? a : b
    else:
        _merge_core(chain, vd, vs2, vs1)   # a < b ? b : a


def vmin_vv(chain, vd, vs1, vs2, width=None):
    """``vmin.vv`` — signed element-wise minimum."""
    _minmax(chain, vd, vs1, vs2, width, signed=True, take_smaller=True)


def vmax_vv(chain, vd, vs1, vs2, width=None):
    """``vmax.vv`` — signed element-wise maximum."""
    _minmax(chain, vd, vs1, vs2, width, signed=True, take_smaller=False)


def vminu_vv(chain, vd, vs1, vs2, width=None):
    """``vminu.vv`` — unsigned element-wise minimum."""
    _minmax(chain, vd, vs1, vs2, width, signed=False, take_smaller=True)


def vmaxu_vv(chain, vd, vs1, vs2, width=None):
    """``vmaxu.vv`` — unsigned element-wise maximum."""
    _minmax(chain, vd, vs1, vs2, width, signed=False, take_smaller=False)


# ---------------------------------------------------------------------------
# Additional compares / reverse subtract
# ---------------------------------------------------------------------------

def vmsne_vv(
    chain: Chain,
    vd: int,
    vs1: int,
    vs2: int,
    width: Optional[int] = None,
) -> None:
    """``vmsne.vv`` — inequality mask (vmseq with inverted polarity)."""
    width = _resolve_width(chain, width)
    chain.update_row_full(0, vd, 0)
    keys1 = [{vs1: 1, vs2: 0}] * chain.num_subarrays
    keys2 = [{vs1: 0, vs2: 1}] * chain.num_subarrays
    chain.search_bit_parallel(keys1)
    chain.search_bit_parallel(keys2, accumulate=True)
    mismatch = chain.combine_tags_serial_or(limit=width)
    chain.set_tags(0, mismatch)
    chain.update(0, vd, 1)


def vrsub_vx(
    chain: Chain,
    vd: int,
    vs1: int,
    scalar: int,
    width: Optional[int] = None,
) -> None:
    """``vrsub.vx vd, vs1, rs1`` — reverse subtract: vd = scalar - vs1.

    The sequencer broadcasts the scalar into the SCRATCH row (one
    bit-parallel update) and runs the subtract truth-table walk with
    SCRATCH as the minuend.
    """
    width = _resolve_width(chain, width)
    scratch = int(MetaRow.SCRATCH)
    bits = [(scalar >> i) & 1 for i in range(chain.num_subarrays)]
    chain.update_bit_parallel_values(scratch, bits, use_tags=False)
    if vd == vs1:
        # SCRATCH is the minuend, so the in-place spill path is taken by
        # computing into the destination through a fresh walk: use the
        # MASK row as the temporary destination.
        tmp = int(MetaRow.MASK)
        _add_core(chain, tmp, scratch, vs1, width, masked=False, borrow=True)
        _copy_register(chain, vd, tmp)
    else:
        _add_core(chain, vd, scratch, vs1, width, masked=False, borrow=True)


# ---------------------------------------------------------------------------
# Reduction
# ---------------------------------------------------------------------------

def vredsum_partial(chain: Chain, vs1: int, width: Optional[int] = None) -> int:
    """``vredsum.vs`` — this chain's partial sum (Figure 6 echo/pop-count).

    The global tree combines partials across chains; see ``CSB.redsum``.
    Elements are summed under their unsigned encoding, which is congruent
    to the signed sum modulo 2^width — the architected destination value.
    """
    width = _resolve_width(chain, width)
    return chain.redsum(vs1, width)


# ---------------------------------------------------------------------------
# Figure 1 walkthrough: associative increment on a raw subarray
# ---------------------------------------------------------------------------

def increment_figure1(subarray: Subarray, bit_rows, carry_row: int) -> None:
    """The paper's Figure 1: vector increment as search-update pairs.

    Operates in the classic CAPP single-array layout (rows = bits of each
    element plus a carry row, columns = elements). Per bit, LSB first:

    1. search (bit=0, carry=1) -> update bit<-1, carry<-0
    2. search (bit=1, carry=1) -> update bit<-0 (carry stays 1)

    The carry row is bulk-initialised to 1 (the "+1" being added).
    """
    all_cols = np.ones(subarray.num_cols, dtype=np.uint8)
    subarray.update(carry_row, 1, column_select=all_cols)
    for row in bit_rows:
        tags = subarray.search({row: 0, carry_row: 1})
        subarray.update(row, 1, column_select=tags)
        subarray.update(carry_row, 0, column_select=tags)
        tags = subarray.search({row: 1, carry_row: 1})
        subarray.update(row, 0, column_select=tags)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

def _require_not_aliased(name: str, vd: int, *sources: int) -> None:
    if vd in sources:
        raise ConfigError(f"{name} does not support vd aliasing a source")


@dataclass(frozen=True)
class AlgorithmInfo:
    """Registry entry tying a mnemonic to its microcode and Table I row.

    Attributes:
        mnemonic: RISC-V vector instruction name (e.g. ``vadd.vv``).
        category: Table I grouping (Arith. / Logic / Comp. / Other).
        func: the microcode routine (chain-level callable).
        tt_entries: truth-table entry count reported in Table I.
        search_rows: maximum rows active during a search.
        update_rows: maximum rows written per subarray during an update.
        paper_cycles: closed-form total cycle count from Table I, as a
            function of the element width n.
        reduction_cycles: closed-form reduction cycles (0 or n).
        paper_energy_pj: per-lane energy reported in Table I at n=32.
        bit_parallel: True when execution is bit-parallel (cycle count
            independent of the element width).
    """

    mnemonic: str
    category: str
    func: Callable
    tt_entries: int
    search_rows: int
    update_rows: int
    paper_cycles: Callable[[int], int]
    reduction_cycles: Callable[[int], int]
    paper_energy_pj: float
    bit_parallel: bool = False


ALGORITHMS: Dict[str, AlgorithmInfo] = {
    info.mnemonic: info
    for info in (
        AlgorithmInfo(
            "vadd.vv", "Arith.", vadd_vv, 5, 3, 1,
            lambda n: 8 * n + 2, lambda n: 0, 8.4,
        ),
        AlgorithmInfo(
            "vsub.vv", "Arith.", vsub_vv, 5, 3, 1,
            lambda n: 8 * n + 2, lambda n: 0, 8.4,
        ),
        AlgorithmInfo(
            "vmul.vv", "Arith.", vmul_vv, 4, 4, 1,
            lambda n: 4 * n * n - 4 * n, lambda n: 0, 99.9,
        ),
        AlgorithmInfo(
            "vredsum.vs", "Arith.", vredsum_partial, 1, 1, 0,
            lambda n: n, lambda n: n, 0.4,
        ),
        AlgorithmInfo(
            "vand.vv", "Logic", vand_vv, 1, 2, 1,
            lambda n: 3, lambda n: 0, 0.4, bit_parallel=True,
        ),
        AlgorithmInfo(
            "vor.vv", "Logic", vor_vv, 1, 2, 1,
            lambda n: 3, lambda n: 0, 0.4, bit_parallel=True,
        ),
        AlgorithmInfo(
            "vxor.vv", "Logic", vxor_vv, 2, 2, 1,
            lambda n: 4, lambda n: 0, 0.5, bit_parallel=True,
        ),
        AlgorithmInfo(
            "vmseq.vx", "Comp.", vmseq_vx, 1, 1, 0,
            lambda n: n + 1, lambda n: n, 0.4,
        ),
        AlgorithmInfo(
            "vmseq.vv", "Comp.", vmseq_vv, 2, 2, 1,
            lambda n: n + 4, lambda n: n, 0.5,
        ),
        AlgorithmInfo(
            "vmslt.vv", "Comp.", vmslt_vv, 5, 2, 1,
            lambda n: 3 * n + 6, lambda n: 0, 3.2,
        ),
        AlgorithmInfo(
            "vmerge.vv", "Other", vmerge_vvm, 4, 3, 1,
            lambda n: 4, lambda n: 0, 0.5, bit_parallel=True,
        ),
        # Instructions beyond Table I's illustrative subset; their cycle
        # forms come from our measured microcode (documented in
        # EXPERIMENTS.md).
        AlgorithmInfo(
            "vadd.vx", "Arith.", vadd_vx, 3, 2, 1,
            lambda n: 5 * n + 2, lambda n: 0, 5.0,
        ),
        AlgorithmInfo(
            "vmsltu.vv", "Comp.", vmsltu_vv, 3, 2, 1,
            lambda n: 4 * n + 4, lambda n: 0, 3.2,
        ),
        AlgorithmInfo(
            "vmv.v.v", "Other", vmv_vv, 1, 1, 1,
            lambda n: 3, lambda n: 0, 0.4, bit_parallel=True,
        ),
        AlgorithmInfo(
            "vmv.v.x", "Other", vmv_vx, 1, 0, 1,
            lambda n: 1, lambda n: 0, 0.2, bit_parallel=True,
        ),
        # Shifts use the controller's element read-modify-write path:
        # two microops per column regardless of the shift amount.
        AlgorithmInfo(
            "vsll.vi", "Arith.", vsll_vi, 0, 0, 0,
            lambda n: 64, lambda n: 0, 5.2,
        ),
        AlgorithmInfo(
            "vsrl.vi", "Arith.", vsrl_vi, 0, 0, 0,
            lambda n: 64, lambda n: 0, 5.2,
        ),
        AlgorithmInfo(
            "vsra.vi", "Arith.", vsra_vi, 0, 0, 0,
            lambda n: 64, lambda n: 0, 5.2,
        ),
        # Min/max compose the borrow-chain compare with a merge pass.
        AlgorithmInfo(
            "vmin.vv", "Arith.", vmin_vv, 8, 2, 1,
            lambda n: 3 * n + 17, lambda n: 0, 4.5,
        ),
        AlgorithmInfo(
            "vmax.vv", "Arith.", vmax_vv, 8, 2, 1,
            lambda n: 3 * n + 17, lambda n: 0, 4.5,
        ),
        AlgorithmInfo(
            "vminu.vv", "Arith.", vminu_vv, 8, 2, 1,
            lambda n: 3 * n + 15, lambda n: 0, 4.5,
        ),
        AlgorithmInfo(
            "vmaxu.vv", "Arith.", vmaxu_vv, 8, 2, 1,
            lambda n: 3 * n + 15, lambda n: 0, 4.5,
        ),
        AlgorithmInfo(
            "vmsne.vv", "Comp.", vmsne_vv, 2, 2, 1,
            lambda n: n + 4, lambda n: n, 0.5,
        ),
        AlgorithmInfo(
            "vrsub.vx", "Arith.", vrsub_vx, 5, 3, 1,
            lambda n: 8 * n + 3, lambda n: 0, 8.5,
        ),
    )
}
