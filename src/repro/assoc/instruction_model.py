"""Instruction-level timing and energy model (paper Table I, Section VI-B).

Combines the associative emulator's measured microoperation mix with the
circuit layer's per-microop energies to estimate each vector instruction's
latency (cycles) and per-lane energy. Two cycle accountings coexist:

* ``paper`` (default for system simulation): Table I's closed forms —
  the published calibration, e.g. 8n + 2 for ``vadd.vv``.
* ``measured``: cycles counted by running our reconstructed microcode on
  the bit-level chain. For most instructions this matches the closed form
  exactly; for the few whose published microcode is not fully specified
  (``vmul``, ``vmerge``, ``vmslt``) our reconstruction spends more cycles
  with the same asymptotic shape — the deltas are recorded in
  EXPERIMENTS.md.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.assoc.algorithms import ALGORITHMS, AlgorithmInfo
from repro.assoc.emulator import AssociativeEmulator
from repro.circuits.microops import CircuitModel
from repro.common.errors import ConfigError
from repro.common.units import PJ

#: The Table I subset, in the paper's row order.
TABLE_I_ROWS = (
    "vadd.vv",
    "vsub.vv",
    "vmul.vv",
    "vredsum.vs",
    "vand.vv",
    "vor.vv",
    "vxor.vv",
    "vmseq.vx",
    "vmseq.vv",
    "vmslt.vv",
    "vmerge.vv",
)


@dataclass(frozen=True)
class InstructionMetrics:
    """Per-instruction metrics in the shape of a Table I row.

    Attributes:
        mnemonic: instruction name.
        category: Table I grouping.
        tt_entries: truth-table entry count.
        search_rows: maximum active rows per subarray during a search.
        update_rows: maximum rows written per subarray during an update.
        reduction_cycles: reduction cycle count at the given width.
        paper_cycles: Table I closed-form total cycles.
        measured_cycles: cycles measured by the bit-level emulator.
        energy_per_lane_pj: measured per-lane energy in pJ.
        paper_energy_pj: Table I per-lane energy in pJ (n=32).
    """

    mnemonic: str
    category: str
    tt_entries: int
    search_rows: int
    update_rows: int
    reduction_cycles: int
    paper_cycles: int
    measured_cycles: int
    energy_per_lane_pj: float
    paper_energy_pj: float


#: Process-wide measurement memo: (mnemonic, width, circuit fingerprint)
#: -> InstructionMetrics. Measuring runs the reference emulator with a
#: fixed seed, so the result is a pure function of that key — every
#: fresh CAPESystem used to re-measure its instruction mix from scratch,
#: which dominated short bit-level runs.
_SHARED_MEASUREMENTS: Dict[tuple, "InstructionMetrics"] = {}
_SHARED_LOCK = threading.Lock()


class InstructionModel:
    """Latency/energy oracle for CAPE vector instructions.

    Args:
        circuit: circuit-level model supplying microop energies.
        width: element width in bits (32 at the published design point).
        accounting: ``"paper"`` to charge Table I closed forms (default),
            ``"measured"`` to charge emulator-measured counts.
    """

    def __init__(
        self,
        circuit: Optional[CircuitModel] = None,
        width: int = 32,
        accounting: str = "paper",
    ) -> None:
        if accounting not in ("paper", "measured"):
            raise ConfigError(f"unknown accounting {accounting!r}")
        self.circuit = circuit if circuit is not None else CircuitModel()
        self.width = width
        self.accounting = accounting
        self._measured_cache: Dict[Tuple[str, int], InstructionMetrics] = {}
        # CircuitModel is frozen but holds a dict of timings, so it is
        # not hashable itself; fingerprint the values that feed the
        # measurement instead.
        self._circuit_fingerprint = (
            self.circuit.frequency_derate,
            tuple(sorted(
                (op.value, t.delay_s, t.bs_energy_j, t.bp_energy_j)
                for op, t in self.circuit.timings.items()
            )),
        )

    def info(self, mnemonic: str) -> AlgorithmInfo:
        try:
            return ALGORITHMS[mnemonic]
        except KeyError:
            raise ConfigError(f"unknown instruction {mnemonic!r}") from None

    def cycles(self, mnemonic: str) -> int:
        """CSB-busy cycles charged to one execution of ``mnemonic``."""
        if self.accounting == "paper":
            return int(self.info(mnemonic).paper_cycles(self.width))
        return self.measure(mnemonic).measured_cycles

    def energy_per_lane_j(self, mnemonic: str) -> float:
        """Energy per vector lane in joules (measured mix x Table II)."""
        return self.measure(mnemonic).energy_per_lane_pj * PJ

    # ------------------------------------------------------------------

    def measure(self, mnemonic: str, width: Optional[int] = None) -> InstructionMetrics:
        """Emulate one instruction and derive its Table I row.

        Results are cached per ``(mnemonic, width)`` — the cache used to
        key on the bare mnemonic, so a model whose width changed (or a
        ``width=`` override) could be served a stale row measured at a
        different SEW. Measurements are also shared process-wide per
        circuit fingerprint (the emulation is seeded and pure), so fresh
        systems stop paying the reference-emulator walk per instance.
        """
        width = self.width if width is None else width
        key = (mnemonic, width)
        metrics = self._measured_cache.get(key)
        if metrics is not None:
            return metrics
        shared_key = (mnemonic, width, self._circuit_fingerprint)
        with _SHARED_LOCK:
            metrics = _SHARED_MEASUREMENTS.get(shared_key)
        if metrics is None:
            metrics = self._measure_uncached(mnemonic, width)
            with _SHARED_LOCK:
                metrics = _SHARED_MEASUREMENTS.setdefault(shared_key, metrics)
        self._measured_cache[key] = metrics
        return metrics

    def table_i(self) -> List[InstructionMetrics]:
        """All Table I rows, in the paper's order."""
        return [self.measure(m) for m in TABLE_I_ROWS]

    # ------------------------------------------------------------------

    def _measure_uncached(self, mnemonic: str, width: int) -> InstructionMetrics:
        info = self.info(mnemonic)
        emulator = AssociativeEmulator(num_subarrays=width, num_cols=32)
        rng = np.random.default_rng(seed=0xCA9E)
        lanes = emulator.chain.num_cols
        a = rng.integers(0, 1 << min(width, 31), size=lanes)
        b = rng.integers(0, 1 << min(width, 31), size=lanes)
        mask = rng.integers(0, 2, size=lanes)
        scalar = int(a[0])

        kwargs: Dict[str, object] = {"a": a, "width": width}
        if mnemonic.endswith(".vi"):
            kwargs["scalar"] = width // 2  # a representative shift amount
        elif mnemonic.endswith(".vx") or mnemonic == "vmv.v.x":
            kwargs["scalar"] = scalar
        elif mnemonic == "vmerge.vv":
            kwargs["b"] = b
            kwargs["mask"] = mask
        elif mnemonic not in ("vredsum.vs", "vmv.v.v"):
            kwargs["b"] = b
        run = emulator.run(mnemonic, **kwargs)

        chain_energy_j = run.stats.energy_per_chain(self.circuit)
        energy_per_lane_pj = chain_energy_j / lanes / PJ
        measured_cycles = run.stats.cycles()
        if mnemonic == "vredsum.vs":
            # The per-bit search and the pop-count/accumulate overlap in
            # the pipelined reduction logic (Figure 6), so the redsum
            # occupies the CSB for one cycle per bit ("~n" in Table I),
            # and its energy is the quoted echo-search + reduction-logic
            # totals (3.0 pJ + 8.9 pJ per chain at 32 bits), scaled by the
            # element width.
            from repro.circuits.microops import (
                Microop,
                REDSUM_LOGIC_ENERGY_J,
                REDSUM_SEARCH_ENERGY_J,
            )

            measured_cycles = run.stats.count(Microop.SEARCH)
            scale = width / 32
            chain_energy_j = scale * (
                REDSUM_SEARCH_ENERGY_J + REDSUM_LOGIC_ENERGY_J
            )
            energy_per_lane_pj = chain_energy_j / lanes / PJ
        return InstructionMetrics(
            mnemonic=mnemonic,
            category=info.category,
            tt_entries=info.tt_entries,
            search_rows=info.search_rows,
            update_rows=info.update_rows,
            reduction_cycles=int(info.reduction_cycles(width)),
            paper_cycles=int(info.paper_cycles(width)),
            measured_cycles=measured_cycles,
            energy_per_lane_pj=energy_per_lane_pj,
            paper_energy_pj=info.paper_energy_pj,
        )
