"""Associative behavioural emulator (paper Section VI-B).

Runs each vector instruction's microcode on a bit-level chain, checks the
result against plain integer arithmetic, and extracts the microoperation
mix — the statistics the instruction model combines with the circuit-level
delay/energy tables to produce per-instruction metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.assoc import algorithms as alg
from repro.common.bitutils import to_signed, to_unsigned
from repro.common.errors import ConfigError
from repro.csb.chain import Chain
from repro.csb.counter import MicroopStats


@dataclass
class InstructionRun:
    """Outcome of emulating one instruction on one chain.

    Attributes:
        mnemonic: the instruction executed.
        width: element width in bits.
        stats: microoperations spent by this run only.
        result: destination register values (or the scalar, for redsum).
    """

    mnemonic: str
    width: int
    stats: MicroopStats
    result: object


class AssociativeEmulator:
    """Drives the microcoded algorithms on a chain and measures them.

    Args:
        num_subarrays: bit-slices of the chain (element width ceiling).
        num_cols: elements per chain.
        backend: execution backend for the chain (``"reference"`` or
            ``"bitplane"``); both run identical microcode and charge
            identical microop counts.
    """

    def __init__(
        self,
        num_subarrays: int = 32,
        num_cols: int = 32,
        backend: str = "reference",
    ) -> None:
        self.chain = Chain(
            num_subarrays=num_subarrays, num_cols=num_cols, backend=backend
        )

    # Register conventions used by the emulator: vd=1, vs1=2, vs2=3, vm=0.
    VD, VS1, VS2, VM = 1, 2, 3, 0

    def run(
        self,
        mnemonic: str,
        a: np.ndarray,
        b: Optional[np.ndarray] = None,
        scalar: Optional[int] = None,
        mask: Optional[np.ndarray] = None,
        width: Optional[int] = None,
    ) -> InstructionRun:
        """Execute ``mnemonic`` on operand vectors and measure microops.

        Args:
            mnemonic: a key of :data:`repro.assoc.algorithms.ALGORITHMS`.
            a: first source vector (vs1), one element per column.
            b: second source vector (vs2), when the form requires it.
            scalar: scalar operand for ``.vx`` forms.
            mask: optional per-element mask bits (v0) for masked forms.
            width: element width in bits (defaults to the chain's slices).

        Returns:
            An :class:`InstructionRun` with measured stats and the result.
        """
        info = alg.ALGORITHMS.get(mnemonic)
        if info is None:
            raise ConfigError(f"unknown instruction {mnemonic!r}")
        chain = self.chain
        width = chain.num_subarrays if width is None else width

        chain.poke_register(self.VS1, to_unsigned(np.asarray(a), width))
        if b is not None:
            chain.poke_register(self.VS2, to_unsigned(np.asarray(b), width))
        if mask is not None:
            chain.poke_register(self.VM, np.asarray(mask) & 1)

        baseline = chain.stats.counts.copy()
        masked = mask is not None
        if masked and mnemonic not in ("vmerge.vv",):
            alg.broadcast_mask(chain, self.VM)

        result: object
        if mnemonic == "vredsum.vs":
            result = alg.vredsum_partial(chain, self.VS1, width)
        elif mnemonic in ("vmseq.vx",):
            alg.vmseq_vx(chain, self.VD, self.VS1, int(scalar), width)
            result = chain.peek_register(self.VD) & 1
        elif mnemonic in ("vadd.vx",):
            alg.vadd_vx(chain, self.VD, self.VS1, int(scalar), width, masked)
            result = self._narrow(width)
        elif mnemonic == "vmv.v.x":
            alg.vmv_vx(chain, self.VD, int(scalar), masked)
            result = self._narrow(width)
        elif mnemonic == "vmv.v.v":
            alg.vmv_vv(chain, self.VD, self.VS1, masked)
            result = self._narrow(width)
        elif mnemonic == "vmerge.vv":
            alg.vmerge_vvm(chain, self.VD, self.VS1, self.VS2, self.VM)
            result = self._narrow(width)
        elif mnemonic in ("vmseq.vv", "vmslt.vv", "vmsltu.vv", "vmsne.vv"):
            info.func(chain, self.VD, self.VS1, self.VS2, width)
            result = chain.peek_register(self.VD) & 1
        elif mnemonic in ("vsll.vi", "vsrl.vi", "vsra.vi", "vrsub.vx"):
            info.func(chain, self.VD, self.VS1, int(scalar), width)
            result = self._narrow(width)
        elif mnemonic in ("vmin.vv", "vmax.vv", "vminu.vv", "vmaxu.vv"):
            info.func(chain, self.VD, self.VS1, self.VS2, width)
            result = self._narrow(width)
        elif mnemonic == "vmul.vv":
            alg.vmul_vv(chain, self.VD, self.VS1, self.VS2, width)
            result = self._narrow(width)
        elif mnemonic in ("vadd.vv", "vsub.vv"):
            info.func(chain, self.VD, self.VS1, self.VS2, width, masked)
            result = self._narrow(width)
        elif mnemonic in ("vand.vv", "vor.vv", "vxor.vv"):
            info.func(chain, self.VD, self.VS1, self.VS2, masked)
            result = self._narrow(width)
        else:
            raise ConfigError(f"emulator has no dispatch for {mnemonic!r}")

        delta = MicroopStats()
        delta.counts = chain.stats.counts - baseline
        return InstructionRun(mnemonic, width, delta, result)

    def _narrow(self, width: int) -> np.ndarray:
        """Destination values truncated to ``width`` bits (unsigned)."""
        vals = self.chain.peek_register(self.VD)
        return to_unsigned(vals, width)


def golden(
    mnemonic: str,
    a: np.ndarray,
    b: Optional[np.ndarray] = None,
    scalar: Optional[int] = None,
    mask: Optional[np.ndarray] = None,
    width: int = 32,
    old: Optional[np.ndarray] = None,
) -> object:
    """Reference semantics computed with plain integer arithmetic.

    ``old`` supplies the prior destination contents for masked forms
    (inactive elements are unchanged).
    """
    au = to_unsigned(np.asarray(a, dtype=np.int64), width)
    bu = to_unsigned(np.asarray(b, dtype=np.int64), width) if b is not None else None
    modulus = np.int64(1) << width

    if mnemonic == "vadd.vv":
        out = (au + bu) % modulus
    elif mnemonic == "vsub.vv":
        out = (au - bu) % modulus
    elif mnemonic == "vadd.vx":
        out = (au + to_unsigned(np.int64(scalar), width)) % modulus
    elif mnemonic == "vmul.vv":
        out = (au * bu) % modulus
    elif mnemonic == "vand.vv":
        out = au & bu
    elif mnemonic == "vor.vv":
        out = au | bu
    elif mnemonic == "vxor.vv":
        out = au ^ bu
    elif mnemonic == "vmseq.vx":
        out = (au == to_unsigned(np.int64(scalar), width)).astype(np.int64)
    elif mnemonic == "vmseq.vv":
        out = (au == bu).astype(np.int64)
    elif mnemonic == "vmslt.vv":
        out = (to_signed(au, width) < to_signed(bu, width)).astype(np.int64)
    elif mnemonic == "vmsltu.vv":
        out = (au < bu).astype(np.int64)
    elif mnemonic == "vmsne.vv":
        out = (au != bu).astype(np.int64)
    elif mnemonic == "vmin.vv":
        out = np.minimum(to_signed(au, width), to_signed(bu, width))
        out = to_unsigned(out, width)
    elif mnemonic == "vmax.vv":
        out = np.maximum(to_signed(au, width), to_signed(bu, width))
        out = to_unsigned(out, width)
    elif mnemonic == "vminu.vv":
        out = np.minimum(au, bu)
    elif mnemonic == "vmaxu.vv":
        out = np.maximum(au, bu)
    elif mnemonic == "vsll.vi":
        out = (au << int(scalar)) % modulus
    elif mnemonic == "vsrl.vi":
        out = au >> int(scalar)
    elif mnemonic == "vsra.vi":
        out = to_unsigned(to_signed(au, width) >> int(scalar), width)
    elif mnemonic == "vrsub.vx":
        out = (to_unsigned(np.int64(scalar), width) - au) % modulus
    elif mnemonic == "vmerge.vv":
        m = np.asarray(mask) & 1
        out = np.where(m == 1, au, bu)
    elif mnemonic == "vmv.v.v":
        out = au.copy()
    elif mnemonic == "vmv.v.x":
        out = np.full_like(au, to_unsigned(np.int64(scalar), width))
    elif mnemonic == "vredsum.vs":
        return int(au.sum())
    else:
        raise ConfigError(f"no golden model for {mnemonic!r}")

    if mask is not None and mnemonic != "vmerge.vv":
        m = np.asarray(mask) & 1
        base = to_unsigned(np.asarray(old, dtype=np.int64), width) if old is not None else np.zeros_like(out)
        out = np.where(m == 1, out, base)
    return out
