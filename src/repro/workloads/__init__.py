"""Workloads: Phoenix applications and microbenchmarks (Sections VI-D/E).

Every workload provides three faithful implementations of the same
algorithm:

* ``run_cape(cape)`` — RISC-V-vector code via the CAPE intrinsics,
  including the CAPE-specific optimisations the paper describes
  (redsum-heavy formulations, replica vector loads, brute-force
  search-based histogramming);
* ``scalar_trace()`` — the dynamic operation/address trace of the scalar
  C implementation, consumed by the out-of-order / in-order / multicore
  models;
* ``simd_trace(lanes)`` — the trace of the hand-vectorised SVE version
  (Figure 12).

All three compute the same answer from the same inputs; ``run_cape``
verifies its result against the numpy golden model and raises on any
mismatch, so the performance numbers are backed by functional
correctness.
"""

from repro.workloads.base import Workload, WorkloadResult
from repro.workloads.micro import (
    Dotprod,
    IdxSearch,
    MemcpyBench,
    Saxpy,
    VVAdd,
    VVMul,
    MICROBENCHMARKS,
)
from repro.workloads.phoenix import PHOENIX_APPS

__all__ = [
    "MICROBENCHMARKS",
    "PHOENIX_APPS",
    "Dotprod",
    "IdxSearch",
    "MemcpyBench",
    "Saxpy",
    "VVAdd",
    "VVMul",
    "Workload",
    "WorkloadResult",
]
