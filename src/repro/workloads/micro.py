"""Microbenchmarks (Section VI-D).

Streaming kernels of constant intensity (vvadd, vvmul, saxpy, memcpy,
dotprod) plus the variable-intensity ``idxsrch`` the paper calls out: an
index search whose parallel-search phase is followed by serialized
post-processing of every match — the pattern that caps the speedup of the
text-based Phoenix applications.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

import numpy as np

from repro.baseline.trace import Trace, TraceBlock
from repro.engine.system import CAPESystem
from repro.workloads.base import (
    Workload,
    WorkloadResult,
    loop_block,
    strided_addresses,
)

_A, _B, _C = 0, 1, 2  # array slots


class _Streaming(Workload):
    """Shared plumbing for two-in/one-out streaming kernels."""

    intensity = "constant"

    def __init__(self, n: int = 1 << 17, seed: int = 7) -> None:
        self.n = n
        rng = np.random.default_rng(seed)
        self.a = rng.integers(0, 1 << 20, size=n).astype(np.int64)
        self.b = rng.integers(0, 1 << 20, size=n).astype(np.int64)

    def _load_inputs(self, cape: CAPESystem) -> None:
        cape.memory.write_words(self.array_base(_A), self.a)
        cape.memory.write_words(self.array_base(_B), self.b)

    def _tile_loop(self, cape: CAPESystem, body) -> None:
        """Strip-mine over MAX_VL-sized tiles, like the assembly loop."""
        done = 0
        while done < self.n:
            vl = cape.vsetvl(self.n - done)
            body(done, vl)
            # Loop control on the CP (pointer bumps + branch).
            cape.scalar_ops(int_ops=5, branches=1, name=f"{self.name}-loop")
            done += vl


class VVAdd(_Streaming):
    """``c[i] = a[i] + b[i]`` — bandwidth-bound element-wise add."""

    name = "vvadd"

    def run_cape(self, cape: CAPESystem) -> WorkloadResult:
        self._load_inputs(cape)

        def body(done: int, vl: int) -> None:
            cape.vle(1, self.array_base(_A) + 4 * done)
            cape.vle(2, self.array_base(_B) + 4 * done)
            cape.vadd(3, 1, 2)
            cape.vse(3, self.array_base(_C) + 4 * done)

        self._tile_loop(cape, body)
        out = cape.memory.read_words(self.array_base(_C), self.n)
        self.check(out, (self.a + self.b) & 0xFFFFFFFF)
        return self.finish(cape)

    def scalar_trace(self) -> Trace:
        loads = np.empty(2 * self.n, np.int64)
        loads[0::2] = strided_addresses(self.array_base(_A), self.n)
        loads[1::2] = strided_addresses(self.array_base(_B), self.n)
        return Trace(self.name, [
            loop_block(
                "add-loop", self.n, int_ops_per_iter=1,
                loads=loads,
                stores=strided_addresses(self.array_base(_C), self.n),
            )
        ])

    def simd_trace(self, lanes: int) -> Trace:
        iters = self.n // lanes
        stride = 4 * lanes
        loads = np.empty(2 * iters, np.int64)
        loads[0::2] = strided_addresses(self.array_base(_A), iters, stride)
        loads[1::2] = strided_addresses(self.array_base(_B), iters, stride)
        return Trace(self.name, [
            loop_block(
                "add-loop", iters, int_ops_per_iter=1,
                loads=loads,
                stores=strided_addresses(self.array_base(_C), iters, stride),
            )
        ])


class VVMul(_Streaming):
    """``c[i] = a[i] * b[i]`` — exposes CAPE's quadratic multiply cost."""

    name = "vvmul"

    def run_cape(self, cape: CAPESystem) -> WorkloadResult:
        self._load_inputs(cape)

        def body(done: int, vl: int) -> None:
            cape.vle(1, self.array_base(_A) + 4 * done)
            cape.vle(2, self.array_base(_B) + 4 * done)
            cape.vmul(3, 1, 2)
            cape.vse(3, self.array_base(_C) + 4 * done)

        self._tile_loop(cape, body)
        out = cape.memory.read_words(self.array_base(_C), self.n)
        self.check(out, (self.a * self.b) & 0xFFFFFFFF)
        return self.finish(cape)

    def scalar_trace(self) -> Trace:
        loads = np.empty(2 * self.n, np.int64)
        loads[0::2] = strided_addresses(self.array_base(_A), self.n)
        loads[1::2] = strided_addresses(self.array_base(_B), self.n)
        return Trace(self.name, [
            loop_block(
                "mul-loop", self.n, mul_ops_per_iter=1,
                loads=loads,
                stores=strided_addresses(self.array_base(_C), self.n),
            )
        ])

    def simd_trace(self, lanes: int) -> Trace:
        iters = self.n // lanes
        stride = 4 * lanes
        loads = np.empty(2 * iters, np.int64)
        loads[0::2] = strided_addresses(self.array_base(_A), iters, stride)
        loads[1::2] = strided_addresses(self.array_base(_B), iters, stride)
        return Trace(self.name, [
            loop_block(
                "mul-loop", iters, mul_ops_per_iter=1,
                loads=loads,
                stores=strided_addresses(self.array_base(_C), iters, stride),
            )
        ])


class Saxpy(_Streaming):
    """``y[i] = alpha * x[i] + y[i]`` with a scalar alpha."""

    name = "saxpy"
    alpha = 13

    def run_cape(self, cape: CAPESystem) -> WorkloadResult:
        self._load_inputs(cape)

        def body(done: int, vl: int) -> None:
            cape.vle(1, self.array_base(_A) + 4 * done)
            cape.vle(2, self.array_base(_B) + 4 * done)
            cape.vmv_vx(4, self.alpha)
            cape.vmul(3, 1, 4)
            cape.vadd(3, 3, 2)
            cape.vse(3, self.array_base(_C) + 4 * done)

        self._tile_loop(cape, body)
        out = cape.memory.read_words(self.array_base(_C), self.n)
        self.check(out, (self.alpha * self.a + self.b) & 0xFFFFFFFF)
        return self.finish(cape)

    def scalar_trace(self) -> Trace:
        loads = np.empty(2 * self.n, np.int64)
        loads[0::2] = strided_addresses(self.array_base(_A), self.n)
        loads[1::2] = strided_addresses(self.array_base(_B), self.n)
        return Trace(self.name, [
            loop_block(
                "saxpy-loop", self.n, int_ops_per_iter=1, mul_ops_per_iter=1,
                loads=loads,
                stores=strided_addresses(self.array_base(_C), self.n),
            )
        ])

    def simd_trace(self, lanes: int) -> Trace:
        iters = self.n // lanes
        stride = 4 * lanes
        loads = np.empty(2 * iters, np.int64)
        loads[0::2] = strided_addresses(self.array_base(_A), iters, stride)
        loads[1::2] = strided_addresses(self.array_base(_B), iters, stride)
        return Trace(self.name, [
            loop_block(
                "saxpy-loop", iters, int_ops_per_iter=1, mul_ops_per_iter=1,
                loads=loads,
                stores=strided_addresses(self.array_base(_C), iters, stride),
            )
        ])


class MemcpyBench(_Streaming):
    """``c[i] = a[i]`` — a pure-transfer roofline anchor."""

    name = "memcpy"

    def run_cape(self, cape: CAPESystem) -> WorkloadResult:
        self._load_inputs(cape)

        def body(done: int, vl: int) -> None:
            cape.vle(1, self.array_base(_A) + 4 * done)
            cape.vse(1, self.array_base(_C) + 4 * done)

        self._tile_loop(cape, body)
        out = cape.memory.read_words(self.array_base(_C), self.n)
        self.check(out, self.a & 0xFFFFFFFF)
        return self.finish(cape)

    def scalar_trace(self) -> Trace:
        return Trace(self.name, [
            loop_block(
                "copy-loop", self.n, int_ops_per_iter=0,
                loads=strided_addresses(self.array_base(_A), self.n),
                stores=strided_addresses(self.array_base(_C), self.n),
            )
        ])

    def simd_trace(self, lanes: int) -> Trace:
        iters = self.n // lanes
        stride = 4 * lanes
        return Trace(self.name, [
            loop_block(
                "copy-loop", iters, int_ops_per_iter=0,
                loads=strided_addresses(self.array_base(_A), iters, stride),
                stores=strided_addresses(self.array_base(_C), iters, stride),
            )
        ])


class Dotprod(_Streaming):
    """``sum(a[i] * b[i])`` — the redsum-heavy kernel (Section V-G).

    CAPE's horizontal reduction is roughly the cost of one element-wise
    add per 8 tiles, so the reduction-friendly formulation wins.
    """

    name = "dotprod"

    def __init__(self, n: int = 1 << 17, seed: int = 7) -> None:
        super().__init__(n, seed)
        # Keep products small enough that the scalar 32-bit golden model
        # and CAPE agree without overflow concerns.
        self.a %= 1 << 10
        self.b %= 1 << 10

    def run_cape(self, cape: CAPESystem) -> WorkloadResult:
        self._load_inputs(cape)
        total = 0

        def body(done: int, vl: int) -> None:
            nonlocal total
            cape.vle(1, self.array_base(_A) + 4 * done)
            cape.vle(2, self.array_base(_B) + 4 * done)
            cape.vmul(3, 1, 2)
            total += cape.vredsum(3)

        self._tile_loop(cape, body)
        self.check(np.array([total]), np.array([int((self.a * self.b).sum())]))
        return self.finish(cape)

    def scalar_trace(self) -> Trace:
        loads = np.empty(2 * self.n, np.int64)
        loads[0::2] = strided_addresses(self.array_base(_A), self.n)
        loads[1::2] = strided_addresses(self.array_base(_B), self.n)
        return Trace(self.name, [
            loop_block(
                "dot-loop", self.n, int_ops_per_iter=1, mul_ops_per_iter=1,
                loads=loads,
            )
        ])

    def simd_trace(self, lanes: int) -> Trace:
        iters = self.n // lanes
        stride = 4 * lanes
        loads = np.empty(2 * iters, np.int64)
        loads[0::2] = strided_addresses(self.array_base(_A), iters, stride)
        loads[1::2] = strided_addresses(self.array_base(_B), iters, stride)
        # Horizontal reduction across lanes at the end of each tile: a
        # log2(lanes) shuffle/add tree (the classic cross-lane cost).
        tree_ops = int(np.log2(lanes)) * max(1, iters // 64)
        return Trace(self.name, [
            loop_block(
                "dot-loop", iters, int_ops_per_iter=1, mul_ops_per_iter=1,
                loads=loads,
            ),
            TraceBlock("lane-reduce", int_ops=tree_ops, parallel=False),
        ])


class IdxSearch(Workload):
    """``idxsrch``: find the positions of a key in a large array.

    The parallel search itself is a single ``vmseq.vx`` per tile; every
    match is then post-processed serially (the paper's "sequential
    traversing of the matches" that makes this — and the text-based
    Phoenix apps — variable-intensity and caps their scaling).
    """

    name = "idxsrch"
    intensity = "variable"

    def __init__(self, n: int = 1 << 17, match_rate: float = 0.002, seed: int = 9) -> None:
        self.n = n
        self.key = 0xBEEF
        rng = np.random.default_rng(seed)
        self.a = rng.integers(0, 1 << 20, size=n).astype(np.int64)
        hit_count = max(1, int(n * match_rate))
        hits = rng.choice(n, size=hit_count, replace=False)
        self.a[hits] = self.key
        self.expected = np.sort(np.flatnonzero(self.a == self.key))

    def run_cape(self, cape: CAPESystem) -> WorkloadResult:
        cape.memory.write_words(self.array_base(_A), self.a)
        found: List[int] = []
        done = 0
        while done < self.n:
            vl = cape.vsetvl(self.n - done)
            cape.vle(1, self.array_base(_A) + 4 * done)
            cape.vmseq_vx(2, 1, self.key)
            count = cape.vmask_popcount(2)
            # Serialized post-processing: the CP walks the match bits and
            # records each index (dependent loads, unpredictable branch).
            matches = np.flatnonzero(cape.read_vreg(2) & 1) + done
            found.extend(int(i) for i in matches)
            cape.scalar_ops(
                int_ops=4 * count + 8,
                branches=count + 1,
                branch_miss_rate=0.5,
                loads=self.array_base(_A) + 4 * matches,
                stores=self.array_base(_C) + 4 * np.arange(len(found) - count, len(found)),
                dependent_loads=count,
                name="idxsrch-post",
            )
            done += vl
        self.check(np.array(found), self.expected)
        return self.finish(cape)

    def scalar_trace(self) -> Trace:
        match_addrs = self.array_base(_A) + 4 * self.expected
        return Trace(self.name, [
            loop_block(
                "scan", self.n, int_ops_per_iter=1,
                loads=strided_addresses(self.array_base(_A), self.n),
                branch_miss_rate=0.001,
            ),
            TraceBlock(
                "record",
                int_ops=4 * len(self.expected),
                branches=len(self.expected),
                branch_miss_rate=0.5,
                stores=self.array_base(_C) + 4 * np.arange(len(self.expected)),
                parallel=False,
            ),
        ])

    def simd_trace(self, lanes: int) -> Trace:
        iters = self.n // lanes
        stride = 4 * lanes
        return Trace(self.name, [
            loop_block(
                "scan", iters, int_ops_per_iter=2,  # compare + mask test
                loads=strided_addresses(self.array_base(_A), iters, stride),
                branch_miss_rate=0.05,
            ),
            TraceBlock(
                "record",
                int_ops=4 * len(self.expected),
                branches=len(self.expected),
                branch_miss_rate=0.5,
                loads=self.array_base(_A) + 4 * self.expected,
                stores=self.array_base(_C) + 4 * np.arange(len(self.expected)),
                parallel=False,
                dependent_loads=len(self.expected),
            ),
        ])


#: Registry in the order used by the Figure 9/10 benches.
MICROBENCHMARKS: Dict[str, Type[Workload]] = {
    cls.name: cls
    for cls in (VVAdd, VVMul, Saxpy, MemcpyBench, Dotprod, IdxSearch)
}
