"""Workload abstraction shared by microbenchmarks and Phoenix apps."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.baseline.trace import Trace, TraceBlock
from repro.common.errors import ReproError
from repro.engine.system import CAPESystem

#: Base addresses for workload arrays in the shared word memory.
ARRAY_BASE = 0x0010_0000
ARRAY_SPACING = 0x0100_0000


class ValidationError(ReproError):
    """A CAPE run produced a result different from the golden model."""


@dataclass
class WorkloadResult:
    """Outcome of one CAPE workload run."""

    name: str
    cycles: float
    seconds: float
    checked: bool


class Workload(abc.ABC):
    """One benchmark with CAPE, scalar, and SIMD implementations.

    Subclasses generate their own inputs deterministically from ``seed``
    so all three implementations consume identical data.

    Attributes:
        name: short identifier used in reports (paper's label).
        intensity: ``"constant"`` or ``"variable"`` — the roofline
            classification of Section VI-E.
    """

    name: str = "workload"
    intensity: str = "constant"

    def array_base(self, index: int) -> int:
        """Base address of the workload's ``index``-th array."""
        return ARRAY_BASE + index * ARRAY_SPACING

    # -- the three implementations -------------------------------------

    @abc.abstractmethod
    def run_cape(self, cape: CAPESystem) -> WorkloadResult:
        """Run the vectorised CAPE implementation and verify the result."""

    @abc.abstractmethod
    def scalar_trace(self) -> Trace:
        """Dynamic trace of the scalar implementation."""

    @abc.abstractmethod
    def simd_trace(self, lanes: int) -> Trace:
        """Dynamic trace of the W-lane SIMD implementation."""

    # -- helpers ---------------------------------------------------------

    def check(self, actual: np.ndarray, expected: np.ndarray) -> None:
        """Raise unless the CAPE output matches the golden result."""
        if not np.array_equal(np.asarray(actual), np.asarray(expected)):
            raise ValidationError(
                f"{self.name}: CAPE result differs from golden model"
            )

    def finish(self, cape: CAPESystem, checked: bool = True) -> WorkloadResult:
        return WorkloadResult(
            name=self.name,
            cycles=cape.stats.cycles,
            seconds=cape.stats.seconds,
            checked=checked,
        )


def strided_addresses(base: int, count: int, stride: int = 4) -> np.ndarray:
    """Unit/constant-stride address stream for ``count`` elements."""
    return base + stride * np.arange(count, dtype=np.int64)


def loop_block(
    name: str,
    iterations: int,
    int_ops_per_iter: float = 1.0,
    mul_ops_per_iter: float = 0.0,
    loads: Optional[np.ndarray] = None,
    stores: Optional[np.ndarray] = None,
    branch_miss_rate: float = 0.0,
    parallel: bool = True,
    dependent_loads: int = 0,
    unroll: int = 4,
) -> TraceBlock:
    """Build a trace block for a counted loop.

    Adds the loop-control overhead (index update + branch) at the given
    unroll factor on top of the body's operation counts.
    """
    return TraceBlock(
        name=name,
        int_ops=int(iterations * int_ops_per_iter) + iterations // unroll,
        mul_ops=int(iterations * mul_ops_per_iter),
        branches=max(1, iterations // unroll),
        branch_miss_rate=branch_miss_rate,
        loads=loads if loads is not None else np.empty(0, np.int64),
        stores=stores if stores is not None else np.empty(0, np.int64),
        parallel=parallel,
        dependent_loads=dependent_loads,
    )
