"""Phoenix matmul: C = A x B with the paper's three-step vectorisation.

Section V-G's recipe: (1) a unit-stride vector load brings multiple rows
of A into one register; (2) a *replica vector load* (``vlrw.v``) reads one
row of the transposed B and replicates it across the register; (3) the
code iterates over the loaded rows using ``vmul`` and windowed ``vredsum``
to produce each output element. The replica load is what lifts CAPE's
vector utilisation when matrix dimensions are modest.

The reduction (inner) dimension is kept large relative to the output
dimensions, the regime where CAPE's cheap horizontal reduction pays.
"""

from __future__ import annotations

import numpy as np

from repro.baseline.trace import Trace, TraceBlock
from repro.engine.system import CAPESystem
from repro.workloads.base import (
    Workload,
    WorkloadResult,
    loop_block,
    strided_addresses,
)

_A, _BT, _C = 0, 1, 2


class MatMul(Workload):
    """``matmul``: m x n times n x p integer matrix product."""

    name = "matmul"
    intensity = "constant"

    def __init__(
        self,
        m: int = 64,
        n: int = 1024,
        p: int = 64,
        seed: int = 11,
        use_replica: bool = True,
    ) -> None:
        self.m, self.n, self.p = m, n, p
        self.use_replica = use_replica
        rng = np.random.default_rng(seed)
        self.A = rng.integers(0, 1 << 8, size=(m, n)).astype(np.int64)
        self.B = rng.integers(0, 1 << 8, size=(n, p)).astype(np.int64)
        self.expected = (self.A @ self.B) & 0xFFFFFFFF

    # ------------------------------------------------------------------

    def run_cape(self, cape: CAPESystem) -> WorkloadResult:
        m, n, p = self.m, self.n, self.p
        cape.memory.write_words(self.array_base(_A), self.A.reshape(-1))
        cape.memory.write_words(self.array_base(_BT), self.B.T.reshape(-1))
        rows_per_tile = max(1, min(m, cape.config.max_vl // n))
        C = np.zeros((m, p), dtype=np.int64)

        for i0 in range(0, m, rows_per_tile):
            rows = min(rows_per_tile, m - i0)
            # (1) unit-stride load of `rows` consecutive rows of A.
            cape.vsetvl(rows * n)
            cape.vle(1, self.array_base(_A) + 4 * i0 * n)
            for j in range(p):
                cape.vsetvl(rows * n)
                cape.set_vstart(0)
                if self.use_replica:
                    # (2) replicate row j of B^T along the register.
                    cape.vlrw(2, self.array_base(_BT) + 4 * j * n, n)
                else:
                    # Ablation: without vlrw the same row is re-loaded
                    # into each window with ordinary unit-stride loads.
                    for r in range(rows):
                        cape.vsetvl((r + 1) * n)
                        cape.set_vstart(r * n)
                        cape.vle(2, self.array_base(_BT) + 4 * j * n)
                    cape.vsetvl(rows * n)
                    cape.set_vstart(0)
                # (3) multiply, then one windowed redsum per loaded row.
                cape.vmul(3, 1, 2)
                for r in range(rows):
                    cape.vsetvl((r + 1) * n)
                    cape.set_vstart(r * n)
                    C[i0 + r, j] = cape.vredsum(3) & 0xFFFFFFFF
                    cape.scalar_ops(int_ops=3, stores=[self.array_base(_C) + 4 * ((i0 + r) * p + j)])
                cape.set_vstart(0)
                cape.scalar_ops(int_ops=4, branches=1)
        self.check(C, self.expected)
        return self.finish(cape)

    # ------------------------------------------------------------------

    def scalar_trace(self) -> Trace:
        """Naive ijk triple loop: A rows streamed, B^T rows re-streamed.

        One i-iteration's address stream is representative of all m
        (steady-state cache behaviour repeats), so the trace carries one
        i-iteration and ``repeat=m``.
        """
        m, n, p = self.m, self.n, self.p
        a_base, bt_base, c_base = (
            self.array_base(_A),
            self.array_base(_BT),
            self.array_base(_C),
        )
        offsets = 4 * np.arange(n, dtype=np.int64)
        loads = []
        for j in range(p):
            loads.append(a_base + offsets)            # row i (L1-resident)
            loads.append(bt_base + 4 * j * n + offsets)
        return Trace(
            self.name,
            [
                loop_block(
                    "mm-loop", n * p, int_ops_per_iter=1, mul_ops_per_iter=1,
                    loads=np.concatenate(loads),
                    stores=c_base + 4 * np.arange(p, dtype=np.int64),
                )
            ],
            repeat=m,
        )

    def simd_trace(self, lanes: int) -> Trace:
        """Vectorised along the reduction dimension with lane reduction."""
        m, n, p = self.m, self.n, self.p
        iters = p * (n // lanes)
        stride = 4 * lanes
        a_base, bt_base = self.array_base(_A), self.array_base(_BT)
        vec_offsets = stride * np.arange(n // lanes, dtype=np.int64)
        loads = []
        for j in range(p):
            loads.append(a_base + vec_offsets)
            loads.append(bt_base + 4 * j * n + vec_offsets)
        tree_ops = int(np.log2(lanes)) * p
        return Trace(
            self.name,
            [
                loop_block(
                    "mm-simd", iters, int_ops_per_iter=1, mul_ops_per_iter=1,
                    loads=np.concatenate(loads),
                    stores=self.array_base(_C) + 4 * np.arange(p, dtype=np.int64),
                ),
                TraceBlock("lane-reduce", int_ops=tree_ops, parallel=False),
            ],
            repeat=m,
        )
