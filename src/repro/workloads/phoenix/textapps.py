"""Phoenix text applications: word count, reverse index, string match.

All three share the structure the paper identifies as CAPE's scaling
limit (Section VI-E): a sequential traversal of the input (parsing) and a
serialized post-processing of every match, on top of a massively parallel
search phase. Their intensity is *variable*: bigger CSBs speed up only
the search phase, so by Amdahl's law — compounded by the growing command
distribution overhead — their speedup plateaus and then degrades from
CAPE32k to CAPE131k.

Inputs are token streams (integer word/character ids), the form Phoenix's
parsers produce in memory.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.baseline.trace import Trace, TraceBlock
from repro.engine.system import CAPESystem
from repro.workloads.base import (
    Workload,
    WorkloadResult,
    loop_block,
    strided_addresses,
)

_TOKENS, _OUT = 0, 1


class _TextSearchApp(Workload):
    """Shared skeleton: parse serially, search in parallel, post-process
    each match serially."""

    intensity = "variable"
    #: CP operations spent per match in the serialized post-processing.
    ops_per_match = 4
    #: Fraction of tokens the CP still touches serially (delimiters,
    #: record boundaries) after the search phase takes over the scanning.
    parse_fraction = 1.0 / 32
    #: Fraction of all tokens that are occurrences of tracked keys.
    match_fraction = 1.0 / 16

    def __init__(
        self,
        n: int = 1 << 18,
        vocabulary: int = 4096,
        num_keys: int = 32,
        seed: int = 31,
    ) -> None:
        self.n = n
        self.num_keys = num_keys
        rng = np.random.default_rng(seed)
        # Filler tokens above the key range, with tracked keys planted at
        # the configured density.
        self.tokens = rng.integers(
            num_keys + 1, vocabulary, size=n
        ).astype(np.int64)
        planted = max(1, int(n * self.match_fraction))
        where = rng.choice(n, size=planted, replace=False)
        self.tokens[where] = rng.integers(1, num_keys + 1, size=planted)
        self.keys = np.arange(1, num_keys + 1, dtype=np.int64)

    # -- golden ---------------------------------------------------------

    def golden_counts(self) -> np.ndarray:
        return np.array(
            [(self.tokens == k).sum() for k in self.keys], dtype=np.int64
        )

    def total_matches(self) -> int:
        return int(self.golden_counts().sum())

    # -- CAPE -------------------------------------------------------------

    def run_cape(self, cape: CAPESystem) -> WorkloadResult:
        cape.memory.write_words(self.array_base(_TOKENS), self.tokens)
        counts = np.zeros(self.num_keys, dtype=np.int64)
        # Serial parse remnant: the CP walks record boundaries; the bulk
        # of the scanning moved into the searches below.
        parse_tokens = int(self.n * self.parse_fraction)
        cape.scalar_ops(
            int_ops=2 * parse_tokens,
            branches=parse_tokens // 4,
            branch_miss_rate=0.08,
            loads=strided_addresses(self.array_base(_TOKENS), parse_tokens, 64),
            name=f"{self.name}-parse",
        )
        done = 0
        while done < self.n:
            vl = cape.vsetvl(self.n - done)
            cape.vle(1, self.array_base(_TOKENS) + 4 * done)
            for i, key in enumerate(self.keys):
                cape.vmseq_vx(2, 1, int(key))
                matched = cape.vmask_popcount(2)
                counts[i] += matched
                # Serialized per-match post-processing on the CP.
                if matched:
                    # The matched key is already known from the search, so
                    # the CP only records/aggregates each occurrence
                    # (unpredictable branch per match, sequential output).
                    out_pos = int(counts[:i].sum()) + int(counts[i]) - matched
                    cape.scalar_ops(
                        int_ops=self.ops_per_match * matched,
                        branches=matched,
                        branch_miss_rate=0.2,
                        stores=self.array_base(_OUT)
                        + 4 * (out_pos + np.arange(matched, dtype=np.int64)),
                        name=f"{self.name}-post",
                    )
            done += vl
        self.check(counts, self.golden_counts())
        return self.finish(cape)

    # -- scalar -----------------------------------------------------------

    def scalar_trace(self) -> Trace:
        matches = self.total_matches()
        return Trace(self.name, [
            loop_block(
                "parse+scan", self.n,
                int_ops_per_iter=3,  # hash/compare per token
                loads=strided_addresses(self.array_base(_TOKENS), self.n),
                branch_miss_rate=0.08,
                dependent_loads=self.n // 16,
            ),
            TraceBlock(
                "post",
                int_ops=self.ops_per_match * matches,
                branches=matches,
                branch_miss_rate=0.3,
                stores=self.array_base(_OUT) + 4 * np.arange(matches, dtype=np.int64),
                parallel=False,
            ),
        ])

    def simd_trace(self, lanes: int) -> Trace:
        iters = self.n // lanes
        matches = self.total_matches()
        return Trace(self.name, [
            loop_block(
                "scan", iters * min(self.num_keys, 8),
                int_ops_per_iter=2,
                loads=strided_addresses(self.array_base(_TOKENS), iters, 4 * lanes),
                branch_miss_rate=0.05,
            ),
            TraceBlock(
                "parse",
                int_ops=self.n // 4,
                branches=self.n // 32,
                branch_miss_rate=0.08,
                loads=strided_addresses(self.array_base(_TOKENS), self.n // 8, 32),
                dependent_loads=self.n // 64,
                parallel=False,
            ),
            TraceBlock(
                "post",
                int_ops=self.ops_per_match * matches,
                branches=matches,
                branch_miss_rate=0.3,
                stores=self.array_base(_OUT) + 4 * np.arange(matches, dtype=np.int64),
                parallel=False,
            ),
        ])


class WordCount(_TextSearchApp):
    """``wrdcnt``: frequency of the tracked words in a document stream."""

    name = "wrdcnt"
    ops_per_match = 3
    parse_fraction = 1.0 / 8


class ReverseIndex(_TextSearchApp):
    """``revidx``: word -> positions index; heavier per-match extraction."""

    name = "revidx"
    ops_per_match = 8
    parse_fraction = 1.0 / 12
    match_fraction = 1.0 / 16

    def __init__(self, n: int = 1 << 18, seed: int = 37) -> None:
        super().__init__(n=n, vocabulary=2048, num_keys=24, seed=seed)


class StringMatch(_TextSearchApp):
    """``strmatch``: locate key strings; rare matches, per-candidate verify."""

    name = "strmatch"
    ops_per_match = 12
    parse_fraction = 1.0 / 24
    match_fraction = 1.0 / 64

    def __init__(self, n: int = 1 << 18, seed: int = 41) -> None:
        super().__init__(n=n, vocabulary=1 << 15, num_keys=8, seed=seed)
