"""Phoenix PCA: row means and covariance matrix.

The paper notes pca's for-loop inter-iteration dependencies prevented the
replica-load optimisation, so CAPE's vector length is pinned to one row
(low utilisation) and the costly bit-serial ``vmul`` is not amortised —
pca's speedup is the weakest of the matrix apps and does not improve from
CAPE32k to CAPE131k (its roofline point is fixed).
"""

from __future__ import annotations

import numpy as np

from repro.baseline.trace import Trace, TraceBlock
from repro.engine.system import CAPESystem
from repro.workloads.base import (
    Workload,
    WorkloadResult,
    loop_block,
    strided_addresses,
)

_M, _COV = 0, 1


class PCA(Workload):
    """``pca``: means and covariance of an ``rows x cols`` matrix."""

    name = "pca"
    intensity = "constant"

    def __init__(self, rows: int = 16, cols: int = 8192, seed: int = 13) -> None:
        self.rows, self.cols = rows, cols
        rng = np.random.default_rng(seed)
        self.M = rng.integers(0, 256, size=(rows, cols)).astype(np.int64)
        self.means = self.M.sum(axis=1) // cols
        centered = self.M - self.means[:, None]
        self.expected_cov = (centered @ centered.T) & 0xFFFFFFFF

    def run_cape(self, cape: CAPESystem) -> WorkloadResult:
        rows, cols = self.rows, self.cols
        cape.memory.write_words(self.array_base(_M), self.M.reshape(-1))
        base = self.array_base(_M)

        # Phase 1: row means (one redsum per row; vl = one row only).
        means = np.zeros(rows, dtype=np.int64)
        for i in range(rows):
            cape.vsetvl(cols)
            cape.vle(1, base + 4 * i * cols)
            means[i] = cape.vredsum(1) // cols
            cape.scalar_ops(int_ops=3, branches=1)  # divide + bookkeeping
        self.check(means, self.means)

        # Phase 2: covariance; the row-pair loop carries the dependency
        # that blocks vlrw, so each op works on a single row (vl = cols).
        cov = np.zeros((rows, rows), dtype=np.int64)
        for i in range(rows):
            cape.vsetvl(cols)
            cape.vle(1, base + 4 * i * cols)
            cape.vadd_vx(1, 1, -int(means[i]))
            for j in range(i, rows):
                cape.vsetvl(cols)
                cape.vle(2, base + 4 * j * cols)
                cape.vadd_vx(2, 2, -int(means[j]))
                cape.vmul(3, 1, 2)
                cov[i, j] = cov[j, i] = cape.vredsum(3) & 0xFFFFFFFF
                cape.scalar_ops(
                    int_ops=4, branches=1,
                    stores=[self.array_base(_COV) + 4 * (i * rows + j)],
                )
        self.check(cov, self.expected_cov)
        return self.finish(cape)

    def scalar_trace(self) -> Trace:
        rows, cols = self.rows, self.cols
        base = self.array_base(_M)
        offsets = 4 * np.arange(cols, dtype=np.int64)
        mean_loads = np.concatenate([base + 4 * i * cols + offsets for i in range(rows)])
        cov_loads = []
        for i in range(rows):
            for j in range(i, rows):
                cov_loads.append(base + 4 * i * cols + offsets)
                cov_loads.append(base + 4 * j * cols + offsets)
        pairs = rows * (rows + 1) // 2
        return Trace(self.name, [
            loop_block("means", rows * cols, int_ops_per_iter=1, loads=mean_loads),
            loop_block(
                "cov", pairs * cols,
                int_ops_per_iter=3,  # two subtracts + accumulate
                mul_ops_per_iter=1,
                loads=np.concatenate(cov_loads),
                stores=self.array_base(_COV) + 4 * np.arange(pairs, dtype=np.int64),
            ),
        ])

    def simd_trace(self, lanes: int) -> Trace:
        rows, cols = self.rows, self.cols
        base = self.array_base(_M)
        stride = 4 * lanes
        vec_iters = cols // lanes
        offsets = stride * np.arange(vec_iters, dtype=np.int64)
        mean_loads = np.concatenate([base + 4 * i * cols + offsets for i in range(rows)])
        cov_loads = []
        for i in range(rows):
            for j in range(i, rows):
                cov_loads.append(base + 4 * i * cols + offsets)
                cov_loads.append(base + 4 * j * cols + offsets)
        pairs = rows * (rows + 1) // 2
        tree_ops = int(np.log2(lanes)) * (rows + pairs)
        return Trace(self.name, [
            loop_block("means", rows * vec_iters, int_ops_per_iter=1, loads=mean_loads),
            loop_block(
                "cov", pairs * vec_iters,
                int_ops_per_iter=3, mul_ops_per_iter=1,
                loads=np.concatenate(cov_loads),
                stores=self.array_base(_COV) + 4 * np.arange(pairs, dtype=np.int64),
            ),
            TraceBlock("lane-reduce", int_ops=tree_ops, parallel=False),
        ])
