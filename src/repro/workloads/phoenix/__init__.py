"""The eight Phoenix applications of the paper's Figure 11/12 study.

Phoenix (Ranger et al., HPCA 2007) is the MapReduce-for-multicore suite
the paper evaluates: matrix multiply, PCA, linear regression, histogram,
kmeans, word count, reverse index, and string match. Each is
re-implemented here in the three forms the study compares (CAPE vector
code, scalar trace, SIMD trace); input sizes are scaled to our simulation
budget with the capacity relationships the paper relies on preserved
(notably: kmeans' working set fits in CAPE131k's CSB but not CAPE32k's).
"""

from typing import Dict, Type

from repro.workloads.base import Workload
from repro.workloads.phoenix.hist import Histogram
from repro.workloads.phoenix.kmeans import KMeans
from repro.workloads.phoenix.lreg import LinearRegression
from repro.workloads.phoenix.matmul import MatMul
from repro.workloads.phoenix.pca import PCA
from repro.workloads.phoenix.textapps import ReverseIndex, StringMatch, WordCount

#: Registry in the paper's Figure 11 order.
PHOENIX_APPS: Dict[str, Type[Workload]] = {
    cls.name: cls
    for cls in (
        MatMul,
        PCA,
        LinearRegression,
        Histogram,
        KMeans,
        WordCount,
        ReverseIndex,
        StringMatch,
    )
}

__all__ = [
    "PHOENIX_APPS",
    "Histogram",
    "KMeans",
    "LinearRegression",
    "MatMul",
    "PCA",
    "ReverseIndex",
    "StringMatch",
    "WordCount",
]
