"""Phoenix linear regression: least-squares fit over a point stream.

The kernel reduces five sums (Sx, Sy, Sxx, Syy, Sxy) over all points —
a redsum-heavy, constant-intensity streaming workload that scales cleanly
with CSB capacity until it hits the HBM bandwidth roofline.
"""

from __future__ import annotations

import numpy as np

from repro.baseline.trace import Trace, TraceBlock
from repro.engine.system import CAPESystem
from repro.workloads.base import (
    Workload,
    WorkloadResult,
    loop_block,
    strided_addresses,
)

_X, _Y = 0, 1


class LinearRegression(Workload):
    """``lreg``: sums for the closed-form least-squares line."""

    name = "lreg"
    intensity = "constant"

    def __init__(self, n: int = 1 << 18, seed: int = 17) -> None:
        self.n = n
        rng = np.random.default_rng(seed)
        self.x = rng.integers(0, 1 << 10, size=n).astype(np.int64)
        self.y = (3 * self.x + rng.integers(0, 1 << 8, size=n)).astype(np.int64)
        self.expected = np.array(
            [
                self.x.sum(),
                self.y.sum(),
                (self.x * self.x).sum(),
                (self.y * self.y).sum(),
                (self.x * self.y).sum(),
            ],
            dtype=np.int64,
        )

    def run_cape(self, cape: CAPESystem) -> WorkloadResult:
        cape.memory.write_words(self.array_base(_X), self.x)
        cape.memory.write_words(self.array_base(_Y), self.y)
        sums = np.zeros(5, dtype=np.int64)
        done = 0
        while done < self.n:
            vl = cape.vsetvl(self.n - done)
            cape.vle(1, self.array_base(_X) + 4 * done)
            cape.vle(2, self.array_base(_Y) + 4 * done)
            sums[0] += cape.vredsum(1)
            sums[1] += cape.vredsum(2)
            cape.vmul(3, 1, 1)
            sums[2] += cape.vredsum(3)
            cape.vmul(3, 2, 2)
            sums[3] += cape.vredsum(3)
            cape.vmul(3, 1, 2)
            sums[4] += cape.vredsum(3)
            cape.scalar_ops(int_ops=8, branches=1)
            done += vl
        self.check(sums, self.expected)
        return self.finish(cape)

    def scalar_trace(self) -> Trace:
        loads = np.empty(2 * self.n, np.int64)
        loads[0::2] = strided_addresses(self.array_base(_X), self.n)
        loads[1::2] = strided_addresses(self.array_base(_Y), self.n)
        return Trace(self.name, [
            loop_block(
                "lreg-loop", self.n,
                int_ops_per_iter=5,  # five accumulations
                mul_ops_per_iter=3,  # xx, yy, xy
                loads=loads,
            )
        ])

    def simd_trace(self, lanes: int) -> Trace:
        iters = self.n // lanes
        stride = 4 * lanes
        loads = np.empty(2 * iters, np.int64)
        loads[0::2] = strided_addresses(self.array_base(_X), iters, stride)
        loads[1::2] = strided_addresses(self.array_base(_Y), iters, stride)
        tree_ops = int(np.log2(lanes)) * 5
        return Trace(self.name, [
            loop_block(
                "lreg-loop", iters,
                int_ops_per_iter=5, mul_ops_per_iter=3,
                loads=loads,
            ),
            TraceBlock("lane-reduce", int_ops=tree_ops, parallel=False),
        ])
