"""Phoenix histogram: pixel-value counts via brute-force search.

Section II's motivating example: the thread-parallel C code updates a
shared bin array per pixel; the CAPE code instead issues one massively
parallel equality search *per possible pixel value* (0..255) and counts
matches through the reduction tree — turning a scatter/update pattern
into CAPE's cheapest operations, for a 13x win over the area-equivalent
baseline.
"""

from __future__ import annotations

import numpy as np

from repro.baseline.trace import Trace, TraceBlock
from repro.engine.system import CAPESystem
from repro.workloads.base import (
    Workload,
    WorkloadResult,
    loop_block,
    strided_addresses,
)

_PIX, _BINS = 0, 1
NUM_BINS = 256


class Histogram(Workload):
    """``hist``: 256-bin histogram of an 8-bit image."""

    name = "hist"
    intensity = "constant"

    def __init__(self, n: int = 1 << 19, seed: int = 23) -> None:
        self.n = n
        rng = np.random.default_rng(seed)
        # Skewed pixel distribution, like a natural image.
        raw = rng.normal(118, 60, size=n).clip(0, 255)
        self.pixels = raw.astype(np.int64)
        self.expected = np.bincount(self.pixels, minlength=NUM_BINS)[:NUM_BINS]

    def run_cape(self, cape: CAPESystem) -> WorkloadResult:
        cape.memory.write_words(self.array_base(_PIX), self.pixels)
        counts = np.zeros(NUM_BINS, dtype=np.int64)
        done = 0
        while done < self.n:
            vl = cape.vsetvl(self.n - done)
            cape.vle(1, self.array_base(_PIX) + 4 * done)
            for value in range(NUM_BINS):
                cape.vmseq_vx(2, 1, value)
                counts[value] += cape.vmask_popcount(2)
            cape.scalar_ops(int_ops=2 * NUM_BINS, branches=NUM_BINS)
            done += vl
        self.check(counts, self.expected)
        return self.finish(cape)

    def scalar_trace(self) -> Trace:
        bins_base = self.array_base(_BINS)
        # Per pixel: load pixel, load its bin, increment, store — the bin
        # access chain is load-to-store dependent.
        bin_addrs = bins_base + 4 * self.pixels
        loads = np.empty(2 * self.n, np.int64)
        loads[0::2] = strided_addresses(self.array_base(_PIX), self.n)
        loads[1::2] = bin_addrs
        return Trace(self.name, [
            loop_block(
                "hist-loop", self.n,
                int_ops_per_iter=2,  # index computation + increment
                loads=loads,
                stores=bin_addrs,
                dependent_loads=self.n // 4,  # read-modify-write chains
            )
        ])

    def simd_trace(self, lanes: int) -> Trace:
        """SVE version: gather-free vector loads, but the bin update stays
        scalar per element (scatter conflicts), so lanes only help the
        pixel-side streaming."""
        iters = self.n // lanes
        stride = 4 * lanes
        bins_base = self.array_base(_BINS)
        bin_addrs = bins_base + 4 * self.pixels
        return Trace(self.name, [
            loop_block(
                "pix-load", iters, int_ops_per_iter=1,
                loads=strided_addresses(self.array_base(_PIX), iters, stride),
            ),
            loop_block(
                "bin-update", self.n, int_ops_per_iter=2,
                loads=bin_addrs,
                stores=bin_addrs,
                dependent_loads=self.n // 4,
                parallel=True,
            ),
        ])
