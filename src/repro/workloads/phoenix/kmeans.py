"""Phoenix kmeans: iterative clustering with an L1 (Manhattan) metric.

The paper's capacity story: kmeans' dataset does not fit in CAPE32k's CSB
— every iteration reloads it from HBM — but fits in CAPE131k, which loads
it once and reuses it until convergence, producing kmeans' dramatic jump
between the two design points (426x vs an area-comparable multicore in
the paper). The default sizing reproduces the relationship at our scale:
``points`` lies between CAPE32k's 32,768 and CAPE131k's 131,072 lanes.

Distances use the L1 metric (also common in Phoenix derivatives); it maps
to CAPE's cheap add/sub/compare/merge instructions, avoiding the
quadratic ``vmul`` in the hot loop.
"""

from __future__ import annotations

import numpy as np

from repro.baseline.trace import Trace, TraceBlock
from repro.engine.system import CAPESystem
from repro.workloads.base import (
    Workload,
    WorkloadResult,
    loop_block,
    strided_addresses,
)

_DATA = 0  # dimension-major (SoA): dim d's values at base + d*points*4


def _golden_assign(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """L1-nearest centroid per point (ties to the lower index)."""
    dists = np.abs(points[:, None, :] - centroids[None, :, :]).sum(axis=2)
    return dists.argmin(axis=1)


class KMeans(Workload):
    """``kmeans``: k clusters over n points of d dimensions."""

    name = "kmeans"
    intensity = "variable"

    def __init__(
        self,
        points: int = 120_000,
        dims: int = 8,
        k: int = 8,
        iterations: int = 8,
        seed: int = 29,
    ) -> None:
        self.points, self.dims, self.k = points, dims, k
        self.iterations = iterations
        rng = np.random.default_rng(seed)
        centers = rng.integers(0, 1 << 10, size=(k, dims))
        assign = rng.integers(0, k, size=points)
        noise = rng.integers(-64, 64, size=(points, dims))
        self.data = (centers[assign] + noise).clip(0).astype(np.int64)
        self.initial_centroids = self.data[:: points // k][:k].copy()

    # ------------------------------------------------------------------

    def golden(self) -> np.ndarray:
        """Run the reference clustering; returns final assignments."""
        centroids = self.initial_centroids.astype(np.int64).copy()
        assign = np.zeros(self.points, dtype=np.int64)
        for _ in range(self.iterations):
            assign = _golden_assign(self.data, centroids)
            for c in range(self.k):
                members = self.data[assign == c]
                if len(members):
                    centroids[c] = members.sum(axis=0) // len(members)
        return assign

    # ------------------------------------------------------------------

    def run_cape(self, cape: CAPESystem) -> WorkloadResult:
        n, d, k = self.points, self.dims, self.k
        base = self.array_base(_DATA)
        for dim in range(d):
            cape.memory.write_words(base + 4 * dim * n, self.data[:, dim])
        centroids = self.initial_centroids.astype(np.int64).copy()
        resident = n <= cape.config.max_vl  # fits in the CSB?
        assign = np.zeros(n, dtype=np.int64)

        # Register map: v1..v8 point dims (when resident), v9 |p-c| term,
        # v10 distance accum, v11 best distance, v12 best index, v13/v14
        # temps, v0 mask.
        dim_regs = list(range(1, 1 + d))
        loaded = False
        for _ in range(self.iterations):
            done = 0
            while done < n:
                vl = cape.vsetvl(n - done)
                if not (resident and loaded):
                    for dim in range(d):
                        cape.vle(dim_regs[dim], base + 4 * (dim * n + done))
                cape.vmv_vx(11, (1 << 20))  # best distance = +inf
                cape.vmv_vx(12, 0)          # best index
                for c in range(k):
                    cape.vmv_vx(10, 0)
                    for dim in range(d):
                        cv = int(centroids[c, dim])
                        cape.vadd_vx(9, dim_regs[dim], -cv)   # p - c
                        cape.vmv_vx(13, 0)
                        cape.vsub(13, 13, 9)                  # c - p
                        cape.vmslt(0, 9, 13)                  # p-c < c-p ?
                        cape.vmerge(9, 13, 9, vm=0)           # |p - c|
                        cape.vadd(10, 10, 9)
                    cape.vmslt(0, 10, 11)                     # closer?
                    cape.vmerge(11, 10, 11, vm=0)
                    cape.vmv_vx(13, c)
                    cape.vmerge(12, 13, 12, vm=0)
                assign[done : done + vl] = cape.read_vreg(12)
                # Per-cluster sums for the centroid update: select
                # members with a search, zero out the rest, redsum.
                for c in range(k):
                    cape.vmseq_vx(0, 12, c)
                    count = cape.vmask_popcount(0)
                    sums = np.zeros(d, dtype=np.int64)
                    for dim in range(d):
                        cape.vmv_vx(13, 0)
                        cape.vmerge(14, dim_regs[dim], 13, vm=0)
                        sums[dim] = cape.vredsum(14)
                    if done + vl >= n:  # final tile: commit the update
                        members = assign[: done + vl] == c
                        if members.any():
                            centroids[c] = (
                                self.data[: done + vl][members].sum(axis=0)
                                // members.sum()
                            )
                    cape.scalar_ops(int_ops=2 * d + 4, branches=1)
                loaded = True
                done += vl
        self.check(assign, self.golden())
        return self.finish(cape)

    # ------------------------------------------------------------------

    def scalar_trace(self) -> Trace:
        n, d, k = self.points, self.dims, self.k
        base = self.array_base(_DATA)
        # One iteration's point-data traffic (row-major in the C code);
        # centroid values stay register/L1 resident.
        loads = strided_addresses(base, n * d)
        body_ops = n * k * d * 4  # sub, abs, accumulate, compare
        update_ops = n * d * 2
        return Trace(
            self.name,
            [
                loop_block(
                    "assign", n * k * d,
                    int_ops_per_iter=4,
                    loads=loads,
                    branch_miss_rate=0.02,
                ),
                TraceBlock(
                    "update",
                    int_ops=update_ops,
                    branches=n // 4,
                    branch_miss_rate=0.05,
                    stores=strided_addresses(self.array_base(_DATA) + 0x40000000, n),
                ),
            ],
            repeat=self.iterations,
        )

    def simd_trace(self, lanes: int) -> Trace:
        n, d, k = self.points, self.dims, self.k
        base = self.array_base(_DATA)
        iters = (n // lanes) * k * d
        loads = strided_addresses(base, (n // lanes) * d, 4 * lanes)
        return Trace(
            self.name,
            [
                loop_block(
                    "assign", iters,
                    int_ops_per_iter=5,  # sub/abs/acc + predicate mgmt
                    loads=loads,
                    branch_miss_rate=0.02,
                ),
                # Centroid accumulation is a data-dependent scatter: each
                # point adds into its cluster's partial sums, which SVE
                # cannot vectorise (lane conflicts) — it stays scalar.
                TraceBlock(
                    "update",
                    int_ops=n * d,
                    branches=n // 4,
                    branch_miss_rate=0.05,
                    stores=strided_addresses(base + 0x40000000, n // lanes, 4 * lanes),
                    parallel=False,
                ),
            ],
            repeat=self.iterations,
        )
