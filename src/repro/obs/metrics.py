"""Hierarchical counter/metrics registry (the ``obs.metrics`` surface).

Every instrumented layer — VCU, VMU, the CSB execution backends, the
interpreter, and the runtime scheduler/pool — publishes into one
:class:`MetricsRegistry` through cheap get-or-create handles. A metric
*family* is a dotted name (``csb.microops``, ``vcu.instructions``); a
*series* is one family + one label set (``op="search"``, ``flavor="bp"``,
``backend="bitplane"``, ``device="CAPE32k#0"``). Handles are plain
objects with one hot method (`inc`/`set`/`observe`), so call sites cache
them and pay a dict lookup only on first use.

Naming scheme (shared with the stats dataclasses, see
``docs/OBSERVABILITY.md``): snake_case names with unit suffixes —
``*_cycles``, ``*_seconds``, ``*_j`` (joules), ``*_bytes`` — and plain
nouns for event counts.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.common.errors import ConfigError

#: A canonicalised label set: sorted (key, value) pairs.
LabelKey = Tuple[Tuple[str, str], ...]


def label_key(labels: Mapping[str, object]) -> LabelKey:
    """Canonicalise a label mapping into a hashable, order-free key."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonic counter series (float-valued; energy sums allowed)."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigError(f"counter {self.name} cannot decrease")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}{dict(self.labels)}={self.value})"


class Gauge:
    """A point-in-time value series (queue depth, occupancy)."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def __repr__(self) -> str:
        return f"Gauge({self.name}{dict(self.labels)}={self.value})"


class Histogram:
    """A distribution series with power-of-two buckets.

    Tracks count/sum/min/max plus a coarse bucket map (upper bound of
    each power-of-two bucket -> observations), enough for queue-depth
    and latency distributions without a full reservoir.
    """

    __slots__ = ("name", "labels", "count", "total", "min", "max", "buckets")
    kind = "histogram"

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Dict[float, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        bound = 1.0
        while bound < value:
            bound *= 2.0
        self.buckets[bound] = self.buckets.get(bound, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def value(self) -> float:
        """Uniform accessor used by snapshots: the observation sum."""
        return self.total

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name}{dict(self.labels)} "
            f"n={self.count} mean={self.mean:.3g})"
        )


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

#: A snapshot: (family, label key) -> numeric value.
Snapshot = Dict[Tuple[str, LabelKey], float]


class MetricsRegistry:
    """All metric families of one observer, keyed by name and labels."""

    def __init__(self) -> None:
        #: family name -> (kind, {label key -> metric instance})
        self._families: Dict[str, Tuple[str, Dict[LabelKey, object]]] = {}
        self._lock: Optional[threading.Lock] = None

    def enable_thread_safety(self) -> None:
        """Serialise series *creation* for multi-threaded publishers.

        The parallel device pool calls this so concurrent workers can
        get-or-create series without corrupting the family dicts. Handle
        *updates* stay lock-free: each worker owns one device and every
        device-side series carries a distinct ``device=`` label, so no
        two threads increment the same handle concurrently (the
        thread-safety contract in ``docs/PERFORMANCE.md``).
        """
        if self._lock is None:
            self._lock = threading.Lock()

    # -- get-or-create handles -----------------------------------------

    def _get(self, kind: str, name: str, labels: Mapping[str, object]):
        lock = self._lock
        if lock is not None:
            with lock:
                return self._get_unlocked(kind, name, labels)
        return self._get_unlocked(kind, name, labels)

    def _get_unlocked(self, kind: str, name: str, labels: Mapping[str, object]):
        key = label_key(labels)
        family = self._families.get(name)
        if family is None:
            family = (kind, {})
            self._families[name] = family
        elif family[0] != kind:
            raise ConfigError(
                f"metric {name!r} is a {family[0]}, not a {kind}"
            )
        series = family[1].get(key)
        if series is None:
            series = _KINDS[kind](name, key)
            family[1][key] = series
        return series

    def counter(self, name: str, **labels: object) -> Counter:
        """Get or create the counter series ``name{labels}``."""
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        """Get or create the gauge series ``name{labels}``."""
        return self._get("gauge", name, labels)

    def histogram(self, name: str, **labels: object) -> Histogram:
        """Get or create the histogram series ``name{labels}``."""
        return self._get("histogram", name, labels)

    # -- queries --------------------------------------------------------

    def series(self, name: str) -> List[Tuple[Dict[str, str], object]]:
        """All (labels, metric) series of one family."""
        family = self._families.get(name)
        if family is None:
            return []
        return [(dict(key), metric) for key, metric in sorted(family[1].items())]

    def value(self, name: str, **labels: object) -> float:
        """Exact series value, or 0 if it was never created."""
        family = self._families.get(name)
        if family is None:
            return 0.0
        metric = family[1].get(label_key(labels))
        return metric.value if metric is not None else 0.0

    def total(self, name: str, **label_filter: object) -> float:
        """Sum of every series of a family matching the label filter."""
        want = {k: str(v) for k, v in label_filter.items()}
        total = 0.0
        for labels, metric in self.series(name):
            if all(labels.get(k) == v for k, v in want.items()):
                total += metric.value
        return total

    def names(self) -> List[str]:
        return sorted(self._families)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return sum(len(f[1]) for f in self._families.values())

    # -- export / diff --------------------------------------------------

    def snapshot(self) -> Snapshot:
        """Flat numeric copy of every series, for before/after diffing."""
        out: Snapshot = {}
        for name, (_, series) in self._families.items():
            for key, metric in series.items():
                out[(name, key)] = metric.value
        return out

    def as_dict(self) -> Dict[str, List[dict]]:
        """JSON-able export: one entry per series, grouped by family."""
        out: Dict[str, List[dict]] = {}
        for name in self.names():
            kind = self._families[name][0]
            entries = []
            for labels, metric in self.series(name):
                entry = {"labels": labels, "value": metric.value}
                if kind == "histogram":
                    entry.update(
                        count=metric.count,
                        mean=metric.mean,
                        min=metric.min,
                        max=metric.max,
                    )
                entries.append(entry)
            out[name] = entries
        return out

    def clear(self) -> None:
        self._families.clear()


def diff_snapshots(after: Snapshot, before: Snapshot) -> Snapshot:
    """Per-series deltas between two snapshots (new series included)."""
    out: Snapshot = {}
    for key, value in after.items():
        delta = value - before.get(key, 0.0)
        if delta:
            out[key] = delta
    return out
