"""Structured event tracer (the ``obs.trace`` surface).

Records spans and instant events on two timelines and exports them as
Chrome/Perfetto ``trace_event`` JSON (open in https://ui.perfetto.dev or
``chrome://tracing``) or as a plain JSONL stream:

* the **wall** timeline (pid 1) holds host-side spans opened with
  :meth:`Tracer.span` — job bodies, benchmark phases — timed with
  ``time.perf_counter_ns``;
* the **sim** timeline (pid 2) holds device-time events recorded with
  :meth:`Tracer.complete` / :meth:`Tracer.instant`, whose timestamps are
  CAPE cycles (instruction execute, microcode sequences, page-fault
  service, context spill/restore, scheduling events).

Chrome traces want microseconds; cycles are emitted as-is on the sim
timeline (read "us" as "cycles" there — the two processes are clearly
separated in the viewer).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

#: Chrome-trace process ids of the two timelines.
PID_WALL = 1
PID_SIM = 2


@dataclass
class TraceEvent:
    """One ``trace_event``: a complete span (ph="X") or instant (ph="i")."""

    name: str
    cat: str
    ph: str
    ts: float
    pid: int
    tid: str
    dur: Optional[float] = None
    args: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> dict:
        out = {
            "name": self.name,
            "cat": self.cat,
            "ph": self.ph,
            "ts": self.ts,
            "pid": self.pid,
            "tid": self.tid,
        }
        if self.dur is not None:
            out["dur"] = self.dur
        if self.args:
            out["args"] = self.args
        if self.ph == "i":
            out["s"] = "t"  # instant scope: thread
        return out


class _SpanHandle:
    """Context manager closing one wall-clock span."""

    __slots__ = ("_tracer", "_event", "_start_ns")

    def __init__(self, tracer: "Tracer", event: TraceEvent) -> None:
        self._tracer = tracer
        self._event = event
        self._start_ns = time.perf_counter_ns()

    def __enter__(self) -> TraceEvent:
        return self._event

    def __exit__(self, *exc) -> None:
        self._event.dur = (time.perf_counter_ns() - self._start_ns) / 1e3
        self._tracer.events.append(self._event)


class Tracer:
    """An append-only event log with Chrome-trace / JSONL export."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self._epoch_ns = time.perf_counter_ns()

    def __len__(self) -> int:
        return len(self.events)

    def _wall_us(self) -> float:
        return (time.perf_counter_ns() - self._epoch_ns) / 1e3

    # -- recording ------------------------------------------------------

    def span(self, name: str, cat: str, tid: str = "main", **args) -> _SpanHandle:
        """Open a wall-clock span; closes (and records) on ``__exit__``."""
        event = TraceEvent(
            name=name, cat=cat, ph="X", ts=self._wall_us(),
            pid=PID_WALL, tid=tid, args=dict(args),
        )
        return _SpanHandle(self, event)

    def complete(
        self, name: str, cat: str, ts: float, dur: float, tid: str = "sim", **args
    ) -> None:
        """Record a finished span on the simulated-cycle timeline."""
        self.events.append(
            TraceEvent(
                name=name, cat=cat, ph="X", ts=float(ts), dur=float(dur),
                pid=PID_SIM, tid=tid, args=dict(args),
            )
        )

    def instant(
        self, name: str, cat: str, ts: Optional[float] = None, tid: str = "sim", **args
    ) -> None:
        """Record an instant event (sim timeline when ``ts`` given)."""
        if ts is None:
            self.events.append(
                TraceEvent(
                    name=name, cat=cat, ph="i", ts=self._wall_us(),
                    pid=PID_WALL, tid=tid, args=dict(args),
                )
            )
        else:
            self.events.append(
                TraceEvent(
                    name=name, cat=cat, ph="i", ts=float(ts),
                    pid=PID_SIM, tid=tid, args=dict(args),
                )
            )

    # -- queries --------------------------------------------------------

    def spans(self, cat: Optional[str] = None) -> Iterator[TraceEvent]:
        """Complete spans, optionally filtered by category."""
        for event in self.events:
            if event.ph == "X" and (cat is None or event.cat == cat):
                yield event

    def categories(self) -> List[str]:
        return sorted({e.cat for e in self.events})

    # -- export ---------------------------------------------------------

    def chrome(self) -> dict:
        """The ``{"traceEvents": [...]}`` Chrome-trace payload."""
        metadata = [
            {
                "name": "process_name", "ph": "M", "pid": pid, "ts": 0,
                "args": {"name": label},
            }
            for pid, label in ((PID_WALL, "wall clock"), (PID_SIM, "device cycles"))
        ]
        return {
            "traceEvents": metadata + [e.as_dict() for e in self.events],
            "displayTimeUnit": "ms",
        }

    def chrome_json(self) -> str:
        return json.dumps(self.chrome())

    def write_chrome(self, path) -> None:
        """Write the Chrome/Perfetto trace JSON to ``path``."""
        with open(path, "w") as fh:
            json.dump(self.chrome(), fh)

    def jsonl(self) -> Iterator[str]:
        """One JSON object per event, in record order."""
        for event in self.events:
            yield json.dumps(event.as_dict())

    def write_jsonl(self, path) -> None:
        with open(path, "w") as fh:
            for line in self.jsonl():
                fh.write(line + "\n")

    def clear(self) -> None:
        self.events.clear()
