"""Per-kernel profiling report (the ``obs.report`` surface).

Folds the observer's metrics into per-kernel cycle/energy/microop
breakdowns following the paper's Table 2 / Fig. 9 taxonomy: for each
profiled kernel you get the microop mix (search/update/read/write/...,
split bit-serial vs bit-parallel), the cycle breakdown (compute /
memory / exposed scalar), and the energy total — the numbers the
hand-rolled accounting in ``benchmarks/`` used to assemble by hand.

Usage::

    obs = Observer()
    device = Device(CAPE32K, backend="bitplane", observer=obs)
    profile = ProfileReport(obs)
    with profile.kernel("vadd"):
        device.system.vadd(3, 1, 2)
    profile.microop_totals("vadd")   # {"logic/bs": 32, ...}
    print(profile.summary())

Kernels are measured as registry snapshot *deltas*, so a single observer
can profile many kernels back to back without resetting anything.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from repro.obs.metrics import Snapshot, diff_snapshots
from repro.obs.observer import Observer

#: Families folded into the cycle breakdown, in report order.
_CYCLE_KINDS = ("compute", "memory", "scalar")

#: Families summed into the per-kernel energy total.
_ENERGY_FAMILIES = ("vcu.energy_j", "engine.hbm_energy_j")


class ProfileReport:
    """Per-kernel breakdowns derived from observer metric deltas."""

    def __init__(self, observer: Observer) -> None:
        if not observer.enabled:
            raise ValueError(
                "ProfileReport needs an enabled Observer (got a null observer)"
            )
        self.observer = observer
        #: kernel name -> snapshot delta for that kernel's scope.
        self.deltas: Dict[str, Snapshot] = {}

    # -- measurement ----------------------------------------------------

    @contextmanager
    def kernel(self, name: str) -> Iterator[None]:
        """Profile one kernel: everything recorded inside the scope."""
        before = self.observer.metrics.snapshot()
        with self.observer.span(name, cat="profile", tid="profile"):
            yield
        after = self.observer.metrics.snapshot()
        delta = diff_snapshots(after, before)
        if name in self.deltas:  # accumulate repeated scopes
            merged = dict(self.deltas[name])
            for key, value in delta.items():
                merged[key] = merged.get(key, 0.0) + value
            delta = merged
        self.deltas[name] = delta

    @property
    def kernels(self) -> List[str]:
        return list(self.deltas)

    # -- folds ----------------------------------------------------------

    def _family(self, kernel: str, family: str) -> Dict[tuple, float]:
        """Label-key -> delta for one family inside one kernel."""
        return {
            key: value
            for (name, key), value in self.deltas.get(kernel, {}).items()
            if name == family
        }

    def microop_totals(self, kernel: str) -> Dict[str, int]:
        """Microop mix as ``"op/flavor" -> count`` (Table 2 taxonomy).

        ``flavor`` is ``bp`` (bit-parallel) or ``bs`` (bit-serial), the
        same split the CSB microop counters use.
        """
        totals: Dict[str, int] = {}
        for key, value in self._family(kernel, "csb.microops").items():
            labels = dict(key)
            bucket = f"{labels.get('op', '?')}/{labels.get('flavor', '?')}"
            totals[bucket] = totals.get(bucket, 0) + int(round(value))
        return dict(sorted(totals.items()))

    def cycles(self, kernel: str) -> Dict[str, float]:
        """Cycle breakdown ``{"compute": ..., "memory": ..., "scalar": ...}``."""
        out = {kind: 0.0 for kind in _CYCLE_KINDS}
        for key, value in self._family(kernel, "engine.cycles").items():
            kind = dict(key).get("kind", "?")
            out[kind] = out.get(kind, 0.0) + value
        return out

    def total_cycles(self, kernel: str) -> float:
        return sum(self.cycles(kernel).values())

    def energy_j(self, kernel: str) -> float:
        """Energy total: VCU lane energy + HBM transfer energy."""
        total = 0.0
        for family in _ENERGY_FAMILIES:
            total += sum(self._family(kernel, family).values())
        return total

    def instructions(self, kernel: str) -> Dict[str, int]:
        """Instruction counts by kind (vector / memory / scalar)."""
        out: Dict[str, int] = {}
        for key, value in self._family(kernel, "engine.instructions").items():
            kind = dict(key).get("kind", "?")
            out[kind] = out.get(kind, 0) + int(round(value))
        return out

    # -- export ---------------------------------------------------------

    def as_dict(self) -> dict:
        """JSON-able per-kernel report."""
        return {
            kernel: {
                "microops": self.microop_totals(kernel),
                "cycles": self.cycles(kernel),
                "total_cycles": self.total_cycles(kernel),
                "energy_j": self.energy_j(kernel),
                "instructions": self.instructions(kernel),
            }
            for kernel in self.kernels
        }

    def table(self, title: Optional[str] = None) -> str:
        """Render the per-kernel breakdown with the shared table helper."""
        from repro.eval.tables import format_table

        rows = []
        for kernel in self.kernels:
            cycles = self.cycles(kernel)
            microops = self.microop_totals(kernel)
            rows.append(
                [
                    kernel,
                    f"{self.total_cycles(kernel):,.0f}",
                    f"{cycles['compute']:,.0f}",
                    f"{cycles['memory']:,.0f}",
                    f"{sum(microops.values()):,d}",
                    f"{self.energy_j(kernel) * 1e6:.2f}",
                ]
            )
        table = format_table(
            ["kernel", "cycles", "compute", "memory", "microops", "uJ"],
            rows,
        )
        return f"{title or 'per-kernel profile'}\n{table}"

    def summary(self) -> str:
        """One line per kernel: cycles, microop total, energy."""
        lines = []
        for kernel in self.kernels:
            microops = sum(self.microop_totals(kernel).values())
            lines.append(
                f"{kernel}: {self.total_cycles(kernel):,.0f} cycles, "
                f"{microops:,d} microops, "
                f"{self.energy_j(kernel) * 1e6:.2f} uJ"
            )
        return "\n".join(lines)
