"""repro.obs — the unified observability layer.

One :class:`Observer` (metrics registry + structured tracer) threads
through every layer of the stack — engine, CSB backends, interpreter,
runtime — with a shared zero-overhead :data:`NULL_OBSERVER` default.
See ``docs/OBSERVABILITY.md`` for the counter catalog and trace schema.

This package must stay import-light: the engine imports it at module
level, so nothing here may import ``repro.engine`` (or anything that
does) except lazily inside functions.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    label_key,
)
from repro.obs.observer import NULL_OBSERVER, NullObserver, Observer
from repro.obs.report import ProfileReport
from repro.obs.stats import CAPERunStats
from repro.obs.trace import PID_SIM, PID_WALL, TraceEvent, Tracer

__all__ = [
    "CAPERunStats",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBSERVER",
    "NullObserver",
    "Observer",
    "PID_SIM",
    "PID_WALL",
    "ProfileReport",
    "TraceEvent",
    "Tracer",
    "diff_snapshots",
    "label_key",
]
