"""The Observer: one handle threaded through every instrumented layer.

An :class:`Observer` bundles a :class:`~repro.obs.metrics.MetricsRegistry`
and a :class:`~repro.obs.trace.Tracer`. `CAPESystem`, `Chain`/`CSB`,
`Job`, and `DevicePool` all accept one; the default is the shared
:data:`NULL_OBSERVER`, whose ``enabled`` flag is ``False`` and whose
handles are shared no-ops — instrumented hot paths guard with
``if observer.enabled:`` so a disabled observer costs one attribute
check.

``observer.labelled(device="CAPE32k#0")`` returns a view sharing the
same registry and tracer but stamping the bound labels onto every
counter/gauge/histogram it hands out — how the device pool separates
per-device series without threading label dicts through the engine.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import Tracer


class Observer:
    """A live observer: metrics + tracing, shared down the stack."""

    enabled = True

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        labels: Optional[Dict[str, object]] = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.labels: Dict[str, object] = dict(labels or {})

    # -- metrics handles -----------------------------------------------

    def _merge(self, labels: Dict[str, object]) -> Dict[str, object]:
        if not self.labels:
            return labels
        merged = dict(self.labels)
        merged.update(labels)
        return merged

    def counter(self, name: str, **labels: object) -> Counter:
        return self.metrics.counter(name, **self._merge(labels))

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self.metrics.gauge(name, **self._merge(labels))

    def histogram(self, name: str, **labels: object) -> Histogram:
        return self.metrics.histogram(name, **self._merge(labels))

    # -- tracing passthrough -------------------------------------------

    def span(self, name: str, cat: str, tid: str = "main", **args):
        return self.tracer.span(name, cat, tid=tid, **args)

    def complete(self, name, cat, ts, dur, tid="sim", **args) -> None:
        self.tracer.complete(name, cat, ts, dur, tid=tid, **args)

    def instant(self, name, cat, ts=None, tid="sim", **args) -> None:
        self.tracer.instant(name, cat, ts=ts, tid=tid, **args)

    # -- scoping --------------------------------------------------------

    def labelled(self, **labels: object) -> "Observer":
        """A view on the same registry/tracer with extra bound labels."""
        return Observer(
            metrics=self.metrics, tracer=self.tracer, labels=self._merge(labels)
        )

    def __repr__(self) -> str:
        return (
            f"Observer({len(self.metrics)} series, "
            f"{len(self.tracer)} events{', ' + repr(self.labels) if self.labels else ''})"
        )


class _NullHandle:
    """Shared do-nothing metric handle."""

    __slots__ = ()
    value = 0.0
    count = 0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


class _NullSpan:
    """Shared do-nothing span context manager."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> None:
        pass


_NULL_HANDLE = _NullHandle()
_NULL_SPAN = _NullSpan()


class NullObserver(Observer):
    """The zero-overhead default: records nothing, allocates nothing."""

    enabled = False

    def __init__(self) -> None:  # no registry, no tracer
        self.metrics = None
        self.tracer = None
        self.labels = {}

    def counter(self, name: str, **labels: object) -> _NullHandle:
        return _NULL_HANDLE

    def gauge(self, name: str, **labels: object) -> _NullHandle:
        return _NULL_HANDLE

    def histogram(self, name: str, **labels: object) -> _NullHandle:
        return _NULL_HANDLE

    def span(self, name: str, cat: str, tid: str = "main", **args) -> _NullSpan:
        return _NULL_SPAN

    def complete(self, name, cat, ts, dur, tid="sim", **args) -> None:
        pass

    def instant(self, name, cat, ts=None, tid="sim", **args) -> None:
        pass

    def labelled(self, **labels: object) -> "NullObserver":
        return self

    def __repr__(self) -> str:
        return "NullObserver()"


#: The process-wide disabled observer every layer defaults to.
NULL_OBSERVER = NullObserver()
