"""Canonical run-level stats dataclass (the consolidated stats surface).

:class:`CAPERunStats` used to live in ``repro.engine.system``; it is now
owned by the observability layer so that all three stats surfaces —
engine run stats, runtime telemetry reports, and :class:`ProfileReport`
— share one home, one naming scheme (snake_case with unit suffixes:
``*_cycles``, ``*_seconds``, ``*_j``), and one export contract
(``.as_dict()`` / ``.summary()``). ``repro.engine.system.CAPERunStats``
remains importable through a :class:`DeprecationWarning` shim.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass


@dataclass
class CAPERunStats:
    """Cumulative outcome of a CAPE program run."""

    cycles: float = 0.0
    frequency_hz: float = 2.7e9
    vector_instructions: int = 0
    memory_instructions: int = 0
    compute_cycles: float = 0.0
    memory_cycles: float = 0.0
    scalar_exposed_cycles: float = 0.0
    energy_j: float = 0.0
    page_faults: int = 0

    @property
    def seconds(self) -> float:
        return self.cycles / self.frequency_hz

    def as_dict(self) -> dict:
        """JSON-able export (fields plus the derived ``seconds``)."""
        out = asdict(self)
        out["seconds"] = self.seconds
        return out

    def summary(self) -> str:
        """One-paragraph human-readable run summary."""
        total = max(self.cycles, 1e-12)
        return (
            f"{self.cycles:,.0f} cycles ({self.seconds * 1e6:.1f} us at "
            f"{self.frequency_hz / 1e9:.1f} GHz): "
            f"{100 * self.compute_cycles / total:.0f}% CSB compute, "
            f"{100 * self.memory_cycles / total:.0f}% vector memory, "
            f"{100 * self.scalar_exposed_cycles / total:.0f}% exposed scalar; "
            f"{self.vector_instructions} vector + "
            f"{self.memory_instructions} memory instructions, "
            f"{self.page_faults} page faults, "
            f"{self.energy_j * 1e6:.1f} uJ"
        )
