"""Microoperation-level delay and energy model (paper Table II).

CAPE's compute-storage block executes exactly four microoperations — read,
write, search, update — plus the reduction step. The paper characterises
each on a single chain (32 subarrays of 32x36 push-rule 6T bitcells, split
wordlines, ASAP 7 nm): delay in picoseconds and dynamic energy in picojoules
for the bit-serial (BS) and bit-parallel (BP) flavours.

The system clock derives from the slowest microoperation (read, 237 ps →
4.22 GHz) conservatively derated to 65% → 2.7 GHz (Section VI-B).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.common.errors import ConfigError
from repro.common.units import PJ, PS


class Microop(enum.Enum):
    """The CSB microoperations characterised in Table II."""

    READ = "read"
    WRITE = "write"
    SEARCH = "search"
    UPDATE = "update"          # update without carry propagation
    UPDATE_PROP = "update_prop"  # update with propagation to the next subarray
    REDUCE = "reduce"


@dataclass(frozen=True)
class MicroopTiming:
    """Delay and per-chain dynamic energy of one microoperation.

    Attributes:
        delay_s: latency of the microoperation in seconds.
        bs_energy_j: dynamic energy of the bit-serial flavour (one bit of
            every element in a chain), or ``None`` if the microop has no
            bit-serial form (read/write/reduce).
        bp_energy_j: dynamic energy of the bit-parallel flavour, or ``None``
            if it has no bit-parallel form (update with propagation).
    """

    delay_s: float
    bs_energy_j: Optional[float]
    bp_energy_j: Optional[float]

    def __post_init__(self) -> None:
        if self.delay_s <= 0:
            raise ConfigError(f"microop delay must be positive, got {self.delay_s}")


#: Published Table II values: delay (ps), bit-serial energy (pJ),
#: bit-parallel energy (pJ), for one chain.
TABLE_II_TIMINGS: Dict[Microop, MicroopTiming] = {
    Microop.READ: MicroopTiming(237 * PS, None, 2.8 * PJ),
    Microop.WRITE: MicroopTiming(181 * PS, None, 2.4 * PJ),
    Microop.SEARCH: MicroopTiming(227 * PS, 1.0 * PJ, 5.7 * PJ),
    Microop.UPDATE: MicroopTiming(209 * PS, 1.2 * PJ, 3.8 * PJ),
    Microop.UPDATE_PROP: MicroopTiming(209 * PS, 1.2 * PJ, None),
    # Bit-parallel: the full per-chain reduction logic (pop count, shift,
    # accumulate) — 8.9 pJ per Table II / Section VI-B. Bit-serial: the
    # per-slice tag combine used by equality compares (an AND latch per
    # column), estimated at 0.2 pJ so that the measured vmseq energies
    # land on Table I's 0.4-0.5 pJ/lane.
    Microop.REDUCE: MicroopTiming(217 * PS, 0.2 * PJ, 8.9 * PJ),
}

#: Energy of the whole redsum echo-search sequence on one chain (the
#: single-row, all-subarray search of Figure 6), quoted in Section VI-B as
#: 3.0 pJ for a 32-bit reduction.
REDSUM_SEARCH_ENERGY_J = 3.0 * PJ

#: Energy of the whole per-chain reduction-logic sequence for a 32-bit
#: redsum (Section VI-B).
REDSUM_LOGIC_ENERGY_J = 8.9 * PJ

#: Fraction of the raw circuit frequency retained after clock skew and
#: uncertainty margins (Section VI-B: 4.22 GHz -> 2.7 GHz).
DEFAULT_FREQUENCY_DERATE = 0.65

#: SRAM array access time quoted in Section VI-A.
ARRAY_ACCESS_DELAY_S = 90 * PS

#: Local command distribution delay of control signals within one chain.
LOCAL_COMMAND_DELAY_S = 55 * PS

#: Command-bus width distributed by a chain controller to its subarrays,
#: for a 32-bit configuration (Section V-D).
CHAIN_COMMAND_BITS = 143

#: Bits of local command distribution included in the chain energy numbers
#: (Section VI-A quotes 184 bits including handshake/select lines).
LOCAL_COMMAND_DISTRIBUTION_BITS = 184


@dataclass(frozen=True)
class CircuitModel:
    """Circuit-level parameters of one CAPE chain and the derived clock.

    The defaults reproduce the published design point. All quantities are
    SI (seconds, joules, hertz).
    """

    timings: Mapping[Microop, MicroopTiming] = field(
        default_factory=lambda: dict(TABLE_II_TIMINGS)
    )
    frequency_derate: float = DEFAULT_FREQUENCY_DERATE

    def __post_init__(self) -> None:
        missing = [op for op in Microop if op not in self.timings]
        if missing:
            raise ConfigError(f"timings missing for microops: {missing}")
        if not 0 < self.frequency_derate <= 1:
            raise ConfigError(
                f"frequency derate must be in (0, 1], got {self.frequency_derate}"
            )

    @property
    def critical_path_s(self) -> float:
        """The slowest microoperation delay — sets the raw cycle time."""
        return max(t.delay_s for t in self.timings.values())

    @property
    def max_frequency_hz(self) -> float:
        """Raw frequency before derating (4.22 GHz at the default point)."""
        return 1.0 / self.critical_path_s

    @property
    def frequency_hz(self) -> float:
        """Operating frequency after the conservative derate (2.7 GHz)."""
        return self.max_frequency_hz * self.frequency_derate

    @property
    def cycle_time_s(self) -> float:
        """Operating cycle time (inverse of the derated frequency)."""
        return 1.0 / self.frequency_hz

    def delay(self, op: Microop) -> float:
        """Delay of ``op`` in seconds."""
        return self.timings[op].delay_s

    def energy(self, op: Microop, bit_parallel: bool = False) -> float:
        """Per-chain dynamic energy of ``op`` in joules.

        Args:
            op: the microoperation.
            bit_parallel: select the bit-parallel flavour; default is the
                bit-serial flavour where one exists, else bit-parallel.

        Raises:
            ConfigError: if the requested flavour does not exist for ``op``.
        """
        timing = self.timings[op]
        if bit_parallel:
            if timing.bp_energy_j is None:
                raise ConfigError(f"{op.value} has no bit-parallel flavour")
            return timing.bp_energy_j
        if timing.bs_energy_j is not None:
            return timing.bs_energy_j
        if timing.bp_energy_j is None:
            raise ConfigError(f"{op.value} has no energy model")
        return timing.bp_energy_j
