"""Circuit-level models: microoperation delay/energy, clocking, and area.

This is the lowest modelling level of the reproduction. The paper obtains
these numbers from ASAP 7 nm PDK circuit simulation plus synthesis and
place-and-route (Section VI-A); we encode the published measurements
(Table II, Figure 8, and the clocking discussion of Section VI-B) as a
parameterised model. Every higher level — instruction timing (Table I) and
system simulation — derives its numbers from this layer.
"""

from repro.circuits.area import AreaModel, ChainLayout
from repro.circuits.microops import (
    CircuitModel,
    Microop,
    MicroopTiming,
    TABLE_II_TIMINGS,
)

__all__ = [
    "TABLE_II_TIMINGS",
    "AreaModel",
    "ChainLayout",
    "CircuitModel",
    "Microop",
    "MicroopTiming",
]
