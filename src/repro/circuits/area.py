"""Area model: chain layout (Figure 8) and area-equivalent comparisons.

The paper's layout of one chain — 32 subarrays plus peripherals, placed and
routed at ASAP 7 nm — measures 13 x 175 um^2 (Figure 8). The evaluation's
area reference is a high-end out-of-order tile (Skylake-derived, scaled from
14 nm to 7 nm) of slightly under 9 mm^2 including an 8-issue core, private
L1/L2, and an L3 slice. CAPE32k (1,024 chains) is sized to match one such
tile; CAPE131k (4,096 chains) to match two.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError

#: Square micrometres per square millimetre.
_UM2_PER_MM2 = 1e6


@dataclass(frozen=True)
class ChainLayout:
    """Physical dimensions of one CAPE chain (Figure 8)."""

    width_um: float = 13.0
    height_um: float = 175.0

    def __post_init__(self) -> None:
        if self.width_um <= 0 or self.height_um <= 0:
            raise ConfigError("chain dimensions must be positive")

    @property
    def area_um2(self) -> float:
        """Footprint of one chain in square micrometres."""
        return self.width_um * self.height_um

    @property
    def area_mm2(self) -> float:
        """Footprint of one chain in square millimetres."""
        return self.area_um2 / _UM2_PER_MM2


@dataclass(frozen=True)
class AreaModel:
    """Area accounting for a CAPE tile and its out-of-order reference tile.

    Attributes:
        chain: layout of a single chain.
        control_processor_mm2: CAPE's in-order control processor with its
            L1/L2 caches. Dominated by the 1 MB L2 (same capacity as the
            baseline's private L2).
        vcu_vmu_mm2: vector control + memory units, including the chain
            controllers and truth-table memories.
        reduction_tree_mm2: the pipelined global reduction logic for a
            1,024-chain CSB; scaled linearly with chain count.
        reference_tile_mm2: the area-equivalent out-of-order tile
            ("slightly under 9 mm^2 at 7 nm").
    """

    chain: ChainLayout = ChainLayout()
    control_processor_mm2: float = 5.5
    vcu_vmu_mm2: float = 0.8
    reduction_tree_mm2: float = 0.25
    reference_tile_mm2: float = 8.87

    def csb_area_mm2(self, num_chains: int) -> float:
        """Area of the compute-storage block for ``num_chains`` chains."""
        if num_chains <= 0:
            raise ConfigError(f"num_chains must be positive, got {num_chains}")
        return num_chains * self.chain.area_mm2

    def cape_tile_area_mm2(self, num_chains: int) -> float:
        """Total area of a CAPE tile with ``num_chains`` chains.

        The reduction tree grows linearly with the chain count (stages are
        replicated or removed to cover the CSB capacity, Section VI-C).
        """
        reduction = self.reduction_tree_mm2 * (num_chains / 1024)
        return (
            self.csb_area_mm2(num_chains)
            + self.control_processor_mm2
            + self.vcu_vmu_mm2
            + reduction
        )

    def equivalent_baseline_cores(self, num_chains: int) -> float:
        """How many out-of-order reference tiles fit in this CAPE tile's area."""
        return self.cape_tile_area_mm2(num_chains) / self.reference_tile_mm2
