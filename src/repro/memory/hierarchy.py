"""Cache hierarchy timing model for the baseline and control processors.

Latencies follow Table III: L1 2-cycle tag/data, L2 14 cycles, L3 50
cycles, all backed by HBM. The hierarchy simulates real content (tags,
LRU, writebacks); latency of an access is the sum of the levels visited
plus the HBM fill on an LLC miss.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.common.errors import ConfigError
from repro.common.units import KIB, MIB
from repro.memory.cache import Cache
from repro.memory.hbm import HBM


class AccessType(enum.Enum):
    LOAD = "load"
    STORE = "store"
    IFETCH = "ifetch"


@dataclass(frozen=True)
class HierarchyConfig:
    """Geometry and latency of a private L1/L2 (+ optional shared L3).

    Defaults are the baseline out-of-order tile of Table III; CAPE's
    control processor uses ``l3_size=0`` (no L3) and a 512 B L2 line.
    """

    l1d_size: int = 32 * KIB
    l1i_size: int = 32 * KIB
    l1_assoc: int = 8
    l1_latency: int = 2
    l1_line: int = 64
    l2_size: int = 1 * MIB
    l2_assoc: int = 16
    l2_latency: int = 14
    l2_line: int = 64
    l3_size: int = int(5.5 * MIB)
    l3_assoc: int = 11
    l3_latency: int = 50
    l3_line: int = 512
    frequency_hz: float = 3.6e9

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ConfigError("frequency must be positive")


class CacheHierarchy:
    """A core-private cache stack, optionally sharing an L3 and an HBM.

    Args:
        config: geometry/latency parameters.
        hbm: backing memory (shared across cores); a private instance is
            created when omitted.
        shared_l3: an L3 shared with other hierarchies (multicore); when
            omitted and ``config.l3_size > 0``, a private L3 is built.
    """

    #: Latency of a hit in a CAPE-tile victim cache: the probe message,
    #: the CSB tag search plus row read, and the block transfer back —
    #: cheaper than the 50-cycle L3 (the probe runs concurrently with
    #: the LLC access, Section VII).
    VICTIM_HIT_LATENCY = 20

    def __init__(
        self,
        config: HierarchyConfig = HierarchyConfig(),
        hbm: Optional[HBM] = None,
        shared_l3: Optional[Cache] = None,
        victim_cache=None,
    ) -> None:
        self.config = config
        self.hbm = hbm if hbm is not None else HBM()
        #: Optional CAPE tile emulating a victim cache for this L2
        #: (Section VII): L2 victims are installed there and L2 misses
        #: probe it concurrently with the next level.
        self.victim_cache = victim_cache
        self.l1d = Cache(config.l1d_size, config.l1_assoc, config.l1_line, "L1D")
        self.l1i = Cache(config.l1i_size, config.l1_assoc, config.l1_line, "L1I")
        self.l2 = Cache(config.l2_size, config.l2_assoc, config.l2_line, "L2")
        if shared_l3 is not None:
            self.l3: Optional[Cache] = shared_l3
        elif config.l3_size > 0:
            self.l3 = Cache(config.l3_size, config.l3_assoc, config.l3_line, "L3")
        else:
            self.l3 = None
        self.total_cycles = 0
        self.accesses = 0

    @staticmethod
    def make_shared_l3(config: HierarchyConfig) -> Cache:
        """Build an L3 suitable for sharing across hierarchies."""
        return Cache(config.l3_size, config.l3_assoc, config.l3_line, "L3")

    # ------------------------------------------------------------------

    def access(self, addr: int, kind: AccessType = AccessType.LOAD) -> int:
        """Access one address; returns the latency in core cycles."""
        is_write = kind is AccessType.STORE
        l1 = self.l1i if kind is AccessType.IFETCH else self.l1d
        cycles = self.config.l1_latency
        hit, wb = l1.access(addr, is_write)
        if hit:
            self._account(cycles)
            return cycles
        if wb is not None:
            self.l2.access(wb, True)

        cycles += self.config.l2_latency
        hit, wb = self.l2.access(addr, is_write)
        if hit:
            self._account(cycles)
            return cycles
        if wb is not None and self.l3 is not None:
            self.l3.access(wb, True)
        if self.victim_cache is not None:
            # Install the L2's victim (clean or dirty) in the CAPE tile.
            if self.l2.last_victim is not None:
                self.victim_cache.insert(self.l2.last_victim)
            # Probe for the missing line, concurrent with the next level.
            if self.victim_cache.lookup(addr) is not None:
                cycles += self.VICTIM_HIT_LATENCY
                self._account(cycles)
                return cycles

        if self.l3 is not None:
            cycles += self.config.l3_latency
            hit, wb = self.l3.access(addr, is_write)
            if hit:
                self._account(cycles)
                return cycles
            line = self.config.l3_line
        else:
            line = self.config.l2_line

        fill_s = self.hbm.line_fill_time_s(line)
        cycles += max(1, round(fill_s * self.config.frequency_hz))
        self._account(cycles)
        return cycles

    def access_many(
        self, addrs: Sequence[int], kind: AccessType = AccessType.LOAD
    ) -> int:
        """Access a sequence of addresses; returns summed latency."""
        return sum(self.access(int(a), kind) for a in addrs)

    def _account(self, cycles: int) -> None:
        self.total_cycles += cycles
        self.accesses += 1

    # ------------------------------------------------------------------

    def amat_cycles(self) -> float:
        """Average memory access time observed so far, in cycles."""
        return self.total_cycles / self.accesses if self.accesses else 0.0

    def reset_stats(self) -> None:
        self.total_cycles = 0
        self.accesses = 0
        for cache in (self.l1d, self.l1i, self.l2, self.l3):
            if cache is not None:
                cache.stats.__init__()
