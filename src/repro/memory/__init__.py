"""Memory substrate: caches, coherence, hierarchy, and HBM (Table III).

The baseline out-of-order tile owns a three-level cache hierarchy
(32 kB/32 kB L1D/L1I, 1 MB L2, 5.5 MB shared L3) in front of a 4-high HBM
stack with 8 channels of 16 GB/s and 512 MB each. CAPE's control processor
keeps L1s and an L2; CAPE's vector memory unit is cacheless and talks to
the HBM directly (Section V-E).
"""

from repro.memory.cache import Cache, CacheStats, MESIState
from repro.memory.coherence import CoherentBus
from repro.memory.hbm import HBM, HBMConfig
from repro.memory.hierarchy import AccessType, CacheHierarchy, HierarchyConfig

__all__ = [
    "HBM",
    "AccessType",
    "Cache",
    "CacheHierarchy",
    "CacheStats",
    "CoherentBus",
    "HBMConfig",
    "HierarchyConfig",
    "MESIState",
]
