"""A set-associative, write-back, write-allocate cache with MESI states.

Replacement is true LRU within each set. Lines carry a MESI coherence
state; a single-cache configuration simply never leaves the E/M/I corner
of the protocol. The coherent bus (``coherence.py``) drives the
state transitions for multicore configurations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.common.errors import ConfigError


class MESIState(enum.Enum):
    """MESI coherence states."""

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


@dataclass
class CacheStats:
    """Hit/miss/traffic counters for one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    invalidations_received: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass
class _Line:
    tag: int
    state: MESIState
    dirty: bool
    lru: int


class Cache:
    """One cache level.

    Args:
        size_bytes: total capacity.
        assoc: ways per set.
        line_bytes: cache-line size (the baseline LLC uses 512 B lines,
            Table III).
        name: label used in reports.
    """

    def __init__(
        self,
        size_bytes: int,
        assoc: int,
        line_bytes: int = 64,
        name: str = "cache",
    ) -> None:
        if size_bytes <= 0 or assoc <= 0 or line_bytes <= 0:
            raise ConfigError("cache geometry must be positive")
        if size_bytes % (assoc * line_bytes) != 0:
            raise ConfigError(
                f"{name}: size {size_bytes} not divisible by "
                f"assoc*line ({assoc}*{line_bytes})"
            )
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.name = name
        self.num_sets = size_bytes // (assoc * line_bytes)
        self.stats = CacheStats()
        self._sets: Dict[int, Dict[int, _Line]] = {}
        self._tick = 0
        #: Line address of the victim evicted by the most recent fill
        #: (dirty or clean), or None. Consumed by victim-cache hooks.
        self.last_victim: Optional[int] = None

    # ------------------------------------------------------------------

    def _locate(self, addr: int) -> Tuple[int, int]:
        line_addr = addr // self.line_bytes
        return line_addr % self.num_sets, line_addr // self.num_sets

    def lookup(self, addr: int) -> Optional[MESIState]:
        """Peek a line's state without touching LRU (snoop path)."""
        set_idx, tag = self._locate(addr)
        line = self._sets.get(set_idx, {}).get(tag)
        return line.state if line and line.state != MESIState.INVALID else None

    def access(self, addr: int, is_write: bool) -> Tuple[bool, Optional[int]]:
        """Access one address; fill on miss.

        Returns:
            ``(hit, writeback_line_addr)`` — the second element is the
            line address written back when a dirty victim was evicted,
            else ``None``.
        """
        self._tick += 1
        set_idx, tag = self._locate(addr)
        lines = self._sets.setdefault(set_idx, {})
        line = lines.get(tag)
        if line is not None and line.state != MESIState.INVALID:
            self.stats.hits += 1
            line.lru = self._tick
            if is_write:
                line.dirty = True
                line.state = MESIState.MODIFIED
            return True, None

        self.stats.misses += 1
        writeback = self._fill(set_idx, tag, is_write)
        return False, writeback

    def _fill(self, set_idx: int, tag: int, is_write: bool) -> Optional[int]:
        """Insert a line, evicting the LRU way if the set is full."""
        lines = self._sets.setdefault(set_idx, {})
        # Reuse an INVALID slot if one exists.
        invalid = [t for t, l in lines.items() if l.state == MESIState.INVALID]
        for t in invalid:
            del lines[t]
        writeback = None
        self.last_victim = None
        if len(lines) >= self.assoc:
            victim_tag = min(lines, key=lambda t: lines[t].lru)
            victim = lines.pop(victim_tag)
            self.stats.evictions += 1
            victim_addr = (victim_tag * self.num_sets + set_idx) * self.line_bytes
            self.last_victim = victim_addr
            if victim.dirty:
                self.stats.writebacks += 1
                writeback = victim_addr
        state = MESIState.MODIFIED if is_write else MESIState.EXCLUSIVE
        lines[tag] = _Line(tag=tag, state=state, dirty=is_write, lru=self._tick)
        return writeback

    # ------------------------------------------------------------------
    # Coherence hooks (driven by the bus)
    # ------------------------------------------------------------------

    def set_state(self, addr: int, state: MESIState) -> None:
        """Force a line's MESI state (bus-directed transition)."""
        set_idx, tag = self._locate(addr)
        line = self._sets.get(set_idx, {}).get(tag)
        if line is None:
            return
        if state == MESIState.INVALID:
            self.stats.invalidations_received += 1
            line.dirty = False
        line.state = state

    def flush(self) -> int:
        """Write back all dirty lines; returns the count written back."""
        count = 0
        for lines in self._sets.values():
            for line in lines.values():
                if line.dirty and line.state != MESIState.INVALID:
                    count += 1
                    line.dirty = False
                    if line.state == MESIState.MODIFIED:
                        line.state = MESIState.EXCLUSIVE
        self.stats.writebacks += count
        return count

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(
            1
            for lines in self._sets.values()
            for line in lines.values()
            if line.state != MESIState.INVALID
        )
