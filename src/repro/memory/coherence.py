"""MESI coherence bus for multicore baselines (Table III).

Private L1/L2 stacks of each core snoop a shared bus. The protocol is
MESI at the granularity of the private hierarchies: a write by one core
invalidates the line in every other core's private caches; a read of a
line another core holds exclusively/modified downgrades it to SHARED.

CAPE's cacheless VMU participates as a bus agent too — it issues
invalidations for the ranges it writes and observes writebacks for the
ranges it reads, which is the "follows the same cache coherence protocol"
behaviour of Section V-E. The paper notes this traffic is trivial because
the CSB and the control processor share little data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.common.errors import ConfigError
from repro.memory.cache import MESIState
from repro.memory.hierarchy import AccessType, CacheHierarchy


@dataclass
class BusStats:
    """Coherence traffic counters."""

    invalidations: int = 0
    downgrades: int = 0
    interventions: int = 0  # dirty data supplied by a peer cache


class CoherentBus:
    """Snooping MESI bus connecting private cache hierarchies.

    Args:
        hierarchies: the per-core private stacks (sharing one L3/HBM).
    """

    def __init__(self, hierarchies: List[CacheHierarchy]) -> None:
        if not hierarchies:
            raise ConfigError("a coherent bus needs at least one hierarchy")
        self.hierarchies = hierarchies
        self.stats = BusStats()

    def access(self, core: int, addr: int, kind: AccessType) -> int:
        """Coherent access by ``core``; returns latency in cycles.

        Snoops every peer before the access proceeds: writes invalidate
        peer copies, reads downgrade peer M/E lines to SHARED (with a
        dirty-data intervention when MODIFIED).
        """
        if not 0 <= core < len(self.hierarchies):
            raise ConfigError(f"core {core} out of range")
        is_write = kind is AccessType.STORE
        extra = self._snoop(core, addr, is_write)
        return self.hierarchies[core].access(addr, kind) + extra

    def _snoop(self, requester: int, addr: int, is_write: bool) -> int:
        """Apply peer-state transitions; returns added snoop latency."""
        extra = 0
        for idx, peer in enumerate(self.hierarchies):
            if idx == requester:
                continue
            for cache in (peer.l1d, peer.l2):
                state = cache.lookup(addr)
                if state is None:
                    continue
                if is_write:
                    if state == MESIState.MODIFIED:
                        self.stats.interventions += 1
                        extra += 4  # dirty-data transfer on the bus
                    cache.set_state(addr, MESIState.INVALID)
                    self.stats.invalidations += 1
                else:
                    if state == MESIState.MODIFIED:
                        self.stats.interventions += 1
                        extra += 4
                    if state in (MESIState.MODIFIED, MESIState.EXCLUSIVE):
                        cache.set_state(addr, MESIState.SHARED)
                        self.stats.downgrades += 1
        return extra

    def vmu_write_range(self, base: int, num_bytes: int, line_bytes: int = 64) -> int:
        """Invalidate every peer copy of a range the VMU is writing.

        Returns the number of invalidations sent (used to charge CAPE the
        — trivially small — coherence overhead of vector stores).
        """
        sent = 0
        for addr in range(base, base + num_bytes, line_bytes):
            for peer in self.hierarchies:
                for cache in (peer.l1d, peer.l2):
                    if cache.lookup(addr) is not None:
                        cache.set_state(addr, MESIState.INVALID)
                        self.stats.invalidations += 1
                        sent += 1
        return sent

    def vmu_read_range(self, base: int, num_bytes: int, line_bytes: int = 64) -> int:
        """Downgrade peer M/E copies of a range the VMU is reading.

        Returns the number of dirty interventions observed.
        """
        dirty = 0
        for addr in range(base, base + num_bytes, line_bytes):
            for peer in self.hierarchies:
                # The L1/L2 pair forms one private hierarchy: one
                # intervention per peer that holds the line dirty.
                peer_dirty = False
                for cache in (peer.l1d, peer.l2):
                    state = cache.lookup(addr)
                    if state == MESIState.MODIFIED:
                        peer_dirty = True
                    if state in (MESIState.MODIFIED, MESIState.EXCLUSIVE):
                        cache.set_state(addr, MESIState.SHARED)
                        self.stats.downgrades += 1
                if peer_dirty:
                    dirty += 1
                    self.stats.interventions += 1
        return dirty
