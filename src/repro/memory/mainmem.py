"""Functional main-memory contents (word-addressable numpy store).

Timing lives in :mod:`repro.memory.hbm`; this module only holds values so
that workloads running on the CAPE system and on the baselines see the
same data. Words are 32-bit; addresses are byte addresses (word-aligned).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import CapacityError, ConfigError

WORD_BYTES = 4


class WordMemory:
    """A flat, zero-initialised word store.

    Args:
        size_bytes: capacity; addresses in ``[0, size_bytes)``.
    """

    def __init__(self, size_bytes: int = 1 << 26) -> None:
        if size_bytes <= 0 or size_bytes % WORD_BYTES != 0:
            raise ConfigError("memory size must be a positive multiple of 4")
        self._words = np.zeros(size_bytes // WORD_BYTES, dtype=np.int64)
        self.size_bytes = size_bytes

    def _index(self, addr: int, count: int = 1) -> int:
        if addr % WORD_BYTES != 0:
            raise ConfigError(f"address {addr:#x} is not word-aligned")
        if addr < 0 or addr + count * WORD_BYTES > self.size_bytes:
            raise CapacityError(
                f"range [{addr:#x}, {addr + count * WORD_BYTES:#x}) outside memory"
            )
        return addr // WORD_BYTES

    def read_words(self, addr: int, count: int) -> np.ndarray:
        """Read ``count`` consecutive words starting at ``addr``."""
        idx = self._index(addr, count)
        return self._words[idx : idx + count].copy()

    def write_words(self, addr: int, values: np.ndarray) -> None:
        """Write consecutive words starting at ``addr``."""
        values = np.asarray(values, dtype=np.int64)
        idx = self._index(addr, len(values))
        self._words[idx : idx + len(values)] = values

    def read_word(self, addr: int) -> int:
        return int(self._words[self._index(addr)])

    def write_word(self, addr: int, value: int) -> None:
        self._words[self._index(addr)] = value
