"""High-bandwidth memory model (Table III: 4H HBM, 8 channels).

Each channel provides 16 GB/s of bandwidth and 512 MB of capacity.
Addresses interleave across channels at the bus-packet granularity, so
streaming transfers aggregate the full 128 GB/s. The timing model is
latency + bandwidth: a transfer of B bytes on one channel takes
``base_latency + B / channel_bandwidth``; concurrent transfers on
different channels overlap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.common.errors import ConfigError
from repro.common.units import GIB, MIB, NS


@dataclass(frozen=True)
class HBMConfig:
    """HBM stack parameters (defaults per Table III)."""

    num_channels: int = 8
    channel_bandwidth_bytes_per_s: float = 16 * 1e9  # 16 GB/s
    channel_capacity_bytes: int = 512 * MIB
    base_latency_s: float = 100 * NS
    packet_bytes: int = 32  # data-bus packet (sub-request granularity)

    def __post_init__(self) -> None:
        if self.num_channels <= 0:
            raise ConfigError("num_channels must be positive")
        if self.channel_bandwidth_bytes_per_s <= 0:
            raise ConfigError("channel bandwidth must be positive")

    @property
    def total_bandwidth_bytes_per_s(self) -> float:
        return self.num_channels * self.channel_bandwidth_bytes_per_s

    @property
    def total_capacity_bytes(self) -> int:
        return self.num_channels * self.channel_capacity_bytes


class HBM:
    """Bandwidth/latency model of the HBM stack.

    Tracks per-channel busy time so that interleaved streaming saturates
    all channels while single-channel hot-spotting does not.
    """

    def __init__(self, config: HBMConfig = HBMConfig()) -> None:
        self.config = config
        self._channel_busy_s: List[float] = [0.0] * config.num_channels
        self.bytes_transferred = 0

    def channel_of(self, addr: int) -> int:
        """Channel an address maps to (packet-granularity interleave)."""
        return (addr // self.config.packet_bytes) % self.config.num_channels

    def transfer_time_s(self, num_bytes: int, interleaved: bool = True) -> float:
        """Latency of a transfer of ``num_bytes``.

        Args:
            num_bytes: payload size.
            interleaved: True when the access pattern spreads across all
                channels (unit-stride vector transfers); False pins the
                whole transfer on one channel.
        """
        if num_bytes < 0:
            raise ConfigError("transfer size must be non-negative")
        self.bytes_transferred += num_bytes
        channels = self.config.num_channels if interleaved else 1
        bandwidth = channels * self.config.channel_bandwidth_bytes_per_s
        return self.config.base_latency_s + num_bytes / bandwidth

    def line_fill_time_s(self, line_bytes: int) -> float:
        """Latency of one cache-line fill (single-channel burst)."""
        return self.transfer_time_s(line_bytes, interleaved=False)

    def reset_stats(self) -> None:
        self.bytes_transferred = 0
