"""RISC-V machine: executes assembled words on the CAPE system model.

Scalar instructions run on the control processor (functional semantics
here, timing via the CP's in-order model with its cache hierarchy); vector
instructions dispatch to the :class:`~repro.engine.system.CAPESystem`
intrinsics exactly as the CP offloads them to the VCU/VMU. Scalar work
between vector instructions is batched into trace blocks so it can hide
in the shadow of outstanding vector instructions (Section III).

Execution halts at ``ecall`` or after ``max_steps``.

Memory model note: the functional store is word-addressable; ``lw``/``sw``
move 32-bit values and ``ld``/``sd`` move full 64-bit values in one slot
(a modelling simplification — addresses still advance by 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.baseline.trace import TraceBlock
from repro.common.errors import ConfigError, ReproError
from repro.engine.system import CAPE32K, CAPESystem
from repro.isa.assembler import assemble
from repro.isa.encoding import Decoded, decode

_MASK64 = (1 << 64) - 1


def _wrap64(value: int) -> int:
    value &= _MASK64
    return value - (1 << 64) if value >> 63 else value


def _wrap32(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value >> 31 else value


@dataclass
class MachineResult:
    """Outcome of a program run."""

    cycles: float
    seconds: float
    instructions: int
    scalar_instructions: int
    vector_instructions: int
    halted: str
    xregs: List[int]


class Machine:
    """A RISC-V RV64 + RVV machine bound to a CAPE system.

    Args:
        program: assembly source text or pre-assembled words.
        cape: the CAPE system (a fresh CAPE32k is built when omitted).
        base_address: load address of the program.
    """

    def __init__(
        self,
        program: Union[str, List[int]],
        cape: Optional[CAPESystem] = None,
        base_address: int = 0,
    ) -> None:
        self.cape = cape if cape is not None else CAPESystem(CAPE32K)
        self.memory = self.cape.memory
        if isinstance(program, str):
            self.words = assemble(program, base_address)
        else:
            self.words = list(program)
        self.base = base_address
        self.pc = base_address
        self.x = [0] * 32
        self.instret = 0
        self.scalar_instructions = 0
        self.vector_instructions = 0
        # Pending scalar block (flushed at vector instructions / halt).
        self._pending_int = 0
        self._pending_branches = 0
        self._pending_loads: List[int] = []
        self._pending_stores: List[int] = []

    # ------------------------------------------------------------------

    def run(self, max_steps: int = 2_000_000) -> MachineResult:
        """Execute until ``ecall`` or the step limit."""
        halted = "step-limit"
        end = self.base + 4 * len(self.words)
        obs = self.cape.observer
        traced = obs.enabled
        run_start = self.cape.stats.cycles
        for _ in range(max_steps):
            if not self.base <= self.pc < end:
                halted = "fell-off-end"
                break
            word = self.words[(self.pc - self.base) // 4]
            inst = decode(word)
            self.instret += 1
            if inst.mnemonic == "ecall":
                halted = "ecall"
                break
            if inst.mnemonic == "fence":
                # Serialise: pending scalar work commits and the vector
                # shadow drains before anything later issues.
                self._flush_scalar()
                self.cape.fence()
                self.scalar_instructions += 1
                self.pc += 4
                continue
            if self._is_vector(inst.mnemonic):
                self._flush_scalar()
                if traced:
                    before = self.cape.stats.cycles
                    self._exec_vector(inst)
                    obs.complete(
                        inst.mnemonic, "interpreter",
                        ts=before, dur=self.cape.stats.cycles - before,
                        tid="machine", pc=self.pc,
                    )
                else:
                    self._exec_vector(inst)
                self.vector_instructions += 1
                self.pc += 4
            else:
                next_pc = self._exec_scalar(inst)
                self.scalar_instructions += 1
                self.pc = next_pc
        self._flush_scalar()
        stats = self.cape.stats
        if traced:
            obs.counter("isa.instructions", kind="scalar").inc(
                self.scalar_instructions
            )
            obs.counter("isa.instructions", kind="vector").inc(
                self.vector_instructions
            )
            obs.complete(
                "program", "runtime",
                ts=run_start, dur=stats.cycles - run_start,
                tid="machine", halted=halted, instructions=self.instret,
            )
        return MachineResult(
            cycles=stats.cycles,
            seconds=stats.seconds,
            instructions=self.instret,
            scalar_instructions=self.scalar_instructions,
            vector_instructions=self.vector_instructions,
            halted=halted,
            xregs=list(self.x),
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _is_vector(mnemonic: str) -> bool:
        return mnemonic.startswith("v")

    def _set_x(self, rd: int, value: int) -> None:
        if rd != 0:
            self.x[rd] = _wrap64(value)

    def _exec_scalar(self, inst: Decoded) -> int:
        m, f = inst.mnemonic, inst.fields
        x = self.x
        pc = self.pc
        next_pc = pc + 4
        self._pending_int += 1

        if m == "add":
            self._set_x(f["rd"], x[f["rs1"]] + x[f["rs2"]])
        elif m == "sub":
            self._set_x(f["rd"], x[f["rs1"]] - x[f["rs2"]])
        elif m == "mul":
            self._set_x(f["rd"], x[f["rs1"]] * x[f["rs2"]])
        elif m == "div":
            a, b = x[f["rs1"]], x[f["rs2"]]
            self._set_x(f["rd"], -1 if b == 0 else int(a / b) if b else 0)
        elif m == "rem":
            a, b = x[f["rs1"]], x[f["rs2"]]
            self._set_x(f["rd"], a if b == 0 else a - int(a / b) * b)
        elif m == "and":
            self._set_x(f["rd"], x[f["rs1"]] & x[f["rs2"]])
        elif m == "or":
            self._set_x(f["rd"], x[f["rs1"]] | x[f["rs2"]])
        elif m == "xor":
            self._set_x(f["rd"], x[f["rs1"]] ^ x[f["rs2"]])
        elif m == "sll":
            self._set_x(f["rd"], x[f["rs1"]] << (x[f["rs2"]] & 63))
        elif m == "srl":
            self._set_x(f["rd"], (x[f["rs1"]] & _MASK64) >> (x[f["rs2"]] & 63))
        elif m == "sra":
            self._set_x(f["rd"], x[f["rs1"]] >> (x[f["rs2"]] & 63))
        elif m == "slt":
            self._set_x(f["rd"], int(x[f["rs1"]] < x[f["rs2"]]))
        elif m == "sltu":
            self._set_x(f["rd"], int((x[f["rs1"]] & _MASK64) < (x[f["rs2"]] & _MASK64)))
        elif m == "addi":
            self._set_x(f["rd"], x[f["rs1"]] + f["imm"])
        elif m == "slti":
            self._set_x(f["rd"], int(x[f["rs1"]] < f["imm"]))
        elif m == "sltiu":
            self._set_x(f["rd"], int((x[f["rs1"]] & _MASK64) < (f["imm"] & _MASK64)))
        elif m == "xori":
            self._set_x(f["rd"], x[f["rs1"]] ^ f["imm"])
        elif m == "ori":
            self._set_x(f["rd"], x[f["rs1"]] | f["imm"])
        elif m == "andi":
            self._set_x(f["rd"], x[f["rs1"]] & f["imm"])
        elif m == "slli":
            self._set_x(f["rd"], x[f["rs1"]] << f["imm"])
        elif m == "srli":
            self._set_x(f["rd"], (x[f["rs1"]] & _MASK64) >> f["imm"])
        elif m == "srai":
            self._set_x(f["rd"], x[f["rs1"]] >> f["imm"])
        elif m == "lui":
            self._set_x(f["rd"], f["imm"] << 12)
        elif m == "auipc":
            self._set_x(f["rd"], pc + (f["imm"] << 12))
        elif m == "lw":
            addr = _wrap64(x[f["rs1"]] + f["imm"])
            self._pending_loads.append(addr)
            self._set_x(f["rd"], _wrap32(self.memory.read_word(addr)))
        elif m == "ld":
            addr = _wrap64(x[f["rs1"]] + f["imm"])
            self._pending_loads.append(addr)
            self._set_x(f["rd"], self.memory.read_word(addr))
        elif m == "sw":
            addr = _wrap64(x[f["rs1"]] + f["imm"])
            self._pending_stores.append(addr)
            self.memory.write_word(addr, x[f["rs2"]] & 0xFFFFFFFF)
        elif m == "sd":
            addr = _wrap64(x[f["rs1"]] + f["imm"])
            self._pending_stores.append(addr)
            self.memory.write_word(addr, x[f["rs2"]])
        elif m in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
            a, b = x[f["rs1"]], x[f["rs2"]]
            au, bu = a & _MASK64, b & _MASK64
            taken = {
                "beq": a == b,
                "bne": a != b,
                "blt": a < b,
                "bge": a >= b,
                "bltu": au < bu,
                "bgeu": au >= bu,
            }[m]
            self._pending_branches += 1
            if taken:
                next_pc = pc + f["imm"]
        elif m == "jal":
            self._set_x(f["rd"], pc + 4)
            next_pc = pc + f["imm"]
        elif m == "jalr":
            self._set_x(f["rd"], pc + 4)
            next_pc = _wrap64(x[f["rs1"]] + f["imm"]) & ~1
        else:
            raise ConfigError(f"scalar interpreter cannot execute {m!r}")
        return next_pc

    def _exec_vector(self, inst: Decoded) -> None:
        m, f = inst.mnemonic, inst.fields
        cape, x = self.cape, self.x
        if m == "vsetvli":
            sew = 8 << ((f.get("imm", 16) >> 3) & 0x7)
            vl = cape.vsetvl(x[f["rs1"]], sew=sew)
            self._set_x(f["rd"], vl)
        elif m == "vle32.v":
            cape.vle(f["vd"], x[f["rs1"]])
        elif m == "vse32.v":
            cape.vse(f["vs3"], x[f["rs1"]])
        elif m == "vlse32.v":
            cape.vlse(f["vd"], x[f["rs1"]], x[f["rs2"]])
        elif m == "vsse32.v":
            cape.vsse(f["vs3"], x[f["rs1"]], x[f["rs2"]])
        elif m == "vlrw.v":
            cape.vlrw(f["vd"], x[f["rs1"]], x[f["rs2"]])
        elif m == "vadd.vv":
            cape.vadd(f["vd"], f["vs2"], f["vs1"])
        elif m == "vadd.vx":
            cape.vadd_vx(f["vd"], f["vs2"], x[f["rs1"]])
        elif m == "vsub.vv":
            cape.vsub(f["vd"], f["vs2"], f["vs1"])
        elif m == "vmul.vv":
            cape.vmul(f["vd"], f["vs2"], f["vs1"])
        elif m == "vand.vv":
            cape.vand(f["vd"], f["vs2"], f["vs1"])
        elif m == "vor.vv":
            cape.vor(f["vd"], f["vs2"], f["vs1"])
        elif m == "vxor.vv":
            cape.vxor(f["vd"], f["vs2"], f["vs1"])
        elif m == "vmseq.vv":
            cape.vmseq(f["vd"], f["vs2"], f["vs1"])
        elif m == "vmseq.vx":
            cape.vmseq_vx(f["vd"], f["vs2"], x[f["rs1"]])
        elif m == "vmslt.vv":
            cape.vmslt(f["vd"], f["vs2"], f["vs1"])
        elif m == "vmsltu.vv":
            cape.vmsltu(f["vd"], f["vs2"], f["vs1"])
        elif m == "vmsne.vv":
            cape.vmsne(f["vd"], f["vs2"], f["vs1"])
        elif m == "vrsub.vx":
            cape.vrsub_vx(f["vd"], f["vs2"], x[f["rs1"]])
        elif m == "vmin.vv":
            cape.vmin(f["vd"], f["vs2"], f["vs1"])
        elif m == "vmax.vv":
            cape.vmax(f["vd"], f["vs2"], f["vs1"])
        elif m == "vminu.vv":
            cape.vminu(f["vd"], f["vs2"], f["vs1"])
        elif m == "vmaxu.vv":
            cape.vmaxu(f["vd"], f["vs2"], f["vs1"])
        elif m == "vsll.vi":
            cape.vsll_vi(f["vd"], f["vs2"], f["imm"])
        elif m == "vsrl.vi":
            cape.vsrl_vi(f["vd"], f["vs2"], f["imm"])
        elif m == "vsra.vi":
            cape.vsra_vi(f["vd"], f["vs2"], f["imm"])
        elif m == "vmerge.vvm":
            cape.vmerge(f["vd"], f["vs1"], f["vs2"], vm=0)
        elif m == "vmv.v.v":
            cape.vmv(f["vd"], f["vs1"])
        elif m == "vmv.v.x":
            cape.vmv_vx(f["vd"], x[f["rs1"]])
        elif m == "vredsum.vs":
            total = cape.vredsum(f["vs2"], signed=True)
            init = int(cape.vregs[f["vs1"], 0])
            cape.vregs[f["vd"], 0] = (total + init) & 0xFFFFFFFF
        else:
            raise ConfigError(f"vector interpreter cannot execute {m!r}")

    def _flush_scalar(self) -> None:
        """Commit pending scalar work to the CP as one trace block."""
        if (
            self._pending_int == 0
            and not self._pending_loads
            and not self._pending_stores
        ):
            return
        block = TraceBlock(
            name="scalar",
            int_ops=self._pending_int,
            branches=self._pending_branches,
            branch_miss_rate=0.02,
            loads=np.asarray(self._pending_loads, dtype=np.int64),
            stores=np.asarray(self._pending_stores, dtype=np.int64),
        )
        self.cape.scalar_block(block)
        self._pending_int = 0
        self._pending_branches = 0
        self._pending_loads = []
        self._pending_stores = []
