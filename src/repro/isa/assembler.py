"""Two-pass RISC-V assembler for the supported RV64I + RVV subset.

Accepts standard assembly syntax: one instruction per line, ``label:``
definitions, ``#`` comments, memory operands as ``offset(reg)``, and
branch/jump targets as labels. Pseudo-instructions ``li``, ``mv``, ``j``,
``ret``, ``nop``, ``ble``, and ``bgt`` expand to base instructions.

Vector syntax follows the RVV spec, e.g.::

    vsetvli t0, a0, e32
    vle32.v v1, (a1)
    vadd.vv v3, v1, v2
    vredsum.vs v4, v3, v0
    vse32.v v3, (a2)
    vlrw.v v2, a3, a4        # CAPE replica load (Section V-G)

Output is a list of 32-bit words, directly executable by
:class:`repro.isa.interpreter.Machine`.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ReproError
from repro.isa import encoding
from repro.isa.registers import parse_vreg, parse_xreg


class AssemblyError(ReproError):
    """A syntax or range error in assembly source."""


_MEM_RE = re.compile(r"^(-?\w*)\s*\(\s*(\w+)\s*\)$")


def _split_operands(rest: str) -> List[str]:
    return [op.strip() for op in rest.split(",") if op.strip()]


def _parse_imm(text: str, symbols: Dict[str, int]) -> int:
    text = text.strip()
    if text in symbols:
        return symbols[text]
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblyError(f"bad immediate or unknown symbol {text!r}") from None


def _parse_mem(operand: str) -> Tuple[int, int]:
    """Parse ``offset(reg)``; returns (offset, reg index)."""
    match = _MEM_RE.match(operand.strip())
    if not match:
        raise AssemblyError(f"bad memory operand {operand!r}")
    off_text, reg = match.groups()
    offset = int(off_text, 0) if off_text else 0
    return offset, parse_xreg(reg)


def _expand_pseudo(mnemonic: str, ops: List[str]) -> List[Tuple[str, List[str]]]:
    """Expand a pseudo-instruction into base instructions."""
    if mnemonic == "nop":
        return [("addi", ["x0", "x0", "0"])]
    if mnemonic == "mv":
        return [("addi", [ops[0], ops[1], "0"])]
    if mnemonic == "li":
        value = int(ops[1], 0)
        if -2048 <= value <= 2047:
            return [("addi", [ops[0], "x0", str(value)])]
        upper = (value + 0x800) >> 12
        if -(1 << 19) <= upper < (1 << 19):
            lower = value - (upper << 12)
            return [
                ("lui", [ops[0], str(upper)]),
                ("addi", [ops[0], ops[0], str(lower)]),
            ]
        # General RV64 constant synthesis: build the value from signed
        # 12-bit chunks interleaved with 12-bit shifts (the classic
        # li expansion for constants beyond lui's reach).
        rd = ops[0]
        chunks = []
        remaining = value
        while remaining < -2048 or remaining > 2047:
            low = ((remaining + 0x800) & 0xFFF) - 0x800
            chunks.append(low)
            remaining = (remaining - low) >> 12
        seq = [("addi", [rd, "x0", str(remaining)])]
        for low in reversed(chunks):
            seq.append(("slli", [rd, rd, "12"]))
            if low:
                seq.append(("addi", [rd, rd, str(low)]))
        return seq
    if mnemonic == "j":
        return [("jal", ["x0", ops[0]])]
    if mnemonic == "ret":
        return [("jalr", ["x0", "0(ra)"])]
    if mnemonic == "ble":  # ble a, b, L  ==  bge b, a, L
        return [("bge", [ops[1], ops[0], ops[2]])]
    if mnemonic == "bgt":
        return [("blt", [ops[1], ops[0], ops[2]])]
    return [(mnemonic, ops)]


def _tokenize(source: str) -> List[Tuple[str, List[str]]]:
    """First pass helper: strip comments, split labels and operands."""
    items: List[Tuple[str, List[str]]] = []
    for raw in source.splitlines():
        line = raw.split("#", 1)[0].strip()
        while line:
            if ":" in line.split()[0] or (line.endswith(":") and " " not in line):
                label, _, line = line.partition(":")
                items.append((".label", [label.strip()]))
                line = line.strip()
                continue
            parts = line.split(None, 1)
            mnemonic = parts[0].lower()
            ops = _split_operands(parts[1]) if len(parts) > 1 else []
            for expanded in _expand_pseudo(mnemonic, ops):
                items.append(expanded)
            line = ""
    return items


def assemble(source: str, base_address: int = 0) -> List[int]:
    """Assemble source text into a list of 32-bit instruction words."""
    items = _tokenize(source)

    # Pass 1: assign addresses to labels.
    symbols: Dict[str, int] = {}
    pc = base_address
    for mnemonic, ops in items:
        if mnemonic == ".label":
            symbols[ops[0]] = pc
        else:
            pc += 4

    # Pass 2: encode.
    words: List[int] = []
    pc = base_address
    for mnemonic, ops in items:
        if mnemonic == ".label":
            continue
        try:
            words.append(_encode_one(mnemonic, ops, pc, symbols))
        except ReproError as exc:
            raise AssemblyError(f"at {pc:#x} ({mnemonic}): {exc}") from exc
        pc += 4
    return words


def _encode_one(
    mnemonic: str, ops: List[str], pc: int, symbols: Dict[str, int]
) -> int:
    m = mnemonic
    if m in encoding._R_OPS:
        return encoding.encode(
            m, rd=parse_xreg(ops[0]), rs1=parse_xreg(ops[1]), rs2=parse_xreg(ops[2])
        )
    if m in encoding._I_OPS:
        return encoding.encode(
            m,
            rd=parse_xreg(ops[0]),
            rs1=parse_xreg(ops[1]),
            imm=_parse_imm(ops[2], symbols),
        )
    if m in encoding._LOAD_OPS:
        offset, rs1 = _parse_mem(ops[1])
        return encoding.encode(m, rd=parse_xreg(ops[0]), rs1=rs1, imm=offset)
    if m in encoding._STORE_OPS:
        offset, rs1 = _parse_mem(ops[1])
        return encoding.encode(m, rs2=parse_xreg(ops[0]), rs1=rs1, imm=offset)
    if m in encoding._BRANCH_OPS:
        target = _parse_imm(ops[2], symbols)
        return encoding.encode(
            m,
            rs1=parse_xreg(ops[0]),
            rs2=parse_xreg(ops[1]),
            imm=target - pc,
        )
    if m in ("lui", "auipc"):
        return encoding.encode(
            m, rd=parse_xreg(ops[0]), imm=_parse_imm(ops[1], symbols)
        )
    if m == "jal":
        if len(ops) == 1:
            ops = ["ra", ops[0]]
        target = _parse_imm(ops[1], symbols)
        return encoding.encode(m, rd=parse_xreg(ops[0]), imm=target - pc)
    if m == "jalr":
        offset, rs1 = _parse_mem(ops[1]) if "(" in ops[1] else (0, parse_xreg(ops[1]))
        return encoding.encode(m, rd=parse_xreg(ops[0]), rs1=rs1, imm=offset)
    if m in ("ecall", "fence"):
        return encoding.encode(m)
    if m == "vsetvli":
        # vtype text: eN selects the element width (vsew in vtype[5:3]);
        # m1/ta/ma grouping and agnosticism flags are accepted and
        # ignored (the model is LMUL=1, tail/mask agnostic).
        vsew = 2  # e32 default
        for token in ops[2:]:
            token = token.strip().lower()
            if token.startswith("e") and token[1:].isdigit():
                width = int(token[1:])
                if width not in (8, 16, 32):
                    raise AssemblyError(f"unsupported element width {token}")
                vsew = {8: 0, 16: 1, 32: 2}[width]
        return encoding.encode(
            m, rd=parse_xreg(ops[0]), rs1=parse_xreg(ops[1]), imm=vsew << 3
        )
    if m == "vle32.v":
        offset, rs1 = _parse_mem(ops[1])
        if offset:
            raise AssemblyError("vle32.v takes a plain (reg) address")
        return encoding.encode(m, vd=parse_vreg(ops[0]), rs1=rs1)
    if m == "vse32.v":
        offset, rs1 = _parse_mem(ops[1])
        if offset:
            raise AssemblyError("vse32.v takes a plain (reg) address")
        return encoding.encode(m, vs3=parse_vreg(ops[0]), rs1=rs1)
    if m == "vlse32.v":
        offset, rs1 = _parse_mem(ops[1])
        return encoding.encode(
            m, vd=parse_vreg(ops[0]), rs1=rs1, rs2=parse_xreg(ops[2])
        )
    if m == "vsse32.v":
        offset, rs1 = _parse_mem(ops[1])
        return encoding.encode(
            m, vs3=parse_vreg(ops[0]), rs1=rs1, rs2=parse_xreg(ops[2])
        )
    if m == "vlrw.v":
        return encoding.encode(
            m,
            vd=parse_vreg(ops[0]),
            rs1=parse_xreg(ops[1]),
            rs2=parse_xreg(ops[2]),
        )
    if m in ("vmv.v.x",):
        return encoding.encode(m, vd=parse_vreg(ops[0]), rs1=parse_xreg(ops[1]))
    if m in ("vmv.v.v",):
        return encoding.encode(m, vd=parse_vreg(ops[0]), vs1=parse_vreg(ops[1]))
    if m == "vmerge.vvm":
        return encoding.encode(
            m,
            vd=parse_vreg(ops[0]),
            vs2=parse_vreg(ops[1]),
            vs1=parse_vreg(ops[2]),
            vm=0,
        )
    if m in encoding._V_OPS:
        # Standard RVV operand order: vop.vv vd, vs2, vs1 / vop.vx vd, vs2, rs1.
        if m.endswith(".vi"):
            return encoding.encode(
                m,
                vd=parse_vreg(ops[0]),
                vs2=parse_vreg(ops[1]),
                imm=_parse_imm(ops[2], symbols),
            )
        if m.endswith(".vx"):
            return encoding.encode(
                m,
                vd=parse_vreg(ops[0]),
                vs2=parse_vreg(ops[1]),
                rs1=parse_xreg(ops[2]),
            )
        return encoding.encode(
            m,
            vd=parse_vreg(ops[0]),
            vs2=parse_vreg(ops[1]),
            vs1=parse_vreg(ops[2]),
        )
    raise AssemblyError(f"unknown mnemonic {mnemonic!r}")
