"""Register-name parsing: numeric and ABI names for x-regs, v-regs.

Supports ``x0``-``x31``, the standard ABI mnemonics (``zero``, ``ra``,
``sp``, ``a0``-``a7``, ``t0``-``t6``, ``s0``-``s11``), and vector
registers ``v0``-``v31``.
"""

from __future__ import annotations

from typing import Dict

from repro.common.errors import ConfigError

_ABI_NAMES: Dict[str, int] = {
    "zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
    "t0": 5, "t1": 6, "t2": 7,
    "s0": 8, "fp": 8, "s1": 9,
    "a0": 10, "a1": 11, "a2": 12, "a3": 13,
    "a4": 14, "a5": 15, "a6": 16, "a7": 17,
    "s2": 18, "s3": 19, "s4": 20, "s5": 21, "s6": 22, "s7": 23,
    "s8": 24, "s9": 25, "s10": 26, "s11": 27,
    "t3": 28, "t4": 29, "t5": 30, "t6": 31,
}


def parse_xreg(name: str) -> int:
    """Parse a scalar register name into its index."""
    name = name.strip().lower()
    if name in _ABI_NAMES:
        return _ABI_NAMES[name]
    if name.startswith("x") and name[1:].isdigit():
        idx = int(name[1:])
        if 0 <= idx < 32:
            return idx
    raise ConfigError(f"unknown scalar register {name!r}")


def parse_vreg(name: str) -> int:
    """Parse a vector register name into its index."""
    name = name.strip().lower()
    if name.startswith("v") and name[1:].isdigit():
        idx = int(name[1:])
        if 0 <= idx < 32:
            return idx
    raise ConfigError(f"unknown vector register {name!r}")


def xreg_name(idx: int) -> str:
    """Canonical name of a scalar register index."""
    if not 0 <= idx < 32:
        raise ConfigError(f"register index {idx} out of range")
    return f"x{idx}"
