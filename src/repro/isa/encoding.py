"""32-bit RISC-V instruction encoding and decoding.

Implements the standard base formats (R/I/S/B/U/J), the OP-V major opcode
for vector-arithmetic instructions (funct6/vm/vs2/vs1/funct3/vd), the
vector unit-stride and strided loads/stores under LOAD-FP/STORE-FP, and
``vsetvli``. The CAPE-specific replica vector load ``vlrw.v`` (Section
V-G) is encoded under the *custom-0* opcode, as a real implementation
would.

Operand field names follow the spec: ``rd``, ``rs1``, ``rs2``, ``imm``
for scalar formats; ``vd``, ``vs1``, ``vs2`` for OP-V (note the RVV
convention ``vop.vv vd, vs2, vs1``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.common.errors import ConfigError

# Major opcodes.
OP = 0b0110011
OP_IMM = 0b0010011
LOAD = 0b0000011
STORE = 0b0100011
BRANCH = 0b1100011
LUI = 0b0110111
AUIPC = 0b0010111
JAL = 0b1101111
JALR = 0b1100111
SYSTEM = 0b1110011
OP_V = 0b1010111
LOAD_FP = 0b0000111
STORE_FP = 0b0100111
CUSTOM_0 = 0b0001011  # vlrw.v

#: R-type scalar ops: mnemonic -> (funct3, funct7).
_R_OPS: Dict[str, Tuple[int, int]] = {
    "add": (0b000, 0b0000000),
    "sub": (0b000, 0b0100000),
    "sll": (0b001, 0b0000000),
    "slt": (0b010, 0b0000000),
    "sltu": (0b011, 0b0000000),
    "xor": (0b100, 0b0000000),
    "srl": (0b101, 0b0000000),
    "sra": (0b101, 0b0100000),
    "or": (0b110, 0b0000000),
    "and": (0b111, 0b0000000),
    "mul": (0b000, 0b0000001),
    "div": (0b100, 0b0000001),
    "rem": (0b110, 0b0000001),
}

#: I-type ALU ops: mnemonic -> funct3.
_I_OPS: Dict[str, int] = {
    "addi": 0b000,
    "slti": 0b010,
    "sltiu": 0b011,
    "xori": 0b100,
    "ori": 0b110,
    "andi": 0b111,
    "slli": 0b001,
    "srli": 0b101,
    "srai": 0b101,  # distinguished by imm[11:5]
}

_LOAD_OPS: Dict[str, int] = {"lw": 0b010, "ld": 0b011}
_STORE_OPS: Dict[str, int] = {"sw": 0b010, "sd": 0b011}
_BRANCH_OPS: Dict[str, int] = {
    "beq": 0b000, "bne": 0b001, "blt": 0b100,
    "bge": 0b101, "bltu": 0b110, "bgeu": 0b111,
}

#: OP-V arithmetic: mnemonic -> (funct6, funct3). OPIVV=000, OPIVX=100,
#: OPMVV=010 per the RVV spec.
_V_OPS: Dict[str, Tuple[int, int]] = {
    "vadd.vv": (0b000000, 0b000),
    "vadd.vx": (0b000000, 0b100),
    "vsub.vv": (0b000010, 0b000),
    "vrsub.vx": (0b000011, 0b100),
    "vminu.vv": (0b000100, 0b000),
    "vmin.vv": (0b000101, 0b000),
    "vmaxu.vv": (0b000110, 0b000),
    "vmax.vv": (0b000111, 0b000),
    "vand.vv": (0b001001, 0b000),
    "vor.vv": (0b001010, 0b000),
    "vxor.vv": (0b001011, 0b000),
    "vmseq.vv": (0b011000, 0b000),
    "vmseq.vx": (0b011000, 0b100),
    "vmsne.vv": (0b011001, 0b000),
    "vmsltu.vv": (0b011010, 0b000),
    "vmslt.vv": (0b011011, 0b000),
    "vmerge.vvm": (0b010111, 0b000),
    "vmv.v.v": (0b010111, 0b000),  # vmerge with vm=1, vs2=0
    "vmv.v.x": (0b010111, 0b100),
    "vmul.vv": (0b100101, 0b010),
    "vredsum.vs": (0b000000, 0b010),
    # OPIVI forms (funct3 = 011): 5-bit unsigned immediate in rs1.
    "vsll.vi": (0b100101, 0b011),
    "vsrl.vi": (0b101000, 0b011),
    "vsra.vi": (0b101001, 0b011),
}


def _check_reg(value: int, what: str) -> int:
    if not 0 <= value < 32:
        raise ConfigError(f"{what} {value} out of range")
    return value


def _check_imm(imm: int, bits: int, what: str) -> int:
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if not lo <= imm <= hi:
        raise ConfigError(f"{what} {imm} outside [{lo}, {hi}]")
    return imm & ((1 << bits) - 1)


def encode(mnemonic: str, **f) -> int:
    """Encode one instruction into its 32-bit word.

    Field keywords by format: R (rd, rs1, rs2); I (rd, rs1, imm);
    loads (rd, rs1, imm); stores (rs2, rs1, imm); branches (rs1, rs2,
    imm); U/J (rd, imm); OP-V (vd, vs1, vs2 / rs1, vm); vector memory
    (vd/vs3, rs1, and rs2 for strided); vsetvli (rd, rs1, imm=vtype).
    """
    m = mnemonic.lower()
    if m in _R_OPS:
        f3, f7 = _R_OPS[m]
        return (
            (f7 << 25) | (_check_reg(f["rs2"], "rs2") << 20)
            | (_check_reg(f["rs1"], "rs1") << 15) | (f3 << 12)
            | (_check_reg(f["rd"], "rd") << 7) | OP
        )
    if m in _I_OPS:
        f3 = _I_OPS[m]
        imm = f["imm"]
        if m in ("slli", "srli", "srai"):
            if not 0 <= imm < 64:
                raise ConfigError(f"shift amount {imm} out of range")
            top = 0b010000 if m == "srai" else 0
            imm12 = (top << 6) | imm
        else:
            imm12 = _check_imm(imm, 12, "immediate")
        return (
            (imm12 << 20) | (_check_reg(f["rs1"], "rs1") << 15)
            | (f3 << 12) | (_check_reg(f["rd"], "rd") << 7) | OP_IMM
        )
    if m in _LOAD_OPS:
        imm12 = _check_imm(f.get("imm", 0), 12, "offset")
        return (
            (imm12 << 20) | (_check_reg(f["rs1"], "rs1") << 15)
            | (_LOAD_OPS[m] << 12) | (_check_reg(f["rd"], "rd") << 7) | LOAD
        )
    if m in _STORE_OPS:
        imm12 = _check_imm(f.get("imm", 0), 12, "offset")
        return (
            ((imm12 >> 5) << 25) | (_check_reg(f["rs2"], "rs2") << 20)
            | (_check_reg(f["rs1"], "rs1") << 15) | (_STORE_OPS[m] << 12)
            | ((imm12 & 0x1F) << 7) | STORE
        )
    if m in _BRANCH_OPS:
        imm = f["imm"]
        if imm % 2:
            raise ConfigError("branch offset must be even")
        imm13 = _check_imm(imm, 13, "branch offset")
        return (
            (((imm13 >> 12) & 1) << 31) | (((imm13 >> 5) & 0x3F) << 25)
            | (_check_reg(f["rs2"], "rs2") << 20)
            | (_check_reg(f["rs1"], "rs1") << 15)
            | (_BRANCH_OPS[m] << 12) | (((imm13 >> 1) & 0xF) << 8)
            | (((imm13 >> 11) & 1) << 7) | BRANCH
        )
    if m in ("lui", "auipc"):
        imm20 = f["imm"] & 0xFFFFF
        opcode = LUI if m == "lui" else AUIPC
        return (imm20 << 12) | (_check_reg(f["rd"], "rd") << 7) | opcode
    if m == "jal":
        imm = f["imm"]
        imm21 = _check_imm(imm, 21, "jump offset")
        return (
            (((imm21 >> 20) & 1) << 31) | (((imm21 >> 1) & 0x3FF) << 21)
            | (((imm21 >> 11) & 1) << 20) | (((imm21 >> 12) & 0xFF) << 12)
            | (_check_reg(f["rd"], "rd") << 7) | JAL
        )
    if m == "jalr":
        imm12 = _check_imm(f.get("imm", 0), 12, "offset")
        return (
            (imm12 << 20) | (_check_reg(f["rs1"], "rs1") << 15)
            | (_check_reg(f["rd"], "rd") << 7) | JALR
        )
    if m == "ecall":
        return SYSTEM
    if m == "fence":
        return 0b0001111  # MISC-MEM, fields ignored by this model
    if m == "vsetvli":
        vtype = f.get("imm", 0) & 0x7FF
        return (
            (vtype << 20) | (_check_reg(f["rs1"], "rs1") << 15)
            | (0b111 << 12) | (_check_reg(f["rd"], "rd") << 7) | OP_V
        )
    if m in _V_OPS:
        f6, f3 = _V_OPS[m]
        vm = 0 if m == "vmerge.vvm" else f.get("vm", 1)
        vs2 = f.get("vs2", 0)
        if f3 == 0b011:  # OPIVI: 5-bit unsigned immediate
            imm = f.get("imm", 0)
            if not 0 <= imm < 32:
                raise ConfigError(f"vector immediate {imm} outside [0, 32)")
            src1 = imm
        else:
            src1 = f.get("vs1", f.get("rs1", 0))
        return (
            (f6 << 26) | ((vm & 1) << 25) | (_check_reg(vs2, "vs2") << 20)
            | (_check_reg(src1, "vs1/rs1") << 15) | (f3 << 12)
            | (_check_reg(f["vd"], "vd") << 7) | OP_V
        )
    if m == "vle32.v":
        return (
            (0b1 << 25) | (_check_reg(f["rs1"], "rs1") << 15)
            | (0b110 << 12) | (_check_reg(f["vd"], "vd") << 7) | LOAD_FP
        )
    if m == "vse32.v":
        return (
            (0b1 << 25) | (_check_reg(f["rs1"], "rs1") << 15)
            | (0b110 << 12) | (_check_reg(f["vs3"], "vs3") << 7) | STORE_FP
        )
    if m == "vlse32.v":
        return (
            (0b10 << 26) | (0b1 << 25) | (_check_reg(f["rs2"], "rs2") << 20)
            | (_check_reg(f["rs1"], "rs1") << 15) | (0b110 << 12)
            | (_check_reg(f["vd"], "vd") << 7) | LOAD_FP
        )
    if m == "vsse32.v":
        return (
            (0b10 << 26) | (0b1 << 25) | (_check_reg(f["rs2"], "rs2") << 20)
            | (_check_reg(f["rs1"], "rs1") << 15) | (0b110 << 12)
            | (_check_reg(f["vs3"], "vs3") << 7) | STORE_FP
        )
    if m == "vlrw.v":
        return (
            (_check_reg(f["rs2"], "rs2") << 20)
            | (_check_reg(f["rs1"], "rs1") << 15)
            | (_check_reg(f["vd"], "vd") << 7) | CUSTOM_0
        )
    raise ConfigError(f"cannot encode unknown mnemonic {mnemonic!r}")


@dataclass(frozen=True)
class Decoded:
    """A decoded instruction: mnemonic plus named fields."""

    mnemonic: str
    fields: Dict[str, int]


def _sext(value: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return (value ^ sign) - sign


def decode(word: int) -> Decoded:
    """Decode a 32-bit instruction word back to mnemonic + fields."""
    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    f3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    f7 = (word >> 25) & 0x7F

    if opcode == OP:
        for m, (mf3, mf7) in _R_OPS.items():
            if f3 == mf3 and f7 == mf7:
                return Decoded(m, {"rd": rd, "rs1": rs1, "rs2": rs2})
    if opcode == OP_IMM:
        imm = _sext(word >> 20, 12)
        if f3 == 0b001:
            return Decoded("slli", {"rd": rd, "rs1": rs1, "imm": (word >> 20) & 0x3F})
        if f3 == 0b101:
            shamt = (word >> 20) & 0x3F
            m = "srai" if (word >> 26) == 0b010000 else "srli"
            return Decoded(m, {"rd": rd, "rs1": rs1, "imm": shamt})
        for m, mf3 in _I_OPS.items():
            if f3 == mf3 and m not in ("slli", "srli", "srai"):
                return Decoded(m, {"rd": rd, "rs1": rs1, "imm": imm})
    if opcode == LOAD:
        for m, mf3 in _LOAD_OPS.items():
            if f3 == mf3:
                return Decoded(m, {"rd": rd, "rs1": rs1, "imm": _sext(word >> 20, 12)})
    if opcode == STORE:
        imm = _sext((f7 << 5) | rd, 12)
        for m, mf3 in _STORE_OPS.items():
            if f3 == mf3:
                return Decoded(m, {"rs1": rs1, "rs2": rs2, "imm": imm})
    if opcode == BRANCH:
        imm = (
            (((word >> 31) & 1) << 12) | (((word >> 7) & 1) << 11)
            | (((word >> 25) & 0x3F) << 5) | (((word >> 8) & 0xF) << 1)
        )
        imm = _sext(imm, 13)
        for m, mf3 in _BRANCH_OPS.items():
            if f3 == mf3:
                return Decoded(m, {"rs1": rs1, "rs2": rs2, "imm": imm})
    if opcode in (LUI, AUIPC):
        m = "lui" if opcode == LUI else "auipc"
        return Decoded(m, {"rd": rd, "imm": _sext(word >> 12, 20)})
    if opcode == JAL:
        imm = (
            (((word >> 31) & 1) << 20) | (((word >> 12) & 0xFF) << 12)
            | (((word >> 20) & 1) << 11) | (((word >> 21) & 0x3FF) << 1)
        )
        return Decoded("jal", {"rd": rd, "imm": _sext(imm, 21)})
    if opcode == JALR:
        return Decoded("jalr", {"rd": rd, "rs1": rs1, "imm": _sext(word >> 20, 12)})
    if opcode == SYSTEM and word == SYSTEM:
        return Decoded("ecall", {})
    if opcode == 0b0001111:
        return Decoded("fence", {})
    if opcode == OP_V:
        if f3 == 0b111:
            return Decoded("vsetvli", {"rd": rd, "rs1": rs1, "imm": (word >> 20) & 0x7FF})
        f6 = (word >> 26) & 0x3F
        vm = (word >> 25) & 1
        for m, (mf6, mf3) in _V_OPS.items():
            if f6 == mf6 and f3 == mf3:
                if m == "vmerge.vvm" and vm == 1:
                    continue  # vm=1 under this funct6 is vmv.v.v
                if m == "vmv.v.v" and vm == 0:
                    continue
                key = {0b100: "rs1", 0b011: "imm"}.get(f3, "vs1")
                return Decoded(m, {"vd": rd, key: rs1, "vs2": rs2, "vm": vm})
    if opcode == LOAD_FP and f3 == 0b110:
        mop = (word >> 26) & 0x3
        if mop == 0b10:
            return Decoded("vlse32.v", {"vd": rd, "rs1": rs1, "rs2": rs2})
        return Decoded("vle32.v", {"vd": rd, "rs1": rs1})
    if opcode == STORE_FP and f3 == 0b110:
        mop = (word >> 26) & 0x3
        if mop == 0b10:
            return Decoded("vsse32.v", {"vs3": rd, "rs1": rs1, "rs2": rs2})
        return Decoded("vse32.v", {"vs3": rd, "rs1": rs1})
    if opcode == CUSTOM_0:
        return Decoded("vlrw.v", {"vd": rd, "rs1": rs1, "rs2": rs2})
    raise ConfigError(f"cannot decode word {word:#010x}")
