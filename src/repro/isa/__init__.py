"""RISC-V ISA layer: registers, encodings, assembler, and interpreter.

CAPE is programmable through the standard RISC-V ISA with vector
extensions (Section V-A): scalar RV64I code runs on the control processor
while RVV instructions are offloaded to the VCU/VMU. This package
implements the subset needed by the paper's workloads:

* scalar: the RV64I ALU/branch/load-store core (plus M-extension ``mul``),
* vector: ``vsetvli``, unit-stride ``vle32.v``/``vse32.v``, the Table I
  instruction set, and the CAPE-specific replica load ``vlrw.v``.

The assembler produces real 32-bit RISC-V encodings (standard formats
R/I/S/B/U/J and the OP-V major opcode for vector instructions); the
interpreter decodes them back and executes scalar instructions on the
control-processor model and vector instructions on a
:class:`~repro.engine.system.CAPESystem`.
"""

from repro.isa.assembler import assemble, AssemblyError
from repro.isa.encoding import decode, encode
from repro.isa.interpreter import Machine, MachineResult
from repro.isa.registers import parse_vreg, parse_xreg

__all__ = [
    "AssemblyError",
    "Machine",
    "MachineResult",
    "assemble",
    "decode",
    "encode",
    "parse_vreg",
    "parse_xreg",
]
