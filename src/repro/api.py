"""Stable public facade for the CAPE reproduction.

The library is layered bottom-up (circuits, CSB, assoc, engine, runtime,
obs) and each layer is importable on its own — but the deep module paths
are an implementation detail that may shift between releases. This
module is the supported surface: everything a user script needs is
importable from ``repro.api``, and these names are kept stable.

Three levels of entry:

* :func:`submit` — the unified submission API: one call takes
  :class:`JobSpec` descriptions and runs them on a single device
  (``pool=None``), an in-process :class:`DevicePool` / process-sharded
  :class:`ServePool` (``pool=<pool instance>``), or a fresh asyncio
  :class:`Gateway` (``pool=ServeConfig(...)``) — returning
  :class:`JobResult`\\ s everywhere. Execution shape (plan cache,
  threads, workers, gang mode) rides in one :class:`ExecConfig`.
* :class:`Device` — a CAPE system plus its memory and an assembler-aware
  ``run`` method; pick a design point (:data:`CAPE32K` /
  :data:`CAPE131K`) and optionally a bit-level execution backend.
* the re-exported building blocks (:class:`CAPESystem`, :class:`Job`,
  :class:`DevicePool`, the error taxonomy) for everything else.

The older per-surface entry points — :func:`run`, :func:`run_pool`,
:func:`serve` — remain as thin deprecated shims over the same machinery
(they emit :class:`DeprecationWarning`; new code should use
:func:`submit`, or :meth:`Device.run` for ad-hoc assembly programs).

Execution backends
------------------

Every device runs the paper's functional + timing model. Passing
``backend="bitplane"`` (vectorized) or ``backend="reference"``
(per-subarray, slow) additionally executes each vector intrinsic as real
associative microcode on a bit-level CSB mirror and cross-validates the
results bit-exactly — see ``docs/BACKENDS.md``.

Observability
-------------

Every layer publishes counters and trace events into an
:class:`Observer` (``Device(..., observer=...)``,
``DevicePool(..., observer=...)``); the default null observer costs one
attribute check. ``Device.run(..., trace=True)`` attaches a fresh
observer for the run and hands back its tracer on the result
(``result.trace.write_chrome("run.trace.json")`` opens in Perfetto).
See ``docs/OBSERVABILITY.md``.

Stats surfaces share one contract — :class:`CAPERunStats` (one run),
:class:`TelemetryReport` (a pool), :class:`ProfileReport` (per-kernel
breakdowns) all offer ``.as_dict()`` and ``.summary()``.

Fault injection
---------------

A seeded :class:`FaultPlan` (stuck bitcells, transient tag flips, chain
kills, HBM transfer corruption, whole-device death) drives the
self-healing runtime: ``DevicePool(..., fault_plan=plan)`` retries,
quarantines, and re-places deterministically. See ``docs/FAULTS.md``.

Example::

    from repro.api import CAPE32K, Device

    dev = Device(CAPE32K, backend="bitplane")
    dev.write_words(0x1000, [1, 2, 3, 4])
    result = dev.run('''
        li a0, 4
        li a1, 0x1000
        vsetvli t0, a0, e32
        vle32.v v1, (a1)
        vadd.vv v2, v1, v1
        vse32.v v2, (a1)
        ecall
    ''')
    print(dev.read_words(0x1000, 4), result.cycles)
    print(result.stats.summary())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Union

import numpy as np

from repro.assoc.emulator import AssociativeEmulator, golden
from repro.common.deprecation import warn_once_per_site
from repro.common.errors import (
    AdmissionError,
    CapacityError,
    ConfigError,
    CSBCapacityError,
    DeviceFailedError,
    FaultInjectionError,
    PageFault,
    PoolStalledError,
    ProtocolError,
    QuotaExceededError,
    ReproError,
    RetryExhaustedError,
    SpillCorruptionError,
    DeadlineExceededError,
    WorkerDiedError,
    WorkerTimeoutError,
    WorkerUnresponsiveError,
)
from repro.csb import BACKEND_NAMES, CSB, Chain, ExecutionBackend, Subarray
from repro.engine.system import (
    CAPE32K,
    CAPE131K,
    CAPEConfig,
    CAPESystem,
)
from repro.faults import (
    ChainKill,
    DeviceKill,
    FaultInjector,
    FaultPlan,
    ReplyDrop,
    ReplyGarble,
    SlowWorker,
    StuckBit,
    TagFlip,
    TransferFault,
    TransportSchedule,
    WorkerHang,
    WorkerKill,
)
from repro.isa.interpreter import Machine, MachineResult
from repro.memory.mainmem import WordMemory
from repro.obs import (
    CAPERunStats,
    MetricsRegistry,
    NullObserver,
    Observer,
    ProfileReport,
    Tracer,
)
from repro.gang import GANG_MODES, GangOutcome, run_ganged
from repro.plan import (
    GLOBAL_PLAN_CACHE,
    SUPERPLAN_MODES,
    CompiledPlan,
    PlanCache,
    Superplan,
)
from repro.runtime import (
    DevicePool,
    ExecConfig,
    Footprint,
    Job,
    JobResult,
    SegmentedJob,
    TelemetryReport,
    ThreadParallelismWarning,
)
from repro.serve import (
    CircuitBreaker,
    Gateway,
    GatewayReport,
    JobSpec,
    ResilienceConfig,
    ServeConfig,
    ServePool,
    ServeResult,
    TenantQuota,
    register_kernel,
)

__all__ = [
    "AdmissionError",
    "BACKEND_NAMES",
    "CAPE131K",
    "CAPE32K",
    "CAPEConfig",
    "CAPERunStats",
    "CAPESystem",
    "CSB",
    "CSBCapacityError",
    "CapacityError",
    "Chain",
    "ChainKill",
    "CircuitBreaker",
    "ConfigError",
    "DeadlineExceededError",
    "Device",
    "DeviceFailedError",
    "DeviceKill",
    "DevicePool",
    "CompiledPlan",
    "ExecConfig",
    "ExecutionBackend",
    "GANG_MODES",
    "GangOutcome",
    "FaultInjectionError",
    "FaultInjector",
    "FaultPlan",
    "Footprint",
    "GLOBAL_PLAN_CACHE",
    "Gateway",
    "GatewayReport",
    "Job",
    "JobResult",
    "JobSpec",
    "Machine",
    "MachineResult",
    "MetricsRegistry",
    "NullObserver",
    "Observer",
    "PageFault",
    "PlanCache",
    "PoolStalledError",
    "ProfileReport",
    "ProtocolError",
    "QuotaExceededError",
    "ReplyDrop",
    "ReplyGarble",
    "ReproError",
    "ResilienceConfig",
    "RetryExhaustedError",
    "RunResult",
    "SegmentedJob",
    "ServeConfig",
    "ServePool",
    "ServeResult",
    "SlowWorker",
    "SpillCorruptionError",
    "StuckBit",
    "SUPERPLAN_MODES",
    "Subarray",
    "Superplan",
    "TagFlip",
    "TelemetryReport",
    "TenantQuota",
    "ThreadParallelismWarning",
    "Tracer",
    "TransferFault",
    "TransportSchedule",
    "WorkerDiedError",
    "WorkerHang",
    "WorkerKill",
    "WorkerTimeoutError",
    "WorkerUnresponsiveError",
    "AssociativeEmulator",
    "golden",
    "plan_cache_snapshot",
    "register_kernel",
    "run",
    "run_ganged",
    "run_pool",
    "serve",
    "submit",
]


def plan_cache_snapshot(cache: Optional[PlanCache] = None) -> dict:
    """One consistent read of a plan cache's counters.

    The single stats surface for every tier: benchmarks, the serving
    workers' reply payloads, and ad-hoc scripts all read the same
    :meth:`PlanCache.snapshot` dict — ``entries`` / ``superplans`` /
    ``hits`` / ``misses`` / ``compiles`` / ``compile_ns`` /
    ``affinity_hits`` / ``affinity_misses``. Defaults to the
    process-wide :data:`GLOBAL_PLAN_CACHE`; pass a private
    :class:`PlanCache` to read that one instead.
    """
    return (GLOBAL_PLAN_CACHE if cache is None else cache).snapshot()


@dataclass
class RunResult:
    """Outcome of :meth:`Device.run` / :func:`run`.

    The interesting fields up front — ``values`` (the scalar register
    file at halt), ``cycles``, ``stats`` (the run's
    :class:`CAPERunStats`), and ``trace`` (a :class:`Tracer` when the
    run was traced, else ``None``). Every :class:`MachineResult` field
    (``seconds``, ``instructions``, ``halted``, ``xregs``, ...) remains
    available by delegation, so existing callers keep working.
    """

    values: list
    cycles: float
    stats: CAPERunStats
    trace: Optional[Tracer] = None
    machine: Optional[MachineResult] = None

    def __getattr__(self, name: str):
        machine = object.__getattribute__(self, "machine")
        if machine is not None and not name.startswith("_"):
            return getattr(machine, name)
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def as_dict(self) -> dict:
        """JSON-able export (stats flattened; trace omitted)."""
        return {
            "values": list(self.values),
            "cycles": self.cycles,
            "halted": self.machine.halted if self.machine else None,
            "instructions": self.machine.instructions if self.machine else None,
            "stats": self.stats.as_dict(),
        }

    def summary(self) -> str:
        """The run's one-paragraph stats summary."""
        return self.stats.summary()


class Device:
    """One CAPE device: a system model plus convenience entry points.

    Args:
        config: design point (:data:`CAPE32K`, :data:`CAPE131K`, or any
            :class:`CAPEConfig`).
        backend: optional bit-level execution backend —
            ``"bitplane"`` (vectorized) or ``"reference"`` (per-subarray
            loop). ``None`` (default) runs the functional/timing model
            only. See :data:`BACKEND_NAMES`.
        memory_bytes: functional main-memory size (defaults to the
            system's 64 MiB store).
        accounting: instruction accounting mode (``"paper"`` keeps the
            published methodology).
        observer: optional :class:`Observer` receiving counters and
            trace events from every layer; defaults to the shared
            zero-overhead null observer.
        plan_cache: microcode plan cache — ``True`` (default) shares
            :data:`GLOBAL_PLAN_CACHE` across all devices in the
            process, ``False``/``None`` re-walks the microcode FSM per
            dispatch, or pass a private :class:`PlanCache`. Purely a
            host-speed knob; cycle/energy accounting is identical
            (``docs/PERFORMANCE.md``).
        superplan: whole-kernel superplan mode (``True`` / ``False`` /
            ``"auto"``): inside a :meth:`CAPESystem.superplan_scope`,
            eligible mirror microcode is fused into one cached
            whole-kernel trace and replayed in a single pass. Also a
            pure host-speed knob — results, cycles, and microop totals
            are bit-identical either way (``docs/PERFORMANCE.md``).
    """

    def __init__(
        self,
        config: CAPEConfig = CAPE32K,
        backend: Optional[str] = None,
        memory_bytes: Optional[int] = None,
        accounting: str = "paper",
        observer: Optional[Observer] = None,
        plan_cache=True,
        superplan=False,
    ) -> None:
        self.system = CAPESystem(
            config,
            memory=WordMemory(memory_bytes) if memory_bytes is not None else None,
            accounting=accounting,
            backend=backend,
            observer=observer,
            plan_cache=plan_cache,
            superplan=superplan,
        )

    # -- identity ------------------------------------------------------

    @property
    def config(self) -> CAPEConfig:
        """The device's design point."""
        return self.system.config

    @property
    def backend(self) -> Optional[str]:
        """Active bit-level backend name, or ``None`` (functional only)."""
        return self.system.backend

    def set_backend(self, backend: Optional[str]) -> None:
        """Switch the bit-level backend (state is re-mirrored)."""
        self.system.set_backend(backend)

    @property
    def max_vl(self) -> int:
        """Maximum vector length of the design point."""
        return self.system.config.max_vl

    @property
    def stats(self) -> CAPERunStats:
        """Cumulative run statistics (cycles, energy, instruction mix)."""
        return self.system.stats

    @property
    def observer(self) -> Observer:
        """The observer the device publishes into (possibly null)."""
        return self.system.observer

    def attach_observer(self, observer: Optional[Observer]) -> None:
        """(Re)thread an observer through every layer of the device."""
        self.system.attach_observer(observer)

    def __repr__(self) -> str:
        backend = f", backend={self.backend!r}" if self.backend else ""
        return f"Device({self.config.name}{backend})"

    # -- memory --------------------------------------------------------

    @property
    def memory(self) -> WordMemory:
        """The device's word-addressed functional memory."""
        return self.system.memory

    def write_words(self, addr: int, values: Sequence[int]) -> None:
        """Write 32-bit words to main memory at byte address ``addr``."""
        self.system.memory.write_words(addr, np.asarray(values))

    def read_words(self, addr: int, count: int) -> np.ndarray:
        """Read ``count`` 32-bit words from byte address ``addr``."""
        return self.system.memory.read_words(addr, count)

    # -- execution -----------------------------------------------------

    def run(
        self,
        program: str,
        max_steps: int = 2_000_000,
        trace: bool = False,
    ) -> RunResult:
        """Assemble and execute a RISC-V (RV64I + RVV subset) program.

        With ``trace=True`` and no live observer attached, a fresh
        :class:`Observer` is threaded through the device for this run
        and its :class:`Tracer` is returned on ``result.trace``. A
        device built with an enabled observer always records; its tracer
        rides along on the result.
        """
        attached = None
        if trace and not self.system.observer.enabled:
            attached = Observer()
            self.system.attach_observer(attached)
        try:
            machine = Machine(program, self.system).run(max_steps=max_steps)
        finally:
            if attached is not None:
                self.system.attach_observer(None)
        observer = attached if attached is not None else self.system.observer
        return RunResult(
            values=list(machine.xregs),
            cycles=machine.cycles,
            stats=self.system.stats,
            trace=observer.tracer if observer.enabled else None,
            machine=machine,
        )

    def run_workload(self, workload: Any) -> Any:
        """Run a ``repro.workloads`` kernel on this device."""
        return workload.run_cape(self.system)

    def submit(self, body: Callable[[CAPESystem], Any]) -> Any:
        """Run an intrinsic-level callable against the device's system."""
        return body(self.system)

    def reset(self) -> None:
        """Clear vector state, statistics, and the bit-level mirror."""
        self.system.reset()


def _serve_result_to_job_result(result: ServeResult) -> JobResult:
    return JobResult(
        output=result.output,
        validated=bool(result.validated),
        service_cycles=result.service_cycles,
        energy_j=result.energy_j,
        spills=result.spills,
        restores=result.restores,
        error=result.error,
    )


def submit(
    specs: Union[JobSpec, Sequence[JobSpec]],
    *,
    pool: Union[None, DevicePool, ServeConfig] = None,
    exec: Optional[ExecConfig] = None,
    config: CAPEConfig = CAPE32K,
    backend: Optional[str] = None,
    observer: Optional[Observer] = None,
    interarrival_cycles: float = 0.0,
) -> Union[JobResult, List[JobResult]]:
    """The unified submission API: specs in, :class:`JobResult`\\ s out.

    One entry point spans every execution surface; ``pool=`` selects it:

    * ``None`` — a fresh single :class:`Device` of ``config`` (and
      optional ``backend``) executes the specs sequentially.
    * a :class:`DevicePool` or :class:`ServePool` *instance* — the specs
      are submitted (spaced by ``interarrival_cycles``) and the pool is
      drained. The pool's own construction fixed its execution shape,
      so ``exec=`` / ``config`` / ``backend`` / ``observer`` must not
      also be given.
    * a :class:`ServeConfig` — a fresh asyncio :class:`Gateway` serves
      the specs (the :func:`serve` path); ``exec=`` may override its
      ``workers`` / ``gang`` / ``wire`` / ``batch_window_s``.

    ``exec`` is the one :class:`ExecConfig` for plan-cache, thread,
    worker, gang, and serving data-plane knobs (``wire`` picks the
    shared-memory vs pickle payload path, ``batch_window_s`` the
    gateway's micro-batching window — docs/SERVING.md). Returns a
    single :class:`JobResult` when ``specs`` is a single
    :class:`JobSpec`, else a list in submission order. Jobs that need
    the legacy callable form can be bridged with
    :meth:`JobSpec.from_job` / :meth:`Job.from_spec`.
    """
    single = isinstance(specs, JobSpec)
    spec_list: List[JobSpec] = [specs] if single else list(specs)
    for spec in spec_list:
        if not isinstance(spec, JobSpec):
            raise ConfigError(
                f"submit() takes JobSpec descriptions, got "
                f"{type(spec).__name__} (wrap a Job with JobSpec.from_job)"
            )

    if pool is None:
        from repro.runtime.execconfig import resolve_exec

        knobs = resolve_exec(
            exec, plan_cache=(True, True), superplan=(False, False)
        )
        device = Device(
            config,
            backend=backend,
            observer=observer,
            plan_cache=knobs["plan_cache"],
            superplan=knobs["superplan"],
        )
        results = []
        for spec in spec_list:
            device.reset()
            job = Job.from_spec(spec)
            job.result = job.execute(device.system)
            results.append(job.result)
    elif isinstance(pool, DevicePool):
        rejected = [
            name
            for name, given in (
                ("exec", exec is not None),
                ("config", config is not CAPE32K),
                ("backend", backend is not None),
                ("observer", observer is not None),
            )
            if given
        ]
        if rejected:
            raise ConfigError(
                f"pool= reuses an existing pool whose construction already "
                f"fixed {', '.join(rejected)}; set them when building the "
                f"pool"
            )
        jobs = [Job.from_spec(spec) for spec in spec_list]
        base = pool.clock.now
        for i, job in enumerate(jobs):
            pool.submit(job, at_cycle=base + i * interarrival_cycles)
        pool.run()
        results = [job.result for job in jobs]
    elif isinstance(pool, ServeConfig):
        import asyncio

        serve_config = pool

        async def _main() -> list:
            async with Gateway(
                serve_config, observer=observer, exec=exec
            ) as gateway:
                return list(
                    await asyncio.gather(
                        *(gateway.submit_retrying(s) for s in spec_list)
                    )
                )

        results = [_serve_result_to_job_result(r) for r in asyncio.run(_main())]
    else:
        raise ConfigError(
            f"pool= must be None, a DevicePool/ServePool instance, or a "
            f"ServeConfig, got {type(pool).__name__}"
        )
    return results[0] if single else results


def run(
    program: str,
    config: CAPEConfig = CAPE32K,
    backend: Optional[str] = None,
    memory_words: Optional[dict] = None,
    observer: Optional[Observer] = None,
    trace: bool = False,
    plan_cache=True,
) -> RunResult:
    """Assemble and run a program on a fresh :class:`Device`.

    .. deprecated:: PR 7
        Use :func:`submit` with the ``"program"`` kernel
        (``JobSpec(name, "program", {"source": ...})``) or
        :meth:`Device.run` directly.

    Args:
        program: RISC-V assembly source (RV64I + RVV subset).
        config: design point to instantiate.
        backend: optional bit-level execution backend (see
            :class:`Device`).
        memory_words: optional ``{byte_address: array_of_words}``
            initial memory image.
        observer: optional :class:`Observer` threaded through the
            device.
        trace: attach a fresh observer for this run and return its
            tracer on ``result.trace`` (see :meth:`Device.run`).
        plan_cache: microcode plan cache knob (see :class:`Device`).

    Returns:
        A :class:`RunResult` (machine fields available by delegation).
    """
    warn_once_per_site(
        "repro.api.run() is deprecated; use repro.api.submit() with the "
        "'program' kernel, or Device.run() for ad-hoc assembly",
    )
    device = Device(config, backend=backend, observer=observer, plan_cache=plan_cache)
    for addr, values in (memory_words or {}).items():
        device.write_words(addr, values)
    return device.run(program, trace=trace)


def run_pool(
    jobs: Sequence[Job],
    configs: Sequence[CAPEConfig] = (CAPE32K,),
    parallelism: int = 1,
    plan_cache=True,
    observer: Optional[Observer] = None,
    interarrival_cycles: float = 0.0,
    pool: Optional[DevicePool] = None,
    **pool_kwargs: Any,
) -> TelemetryReport:
    """Run a batch of jobs on a :class:`DevicePool`.

    ``parallelism`` sets the pool's worker-thread count: independent
    devices' jobs execute concurrently (numpy's fused bit-plane kernels
    release the GIL) while placement, results, and telemetry stay
    bit-identical to the sequential loop — see ``docs/PERFORMANCE.md``.
    Extra keyword arguments pass through to :class:`DevicePool`.

    Pass ``pool=`` to reuse an existing pool (a :class:`DevicePool`, a
    :class:`ServePool`, or anything with the same surface) instead of
    building a fresh one: devices, plan caches, and health ledgers
    carry over between calls, so a second batch runs against warm
    state. ``configs``/``parallelism``/``plan_cache``/``observer`` and
    ``pool_kwargs`` describe pool *construction* and are rejected
    alongside ``pool=`` to rule out silent disagreement.

    .. deprecated:: PR 7
        Use :func:`submit` with ``pool=`` (an existing pool instance)
        or construct a :class:`DevicePool` with an :class:`ExecConfig`.
    """
    warn_once_per_site(
        "repro.api.run_pool() is deprecated; use repro.api.submit(specs, "
        "pool=DevicePool(..., exec=ExecConfig(...)))",
    )
    if pool is not None:
        if pool_kwargs or observer is not None:
            raise ConfigError(
                "pool= reuses an existing pool; construction arguments "
                f"({', '.join([*pool_kwargs] + (['observer'] if observer is not None else []))}) "
                "must be set when the pool is built"
            )
        base = pool.clock.now
        for i, job in enumerate(jobs):
            pool.submit(job, at_cycle=base + i * interarrival_cycles)
        return pool.run()
    pool = DevicePool(
        configs,
        observer=observer,
        parallelism=parallelism,
        plan_cache=plan_cache,
        **pool_kwargs,
    )
    if interarrival_cycles:
        pool.submit_stream(jobs, interarrival_cycles=interarrival_cycles)
    else:
        for job in jobs:
            pool.submit(job)
    return pool.run()


def serve(
    specs: Sequence[JobSpec],
    configs: Sequence[CAPEConfig] = (CAPE32K, CAPE32K),
    workers: int = 2,
    observer: Optional[Observer] = None,
    config: Optional[ServeConfig] = None,
    **config_kwargs: Any,
) -> list:
    """Serve a batch of specs through a fresh asyncio :class:`Gateway`.

    The synchronous convenience wrapper around the serving tier: boots
    ``workers`` worker processes, submits every spec concurrently (as a
    well-behaved client — honouring ``retry_after_s`` backpressure
    hints), drains, shuts down, and returns the
    :class:`ServeResult` list in submission order.

    Pass a full :class:`ServeConfig` via ``config=`` for quota/fault
    control, or individual :class:`ServeConfig` fields as keyword
    arguments. Must be called from outside a running event loop; async
    applications should use :class:`Gateway` directly.

    .. deprecated:: PR 7
        Use :func:`submit` with ``pool=ServeConfig(...)``.
    """
    warn_once_per_site(
        "repro.api.serve() is deprecated; use repro.api.submit(specs, "
        "pool=ServeConfig(...))",
    )
    import asyncio

    if config is None:
        config = ServeConfig(
            configs=tuple(configs), workers=workers, **config_kwargs
        )
    elif config_kwargs:
        raise ConfigError(
            "pass either config= or individual ServeConfig fields, not both"
        )

    async def _main() -> list:
        async with Gateway(config, observer=observer) as gateway:
            return list(
                await asyncio.gather(
                    *(gateway.submit_retrying(spec) for spec in specs)
                )
            )

    return asyncio.run(_main())
