"""Fault taxonomy and seeded fault plans.

CAPE's compute substrate is literal SRAM: push-rule 6T bitcells whose
search/update discharge behaviour *is* the computation (Section IV), so
cell defects, marginal chains, and mid-job device loss are first-class
failure modes for a deployed pool — the same observation the related
CAM substrates (commodity-DRAM CAMs, FeFET associative search engines)
make about associative storage doubling as the ALU.

This module describes *what* can break, deterministically:

``StuckBit``
    A bitcell permanently stuck at 0 or 1 — a manufacturing defect or
    a weak cell that lost its margin. Persistent: re-asserted after
    every write that lands on it.
``TagFlip``
    A transient upset of one tag latch during the Nth search — a
    marginal matchline discharging late. Fixed by simply redoing the
    operation.
``ChainKill``
    A whole chain going dark at the Nth CSB operation (shared driver or
    matchline peripheral failure): its bitcells read as zero and its
    matchlines never discharge.
``TransferFault``
    One bit of one element corrupted on the Nth VMU transfer of a given
    kind (``load`` / ``store`` / ``spill``) — an HBM burst error.
``DeviceKill``
    The whole device dies once its cumulative charged cycles cross a
    threshold — power loss, thermal trip, or a host-side crash.
``WorkerKill``
    A serving worker *process* (``repro.serve``) dies abruptly while
    executing its Nth job — an OOM kill, a segfault in a native
    kernel, or an operator ``kill -9``. Worker-scoped rather than
    device-scoped: every device the worker owned goes dark at once.
    Ignored by the in-process :class:`~repro.faults.injector.
    FaultInjector` (and by :meth:`FaultPlan.for_device` projections);
    only the process-sharded serving tier consumes it.

The *transport* faults extend the taxonomy onto the wire — the pipe
protocol between the serving parent and its workers. Like
``WorkerKill`` they are process-scoped (excluded from
:meth:`FaultPlan.for_device`), deterministic (keyed on the worker's
1-based lifetime job count), and consumed only by ``repro.serve``:

``WorkerHang``
    The worker wedges completely while executing its Nth job — a
    deadlock, a runaway native kernel, an NFS stall. No reply, no
    further heartbeats; the process stays alive. Only hang detection
    (heartbeat silence past the hang threshold) tells it apart from a
    merely slow worker.
``SlowWorker``
    The worker serves the listed jobs ``delay_s`` wall-seconds late —
    a loaded host, a cold page cache, a degraded disk. Replies still
    arrive, heartbeats keep flowing; the straggler discipline (hedged
    re-dispatch) is the mitigation, never a crash verdict.
``ReplyDrop``
    The Nth job executes normally but its reply is lost on the wire —
    a full pipe buffer, a dropped packet in a remoted transport. The
    worker keeps serving later requests, which is exactly how the
    parent infers the loss (a later seq arrives first).
``ReplyGarble``
    The Nth job's reply arrives corrupted — a truncated frame, a bad
    pickle. The parent can detect it (the payload fails validation)
    but not repair it; the request is retried or hedged.

A :class:`FaultPlan` is an immutable, validated collection of these,
optionally generated from a seed via :meth:`FaultPlan.chaos` — two plans
built from the same seed are identical, so every downstream failure and
recovery replays bit-for-bit.

Faults carry an optional ``device`` id; :meth:`FaultPlan.for_device`
projects the plan onto one pool member (``device=None`` faults apply to
every device).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, FrozenSet, Optional, Tuple

import numpy as np

from repro.common.errors import FaultInjectionError

__all__ = [
    "ChainKill",
    "DeviceKill",
    "FaultPlan",
    "ReplyDrop",
    "ReplyGarble",
    "SlowWorker",
    "StuckBit",
    "TagFlip",
    "TransferFault",
    "TransportSchedule",
    "TRANSFER_KINDS",
    "WorkerHang",
    "WorkerKill",
]

#: VMU transfer paths a :class:`TransferFault` may target.
TRANSFER_KINDS = ("load", "store", "spill")


def _check_nonneg(fault, **values) -> None:
    for name, value in values.items():
        if value < 0:
            raise FaultInjectionError(
                f"{type(fault).__name__}.{name} must be non-negative, "
                f"got {value}"
            )


@dataclass(frozen=True)
class StuckBit:
    """A bitcell stuck at ``value`` in register ``row`` of an element.

    ``element`` is the architectural element index (fused column);
    ``bit`` the bit-slice (subarray). Persistent — the injector
    re-asserts it into storage after every mutation, so retries alone
    cannot clear it; only a spare-chain remap retires it.
    """

    row: int
    element: int
    bit: int
    value: int
    device: Optional[int] = None

    def validate(self) -> None:
        _check_nonneg(self, row=self.row, element=self.element, bit=self.bit)
        if self.value not in (0, 1):
            raise FaultInjectionError(
                f"StuckBit.value must be 0 or 1, got {self.value}"
            )


@dataclass(frozen=True)
class TagFlip:
    """A transient tag-latch upset during the Nth search (1-based).

    Flips subarray ``bit``'s tag for ``element`` after the search
    completes — the one-shot soft error a retry fixes.
    """

    element: int
    bit: int
    at_search: int
    device: Optional[int] = None

    def validate(self) -> None:
        _check_nonneg(self, element=self.element, bit=self.bit)
        if self.at_search < 1:
            raise FaultInjectionError(
                f"TagFlip.at_search counts searches from 1, got {self.at_search}"
            )


@dataclass(frozen=True)
class ChainKill:
    """Chain ``chain`` goes dark at the Nth CSB operation (0 = at boot).

    A dead chain's bitcells read as zero and its matchlines never
    discharge (tags forced 0); its columns stay dark until a spare
    chain is remapped over it.
    """

    chain: int
    at_op: int = 0
    device: Optional[int] = None

    def validate(self) -> None:
        _check_nonneg(self, chain=self.chain, at_op=self.at_op)


@dataclass(frozen=True)
class TransferFault:
    """One bit of one element corrupted on the Nth transfer of ``kind``.

    ``kind`` is a VMU path from :data:`TRANSFER_KINDS`; ``at_transfer``
    counts that kind's transfers from 1 over the device's lifetime.
    ``load``/``store`` corrupt the in-flight values; ``spill`` corrupts
    the written slab in memory (caught by the parity words on restore).
    """

    kind: str
    at_transfer: int
    element: int
    bit: int
    device: Optional[int] = None

    def validate(self) -> None:
        if self.kind not in TRANSFER_KINDS:
            raise FaultInjectionError(
                f"TransferFault.kind must be one of {TRANSFER_KINDS}, "
                f"got {self.kind!r}"
            )
        _check_nonneg(self, element=self.element, bit=self.bit)
        if self.at_transfer < 1:
            raise FaultInjectionError(
                f"TransferFault.at_transfer counts transfers from 1, "
                f"got {self.at_transfer}"
            )
        if self.bit >= 64:
            raise FaultInjectionError(
                f"TransferFault.bit must fit a memory word, got {self.bit}"
            )


@dataclass(frozen=True)
class DeviceKill:
    """The device dies once its charged cycles reach ``at_cycle``."""

    at_cycle: float
    device: Optional[int] = None

    def validate(self) -> None:
        if self.at_cycle < 0:
            raise FaultInjectionError(
                f"DeviceKill.at_cycle must be non-negative, got {self.at_cycle}"
            )


@dataclass(frozen=True)
class WorkerKill:
    """Serving worker ``worker`` dies while executing its Nth job.

    ``at_job`` counts the jobs the worker has executed over its
    lifetime, from 1; the process exits abruptly (no reply is sent for
    the in-flight job, simulating a hard crash). ``worker=None``
    applies to every worker — usually what a chaos plan wants only with
    a pool big enough to absorb total loss.
    """

    at_job: int
    worker: Optional[int] = None

    def validate(self) -> None:
        if self.at_job < 1:
            raise FaultInjectionError(
                f"WorkerKill.at_job counts jobs from 1, got {self.at_job}"
            )


@dataclass(frozen=True)
class WorkerHang:
    """Serving worker ``worker`` wedges while executing its Nth job.

    The process stays alive but makes no further progress: no reply
    for the in-flight job, no replies for anything queued behind it,
    and no further heartbeats. ``at_job`` counts the worker's jobs
    from 1; ``worker=None`` applies to every worker.
    """

    at_job: int
    worker: Optional[int] = None

    def validate(self) -> None:
        if self.at_job < 1:
            raise FaultInjectionError(
                f"WorkerHang.at_job counts jobs from 1, got {self.at_job}"
            )


@dataclass(frozen=True)
class SlowWorker:
    """Worker ``worker`` serves the listed jobs ``delay_s`` late.

    Each 1-based job index in ``at_jobs`` is delayed ``delay_s``
    wall-seconds before its reply is produced — the deterministic
    straggler. Heartbeats keep flowing, so the parent can tell "slow"
    from "hung"; hedged re-dispatch is the mitigation.
    """

    delay_s: float
    at_jobs: Tuple[int, ...] = ()
    worker: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "at_jobs", tuple(int(j) for j in self.at_jobs))

    def validate(self) -> None:
        if self.delay_s <= 0:
            raise FaultInjectionError(
                f"SlowWorker.delay_s must be positive, got {self.delay_s}"
            )
        if not self.at_jobs:
            raise FaultInjectionError("SlowWorker.at_jobs must name at least one job")
        for j in self.at_jobs:
            if j < 1:
                raise FaultInjectionError(
                    f"SlowWorker.at_jobs counts jobs from 1, got {j}"
                )


@dataclass(frozen=True)
class ReplyDrop:
    """The Nth job's reply is lost on the wire (job still executes).

    The worker's state advances exactly as on a successful run — only
    the reply vanishes — so every later fault keyed on the job count
    fires at the same instant whether or not the drop happened.
    """

    at_job: int
    worker: Optional[int] = None

    def validate(self) -> None:
        if self.at_job < 1:
            raise FaultInjectionError(
                f"ReplyDrop.at_job counts jobs from 1, got {self.at_job}"
            )


@dataclass(frozen=True)
class ReplyGarble:
    """The Nth job's reply arrives corrupted (detectably malformed)."""

    at_job: int
    worker: Optional[int] = None

    def validate(self) -> None:
        if self.at_job < 1:
            raise FaultInjectionError(
                f"ReplyGarble.at_job counts jobs from 1, got {self.at_job}"
            )


@dataclass(frozen=True)
class TransportSchedule:
    """One worker's fold of a plan's process-scoped faults (picklable).

    Produced by :meth:`FaultPlan.transport_for_worker`; consumed by
    ``repro.serve.worker.worker_main``, which keys every entry on the
    worker's 1-based lifetime job count. Precedence when several
    faults land on the same job: kill > hang > drop > garble, with a
    slow delay applying first in any case (a reply must be produced
    late before it can be dropped or garbled).
    """

    kill_at: Optional[int] = None
    hang_at: Optional[int] = None
    #: job index -> delay in wall seconds (max wins on overlap).
    slow: Dict[int, float] = field(default_factory=dict)
    drop_at: FrozenSet[int] = frozenset()
    garble_at: FrozenSet[int] = frozenset()

    @property
    def empty(self) -> bool:
        return (
            self.kill_at is None
            and self.hang_at is None
            and not self.slow
            and not self.drop_at
            and not self.garble_at
        )


#: Process-scoped faults: consumed by the serving tier, never by a
#: device-bound :class:`~repro.faults.injector.FaultInjector`.
_PROCESS_TYPES = (WorkerKill, WorkerHang, SlowWorker, ReplyDrop, ReplyGarble)

_FAULT_TYPES = (
    StuckBit, TagFlip, ChainKill, TransferFault, DeviceKill,
) + _PROCESS_TYPES


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, validated set of faults (optionally seed-derived).

    Args:
        faults: any mix of the fault dataclasses above.
        seed: the seed :meth:`chaos` built the plan from (metadata only;
            carried so reports can name the reproducer).
    """

    faults: Tuple = ()
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for f in self.faults:
            if not isinstance(f, _FAULT_TYPES):
                raise FaultInjectionError(
                    f"not a fault: {f!r} (expected one of "
                    f"{[t.__name__ for t in _FAULT_TYPES]})"
                )
            f.validate()

    @property
    def empty(self) -> bool:
        return not self.faults

    def __len__(self) -> int:
        return len(self.faults)

    def of_type(self, fault_type) -> Tuple:
        return tuple(f for f in self.faults if isinstance(f, fault_type))

    def for_device(self, device_id: int) -> "FaultPlan":
        """Project the plan onto one device (``device=None`` = every).

        Process-scoped faults (:class:`WorkerKill` and the transport
        taxonomy: :class:`WorkerHang`, :class:`SlowWorker`,
        :class:`ReplyDrop`, :class:`ReplyGarble`) are dropped: they
        target a serving *process* or its pipe, not a device, and are
        consumed by the serving tier before any injector is built.
        """
        return FaultPlan(
            faults=tuple(
                f for f in self.faults
                if not isinstance(f, _PROCESS_TYPES)
                and (f.device is None or f.device == device_id)
            ),
            seed=self.seed,
        )

    def kill_job_for_worker(self, worker_id: int) -> Optional[int]:
        """The 1-based job index at which ``worker_id`` should crash.

        Folds every matching :class:`WorkerKill` (``worker=None``
        matches all workers) down to the earliest ``at_job``;
        ``None`` when the plan never kills this worker.
        """
        kills = [
            f.at_job for f in self.of_type(WorkerKill)
            if f.worker is None or f.worker == worker_id
        ]
        return min(kills) if kills else None

    def transport_for_worker(self, worker_id: int) -> TransportSchedule:
        """Fold the process-scoped faults onto one worker's schedule.

        ``worker=None`` faults match every worker. Several faults of
        one kind fold deterministically: the earliest kill/hang wins,
        slow delays merge with the *longest* delay per job, and
        drop/garble sets union. The result is a small picklable
        :class:`TransportSchedule` the worker process consumes.
        """
        def mine(fault) -> bool:
            return fault.worker is None or fault.worker == worker_id

        slow: Dict[int, float] = {}
        for f in self.of_type(SlowWorker):
            if mine(f):
                for j in f.at_jobs:
                    slow[j] = max(slow.get(j, 0.0), float(f.delay_s))
        hangs = [f.at_job for f in self.of_type(WorkerHang) if mine(f)]
        return TransportSchedule(
            kill_at=self.kill_job_for_worker(worker_id),
            hang_at=min(hangs) if hangs else None,
            slow=slow,
            drop_at=frozenset(
                f.at_job for f in self.of_type(ReplyDrop) if mine(f)
            ),
            garble_at=frozenset(
                f.at_job for f in self.of_type(ReplyGarble) if mine(f)
            ),
        )

    @classmethod
    def transport_storm(
        cls,
        seed: int,
        workers: int = 2,
        hangs: int = 1,
        slows: int = 2,
        drops: int = 1,
        garbles: int = 1,
        kills: int = 0,
        max_job: int = 12,
        slow_delay_s: Tuple[float, float] = (0.05, 0.3),
    ) -> "FaultPlan":
        """A seeded transport-fault storm over ``workers`` workers.

        The wire-level sibling of :meth:`chaos`: deterministically
        scatters hangs, stragglers, dropped and garbled replies (and
        optionally process kills) across the worker pool, keyed on
        each worker's lifetime job count. Same seed, same storm — the
        reproducer is the integer. Combine with :meth:`chaos` by
        concatenating the two plans' faults when a scenario needs both
        substrate and transport failures.
        """
        if workers < 1:
            raise FaultInjectionError("a transport storm needs at least one worker")
        rng = np.random.default_rng(seed)

        def victim() -> int:
            return int(rng.integers(0, workers))

        def job() -> int:
            return int(rng.integers(1, max_job + 1))

        faults = []
        for _ in range(hangs):
            faults.append(WorkerHang(at_job=job(), worker=victim()))
        lo, hi = slow_delay_s
        for _ in range(slows):
            faults.append(
                SlowWorker(
                    delay_s=float(rng.uniform(lo, hi)),
                    at_jobs=tuple(sorted({job() for _ in range(2)})),
                    worker=victim(),
                )
            )
        for _ in range(drops):
            faults.append(ReplyDrop(at_job=job(), worker=victim()))
        for _ in range(garbles):
            faults.append(ReplyGarble(at_job=job(), worker=victim()))
        for _ in range(kills):
            faults.append(WorkerKill(at_job=job(), worker=victim()))
        return cls(faults=tuple(faults), seed=seed)

    def as_dict(self) -> dict:
        """JSON-able export (same contract as the stats surfaces)."""
        return {
            "seed": self.seed,
            "faults": [
                {"kind": type(f).__name__,
                 **{fl.name: getattr(f, fl.name) for fl in fields(f)}}
                for f in self.faults
            ],
        }

    @classmethod
    def chaos(
        cls,
        seed: int,
        devices: int = 3,
        kill_cycle: Optional[float] = None,
        transient_flips: int = 6,
        stuck_bits: int = 2,
        spill_faults: int = 1,
        max_element: int = 256,
    ) -> "FaultPlan":
        """A seeded chaos scenario over a pool of ``devices`` devices.

        Deterministically picks one device to die mid-stream, peppers
        another with transient transfer-bit flips (enough to trip the
        pool's quarantine threshold), plants stuck bitcells on a third,
        and corrupts ``spill_faults`` spill slabs. Same seed, same plan,
        same failures — the reproducer is the integer.
        """
        if devices < 1:
            raise FaultInjectionError("chaos needs at least one device")
        rng = np.random.default_rng(seed)
        victims = rng.permutation(devices)
        dead = int(victims[0])
        flaky = int(victims[1 % devices])
        marginal = int(victims[2 % devices])
        faults = []
        cycle = (
            float(kill_cycle)
            if kill_cycle is not None
            else float(rng.integers(50_000, 250_000))
        )
        faults.append(DeviceKill(at_cycle=cycle, device=dead))
        for _ in range(transient_flips):
            faults.append(
                TransferFault(
                    kind="load",
                    at_transfer=int(rng.integers(1, 12)),
                    element=int(rng.integers(0, max_element)),
                    bit=int(rng.integers(0, 32)),
                    device=flaky,
                )
            )
        for _ in range(stuck_bits):
            faults.append(
                StuckBit(
                    row=int(rng.integers(1, 8)),
                    element=int(rng.integers(0, max_element)),
                    bit=int(rng.integers(0, 32)),
                    value=int(rng.integers(0, 2)),
                    device=marginal,
                )
            )
        for _ in range(spill_faults):
            faults.append(
                TransferFault(
                    kind="spill",
                    at_transfer=int(rng.integers(1, 4)),
                    element=int(rng.integers(0, max_element)),
                    bit=int(rng.integers(0, 32)),
                    device=None,
                )
            )
        return cls(faults=tuple(faults), seed=seed)
