"""Fault taxonomy and seeded fault plans.

CAPE's compute substrate is literal SRAM: push-rule 6T bitcells whose
search/update discharge behaviour *is* the computation (Section IV), so
cell defects, marginal chains, and mid-job device loss are first-class
failure modes for a deployed pool — the same observation the related
CAM substrates (commodity-DRAM CAMs, FeFET associative search engines)
make about associative storage doubling as the ALU.

This module describes *what* can break, deterministically:

``StuckBit``
    A bitcell permanently stuck at 0 or 1 — a manufacturing defect or
    a weak cell that lost its margin. Persistent: re-asserted after
    every write that lands on it.
``TagFlip``
    A transient upset of one tag latch during the Nth search — a
    marginal matchline discharging late. Fixed by simply redoing the
    operation.
``ChainKill``
    A whole chain going dark at the Nth CSB operation (shared driver or
    matchline peripheral failure): its bitcells read as zero and its
    matchlines never discharge.
``TransferFault``
    One bit of one element corrupted on the Nth VMU transfer of a given
    kind (``load`` / ``store`` / ``spill``) — an HBM burst error.
``DeviceKill``
    The whole device dies once its cumulative charged cycles cross a
    threshold — power loss, thermal trip, or a host-side crash.
``WorkerKill``
    A serving worker *process* (``repro.serve``) dies abruptly while
    executing its Nth job — an OOM kill, a segfault in a native
    kernel, or an operator ``kill -9``. Worker-scoped rather than
    device-scoped: every device the worker owned goes dark at once.
    Ignored by the in-process :class:`~repro.faults.injector.
    FaultInjector` (and by :meth:`FaultPlan.for_device` projections);
    only the process-sharded serving tier consumes it.

A :class:`FaultPlan` is an immutable, validated collection of these,
optionally generated from a seed via :meth:`FaultPlan.chaos` — two plans
built from the same seed are identical, so every downstream failure and
recovery replays bit-for-bit.

Faults carry an optional ``device`` id; :meth:`FaultPlan.for_device`
projects the plan onto one pool member (``device=None`` faults apply to
every device).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Optional, Tuple

import numpy as np

from repro.common.errors import FaultInjectionError

__all__ = [
    "ChainKill",
    "DeviceKill",
    "FaultPlan",
    "StuckBit",
    "TagFlip",
    "TransferFault",
    "TRANSFER_KINDS",
]

#: VMU transfer paths a :class:`TransferFault` may target.
TRANSFER_KINDS = ("load", "store", "spill")


def _check_nonneg(fault, **values) -> None:
    for name, value in values.items():
        if value < 0:
            raise FaultInjectionError(
                f"{type(fault).__name__}.{name} must be non-negative, "
                f"got {value}"
            )


@dataclass(frozen=True)
class StuckBit:
    """A bitcell stuck at ``value`` in register ``row`` of an element.

    ``element`` is the architectural element index (fused column);
    ``bit`` the bit-slice (subarray). Persistent — the injector
    re-asserts it into storage after every mutation, so retries alone
    cannot clear it; only a spare-chain remap retires it.
    """

    row: int
    element: int
    bit: int
    value: int
    device: Optional[int] = None

    def validate(self) -> None:
        _check_nonneg(self, row=self.row, element=self.element, bit=self.bit)
        if self.value not in (0, 1):
            raise FaultInjectionError(
                f"StuckBit.value must be 0 or 1, got {self.value}"
            )


@dataclass(frozen=True)
class TagFlip:
    """A transient tag-latch upset during the Nth search (1-based).

    Flips subarray ``bit``'s tag for ``element`` after the search
    completes — the one-shot soft error a retry fixes.
    """

    element: int
    bit: int
    at_search: int
    device: Optional[int] = None

    def validate(self) -> None:
        _check_nonneg(self, element=self.element, bit=self.bit)
        if self.at_search < 1:
            raise FaultInjectionError(
                f"TagFlip.at_search counts searches from 1, got {self.at_search}"
            )


@dataclass(frozen=True)
class ChainKill:
    """Chain ``chain`` goes dark at the Nth CSB operation (0 = at boot).

    A dead chain's bitcells read as zero and its matchlines never
    discharge (tags forced 0); its columns stay dark until a spare
    chain is remapped over it.
    """

    chain: int
    at_op: int = 0
    device: Optional[int] = None

    def validate(self) -> None:
        _check_nonneg(self, chain=self.chain, at_op=self.at_op)


@dataclass(frozen=True)
class TransferFault:
    """One bit of one element corrupted on the Nth transfer of ``kind``.

    ``kind`` is a VMU path from :data:`TRANSFER_KINDS`; ``at_transfer``
    counts that kind's transfers from 1 over the device's lifetime.
    ``load``/``store`` corrupt the in-flight values; ``spill`` corrupts
    the written slab in memory (caught by the parity words on restore).
    """

    kind: str
    at_transfer: int
    element: int
    bit: int
    device: Optional[int] = None

    def validate(self) -> None:
        if self.kind not in TRANSFER_KINDS:
            raise FaultInjectionError(
                f"TransferFault.kind must be one of {TRANSFER_KINDS}, "
                f"got {self.kind!r}"
            )
        _check_nonneg(self, element=self.element, bit=self.bit)
        if self.at_transfer < 1:
            raise FaultInjectionError(
                f"TransferFault.at_transfer counts transfers from 1, "
                f"got {self.at_transfer}"
            )
        if self.bit >= 64:
            raise FaultInjectionError(
                f"TransferFault.bit must fit a memory word, got {self.bit}"
            )


@dataclass(frozen=True)
class DeviceKill:
    """The device dies once its charged cycles reach ``at_cycle``."""

    at_cycle: float
    device: Optional[int] = None

    def validate(self) -> None:
        if self.at_cycle < 0:
            raise FaultInjectionError(
                f"DeviceKill.at_cycle must be non-negative, got {self.at_cycle}"
            )


@dataclass(frozen=True)
class WorkerKill:
    """Serving worker ``worker`` dies while executing its Nth job.

    ``at_job`` counts the jobs the worker has executed over its
    lifetime, from 1; the process exits abruptly (no reply is sent for
    the in-flight job, simulating a hard crash). ``worker=None``
    applies to every worker — usually what a chaos plan wants only with
    a pool big enough to absorb total loss.
    """

    at_job: int
    worker: Optional[int] = None

    def validate(self) -> None:
        if self.at_job < 1:
            raise FaultInjectionError(
                f"WorkerKill.at_job counts jobs from 1, got {self.at_job}"
            )


_FAULT_TYPES = (StuckBit, TagFlip, ChainKill, TransferFault, DeviceKill, WorkerKill)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, validated set of faults (optionally seed-derived).

    Args:
        faults: any mix of the fault dataclasses above.
        seed: the seed :meth:`chaos` built the plan from (metadata only;
            carried so reports can name the reproducer).
    """

    faults: Tuple = ()
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for f in self.faults:
            if not isinstance(f, _FAULT_TYPES):
                raise FaultInjectionError(
                    f"not a fault: {f!r} (expected one of "
                    f"{[t.__name__ for t in _FAULT_TYPES]})"
                )
            f.validate()

    @property
    def empty(self) -> bool:
        return not self.faults

    def __len__(self) -> int:
        return len(self.faults)

    def of_type(self, fault_type) -> Tuple:
        return tuple(f for f in self.faults if isinstance(f, fault_type))

    def for_device(self, device_id: int) -> "FaultPlan":
        """Project the plan onto one device (``device=None`` = every).

        Worker-scoped faults (:class:`WorkerKill`) are dropped: they
        target a serving *process*, not a device, and are consumed by
        the serving tier before any injector is built.
        """
        return FaultPlan(
            faults=tuple(
                f for f in self.faults
                if not isinstance(f, WorkerKill)
                and (f.device is None or f.device == device_id)
            ),
            seed=self.seed,
        )

    def kill_job_for_worker(self, worker_id: int) -> Optional[int]:
        """The 1-based job index at which ``worker_id`` should crash.

        Folds every matching :class:`WorkerKill` (``worker=None``
        matches all workers) down to the earliest ``at_job``;
        ``None`` when the plan never kills this worker.
        """
        kills = [
            f.at_job for f in self.of_type(WorkerKill)
            if f.worker is None or f.worker == worker_id
        ]
        return min(kills) if kills else None

    def as_dict(self) -> dict:
        """JSON-able export (same contract as the stats surfaces)."""
        return {
            "seed": self.seed,
            "faults": [
                {"kind": type(f).__name__,
                 **{fl.name: getattr(f, fl.name) for fl in fields(f)}}
                for f in self.faults
            ],
        }

    @classmethod
    def chaos(
        cls,
        seed: int,
        devices: int = 3,
        kill_cycle: Optional[float] = None,
        transient_flips: int = 6,
        stuck_bits: int = 2,
        spill_faults: int = 1,
        max_element: int = 256,
    ) -> "FaultPlan":
        """A seeded chaos scenario over a pool of ``devices`` devices.

        Deterministically picks one device to die mid-stream, peppers
        another with transient transfer-bit flips (enough to trip the
        pool's quarantine threshold), plants stuck bitcells on a third,
        and corrupts ``spill_faults`` spill slabs. Same seed, same plan,
        same failures — the reproducer is the integer.
        """
        if devices < 1:
            raise FaultInjectionError("chaos needs at least one device")
        rng = np.random.default_rng(seed)
        victims = rng.permutation(devices)
        dead = int(victims[0])
        flaky = int(victims[1 % devices])
        marginal = int(victims[2 % devices])
        faults = []
        cycle = (
            float(kill_cycle)
            if kill_cycle is not None
            else float(rng.integers(50_000, 250_000))
        )
        faults.append(DeviceKill(at_cycle=cycle, device=dead))
        for _ in range(transient_flips):
            faults.append(
                TransferFault(
                    kind="load",
                    at_transfer=int(rng.integers(1, 12)),
                    element=int(rng.integers(0, max_element)),
                    bit=int(rng.integers(0, 32)),
                    device=flaky,
                )
            )
        for _ in range(stuck_bits):
            faults.append(
                StuckBit(
                    row=int(rng.integers(1, 8)),
                    element=int(rng.integers(0, max_element)),
                    bit=int(rng.integers(0, 32)),
                    value=int(rng.integers(0, 2)),
                    device=marginal,
                )
            )
        for _ in range(spill_faults):
            faults.append(
                TransferFault(
                    kind="spill",
                    at_transfer=int(rng.integers(1, 4)),
                    element=int(rng.integers(0, max_element)),
                    bit=int(rng.integers(0, 32)),
                    device=None,
                )
            )
        return cls(faults=tuple(faults), seed=seed)
