"""Deterministic fault injection into the backend and transfer paths.

The :class:`FaultInjector` is one device's fault state machine: it owns
that device's slice of a :class:`~repro.faults.plan.FaultPlan`, counts
the events faults key off (searches, CSB operations, VMU transfers,
charged cycles), and mutates real state at the planned instants — no
randomness at injection time, so a run replays bit-for-bit.

Injection sites:

* **CSB state and kernels** — :class:`FaultyBackend` wraps an
  :class:`~repro.csb.backend.ExecutionBackend` and re-asserts stuck
  bitcells after every mutation, forces killed chains' bitcells and tags
  to zero, and flips tag latches after scheduled searches. Because the
  wrapper mutates the *underlying storage* (never shadow copies), every
  live view of the fused bit-plane matrix — per-chain windows, the
  ganged chain, host peeks — sees the same faulty bits.
* **VMU transfers** — :meth:`FaultInjector.filter_transfer` corrupts
  in-flight load/store values; :meth:`FaultInjector.corrupt_slab`
  flips a bit of a written spill slab in memory (caught by the parity
  words on restore).
* **The charging path** — :meth:`FaultInjector.charge` kills the whole
  device once its cumulative cycles cross a
  :class:`~repro.faults.plan.DeviceKill` threshold, raising
  :class:`~repro.common.errors.DeviceFailedError` from then on.

Repair hooks: the engine calls :meth:`FaultInjector.remap_chain` to
retire a permanently-faulty chain onto one of the device's spare
chains (``spare_chains`` budget); a remapped chain's faults stop being
asserted — the spare is clean silicon.

Injector state deliberately survives :meth:`CAPESystem.reset`: silicon
defects do not heal between jobs.
"""

from __future__ import annotations

from collections import Counter
from typing import List, NamedTuple, Optional

import numpy as np

from repro.common.errors import DeviceFailedError, FaultInjectionError
from repro.faults.plan import (
    ChainKill,
    DeviceKill,
    FaultPlan,
    StuckBit,
    TagFlip,
    TransferFault,
)
from repro.memory.mainmem import WORD_BYTES

__all__ = ["FaultInjector", "FaultyBackend"]


class _StuckSite(NamedTuple):
    """A stuck bit resolved to one backend's coordinates."""

    sub: int
    row: int
    col: int
    value: int
    chain: int
    fault: StuckBit


class _KillSite(NamedTuple):
    """A chain kill resolved to one backend's column set."""

    chain: int
    at_op: int
    cols: np.ndarray
    fault: ChainKill


class _FlipSite(NamedTuple):
    """A tag flip resolved to one backend's (sub, col)."""

    at_search: int
    sub: int
    col: int
    fault: TagFlip


class FaultInjector:
    """One device's deterministic fault state (see module docstring).

    Args:
        plan: the device's slice of a fault plan (typically
            ``plan.for_device(i)``).
        observer: optional :class:`repro.obs.Observer`; every injected
            fault lands in the ``faults.injected`` counter family (one
            label per fault kind) plus a ``fault:<kind>`` trace instant.
            The system attaches its own (device-labelled) observer when
            the injector is bound.
        spare_chains: spare chains available for remapping permanently
            faulty chains (Section IV peripherals are per-chain, so a
            spare substitutes wholesale).
    """

    def __init__(
        self,
        plan: FaultPlan,
        observer=None,
        spare_chains: int = 2,
    ) -> None:
        if spare_chains < 0:
            raise FaultInjectionError("spare_chains must be non-negative")
        self.plan = plan
        self.observer = observer
        self.spare_chains = spare_chains
        self.spares_used = 0
        #: Chains retired onto spares; their faults are no longer asserted.
        self.remapped: set = set()
        # -- event counters faults key off --------------------------------
        self.searches = 0
        self.csb_ops = 0
        self.cycles_seen = 0.0
        self.transfers: Counter = Counter()
        #: Injected-fault tally by kind (mirrors the obs counter family).
        self.injected: Counter = Counter()
        self.dead = False
        self._announced: set = set()
        # -- partition the plan by site -----------------------------------
        self._stuck = list(plan.of_type(StuckBit))
        self._flips = list(plan.of_type(TagFlip))
        self._kills = list(plan.of_type(ChainKill))
        self._transfer = {}
        for f in plan.of_type(TransferFault):
            self._transfer.setdefault(f.kind, []).append(f)
        kills = plan.of_type(DeviceKill)
        self._kill_fault = (
            min(kills, key=lambda k: k.at_cycle) if kills else None
        )
        self._kill_at = (
            self._kill_fault.at_cycle if self._kill_fault else None
        )
        self._num_chains: Optional[int] = None

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------

    @property
    def has_csb_faults(self) -> bool:
        """Any faults that require wrapping the execution backend?"""
        return bool(self._stuck or self._flips or self._kills)

    @property
    def protect_slabs(self) -> bool:
        """Should context spills carry parity words? (Any live plan.)"""
        return not self.plan.empty

    @property
    def spares_free(self) -> int:
        return self.spare_chains - self.spares_used

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def announce(self, fault, kind: str, **labels) -> None:
        """Record one fault's first firing (idempotent per fault)."""
        if fault in self._announced:
            return
        self._announced.add(fault)
        self.injected[kind] += 1
        obs = self.observer
        if obs is not None and obs.enabled:
            obs.counter("faults.injected", kind=kind).inc()
            obs.instant(f"fault:{kind}", "faults", **labels)

    # ------------------------------------------------------------------
    # Device death (charging path)
    # ------------------------------------------------------------------

    def charge(self, cycles: float) -> None:
        """Account charged cycles; raise once the kill threshold passes."""
        if self._kill_at is None:
            return
        self.cycles_seen += cycles
        if not self.dead and self.cycles_seen >= self._kill_at:
            self.dead = True
            self.announce(self._kill_fault, "device_kill")
        if self.dead:
            raise DeviceFailedError(
                f"device died at {self.cycles_seen:,.0f} charged cycles "
                f"(DeviceKill threshold {self._kill_at:,.0f})"
            )

    # ------------------------------------------------------------------
    # VMU transfer corruption
    # ------------------------------------------------------------------

    def filter_transfer(self, kind: str, values: np.ndarray) -> np.ndarray:
        """Corrupt in-flight transfer values per the plan (load/store)."""
        pending = self._transfer.get(kind)
        if not pending:
            return values
        self.transfers[kind] += 1
        n = self.transfers[kind]
        due = [f for f in pending if f.at_transfer <= n]
        if not due:
            return values
        values = np.array(values, dtype=np.int64, copy=True)
        for f in due:
            if len(values):
                values[f.element % len(values)] ^= np.int64(1) << f.bit
            self.announce(f, "transfer", path=kind)
            pending.remove(f)
        return values

    def corrupt_slab(self, memory, addr: int, data_words: int) -> None:
        """Flip a bit of a just-written spill slab, in memory."""
        pending = self._transfer.get("spill")
        if not pending or data_words <= 0:
            return
        self.transfers["spill"] += 1
        n = self.transfers["spill"]
        due = [f for f in pending if f.at_transfer <= n]
        for f in due:
            word_addr = addr + WORD_BYTES * (f.element % data_words)
            memory.write_word(
                word_addr, memory.read_word(word_addr) ^ (1 << f.bit)
            )
            self.announce(f, "slab", addr=word_addr)
            pending.remove(f)

    # ------------------------------------------------------------------
    # CSB backend wrapping
    # ------------------------------------------------------------------

    def bind_csb(
        self, num_chains: int, num_subarrays: int, num_rows: int,
        total_cols: int,
    ) -> None:
        """Validate the CSB-site faults against a concrete CSB shape."""
        self._num_chains = num_chains
        for s in self._stuck:
            if s.element >= total_cols or s.bit >= num_subarrays \
                    or s.row >= num_rows:
                raise FaultInjectionError(
                    f"{s} outside CSB shape ({num_subarrays} subarrays x "
                    f"{num_rows} rows x {total_cols} elements)"
                )
        for t in self._flips:
            if t.element >= total_cols or t.bit >= num_subarrays:
                raise FaultInjectionError(
                    f"{t} outside CSB shape ({num_subarrays} subarrays x "
                    f"{total_cols} elements)"
                )
        for k in self._kills:
            if k.chain >= num_chains:
                raise FaultInjectionError(
                    f"{k} outside CSB of {num_chains} chains"
                )

    def wrap_fused(self, base, num_chains: int) -> "FaultyBackend":
        """Wrap the fused (all-chains) backend; element = fused column."""
        stuck = [
            _StuckSite(s.bit, s.row, s.element, s.value,
                       s.element % num_chains, s)
            for s in self._stuck
        ]
        kills = [
            _KillSite(k.chain, k.at_op,
                      np.arange(k.chain, base.num_cols, num_chains), k)
            for k in self._kills
        ]
        flips = [
            _FlipSite(t.at_search, t.bit, t.element, t)
            for t in self._flips
        ]
        return FaultyBackend(base, self, stuck, kills, flips)

    def wrap_chain(self, base, chain_id: int, num_chains: int):
        """Wrap one chain's backend (element ``e`` = local col ``e//C``).

        Returns ``base`` untouched when no fault lands on this chain —
        the common case stays on the fast path.
        """
        stuck = [
            _StuckSite(s.bit, s.row, s.element // num_chains, s.value,
                       chain_id, s)
            for s in self._stuck if s.element % num_chains == chain_id
        ]
        kills = [
            _KillSite(k.chain, k.at_op, np.arange(base.num_cols), k)
            for k in self._kills if k.chain == chain_id
        ]
        flips = [
            _FlipSite(t.at_search, t.bit, t.element // num_chains, t)
            for t in self._flips if t.element % num_chains == chain_id
        ]
        if not (stuck or kills or flips):
            return base
        return FaultyBackend(base, self, stuck, kills, flips)

    # ------------------------------------------------------------------
    # Repair bookkeeping (driven by the engine)
    # ------------------------------------------------------------------

    def faulty_chains(self) -> List[int]:
        """Chains with live *permanent* faults, candidates for remap."""
        if self._num_chains is None:
            return []
        chains = {s.element % self._num_chains for s in self._stuck}
        chains.update(
            k.chain for k in self._kills if self.csb_ops >= k.at_op
        )
        return sorted(c for c in chains if c not in self.remapped)

    def remap_chain(self, chain: int) -> bool:
        """Retire ``chain`` onto a spare; False when the budget is spent."""
        if chain in self.remapped:
            return True
        if self.spares_used >= self.spare_chains:
            return False
        self.spares_used += 1
        self.remapped.add(chain)
        return True

    # ------------------------------------------------------------------

    def report(self) -> dict:
        """Injection/health summary for serving reports."""
        return {
            "injected": dict(self.injected),
            "dead": self.dead,
            "remapped_chains": sorted(self.remapped),
            "spares_free": self.spares_free,
            "searches": self.searches,
            "csb_ops": self.csb_ops,
            "transfers": dict(self.transfers),
        }


class FaultyBackend:
    """An :class:`ExecutionBackend` decorator that injects CSB faults.

    Read paths delegate untouched (``__getattr__``); mutating kernels
    delegate and then *re-assert* the plan's faults into the underlying
    storage — stuck bits forced back, killed chains zeroed — so every
    live view (per-chain windows of a fused matrix, host peeks, the
    ganged chain) observes the same faulty silicon. Searches are counted
    and scheduled tag flips land both in the latched tags and the
    returned outcome.
    """

    def __init__(
        self,
        base,
        injector: FaultInjector,
        stuck: List[_StuckSite],
        kills: List[_KillSite],
        flips: List[_FlipSite],
    ) -> None:
        self._base = base
        self._injector = injector
        self._stuck = stuck
        self._kills = kills
        self._flips = sorted(flips, key=lambda s: s.at_search)
        self.name = base.name
        self.num_subarrays = base.num_subarrays
        self.num_rows = base.num_rows
        self.num_cols = base.num_cols

    def __getattr__(self, name: str):
        return getattr(self._base, name)

    def __repr__(self) -> str:
        return f"FaultyBackend({self._base!r})"

    # -- fault assertion -----------------------------------------------

    def _assert_state(self) -> None:
        """Force the plan's persistent faults back into storage."""
        inj = self._injector
        for s in self._stuck:
            if s.chain in inj.remapped:
                continue
            self._base.force_bit(s.sub, s.row, s.col, s.value)
            inj.announce(s.fault, "stuck_bit")
        self._apply_kills()

    def _apply_kills(self) -> None:
        inj = self._injector
        for k in self._kills:
            if inj.csb_ops < k.at_op or k.chain in inj.remapped:
                continue
            self._base.zero_columns(k.cols)
            inj.announce(k.fault, "chain_kill", chain=k.chain)

    def _due_flips(self) -> List[_FlipSite]:
        inj = self._injector
        due = [s for s in self._flips if s.at_search <= inj.searches]
        for s in due:
            self._flips.remove(s)
        return due

    def _flip_tag(self, sub: int, col: int) -> None:
        tags = self._base.tags_of(sub)
        tags[col] ^= 1
        self._base.set_tags(sub, tags)

    # -- host-side state writes (sync path) ------------------------------

    def set_element_bits(self, row, col, bits) -> None:
        self._base.set_element_bits(row, col, bits)
        self._assert_state()

    def set_register_planes(self, row, bits, cols=None) -> None:
        self._base.set_register_planes(row, bits, cols=cols)
        self._assert_state()

    # -- kernels ----------------------------------------------------------

    def match(self, sub, key):
        self._injector.csb_ops += 1
        out = np.array(self._base.match(sub, key), copy=True)
        self._apply_kills()
        for k in self._kills:
            if self._injector.csb_ops >= k.at_op \
                    and k.chain not in self._injector.remapped:
                out[k.cols] = 0
        return out

    def search(self, sub, key, accumulate: bool = False):
        inj = self._injector
        inj.csb_ops += 1
        out = np.array(
            self._base.search(sub, key, accumulate=accumulate), copy=True
        )
        self._apply_kills()
        inj.searches += 1
        for k in self._kills:
            if inj.csb_ops >= k.at_op and k.chain not in inj.remapped:
                out[k.cols] = 0
        for site in self._due_flips():
            self._flip_tag(site.sub, site.col)
            if site.sub == sub:
                out[site.col] ^= 1
            inj.announce(site.fault, "tag_flip")
        return out

    def search_all(self, keys, accumulate: bool = False):
        inj = self._injector
        inj.csb_ops += 1
        out = np.array(
            self._base.search_all(keys, accumulate=accumulate), copy=True
        )
        self._apply_kills()
        inj.searches += 1
        for k in self._kills:
            if inj.csb_ops >= k.at_op and k.chain not in inj.remapped:
                out[:, k.cols] = 0
        for site in self._due_flips():
            self._flip_tag(site.sub, site.col)
            out[site.sub, site.col] ^= 1
            inj.announce(site.fault, "tag_flip")
        return out

    def update(self, sub, row, value, select) -> None:
        self._injector.csb_ops += 1
        self._base.update(sub, row, value, select)
        self._assert_state()

    def update_all(self, row, value, select) -> None:
        self._injector.csb_ops += 1
        self._base.update_all(row, value, select)
        self._assert_state()

    def update_all_values(self, row, values, select) -> None:
        self._injector.csb_ops += 1
        self._base.update_all_values(row, values, select)
        self._assert_state()

    def map_register(self, dst_row, src_row, fn, mask, active=None) -> None:
        self._injector.csb_ops += 1
        self._base.map_register(dst_row, src_row, fn, mask, active=active)
        self._assert_state()

    # -- tag writes -------------------------------------------------------

    def set_tags(self, sub, tags) -> None:
        self._base.set_tags(sub, tags)
        self._apply_kills()

    def or_tags(self, sub, tags) -> None:
        self._base.or_tags(sub, tags)
        self._apply_kills()
