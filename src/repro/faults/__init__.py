"""repro.faults — deterministic fault injection and repair bookkeeping.

See :mod:`repro.faults.plan` for the fault taxonomy and seeded plans,
and :mod:`repro.faults.injector` for the per-device injector and the
backend wrapper that asserts faults into live CSB storage.
"""

from repro.faults.injector import FaultInjector, FaultyBackend
from repro.faults.plan import (
    TRANSFER_KINDS,
    ChainKill,
    DeviceKill,
    FaultPlan,
    StuckBit,
    TagFlip,
    TransferFault,
    WorkerKill,
)

__all__ = [
    "ChainKill",
    "DeviceKill",
    "FaultInjector",
    "FaultPlan",
    "FaultyBackend",
    "StuckBit",
    "TagFlip",
    "TransferFault",
    "TRANSFER_KINDS",
    "WorkerKill",
]
