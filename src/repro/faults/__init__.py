"""repro.faults — deterministic fault injection and repair bookkeeping.

See :mod:`repro.faults.plan` for the fault taxonomy and seeded plans
(device-level substrate faults plus the process-scoped transport
faults the serving tier injects on the wire), and
:mod:`repro.faults.injector` for the per-device injector and the
backend wrapper that asserts faults into live CSB storage.
"""

from repro.faults.injector import FaultInjector, FaultyBackend
from repro.faults.plan import (
    TRANSFER_KINDS,
    ChainKill,
    DeviceKill,
    FaultPlan,
    ReplyDrop,
    ReplyGarble,
    SlowWorker,
    StuckBit,
    TagFlip,
    TransferFault,
    TransportSchedule,
    WorkerHang,
    WorkerKill,
)

__all__ = [
    "ChainKill",
    "DeviceKill",
    "FaultInjector",
    "FaultPlan",
    "FaultyBackend",
    "ReplyDrop",
    "ReplyGarble",
    "SlowWorker",
    "StuckBit",
    "TagFlip",
    "TransferFault",
    "TransportSchedule",
    "TRANSFER_KINDS",
    "WorkerHang",
    "WorkerKill",
]
