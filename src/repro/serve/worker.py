"""Worker processes: device shards behind a pipe.

Each worker process owns one or more CAPE devices — a full
:class:`~repro.engine.system.CAPESystem` per device, a *per-process*
:class:`~repro.plan.PlanCache` shared by those systems (warmed at boot
from the configured warmup specs), and, when a fault plan is active,
each device's :class:`~repro.faults.FaultInjector` over its slice of
the plan. Job execution happens entirely inside the worker: the parent
ships a picklable :class:`~repro.serve.spec.JobSpec`, the worker
materialises the job, resets the target device, executes, validates
against the golden, and ships back a plain-dict reply with the outputs,
cycle/energy charges, the device's death flag, and the plan-cache
snapshot.

The protocol is deliberately tiny — tuples over a duplex
``multiprocessing`` pipe, requests answered strictly in order:

=====================================  ====================================
parent → worker                        worker → parent
=====================================  ====================================
``("run", seq, di, spec[, dl])``       ``("result", seq, reply_dict)``
``("runs", seq, members, ack)``        ``("results", seq, [reply, ...])``
``("gang", seq, reqs, mode[, ack])``   ``("gang", seq, [reply_dict, ...])``
``("stats", seq)``                     ``("stats", seq, stats_dict)``
``("shutdown",)``                      (clean exit, pipe closes)
(unsolicited, from a side thread)      ``("heartbeat", worker_id, info)``
=====================================  ====================================

``runs`` is the batched-dispatch frame: ``members`` is one launch
round's worth of ``(device_id, spec, deadline_s)`` tuples for this
worker, answered by exactly one ``results`` frame carrying the member
replies in order — one pickle + one syscall per *round* instead of per
request. ``ack`` piggybacks the parent's cumulative reply-ring consume
mark for the shared-memory data plane (``repro.serve.shm``): specs may
arrive with :class:`~repro.serve.shm.ShmRef` descriptors in place of
numpy arrays (decoded here into zero-copy views), and reply arrays are
written into this worker's reply ring when one was provisioned via
``WorkerOptions.reply_segment``.

The optional fifth ``run`` element ``dl`` is the request's *remaining*
wall-clock budget in seconds (``None`` = unbounded); a worker that
receives an already-expired request cheap-cancels it — an error reply
with ``deadline_cancelled`` set, no execution. When
``WorkerOptions.heartbeat_interval_s`` is positive, a side thread
interleaves ``heartbeat`` messages with the ordered replies (sends
share one lock, so frames never tear); parents must skip them when
awaiting a reply.

A ``gang`` request carries one launch batch for this worker's devices
(``reqs`` is ``[(device_id, spec), ...]``); the worker runs it through
:func:`repro.gang.run_ganged` — stacked replay for eligible groups,
sequential fallback otherwise — and replies with one dict per request,
each the normal ``run`` reply plus the gang outcome fields.

A worker crash — injected via :class:`~repro.faults.WorkerKill` or
real — closes the pipe; the parent surfaces it as
:class:`~repro.common.errors.WorkerDiedError` and the serving tier
treats every device the worker owned as dead (the ``DeviceKill``
pathway of the healing ladder). The rest of the transport taxonomy
(:class:`~repro.faults.WorkerHang` / :class:`~repro.faults.SlowWorker`
/ :class:`~repro.faults.ReplyDrop` / :class:`~repro.faults.ReplyGarble`)
is injected here on the worker side of the pipe, keyed on the worker's
1-based lifetime job count, so seeded chaos storms exercise the wire
itself — see :class:`~repro.faults.TransportSchedule` for precedence.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.common.errors import (
    ConfigError,
    DeadlineExceededError,
    WorkerDiedError,
    WorkerTimeoutError,
)
from repro.engine.system import CAPEConfig, CAPESystem
from repro.faults.injector import FaultInjector
from repro.gang import run_ganged
from repro.memory.mainmem import WordMemory
from repro.plan.cache import PlanCache
from repro.serve.shm import DEFAULT_MIN_BYTES, WorkerWire
from repro.serve.spec import JobSpec

__all__ = ["GARBLED_PAYLOAD", "WorkerHandle", "WorkerOptions", "worker_main"]

#: Exit code of an injected :class:`WorkerKill` crash (tests assert it).
KILLED_EXIT_CODE = 17


@dataclass(frozen=True)
class WorkerOptions:
    """Everything a worker needs to rebuild its shard (picklable).

    Attributes mirror the :class:`~repro.runtime.pool.DevicePool`
    construction arguments so worker-side devices are indistinguishable
    from the in-process devices the sequential comparison path uses.
    """

    memory_bytes: Optional[int] = None
    accounting: str = "paper"
    backend: Optional[str] = None
    warmup: Tuple[JobSpec, ...] = ()
    fault_plan: object = None  # Optional[FaultPlan]; picklable
    #: Whole-kernel superplan mode for the shard's systems
    #: (``True`` / ``False`` / ``"auto"``, docs/PERFORMANCE.md).
    superplan: object = False
    #: Period of the unsolicited ``("heartbeat", ...)`` messages a side
    #: thread sends so the parent can tell a hung worker from a slow
    #: one; ``0`` (the default) disables the thread entirely.
    heartbeat_interval_s: float = 0.0
    #: Name of this worker's parent-owned reply-ring segment on the
    #: shared-memory data plane; ``None`` keeps replies fully inline.
    reply_segment: Optional[str] = None
    #: Arrays below this many bytes stay inline even on the shm wire.
    wire_min_bytes: int = DEFAULT_MIN_BYTES


def _build_shard(
    worker_id: int,
    devices: Sequence[Tuple[int, CAPEConfig]],
    options: WorkerOptions,
):
    """Construct this worker's systems, injectors, and plan cache."""
    plan_cache = PlanCache()
    systems: Dict[int, CAPESystem] = {}
    injectors: Dict[int, Optional[FaultInjector]] = {}
    for device_id, config in devices:
        system = CAPESystem(
            config,
            memory=(
                WordMemory(options.memory_bytes)
                if options.memory_bytes is not None
                else None
            ),
            accounting=options.accounting,
            backend=options.backend,
            plan_cache=plan_cache,
            superplan=options.superplan,
        )
        injector = None
        if options.fault_plan is not None:
            injector = FaultInjector(options.fault_plan.for_device(device_id))
            system.attach_fault_injector(injector)
        systems[device_id] = system
        injectors[device_id] = injector
    if options.warmup and devices:
        # Warm the per-process plan cache on a throwaway system so the
        # warmup never advances injector state — plans are shape-keyed
        # (num_cols excluded), so one config warms every device.
        scratch = CAPESystem(
            devices[0][1],
            memory=(
                WordMemory(options.memory_bytes)
                if options.memory_bytes is not None
                else None
            ),
            accounting=options.accounting,
            backend=options.backend,
            plan_cache=plan_cache,
            superplan=options.superplan,
        )
        for spec in options.warmup:
            scratch.reset()
            spec.to_job().execute(scratch)
    return systems, injectors, plan_cache


def _error_reply(spec: JobSpec, injector, exc: Exception) -> dict:
    """Reply for a spec-level failure (unknown kernel, bad payload)."""
    return {
        "name": spec.name,
        "output": None,
        "validated": False,
        "service_cycles": 0.0,
        "energy_j": 0.0,
        "spills": 0,
        "restores": 0,
        "error": f"{type(exc).__name__}: {exc}",
        "device_dead": bool(injector is not None and injector.dead),
        "faults_injected": (
            sum(injector.injected.values()) if injector is not None else 0
        ),
    }


def _result_reply(spec: JobSpec, injector, result) -> dict:
    """Reply carrying one executed job's result back over the pipe."""
    return {
        "name": spec.name,
        "output": result.output,
        "validated": result.validated,
        "service_cycles": result.service_cycles,
        "energy_j": result.energy_j,
        "spills": result.spills,
        "restores": result.restores,
        "error": result.error,
        "device_dead": bool(injector is not None and injector.dead),
        "faults_injected": (
            sum(injector.injected.values()) if injector is not None else 0
        ),
    }


def _execute(system: CAPESystem, injector, spec: JobSpec) -> dict:
    """Run one spec on a (freshly reset) device; plain-dict reply.

    ``Job.execute`` already captures body errors in the result; this
    additionally catches spec-level failures (an unknown kernel, an
    unpicklable payload surfacing late) so a malformed request costs
    one error reply, never the worker process.
    """
    try:
        job = spec.to_job()
        system.reset()
        result = job.execute(system)
    except Exception as exc:  # noqa: BLE001 — the reply IS the error path
        return _error_reply(spec, injector, exc)
    return _result_reply(spec, injector, result)


def _execute_gang(systems, injectors, requests, mode) -> list:
    """Run a ``("gang", ...)`` request: one batch across owned devices.

    ``requests`` is ``[(device_id, spec), ...]`` — at most one entry per
    device, exactly the launch batch the parent's event loop formed.
    :func:`repro.gang.run_ganged` does the eligibility split, stacked
    replay, and sequential fallback; each reply dict is the normal
    ``run`` reply plus the gang outcome fields (``ganged`` / ``ejected``
    / ``gang_size`` / ``gang_reason``) so the parent can account
    ``gang.*`` metrics without a second round trip.
    """
    replies: list = [None] * len(requests)
    entries = []
    slots = []
    for i, (device_id, spec) in enumerate(requests):
        try:
            job = spec.to_job()
        except Exception as exc:  # noqa: BLE001 — reply IS the error path
            reply = _error_reply(spec, injectors[device_id], exc)
            reply["device_id"] = device_id
            reply.update(
                ganged=False, ejected=False, gang_size=0, gang_reason="spec"
            )
            replies[i] = reply
            continue
        entries.append((systems[device_id], job))
        slots.append(i)
    outcomes = run_ganged(entries, mode=mode) if entries else []
    for slot, (system, job), outcome in zip(slots, entries, outcomes):
        device_id, spec = requests[slot]
        reply = _result_reply(spec, injectors[device_id], job.result)
        reply["device_id"] = device_id
        reply["ganged"] = outcome.ganged
        reply["ejected"] = outcome.ejected
        reply["gang_size"] = outcome.gang_size
        reply["gang_reason"] = outcome.reason
        replies[slot] = reply
    return replies


#: The reply payload an injected :class:`~repro.faults.ReplyGarble`
#: substitutes for the real dict — deliberately not a mapping, so any
#: parent-side reply handler trips over it (tests assert the marker).
GARBLED_PAYLOAD = "\x00garbled-by-fault-plan\x00"


def _cancel_reply(spec: JobSpec, injector, deadline_s) -> dict:
    """Reply for a worker-side cheap cancel of an expired request."""
    reply = _error_reply(
        spec,
        injector,
        DeadlineExceededError(
            f"deadline expired before execution "
            f"(remaining budget {deadline_s:.3g}s)"
        ),
    )
    reply["deadline_cancelled"] = True
    return reply


class _Heartbeat:
    """The worker's side thread: unsolicited liveness over the pipe.

    Shares ``send_lock`` with the main loop so a heartbeat can never
    tear a reply frame mid-pickle. An injected
    :class:`~repro.faults.WorkerHang` stops the thread along with the
    main loop — a hung worker goes *fully* silent, which is exactly the
    signal hang detection keys on.
    """

    def __init__(self, conn, worker_id: int, interval_s: float, send_lock):
        self._conn = conn
        self._worker_id = worker_id
        self._interval_s = interval_s
        self._send_lock = send_lock
        self._stop = threading.Event()
        self._thread = None
        self.info: Dict[str, object] = {}

    def start(self) -> None:
        if self._interval_s <= 0:
            return
        self._thread = threading.Thread(
            target=self._main, name="cape-heartbeat", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()

    def _main(self) -> None:
        while not self._stop.wait(self._interval_s):
            try:
                with self._send_lock:
                    self._conn.send(
                        ("heartbeat", self._worker_id, dict(self.info))
                    )
            except (BrokenPipeError, OSError):
                return  # parent went away; nothing to report to


def worker_main(
    conn,
    worker_id: int,
    devices: Sequence[Tuple[int, CAPEConfig]],
    options: WorkerOptions,
) -> None:
    """The worker process entry point: build the shard, serve the pipe.

    Requests are served strictly in arrival order; an injected
    :class:`~repro.faults.WorkerKill` exits the process abruptly (no
    reply, exit code :data:`KILLED_EXIT_CODE`) *while* the matching job
    is in flight, exactly like a hard crash. The rest of the transport
    schedule fires here too, keyed on the 1-based lifetime job count:
    a hang wedges the process (alive, fully silent — heartbeats stop
    with the main loop), a slow delays the reply, a drop executes the
    job but never sends (device state still advances, exactly as if
    the reply were lost in flight), a garble sends a non-dict payload.
    """
    systems, injectors, plan_cache = _build_shard(worker_id, devices, options)
    wire = WorkerWire(options.reply_segment, options.wire_min_bytes)
    schedule = None
    if options.fault_plan is not None:
        schedule = options.fault_plan.transport_for_worker(worker_id)
        if schedule.empty:
            schedule = None
    kill_at = schedule.kill_at if schedule is not None else None
    jobs_executed = 0
    injected = {"hang": 0, "slow": 0, "drop": 0, "garble": 0}
    send_lock = threading.Lock()
    heartbeat = _Heartbeat(
        conn, worker_id, options.heartbeat_interval_s, send_lock
    )
    heartbeat.start()

    def send(msg) -> None:
        with send_lock:
            conn.send(msg)

    def hang_forever() -> None:
        # The injected wedge: stop heartbeats, keep the process alive,
        # never touch the pipe again. The parent's hang detector (not
        # pipe EOF) is what must notice; it terminates us.
        heartbeat.stop()
        while True:
            time.sleep(3600.0)

    try:
        while True:
            try:
                msg = conn.recv()
            except EOFError:  # parent went away: nothing left to serve
                return
            if msg[0] == "shutdown":
                return
            if msg[0] == "run":
                if len(msg) == 5:
                    _, seq, device_id, spec, deadline_s = msg
                else:  # pre-deadline 4-tuple senders remain valid
                    _, seq, device_id, spec = msg
                    deadline_s = None
                spec = wire.decode_spec(spec)
                jobs_executed += 1
                j = jobs_executed
                heartbeat.info["jobs_executed"] = j
                if kill_at is not None and j >= kill_at:
                    # The injected crash: die mid-job, reply never sent.
                    conn.close()
                    os._exit(KILLED_EXIT_CODE)
                if schedule is not None and (
                    schedule.hang_at is not None and j >= schedule.hang_at
                ):
                    injected["hang"] += 1
                    hang_forever()
                if deadline_s is not None and deadline_s <= 0:
                    # Cheap cancel: the budget was gone on arrival, so
                    # skip execution and say why in the reply.
                    reply = _cancel_reply(
                        spec, injectors[device_id], deadline_s
                    )
                else:
                    reply = _execute(
                        systems[device_id], injectors[device_id], spec
                    )
                reply["worker_id"] = worker_id
                reply["device_id"] = device_id
                reply["jobs_executed"] = j
                reply["plan_cache"] = plan_cache.snapshot()
                if schedule is not None:
                    delay = schedule.slow.get(j)
                    if delay is not None:
                        injected["slow"] += 1
                        time.sleep(delay)
                    if j in schedule.drop_at:
                        # The job ran — device state advanced — but the
                        # reply vanishes, as if lost on the wire. The
                        # completion mark below still advances (updated
                        # only *after* the send would have happened), so
                        # the parent's drop detector can conclude the
                        # loss from a later heartbeat.
                        injected["drop"] += 1
                        heartbeat.info["transport_injected"] = dict(injected)
                        heartbeat.info["jobs_completed"] = j
                        continue
                    if j in schedule.garble_at:
                        injected["garble"] += 1
                        heartbeat.info["transport_injected"] = dict(injected)
                        send(("result", seq, GARBLED_PAYLOAD))
                        heartbeat.info["jobs_completed"] = j
                        continue
                send(("result", seq, reply))
                # Updated after the send (under FIFO): any heartbeat
                # carrying this mark was framed behind the reply, so a
                # parent that saw the mark but no reply knows the reply
                # was dropped, not merely late.
                heartbeat.info["jobs_completed"] = j
            elif msg[0] == "runs":
                _, seq, members, ack = msg
                wire.note_ack(ack)
                start = jobs_executed
                end = start + len(members)
                if kill_at is not None and end >= kill_at:
                    # The injected crash lands inside this frame: die
                    # mid-batch, reply never sent — every member fails
                    # over exactly like a crash during a lone run.
                    conn.close()
                    os._exit(KILLED_EXIT_CODE)
                if schedule is not None and (
                    schedule.hang_at is not None and end >= schedule.hang_at
                ):
                    injected["hang"] += 1
                    hang_forever()
                jobs_executed = end
                heartbeat.info["jobs_executed"] = end
                replies = []
                for i, (device_id, spec, deadline_s) in enumerate(members):
                    spec = wire.decode_spec(spec)
                    if deadline_s is not None and deadline_s <= 0:
                        reply = _cancel_reply(
                            spec, injectors[device_id], deadline_s
                        )
                    else:
                        reply = _execute(
                            systems[device_id], injectors[device_id], spec
                        )
                    reply["worker_id"] = worker_id
                    reply["device_id"] = device_id
                    reply["jobs_executed"] = start + i + 1
                    reply["plan_cache"] = plan_cache.snapshot()
                    replies.append(reply)
                if schedule is not None:
                    span = range(start + 1, end + 1)
                    for j in span:
                        delay = schedule.slow.get(j)
                        if delay is not None:
                            injected["slow"] += 1
                            time.sleep(delay)
                    dropped = [j for j in span if j in schedule.drop_at]
                    garbled = [j for j in span if j in schedule.garble_at]
                    if dropped:
                        # Any member loss drops the *whole* frame — one
                        # wire message, one fate. The completion mark
                        # still advances to the frame end so the
                        # parent's detectors conclude every member.
                        injected["drop"] += len(dropped)
                        heartbeat.info["transport_injected"] = dict(injected)
                        heartbeat.info["jobs_completed"] = end
                        continue
                    if garbled:
                        injected["garble"] += len(garbled)
                        heartbeat.info["transport_injected"] = dict(injected)
                        send(("results", seq, GARBLED_PAYLOAD))
                        heartbeat.info["jobs_completed"] = end
                        continue
                send(
                    ("results", seq, [wire.encode_reply(r) for r in replies])
                )
                heartbeat.info["jobs_completed"] = end
            elif msg[0] == "gang":
                _, seq, requests, mode = msg[:4]
                if len(msg) == 5:
                    wire.note_ack(msg[4])
                requests = [
                    (device_id, wire.decode_spec(spec))
                    for device_id, spec in requests
                ]
                end = jobs_executed + len(requests)
                if kill_at is not None and end >= kill_at:
                    # The injected crash lands inside this batch: die
                    # mid-gang, reply never sent — the whole batch fails
                    # over exactly like a crash during a lone run.
                    conn.close()
                    os._exit(KILLED_EXIT_CODE)
                if schedule is not None and (
                    schedule.hang_at is not None and end >= schedule.hang_at
                ):
                    injected["hang"] += 1
                    hang_forever()
                jobs_executed = end
                heartbeat.info["jobs_executed"] = end
                replies = _execute_gang(systems, injectors, requests, mode)
                for reply in replies:
                    reply["worker_id"] = worker_id
                    reply["jobs_executed"] = jobs_executed
                    reply["plan_cache"] = plan_cache.snapshot()
                send(("gang", seq, [wire.encode_reply(r) for r in replies]))
                heartbeat.info["jobs_completed"] = jobs_executed
            elif msg[0] == "stats":
                _, seq = msg
                send(
                    (
                        "stats",
                        seq,
                        {
                            "worker_id": worker_id,
                            "pid": os.getpid(),
                            "jobs_executed": jobs_executed,
                            "transport_injected": dict(injected),
                            "plan_cache": plan_cache.snapshot(),
                            "devices": {
                                device_id: (
                                    injector.report()
                                    if injector is not None
                                    else None
                                )
                                for device_id, injector in injectors.items()
                            },
                        },
                    )
                )
            else:  # unknown message: fail loudly, don't wedge the pipe
                raise ConfigError(f"unknown worker message {msg[0]!r}")
    finally:
        heartbeat.stop()
        wire.close()
        conn.close()


class WorkerHandle:
    """Parent-side handle on one worker process.

    Wraps process lifecycle and the pipe protocol. Hard transport
    failures (broken pipe on send, EOF on receive, a dead process) are
    normalised to :class:`~repro.common.errors.WorkerDiedError`;
    a reply that is merely *late* from a live process surfaces as
    :class:`~repro.common.errors.WorkerTimeoutError` so callers never
    mistake a slow worker for a crashed one.
    """

    def __init__(
        self,
        worker_id: int,
        devices: Sequence[Tuple[int, CAPEConfig]],
        options: WorkerOptions,
        mp_context=None,
    ) -> None:
        if not devices:
            raise ConfigError(f"worker {worker_id} owns no devices")
        self.worker_id = worker_id
        self.devices = tuple(devices)
        self.device_ids = tuple(device_id for device_id, _ in devices)
        self.options = options
        self._ctx = mp_context
        self._process = None
        self._conn = None

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "WorkerHandle":
        import multiprocessing as mp

        ctx = self._ctx if self._ctx is not None else mp.get_context()
        parent, child = ctx.Pipe(duplex=True)
        self._process = ctx.Process(
            target=worker_main,
            args=(child, self.worker_id, self.devices, self.options),
            name=f"cape-serve-{self.worker_id}",
            daemon=True,
        )
        self._process.start()
        child.close()
        self._conn = parent
        return self

    @property
    def alive(self) -> bool:
        return self._process is not None and self._process.is_alive()

    @property
    def exitcode(self) -> Optional[int]:
        return self._process.exitcode if self._process is not None else None

    def terminate(self, timeout: float = 1.0) -> None:
        """Hard-stop a wedged worker (hang verdicts: no shutdown message
        can help a process that stopped reading its pipe)."""
        if self._process is None:
            return
        self._process.terminate()
        self._process.join(timeout)

    def shutdown(self, timeout: float = 5.0) -> None:
        """Ask the worker to exit; escalate to terminate if it won't."""
        if self._process is None:
            return
        try:
            self._conn.send(("shutdown",))
        except (BrokenPipeError, OSError):
            pass
        self._process.join(timeout)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout)
        self._conn.close()

    # -- protocol -------------------------------------------------------

    def _died(self, context: str = "") -> WorkerDiedError:
        detail = f" {context}" if context else ""
        return WorkerDiedError(
            f"serving worker {self.worker_id} died{detail} "
            f"(exit code {self.exitcode}, devices {list(self.device_ids)})"
        )

    def send_run(
        self,
        seq: int,
        device_id: int,
        spec: JobSpec,
        deadline_s: Optional[float] = None,
    ) -> None:
        """Dispatch one spec; ``deadline_s`` is the *remaining* wall
        budget (``None`` = unbounded), enforced worker-side as a cheap
        cancel when it is already spent on arrival."""
        if device_id not in self.device_ids:
            raise ConfigError(
                f"device {device_id} is not owned by worker {self.worker_id}"
            )
        if deadline_s is None:
            self._send(("run", seq, device_id, spec))
        else:
            self._send(("run", seq, device_id, spec, float(deadline_s)))

    def send_runs(self, seq: int, members, ack: int = 0) -> None:
        """Ship one batched-dispatch frame: a list of
        ``(device_id, wire_spec, deadline_s)`` members answered by a
        single ``("results", seq, [reply, ...])`` frame. ``ack`` is the
        parent's cumulative reply-ring consume mark (shm wire only)."""
        for device_id, _spec, _deadline_s in members:
            if device_id not in self.device_ids:
                raise ConfigError(
                    f"device {device_id} is not owned by worker "
                    f"{self.worker_id}"
                )
        self._send(("runs", seq, list(members), int(ack)))

    def send_gang(self, seq: int, requests, mode, ack: int = 0) -> None:
        """Ship one launch batch ``[(device_id, spec), ...]`` for gang
        execution on this worker's shard."""
        for device_id, _spec in requests:
            if device_id not in self.device_ids:
                raise ConfigError(
                    f"device {device_id} is not owned by worker "
                    f"{self.worker_id}"
                )
        self._send(("gang", seq, list(requests), mode, int(ack)))

    def send_stats(self, seq: int) -> None:
        self._send(("stats", seq))

    def _send(self, msg) -> None:
        try:
            self._conn.send(msg)
        except (BrokenPipeError, OSError) as exc:
            # Name the worker and the frame kind: a storm log full of
            # bare BrokenPipeErrors is unattributable.
            raise self._died(f"while sending a {msg[0]!r} frame") from exc

    def recv(self, timeout: Optional[float] = None):
        """Next ``(kind, seq, payload)`` message; raises on crash/timeout.

        A poll timeout from a *live* process raises
        :class:`~repro.common.errors.WorkerTimeoutError` — the reply is
        late or lost, not dead; the caller decides whether to keep
        waiting, hedge, or escalate to unresponsive. Only a dead
        process or a closed pipe raises
        :class:`~repro.common.errors.WorkerDiedError`. Note heartbeats
        arrive through here too — callers awaiting a reply must skip
        ``("heartbeat", ...)`` frames.
        """
        try:
            if timeout is not None and not self._conn.poll(timeout):
                if not self.alive:
                    raise self._died()
                raise WorkerTimeoutError(
                    f"serving worker {self.worker_id} sent nothing for "
                    f"{timeout}s (process alive — slow, hung, or the "
                    f"reply was dropped)"
                )
            return self._conn.recv()
        except (EOFError, BrokenPipeError, OSError) as exc:
            raise self._died() from exc

    def __repr__(self) -> str:
        state = "live" if self.alive else f"exit={self.exitcode}"
        return (
            f"WorkerHandle(#{self.worker_id}, "
            f"devices={list(self.device_ids)}, {state})"
        )
