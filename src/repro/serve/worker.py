"""Worker processes: device shards behind a pipe.

Each worker process owns one or more CAPE devices — a full
:class:`~repro.engine.system.CAPESystem` per device, a *per-process*
:class:`~repro.plan.PlanCache` shared by those systems (warmed at boot
from the configured warmup specs), and, when a fault plan is active,
each device's :class:`~repro.faults.FaultInjector` over its slice of
the plan. Job execution happens entirely inside the worker: the parent
ships a picklable :class:`~repro.serve.spec.JobSpec`, the worker
materialises the job, resets the target device, executes, validates
against the golden, and ships back a plain-dict reply with the outputs,
cycle/energy charges, the device's death flag, and the plan-cache
snapshot.

The protocol is deliberately tiny — tuples over a duplex
``multiprocessing`` pipe, requests answered strictly in order:

==============================  =========================================
parent → worker                 worker → parent
==============================  =========================================
``("run", seq, di, spec)``      ``("result", seq, reply_dict)``
``("gang", seq, reqs, mode)``   ``("gang", seq, [reply_dict, ...])``
``("stats", seq)``              ``("stats", seq, stats_dict)``
``("shutdown",)``               (clean exit, pipe closes)
==============================  =========================================

A ``gang`` request carries one launch batch for this worker's devices
(``reqs`` is ``[(device_id, spec), ...]``); the worker runs it through
:func:`repro.gang.run_ganged` — stacked replay for eligible groups,
sequential fallback otherwise — and replies with one dict per request,
each the normal ``run`` reply plus the gang outcome fields.

A worker crash — injected via :class:`~repro.faults.WorkerKill` or
real — closes the pipe; the parent surfaces it as
:class:`~repro.common.errors.WorkerDiedError` and the serving tier
treats every device the worker owned as dead (the ``DeviceKill``
pathway of the healing ladder).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.common.errors import ConfigError, WorkerDiedError
from repro.engine.system import CAPEConfig, CAPESystem
from repro.faults.injector import FaultInjector
from repro.gang import run_ganged
from repro.memory.mainmem import WordMemory
from repro.plan.cache import PlanCache
from repro.serve.spec import JobSpec

__all__ = ["WorkerHandle", "WorkerOptions", "worker_main"]

#: Exit code of an injected :class:`WorkerKill` crash (tests assert it).
KILLED_EXIT_CODE = 17


@dataclass(frozen=True)
class WorkerOptions:
    """Everything a worker needs to rebuild its shard (picklable).

    Attributes mirror the :class:`~repro.runtime.pool.DevicePool`
    construction arguments so worker-side devices are indistinguishable
    from the in-process devices the sequential comparison path uses.
    """

    memory_bytes: Optional[int] = None
    accounting: str = "paper"
    backend: Optional[str] = None
    warmup: Tuple[JobSpec, ...] = ()
    fault_plan: object = None  # Optional[FaultPlan]; picklable
    #: Whole-kernel superplan mode for the shard's systems
    #: (``True`` / ``False`` / ``"auto"``, docs/PERFORMANCE.md).
    superplan: object = False


def _build_shard(
    worker_id: int,
    devices: Sequence[Tuple[int, CAPEConfig]],
    options: WorkerOptions,
):
    """Construct this worker's systems, injectors, and plan cache."""
    plan_cache = PlanCache()
    systems: Dict[int, CAPESystem] = {}
    injectors: Dict[int, Optional[FaultInjector]] = {}
    for device_id, config in devices:
        system = CAPESystem(
            config,
            memory=(
                WordMemory(options.memory_bytes)
                if options.memory_bytes is not None
                else None
            ),
            accounting=options.accounting,
            backend=options.backend,
            plan_cache=plan_cache,
            superplan=options.superplan,
        )
        injector = None
        if options.fault_plan is not None:
            injector = FaultInjector(options.fault_plan.for_device(device_id))
            system.attach_fault_injector(injector)
        systems[device_id] = system
        injectors[device_id] = injector
    if options.warmup and devices:
        # Warm the per-process plan cache on a throwaway system so the
        # warmup never advances injector state — plans are shape-keyed
        # (num_cols excluded), so one config warms every device.
        scratch = CAPESystem(
            devices[0][1],
            memory=(
                WordMemory(options.memory_bytes)
                if options.memory_bytes is not None
                else None
            ),
            accounting=options.accounting,
            backend=options.backend,
            plan_cache=plan_cache,
            superplan=options.superplan,
        )
        for spec in options.warmup:
            scratch.reset()
            spec.to_job().execute(scratch)
    return systems, injectors, plan_cache


def _error_reply(spec: JobSpec, injector, exc: Exception) -> dict:
    """Reply for a spec-level failure (unknown kernel, bad payload)."""
    return {
        "name": spec.name,
        "output": None,
        "validated": False,
        "service_cycles": 0.0,
        "energy_j": 0.0,
        "spills": 0,
        "restores": 0,
        "error": f"{type(exc).__name__}: {exc}",
        "device_dead": bool(injector is not None and injector.dead),
        "faults_injected": (
            sum(injector.injected.values()) if injector is not None else 0
        ),
    }


def _result_reply(spec: JobSpec, injector, result) -> dict:
    """Reply carrying one executed job's result back over the pipe."""
    return {
        "name": spec.name,
        "output": result.output,
        "validated": result.validated,
        "service_cycles": result.service_cycles,
        "energy_j": result.energy_j,
        "spills": result.spills,
        "restores": result.restores,
        "error": result.error,
        "device_dead": bool(injector is not None and injector.dead),
        "faults_injected": (
            sum(injector.injected.values()) if injector is not None else 0
        ),
    }


def _execute(system: CAPESystem, injector, spec: JobSpec) -> dict:
    """Run one spec on a (freshly reset) device; plain-dict reply.

    ``Job.execute`` already captures body errors in the result; this
    additionally catches spec-level failures (an unknown kernel, an
    unpicklable payload surfacing late) so a malformed request costs
    one error reply, never the worker process.
    """
    try:
        job = spec.to_job()
        system.reset()
        result = job.execute(system)
    except Exception as exc:  # noqa: BLE001 — the reply IS the error path
        return _error_reply(spec, injector, exc)
    return _result_reply(spec, injector, result)


def _execute_gang(systems, injectors, requests, mode) -> list:
    """Run a ``("gang", ...)`` request: one batch across owned devices.

    ``requests`` is ``[(device_id, spec), ...]`` — at most one entry per
    device, exactly the launch batch the parent's event loop formed.
    :func:`repro.gang.run_ganged` does the eligibility split, stacked
    replay, and sequential fallback; each reply dict is the normal
    ``run`` reply plus the gang outcome fields (``ganged`` / ``ejected``
    / ``gang_size`` / ``gang_reason``) so the parent can account
    ``gang.*`` metrics without a second round trip.
    """
    replies: list = [None] * len(requests)
    entries = []
    slots = []
    for i, (device_id, spec) in enumerate(requests):
        try:
            job = spec.to_job()
        except Exception as exc:  # noqa: BLE001 — reply IS the error path
            reply = _error_reply(spec, injectors[device_id], exc)
            reply["device_id"] = device_id
            reply.update(
                ganged=False, ejected=False, gang_size=0, gang_reason="spec"
            )
            replies[i] = reply
            continue
        entries.append((systems[device_id], job))
        slots.append(i)
    outcomes = run_ganged(entries, mode=mode) if entries else []
    for slot, (system, job), outcome in zip(slots, entries, outcomes):
        device_id, spec = requests[slot]
        reply = _result_reply(spec, injectors[device_id], job.result)
        reply["device_id"] = device_id
        reply["ganged"] = outcome.ganged
        reply["ejected"] = outcome.ejected
        reply["gang_size"] = outcome.gang_size
        reply["gang_reason"] = outcome.reason
        replies[slot] = reply
    return replies


def worker_main(
    conn,
    worker_id: int,
    devices: Sequence[Tuple[int, CAPEConfig]],
    options: WorkerOptions,
) -> None:
    """The worker process entry point: build the shard, serve the pipe.

    Requests are served strictly in arrival order; an injected
    :class:`~repro.faults.WorkerKill` exits the process abruptly (no
    reply, exit code :data:`KILLED_EXIT_CODE`) *while* the matching job
    is in flight, exactly like a hard crash.
    """
    systems, injectors, plan_cache = _build_shard(worker_id, devices, options)
    kill_at_job = None
    if options.fault_plan is not None:
        kill_at_job = options.fault_plan.kill_job_for_worker(worker_id)
    jobs_executed = 0
    try:
        while True:
            try:
                msg = conn.recv()
            except EOFError:  # parent went away: nothing left to serve
                return
            if msg[0] == "shutdown":
                return
            if msg[0] == "run":
                _, seq, device_id, spec = msg
                jobs_executed += 1
                if kill_at_job is not None and jobs_executed >= kill_at_job:
                    # The injected crash: die mid-job, reply never sent.
                    conn.close()
                    os._exit(KILLED_EXIT_CODE)
                reply = _execute(systems[device_id], injectors[device_id], spec)
                reply["worker_id"] = worker_id
                reply["device_id"] = device_id
                reply["jobs_executed"] = jobs_executed
                reply["plan_cache"] = plan_cache.snapshot()
                conn.send(("result", seq, reply))
            elif msg[0] == "gang":
                _, seq, requests, mode = msg
                end = jobs_executed + len(requests)
                if kill_at_job is not None and end >= kill_at_job:
                    # The injected crash lands inside this batch: die
                    # mid-gang, reply never sent — the whole batch fails
                    # over exactly like a crash during a lone run.
                    conn.close()
                    os._exit(KILLED_EXIT_CODE)
                jobs_executed = end
                replies = _execute_gang(systems, injectors, requests, mode)
                for reply in replies:
                    reply["worker_id"] = worker_id
                    reply["jobs_executed"] = jobs_executed
                    reply["plan_cache"] = plan_cache.snapshot()
                conn.send(("gang", seq, replies))
            elif msg[0] == "stats":
                _, seq = msg
                conn.send(
                    (
                        "stats",
                        seq,
                        {
                            "worker_id": worker_id,
                            "pid": os.getpid(),
                            "jobs_executed": jobs_executed,
                            "plan_cache": plan_cache.snapshot(),
                            "devices": {
                                device_id: (
                                    injector.report()
                                    if injector is not None
                                    else None
                                )
                                for device_id, injector in injectors.items()
                            },
                        },
                    )
                )
            else:  # unknown message: fail loudly, don't wedge the pipe
                raise ConfigError(f"unknown worker message {msg[0]!r}")
    finally:
        conn.close()


class WorkerHandle:
    """Parent-side handle on one worker process.

    Wraps process lifecycle and the pipe protocol; every transport
    failure (broken pipe on send, EOF on receive, a dead process) is
    normalised to :class:`~repro.common.errors.WorkerDiedError` so
    callers have exactly one crash signal to handle.
    """

    def __init__(
        self,
        worker_id: int,
        devices: Sequence[Tuple[int, CAPEConfig]],
        options: WorkerOptions,
        mp_context=None,
    ) -> None:
        if not devices:
            raise ConfigError(f"worker {worker_id} owns no devices")
        self.worker_id = worker_id
        self.devices = tuple(devices)
        self.device_ids = tuple(device_id for device_id, _ in devices)
        self.options = options
        self._ctx = mp_context
        self._process = None
        self._conn = None

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "WorkerHandle":
        import multiprocessing as mp

        ctx = self._ctx if self._ctx is not None else mp.get_context()
        parent, child = ctx.Pipe(duplex=True)
        self._process = ctx.Process(
            target=worker_main,
            args=(child, self.worker_id, self.devices, self.options),
            name=f"cape-serve-{self.worker_id}",
            daemon=True,
        )
        self._process.start()
        child.close()
        self._conn = parent
        return self

    @property
    def alive(self) -> bool:
        return self._process is not None and self._process.is_alive()

    @property
    def exitcode(self) -> Optional[int]:
        return self._process.exitcode if self._process is not None else None

    def shutdown(self, timeout: float = 5.0) -> None:
        """Ask the worker to exit; escalate to terminate if it won't."""
        if self._process is None:
            return
        try:
            self._conn.send(("shutdown",))
        except (BrokenPipeError, OSError):
            pass
        self._process.join(timeout)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout)
        self._conn.close()

    # -- protocol -------------------------------------------------------

    def _died(self) -> WorkerDiedError:
        return WorkerDiedError(
            f"serving worker {self.worker_id} died "
            f"(exit code {self.exitcode}, devices {list(self.device_ids)})"
        )

    def send_run(self, seq: int, device_id: int, spec: JobSpec) -> None:
        if device_id not in self.device_ids:
            raise ConfigError(
                f"device {device_id} is not owned by worker {self.worker_id}"
            )
        self._send(("run", seq, device_id, spec))

    def send_gang(self, seq: int, requests, mode) -> None:
        """Ship one launch batch ``[(device_id, spec), ...]`` for gang
        execution on this worker's shard."""
        for device_id, _spec in requests:
            if device_id not in self.device_ids:
                raise ConfigError(
                    f"device {device_id} is not owned by worker "
                    f"{self.worker_id}"
                )
        self._send(("gang", seq, list(requests), mode))

    def send_stats(self, seq: int) -> None:
        self._send(("stats", seq))

    def _send(self, msg) -> None:
        try:
            self._conn.send(msg)
        except (BrokenPipeError, OSError) as exc:
            raise self._died() from exc

    def recv(self, timeout: Optional[float] = None):
        """Next ``(kind, seq, payload)`` reply; raises on crash/timeout."""
        try:
            if timeout is not None and not self._conn.poll(timeout):
                raise WorkerDiedError(
                    f"serving worker {self.worker_id} sent nothing for "
                    f"{timeout}s (alive={self.alive})"
                )
            return self._conn.recv()
        except (EOFError, BrokenPipeError, OSError) as exc:
            raise self._died() from exc

    def __repr__(self) -> str:
        state = "live" if self.alive else f"exit={self.exitcode}"
        return (
            f"WorkerHandle(#{self.worker_id}, "
            f"devices={list(self.device_ids)}, {state})"
        )
