"""Zero-copy shared-memory data plane for the serving tier.

The serving tier's original wire format pickles every numpy payload and
result array into the duplex pipe — one full copy serialized, one full
copy deserialized, per array, per dispatch.  This module replaces the
*bytes* with *descriptors*: arrays travel as :class:`ShmRef` tuples
``(segment, offset, shape, dtype)`` pointing into POSIX shared memory,
so the only per-array cost is a single ``memcpy`` into a mapped slab on
the sending side and a view (or one copy out) on the receiving side.

Layout of the data plane (all segments are **parent-owned**):

* :class:`SlabArena` — a ref-counted bump allocator over fixed-size
  shared-memory slabs, used by the parent for request payloads and
  golden vectors.  Blocks are freed when the frame they rode on is
  *provably done* (reply arrived, drop proven by the FIFO detectors,
  worker death) and an empty slab is recycled in place, so segment
  names stay stable and the worker-side mapping cache stays small.
* Per-worker **reply rings** — one segment per worker into which the
  worker's :class:`WorkerWire` copies result arrays.  Flow control is a
  pair of monotonic byte counters: the worker bumps ``head`` as it
  writes, the parent piggybacks its cumulative ``consumed`` mark (the
  *ack*) on every outgoing frame, and the worker only writes into
  ``head - acked <= capacity`` space.  A full ring degrades to inline
  pickling of that array — never blocking, never deadlocking.
* :class:`SegmentCache` — the attach side.  Mappings are cached by
  segment name and explicitly *unregistered* from the multiprocessing
  resource tracker, because only the creating parent may unlink.

Because the parent owns every segment and POSIX keeps a mapping alive
across ``unlink``, :meth:`HostWire.close` is leak-proof even when a
worker dies mid-read via ``os._exit``: the name disappears from
``/dev/shm`` immediately and the memory itself goes away when the last
mapping (parent's or the dying worker's) closes.

Fallback rules — the wire is *transparent*; every fallback is counted
(``serve.wire.fallbacks``) but never changes results:

* arrays smaller than ``min_bytes`` (default 4 KiB) stay inline — the
  descriptor + mapping overhead beats pickling only for big arrays;
* object/structured dtypes stay inline (not shareable as flat bytes);
* an exhausted arena or reply ring falls back to inline pickling for
  the arrays that did not fit;
* ``wire="auto"`` resolves to ``"pickle"`` wholesale on platforms
  where shared memory is unavailable.
"""

from __future__ import annotations

import dataclasses
import uuid
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.common.errors import ConfigError

try:  # pragma: no cover - exercised only on no-shm platforms
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover
    resource_tracker = None  # type: ignore[assignment]
    shared_memory = None  # type: ignore[assignment]

__all__ = [
    "DEFAULT_MIN_BYTES",
    "HostWire",
    "SegmentCache",
    "ShmRef",
    "SlabArena",
    "WIRE_MODES",
    "WorkerWire",
    "payload_nbytes",
    "resolve_wire_mode",
    "shm_available",
]

WIRE_MODES = ("auto", "shm", "pickle")

#: Arrays below this many bytes ride inline — a descriptor plus a
#: worker-side mapping lookup costs more than pickling a tiny array.
DEFAULT_MIN_BYTES = 4096

_SLAB_BYTES = 4 << 20
_ARENA_MAX_BYTES = 256 << 20
_REPLY_RING_BYTES = 4 << 20
_ALIGN = 64

_shm_probe: Optional[bool] = None


def _align(nbytes: int) -> int:
    return (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN


def shm_available() -> bool:
    """True when ``multiprocessing.shared_memory`` works on this host."""

    global _shm_probe
    if _shm_probe is None:
        if shared_memory is None:
            _shm_probe = False
        else:
            try:
                seg = shared_memory.SharedMemory(create=True, size=_ALIGN)
                seg.close()
                seg.unlink()
                _shm_probe = True
            except Exception:
                _shm_probe = False
    return _shm_probe


def resolve_wire_mode(mode: str) -> str:
    """Resolve a ``wire=`` knob to a concrete ``"shm"`` or ``"pickle"``."""

    if mode not in WIRE_MODES:
        raise ConfigError(
            f"wire must be one of {WIRE_MODES}, got {mode!r}"
        )
    if mode == "auto":
        return "shm" if shm_available() else "pickle"
    if mode == "shm" and not shm_available():
        raise ConfigError(
            "wire='shm' requested but multiprocessing.shared_memory is "
            "unavailable on this platform; use wire='auto' or 'pickle'"
        )
    return mode


@dataclass(frozen=True)
class ShmRef:
    """A picklable descriptor for an array living in shared memory.

    ``mark`` is the reply-ring flow-control counter *after* this block
    (zero for request-arena blocks): the parent acks the highest mark
    it has copied out, releasing ring space back to the worker.
    """

    segment: str
    offset: int
    shape: Tuple[int, ...]
    dtype: str
    mark: int = 0

    @property
    def nbytes(self) -> int:
        n = np.dtype(self.dtype).itemsize
        for dim in self.shape:
            n *= dim
        return n


def _shareable(arr: np.ndarray) -> bool:
    return not (arr.dtype.hasobject or arr.dtype.names)


def _walk_encode(
    obj: Any, alloc: Callable[[np.ndarray], Optional[ShmRef]], min_bytes: int
) -> Any:
    if isinstance(obj, np.ndarray):
        if obj.nbytes >= min_bytes and _shareable(obj):
            ref = alloc(obj)
            if ref is not None:
                return ref
        return obj
    if isinstance(obj, dict):
        return {k: _walk_encode(v, alloc, min_bytes) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_walk_encode(v, alloc, min_bytes) for v in obj]
    if isinstance(obj, tuple):
        return tuple(_walk_encode(v, alloc, min_bytes) for v in obj)
    return obj


def _walk_decode(obj: Any, resolve: Callable[[ShmRef], np.ndarray]) -> Any:
    if isinstance(obj, ShmRef):
        return resolve(obj)
    if isinstance(obj, dict):
        return {k: _walk_decode(v, resolve) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_walk_decode(v, resolve) for v in obj]
    if isinstance(obj, tuple):
        return tuple(_walk_decode(v, resolve) for v in obj)
    return obj


def _has_refs(obj: Any) -> bool:
    if isinstance(obj, ShmRef):
        return True
    if isinstance(obj, dict):
        return any(_has_refs(v) for v in obj.values())
    if isinstance(obj, (list, tuple)):
        return any(_has_refs(v) for v in obj)
    return False


def payload_nbytes(obj: Any) -> int:
    """Approximate payload size in bytes: array bytes + 8 per scalar.

    This is the accounting figure behind ``payload_bytes_in/out`` — it
    deliberately measures the *data*, not the pickled envelope, so the
    number is comparable across wire modes.
    """

    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, ShmRef):
        return obj.nbytes
    if isinstance(obj, (bytes, bytearray, str)):
        return len(obj)
    if isinstance(obj, dict):
        return sum(payload_nbytes(v) for v in obj.values())
    if isinstance(obj, (list, tuple)):
        return sum(payload_nbytes(v) for v in obj)
    if isinstance(obj, (bool, int, float, complex, np.generic)):
        return 8
    return 0


def _new_segment(size: int, prefix: str) -> "shared_memory.SharedMemory":
    while True:
        name = f"{prefix}-{uuid.uuid4().hex[:12]}"
        try:
            return shared_memory.SharedMemory(create=True, size=size, name=name)
        except FileExistsError:  # pragma: no cover - uuid collision
            continue


def _attach_segment(name: str) -> "shared_memory.SharedMemory":
    # Only the creating parent may own cleanup. Attaching must not
    # register with the resource tracker at all: with a fork context
    # the tracker *process* is shared, so an attach-then-unregister
    # would strip the parent's own registration and its unlink-time
    # unregister would then error inside the tracker daemon. Python
    # 3.11 has no ``track=`` knob, so registration is suppressed for
    # the duration of the attach.
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class _Slab:
    __slots__ = ("shm", "offset", "live")

    def __init__(self, shm: "shared_memory.SharedMemory") -> None:
        self.shm = shm
        self.offset = 0
        self.live = 0


class SlabArena:
    """Parent-owned ref-counted bump allocator over shared-memory slabs.

    ``alloc`` copies an array into the first slab with room (creating a
    new slab up to ``max_bytes`` total) and returns ``(ref, token)``;
    ``free(token)`` drops the block's refcount and recycles the slab in
    place once every block on it is free.  Exhaustion returns ``None``
    — the caller falls back to inline pickling for that array.
    """

    def __init__(
        self,
        prefix: str = "cape-wire",
        slab_bytes: int = _SLAB_BYTES,
        max_bytes: int = _ARENA_MAX_BYTES,
    ) -> None:
        self._prefix = prefix
        self._slab_bytes = slab_bytes
        self._max_bytes = max_bytes
        self._slabs: List[_Slab] = []
        self._total = 0
        self._closed = False

    def alloc(self, arr: np.ndarray) -> Optional[Tuple[ShmRef, _Slab]]:
        if self._closed:
            return None
        arr = np.ascontiguousarray(arr)
        size = _align(arr.nbytes)
        slab = None
        for candidate in self._slabs:
            if candidate.offset + size <= candidate.shm.size:
                slab = candidate
                break
        if slab is None:
            seg_size = max(self._slab_bytes, size)
            if self._total + seg_size > self._max_bytes:
                return None
            try:
                seg = _new_segment(seg_size, self._prefix)
            except OSError:
                return None
            self._total += seg_size
            slab = _Slab(seg)
            self._slabs.append(slab)
        offset = slab.offset
        dst = np.ndarray(arr.shape, dtype=arr.dtype, buffer=slab.shm.buf, offset=offset)
        dst[...] = arr
        slab.offset += size
        slab.live += 1
        ref = ShmRef(slab.shm.name, offset, tuple(arr.shape), str(arr.dtype))
        return ref, slab

    def free(self, token: _Slab) -> None:
        token.live -= 1
        if token.live <= 0:
            token.live = 0
            token.offset = 0

    def segment_names(self) -> Tuple[str, ...]:
        return tuple(slab.shm.name for slab in self._slabs)

    def close(self) -> None:
        self._closed = True
        slabs, self._slabs = self._slabs, []
        for slab in slabs:
            try:
                slab.shm.close()
                slab.shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
        self._total = 0


class SegmentCache:
    """Attach-side mapping cache: segment name -> open ``SharedMemory``."""

    def __init__(self) -> None:
        self._segments: Dict[str, "shared_memory.SharedMemory"] = {}

    def view(self, ref: ShmRef) -> np.ndarray:
        seg = self._segments.get(ref.segment)
        if seg is None:
            seg = _attach_segment(ref.segment)
            self._segments[ref.segment] = seg
        arr = np.ndarray(
            ref.shape, dtype=np.dtype(ref.dtype), buffer=seg.buf, offset=ref.offset
        )
        arr.flags.writeable = False
        return arr

    def close(self) -> None:
        segments, self._segments = self._segments, {}
        for seg in segments.values():
            try:
                seg.close()
            except Exception:  # pragma: no cover
                pass


class _RingWriter:
    """Worker-side writer half of a parent-owned reply ring."""

    def __init__(self, name: str) -> None:
        self._seg = _attach_segment(name)
        self.capacity = self._seg.size
        self.head = 0
        self.acked = 0

    def note_ack(self, mark: int) -> None:
        if mark > self.acked:
            self.acked = mark

    def put(self, arr: np.ndarray) -> Optional[ShmRef]:
        arr = np.ascontiguousarray(arr)
        size = _align(arr.nbytes)
        if size == 0 or size > self.capacity:
            return None
        start = self.head
        # Blocks never straddle the wrap; skipped pad bytes are freed
        # by the same ack that frees the block written after them.
        if (start % self.capacity) + size > self.capacity:
            start += self.capacity - (start % self.capacity)
        if start + size - self.acked > self.capacity:
            return None
        offset = start % self.capacity
        dst = np.ndarray(arr.shape, dtype=arr.dtype, buffer=self._seg.buf, offset=offset)
        dst[...] = arr
        self.head = start + size
        return ShmRef(
            self._seg.name, offset, tuple(arr.shape), str(arr.dtype), mark=self.head
        )

    def close(self) -> None:
        try:
            self._seg.close()
        except Exception:  # pragma: no cover
            pass


class WorkerWire:
    """The worker-process side of the data plane.

    Decodes :class:`ShmRef` leaves in incoming specs into zero-copy
    (read-only) views, and encodes outgoing reply arrays into this
    worker's reply ring when one was provisioned.
    """

    def __init__(
        self,
        reply_segment: Optional[str] = None,
        min_bytes: int = DEFAULT_MIN_BYTES,
    ) -> None:
        self._cache = SegmentCache()
        self._ring = _RingWriter(reply_segment) if reply_segment else None
        self._min_bytes = min_bytes

    def note_ack(self, mark: int) -> None:
        if self._ring is not None and mark:
            self._ring.note_ack(mark)

    def decode_spec(self, spec: Any) -> Any:
        payload = spec.payload
        golden = spec.golden
        changed = False
        if _has_refs(payload):
            payload = _walk_decode(payload, self._cache.view)
            changed = True
        if _has_refs(golden):
            golden = _walk_decode(golden, self._cache.view)
            changed = True
        if not changed:
            return spec
        return dataclasses.replace(spec, payload=payload, golden=golden)

    def encode_reply(self, reply: Any) -> Any:
        if self._ring is None or not isinstance(reply, dict):
            return reply
        return _walk_encode(reply, self._ring.put, self._min_bytes)

    def close(self) -> None:
        self._cache.close()
        if self._ring is not None:
            self._ring.close()


class HostWire:
    """The parent side: arena + reply rings + codec + accounting.

    One instance per :class:`~repro.serve.pool.ServePool` run or
    :class:`~repro.serve.gateway.Gateway` lifetime.  ``stats`` is a
    plain dict (``mode/frames/batched_jobs/bytes_out/bytes_in/
    shm_hits/fallbacks``) that survives :meth:`close` so reports can
    read it after shutdown; the same figures stream into the observer
    as ``serve.wire.*`` counters when one is enabled.
    """

    def __init__(
        self,
        mode: str = "auto",
        observer: Any = None,
        min_bytes: int = DEFAULT_MIN_BYTES,
        reply_ring_bytes: int = _REPLY_RING_BYTES,
    ) -> None:
        self.mode = resolve_wire_mode(mode)
        self.shm = self.mode == "shm"
        self._observer = observer if observer is not None and observer.enabled else None
        self._min_bytes = min_bytes
        self._reply_ring_bytes = reply_ring_bytes
        self._arena = SlabArena() if self.shm else None
        self._reply_rings: Dict[int, "shared_memory.SharedMemory"] = {}
        self._cache = SegmentCache()
        self.consumed: Dict[int, int] = {}
        self.stats: Dict[str, Any] = {
            "mode": self.mode,
            "frames": 0,
            "batched_jobs": 0,
            "bytes_out": 0,
            "bytes_in": 0,
            "shm_hits": 0,
            "fallbacks": 0,
        }

    # -- worker provisioning -------------------------------------------------

    def reply_segment_for(self, worker_id: int) -> Optional[str]:
        """Create (or return) worker ``worker_id``'s reply ring segment."""

        if not self.shm:
            return None
        seg = self._reply_rings.get(worker_id)
        if seg is None:
            seg = _new_segment(self._reply_ring_bytes, f"cape-ring-{worker_id}")
            self._reply_rings[worker_id] = seg
            self.consumed[worker_id] = 0
        return seg.name

    def ack_for(self, worker_id: int) -> int:
        return self.consumed.get(worker_id, 0)

    # -- encode / decode -----------------------------------------------------

    def encode_spec(self, spec: Any) -> Tuple[Any, Tuple[_Slab, ...]]:
        """Encode a spec's payload/golden arrays into the arena.

        Returns ``(wire_spec, tokens)``; the caller must :meth:`free`
        the tokens once the frame carrying the spec is provably done.
        """

        if self._arena is None:
            return spec, ()
        tokens: List[_Slab] = []
        hits = 0
        fallbacks = 0
        shm_bytes = 0

        def alloc(arr: np.ndarray) -> Optional[ShmRef]:
            nonlocal hits, fallbacks, shm_bytes
            out = self._arena.alloc(arr)
            if out is None:
                fallbacks += 1
                return None
            ref, token = out
            tokens.append(token)
            hits += 1
            shm_bytes += ref.nbytes
            return ref

        payload = _walk_encode(spec.payload, alloc, self._min_bytes)
        golden = _walk_encode(spec.golden, alloc, self._min_bytes)
        if not tokens and not fallbacks:
            return spec, ()
        self.stats["shm_hits"] += hits
        self.stats["fallbacks"] += fallbacks
        self.stats["bytes_out"] += shm_bytes
        if self._observer is not None:
            self._observer.counter("serve.wire.shm_hits", direction="out").inc(hits)
            if fallbacks:
                self._observer.counter("serve.wire.fallbacks", direction="out").inc(
                    fallbacks
                )
            self._observer.counter("serve.wire.bytes", direction="out").inc(shm_bytes)
        if not tokens:
            return spec, ()
        return (
            dataclasses.replace(spec, payload=payload, golden=golden),
            tuple(tokens),
        )

    def decode_reply(self, worker_id: int, reply: Any) -> Any:
        """Copy ring arrays out of a reply and advance the ack mark."""

        if not self.shm or not isinstance(reply, dict) or not _has_refs(reply):
            return reply
        shm_bytes = 0
        hits = 0

        def resolve(ref: ShmRef) -> np.ndarray:
            nonlocal shm_bytes, hits
            arr = np.array(self._cache.view(ref))
            if ref.mark:
                mark = self.consumed.get(worker_id, 0)
                if ref.mark > mark:
                    self.consumed[worker_id] = ref.mark
            shm_bytes += arr.nbytes
            hits += 1
            return arr

        decoded = _walk_decode(reply, resolve)
        self.stats["shm_hits"] += hits
        self.stats["bytes_in"] += shm_bytes
        if self._observer is not None:
            self._observer.counter("serve.wire.shm_hits", direction="in").inc(hits)
            self._observer.counter("serve.wire.bytes", direction="in").inc(shm_bytes)
        return decoded

    def note_frame(self, jobs: int) -> None:
        """Account one outgoing wire frame carrying ``jobs`` members."""

        self.stats["frames"] += 1
        self.stats["batched_jobs"] += jobs
        if self._observer is not None:
            self._observer.counter("serve.wire.frames", mode=self.mode).inc()
            self._observer.histogram("serve.batch.size").observe(float(jobs))

    def free(self, tokens: Tuple[_Slab, ...]) -> None:
        if self._arena is not None:
            for token in tokens:
                self._arena.free(token)

    # -- lifecycle -----------------------------------------------------------

    def segment_names(self) -> Tuple[str, ...]:
        names: Tuple[str, ...] = ()
        if self._arena is not None:
            names += self._arena.segment_names()
        names += tuple(seg.name for seg in self._reply_rings.values())
        return names

    def close(self) -> None:
        """Unlink every owned segment.  Safe to call more than once."""

        self._cache.close()
        if self._arena is not None:
            self._arena.close()
        rings, self._reply_rings = self._reply_rings, {}
        for seg in rings.values():
            try:
                seg.close()
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
