"""The asyncio front door: admission, quotas, backpressure, dispatch.

The :class:`Gateway` puts an ``await``-able serving surface in front of
the worker tier. Where :class:`~repro.serve.pool.ServePool` replays a
whole recorded job set deterministically under the simulated clock, the
gateway serves *live* traffic on the wall clock: callers
``await gateway.submit(spec)`` and get a :class:`ServeResult` back when
the worker that owns the chosen device has executed the spec.

Admission control happens before a request touches a queue:

* **closed** — a draining/closed gateway rejects immediately.
* **queue_full** — the bounded queue (``max_queue`` requests queued or
  in flight) rejects with :class:`~repro.common.errors.AdmissionError`
  carrying ``retry_after_s``, the load-shedding contract: the caller
  backs off and retries, the gateway never buffers unboundedly.
* **quota** — per-tenant :class:`TenantQuota` limits, enforced through
  the same :class:`~repro.runtime.job.Footprint` machinery the
  scheduler uses: a tenant is capped on simultaneously pending requests
  and (optionally) on the sum of in-flight footprint *lanes* — CSB
  occupancy, the resource the capacity cliff is about.

Dispatch is footprint-aware round-robin over free devices. Every
worker has a daemon reader thread that forwards replies into the event
loop via ``call_soon_threadsafe`` — the loop thread owns all gateway
state, so there are no locks. A worker crash fails over: its devices
are retired, in-flight requests re-queue onto surviving devices (up to
``max_retries`` attempts each), and only when no device remains does
the gateway fail pending work.

Shutdown is graceful by default: ``drain()`` stops admission and waits
for in-flight and queued work; ``close()`` drains, then shuts the
workers down and joins the reader threads. ``async with Gateway(...)``
does start/close automatically.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import (
    AdmissionError,
    ConfigError,
    QuotaExceededError,
    WorkerDiedError,
)
from repro.engine.system import CAPE32K, CAPEConfig
from repro.serve.pool import default_mp_context
from repro.serve.spec import JobSpec
from repro.serve.worker import WorkerHandle, WorkerOptions

__all__ = [
    "Gateway",
    "GatewayReport",
    "ServeConfig",
    "ServeResult",
    "TenantQuota",
]


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits (the quota side of multi-tenancy).

    Args:
        max_pending: requests the tenant may have queued + in flight.
        max_lanes: optional cap on the *sum of footprint lanes* the
            tenant may have in flight — occupancy-weighted fairness, so
            one tenant of CSB-filling jobs can't starve the others by
            request count alone.
    """

    max_pending: int = 64
    max_lanes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise ConfigError("a tenant quota needs max_pending >= 1")
        if self.max_lanes is not None and self.max_lanes < 1:
            raise ConfigError("max_lanes must be positive when set")


@dataclass(frozen=True)
class ServeConfig:
    """Gateway construction knobs (one picklable bag).

    Args:
        configs: device design points; device ``i`` is owned by worker
            ``i % workers``.
        workers: worker process count (clamped to the device count).
        max_queue: bound on requests queued + in flight; beyond it the
            gateway sheds load with ``retry_after_s``.
        default_quota: quota applied to tenants absent from ``quotas``.
        quotas: per-tenant overrides.
        warmup: specs each worker runs at boot to warm its plan cache.
        memory_bytes / accounting / backend: device construction knobs,
            as :class:`~repro.runtime.pool.DevicePool`.
        fault_plan: optional :class:`~repro.faults.FaultPlan` (device
            slices go to the workers; ``WorkerKill`` entries kill whole
            worker processes).
        max_retries: re-placement attempts for a request whose worker
            died mid-flight.
        worker_timeout: seconds of reader-thread silence tolerated while
            the process is alive (liveness only; requests have no
            per-request deadline).
        retry_after_s: floor of the backpressure hint; the advertised
            value scales with observed service time and queue depth.
        gang: gang-execution mode (``True`` / ``False`` / ``"auto"``).
            When enabled, each dispatch round groups the dispatchable
            requests by owning worker and ships one ``("gang", ...)``
            request per worker; the worker gangs what can be ganged
            (``docs/GANG.md``). ``False`` keeps one-request-per-message
            dispatch.
        superplan: whole-kernel superplan mode (``True`` / ``False`` /
            ``"auto"``), shipped to every worker's systems
            (``docs/PERFORMANCE.md``). Results, cycles, and microop
            totals are bit-identical either way.
    """

    configs: Tuple[CAPEConfig, ...] = (CAPE32K, CAPE32K)
    workers: int = 2
    max_queue: int = 256
    default_quota: TenantQuota = TenantQuota()
    quotas: Dict[str, TenantQuota] = field(default_factory=dict)
    warmup: Tuple[JobSpec, ...] = ()
    memory_bytes: Optional[int] = None
    accounting: str = "paper"
    backend: Optional[str] = None
    fault_plan: object = None
    max_retries: int = 3
    worker_timeout: float = 120.0
    retry_after_s: float = 0.05
    gang: object = False
    superplan: object = False

    def __post_init__(self) -> None:
        from repro.gang import resolve_gang_mode
        from repro.plan.superplan import resolve_superplan_mode

        if not self.configs:
            raise ConfigError("a gateway needs at least one device")
        if self.workers < 1:
            raise ConfigError("a gateway needs at least one worker")
        if self.max_queue < 1:
            raise ConfigError("max_queue must be at least 1")
        resolve_gang_mode(self.gang)
        resolve_superplan_mode(self.superplan)

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)


@dataclass(frozen=True)
class ServeResult:
    """One served request: the reply plus serving metadata."""

    name: str
    tenant: str
    output: Any
    validated: Optional[bool]
    service_cycles: float
    energy_j: float
    spills: int
    restores: int
    error: Optional[str]
    worker_id: int
    device_id: int
    wall_s: float
    retries: int = 0

    @property
    def ok(self) -> bool:
        return self.error is None

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "tenant": self.tenant,
            "output": self.output,
            "validated": self.validated,
            "service_cycles": self.service_cycles,
            "energy_j": self.energy_j,
            "error": self.error,
            "worker_id": self.worker_id,
            "device_id": self.device_id,
            "wall_s": self.wall_s,
            "retries": self.retries,
        }


@dataclass
class GatewayReport:
    """Aggregate serving counters (see :meth:`Gateway.report`)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected_queue_full: int = 0
    rejected_quota: int = 0
    rejected_closed: int = 0
    worker_deaths: int = 0
    retries: int = 0
    per_tenant: Dict[str, int] = field(default_factory=dict)
    wall_latencies_s: List[float] = field(default_factory=list)
    plan_cache: Dict[int, dict] = field(default_factory=dict)

    @property
    def rejected(self) -> int:
        return (
            self.rejected_queue_full
            + self.rejected_quota
            + self.rejected_closed
        )

    def latency_percentile(self, pct: float) -> Optional[float]:
        """Wall-latency percentile in seconds (None before traffic)."""
        if not self.wall_latencies_s:
            return None
        ordered = sorted(self.wall_latencies_s)
        index = min(
            len(ordered) - 1, max(0, round(pct / 100 * (len(ordered) - 1)))
        )
        return ordered[index]

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "rejected_queue_full": self.rejected_queue_full,
            "rejected_quota": self.rejected_quota,
            "rejected_closed": self.rejected_closed,
            "worker_deaths": self.worker_deaths,
            "retries": self.retries,
            "per_tenant": dict(self.per_tenant),
            "p50_latency_s": self.latency_percentile(50),
            "p99_latency_s": self.latency_percentile(99),
            "plan_cache": {k: dict(v) for k, v in self.plan_cache.items()},
        }


class _Request:
    """One admitted request's mutable in-gateway state."""

    __slots__ = (
        "spec", "future", "submitted_at", "retries", "device_id", "seq"
    )

    def __init__(self, spec: JobSpec, future: asyncio.Future) -> None:
        self.spec = spec
        self.future = future
        self.submitted_at = time.perf_counter()
        self.retries = 0
        self.device_id: Optional[int] = None
        self.seq: Optional[int] = None


class Gateway:
    """The asyncio serving front door over the worker tier.

    Use as an async context manager::

        async with Gateway(ServeConfig(workers=2)) as gw:
            result = await gw.submit(JobSpec("r0", "dot", {...}))

    All state is owned by the event-loop thread; reader threads only
    ever schedule callbacks onto the loop.
    """

    def __init__(
        self,
        config: ServeConfig = ServeConfig(),
        observer=None,
        exec=None,
    ):
        if exec is not None:
            # The unified ExecConfig overrides the serving-shape members
            # of the ServeConfig; passing both non-defaulted is refused
            # (same precedence contract as the pools).
            from dataclasses import replace

            from repro.runtime.execconfig import resolve_exec

            knobs = resolve_exec(
                exec,
                workers=(config.workers, 2),
                gang=(config.gang, False),
                superplan=(config.superplan, False),
            )
            config = replace(
                config,
                workers=knobs["workers"],
                gang=knobs["gang"],
                superplan=knobs["superplan"],
            )
        self.config = config
        from repro.obs.observer import NULL_OBSERVER

        self.observer = observer if observer is not None else NULL_OBSERVER
        self.report_data = GatewayReport()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._handles: Dict[int, WorkerHandle] = {}
        self._readers: List[threading.Thread] = []
        self._stop_readers = threading.Event()
        self._seq = itertools.count()
        self._queue: deque = deque()
        self._inflight: Dict[int, _Request] = {}
        #: In-flight gang requests: seq -> (worker_id, [requests]).
        self._gangs: Dict[int, Tuple[int, List[_Request]]] = {}
        self._free_devices: deque = deque()
        self._dead_devices: set = set()
        self._worker_of: Dict[int, int] = {}
        self._device_config: Dict[int, CAPEConfig] = {}
        self._tenant_pending: Dict[str, int] = {}
        self._tenant_lanes: Dict[str, int] = {}
        self._started = False
        self._closing = False
        self._closed = False
        self._drained = asyncio.Event()
        self._ewma_wall_s: Optional[float] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def __aenter__(self) -> "Gateway":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def start(self) -> None:
        """Boot the workers and their reader threads."""
        if self._started:
            raise ConfigError("gateway already started")
        self._started = True
        self._loop = asyncio.get_running_loop()
        cfg = self.config
        num_workers = min(cfg.workers, len(cfg.configs))
        options = WorkerOptions(
            memory_bytes=cfg.memory_bytes,
            accounting=cfg.accounting,
            backend=cfg.backend,
            warmup=cfg.warmup,
            fault_plan=cfg.fault_plan,
            superplan=cfg.superplan,
        )
        ctx = default_mp_context()
        for device_id, config in enumerate(cfg.configs):
            self._worker_of[device_id] = device_id % num_workers
            self._device_config[device_id] = config
            self._free_devices.append(device_id)
        for worker_id in range(num_workers):
            owned = [
                (device_id, config)
                for device_id, config in enumerate(cfg.configs)
                if self._worker_of[device_id] == worker_id
            ]
            handle = WorkerHandle(worker_id, owned, options, mp_context=ctx)
            self._handles[worker_id] = handle.start()
            reader = threading.Thread(
                target=self._reader_main,
                args=(worker_id, handle),
                name=f"cape-serve-reader-{worker_id}",
                daemon=True,
            )
            reader.start()
            self._readers.append(reader)
        if self.observer.enabled:
            self.observer.gauge("serve.gateway.workers").set(num_workers)

    def _reader_main(self, worker_id: int, handle: WorkerHandle) -> None:
        """Reader thread: pump one worker's replies into the loop."""
        while not self._stop_readers.is_set():
            try:
                if not handle._conn.poll(0.05):
                    continue
                msg = handle._conn.recv()
            except (EOFError, BrokenPipeError, OSError):
                if not self._stop_readers.is_set():
                    self._loop.call_soon_threadsafe(
                        self._on_worker_death, worker_id
                    )
                return
            self._loop.call_soon_threadsafe(self._on_message, worker_id, msg)

    async def drain(self) -> None:
        """Stop admitting; wait until queued + in-flight work finishes."""
        self._closing = True
        if not self.pending:
            return
        self._drained.clear()
        await self._drained.wait()

    async def close(self) -> None:
        """Graceful shutdown: drain, stop workers, join readers."""
        if self._closed:
            return
        await self.drain()
        self._closed = True
        self._stop_readers.set()
        for handle in self._handles.values():
            await asyncio.to_thread(handle.shutdown)
        for reader in self._readers:
            await asyncio.to_thread(reader.join, 5.0)
        self._handles.clear()
        self._readers.clear()

    # ------------------------------------------------------------------
    # Admission + submission
    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Requests queued + in flight."""
        return (
            len(self._queue)
            + len(self._inflight)
            + sum(len(group) for _wid, group in self._gangs.values())
        )

    @property
    def live_devices(self) -> int:
        return len(self._device_config) - len(self._dead_devices)

    def retry_after_hint(self) -> float:
        """How long a shed caller should wait before retrying."""
        floor = self.config.retry_after_s
        if self._ewma_wall_s is None or not self.live_devices:
            return floor
        backlog_rounds = (self.pending + 1) / self.live_devices
        return max(floor, self._ewma_wall_s * backlog_rounds)

    def _admit(self, spec: JobSpec) -> None:
        """Raise the appropriate rejection, or record admission."""
        if self._closing or self._closed:
            self.report_data.rejected_closed += 1
            self._count_reject("closed")
            raise AdmissionError(
                "gateway is draining/closed", reason="closed"
            )
        if not self.live_devices:
            self.report_data.rejected_closed += 1
            self._count_reject("capacity")
            raise AdmissionError(
                "no live devices remain", reason="capacity"
            )
        if self.pending >= self.config.max_queue:
            self.report_data.rejected_queue_full += 1
            self._count_reject("queue_full")
            raise AdmissionError(
                f"serving queue is full ({self.pending} pending, "
                f"bound {self.config.max_queue})",
                reason="queue_full",
                retry_after_s=self.retry_after_hint(),
            )
        quota = self.config.quota_for(spec.tenant)
        tenant_pending = self._tenant_pending.get(spec.tenant, 0)
        if tenant_pending >= quota.max_pending:
            self.report_data.rejected_quota += 1
            self._count_reject("quota")
            raise QuotaExceededError(
                f"tenant {spec.tenant!r} has {tenant_pending} requests "
                f"pending (quota {quota.max_pending})",
                tenant=spec.tenant,
                retry_after_s=self.retry_after_hint(),
            )
        lanes = spec.footprint.lanes
        tenant_lanes = self._tenant_lanes.get(spec.tenant, 0)
        if quota.max_lanes is not None and tenant_lanes + lanes > quota.max_lanes:
            self.report_data.rejected_quota += 1
            self._count_reject("quota")
            raise QuotaExceededError(
                f"tenant {spec.tenant!r} has {tenant_lanes} footprint "
                f"lanes in flight; +{lanes} exceeds quota "
                f"{quota.max_lanes}",
                tenant=spec.tenant,
                retry_after_s=self.retry_after_hint(),
            )
        self._tenant_pending[spec.tenant] = tenant_pending + 1
        self._tenant_lanes[spec.tenant] = tenant_lanes + lanes

    def _count_reject(self, reason: str) -> None:
        if self.observer.enabled:
            self.observer.counter(
                "serve.gateway.rejected", reason=reason
            ).inc()

    def submit_nowait(self, spec: JobSpec) -> "asyncio.Future[ServeResult]":
        """Admit (or reject synchronously) and return the result future.

        Raises :class:`~repro.common.errors.AdmissionError` /
        :class:`~repro.common.errors.QuotaExceededError` *immediately*
        when the request is shed — rejection is an admission-time
        verdict, never a late failure.
        """
        if not self._started:
            raise ConfigError("gateway not started (use `async with`)")
        self._admit(spec)
        self.report_data.submitted += 1
        self.report_data.per_tenant[spec.tenant] = (
            self.report_data.per_tenant.get(spec.tenant, 0) + 1
        )
        if self.observer.enabled:
            self.observer.counter(
                "serve.gateway.submitted", tenant=spec.tenant
            ).inc()
        request = _Request(spec, self._loop.create_future())
        self._queue.append(request)
        self._pump()
        return request.future

    async def submit(self, spec: JobSpec) -> ServeResult:
        """Admit a spec and await its result."""
        return await self.submit_nowait(spec)

    async def submit_retrying(
        self, spec: JobSpec, attempts: int = 8
    ) -> ServeResult:
        """Submit, honouring backpressure: sleep ``retry_after_s`` and
        retry on shed (the well-behaved-client loop)."""
        for attempt in range(attempts):
            try:
                return await self.submit(spec)
            except AdmissionError as exc:
                if exc.reason == "closed" or attempt == attempts - 1:
                    raise
                await asyncio.sleep(
                    exc.retry_after_s or self.config.retry_after_s
                )
        raise AssertionError("unreachable")

    # ------------------------------------------------------------------
    # Dispatch + replies (event-loop thread only)
    # ------------------------------------------------------------------

    def _pump(self) -> None:
        """Dispatch queued requests onto free devices."""
        assignments = []
        while self._queue and self._free_devices:
            device_id = self._free_devices.popleft()
            if device_id in self._dead_devices:
                continue
            request = self._queue.popleft()
            assignments.append((request, device_id))
        if self.config.gang is not False and assignments:
            self._dispatch_ganged(assignments)
        else:
            for request, device_id in assignments:
                self._dispatch(request, device_id)
        if self.observer.enabled:
            self.observer.gauge("serve.gateway.queue_depth").set(
                len(self._queue)
            )
        if (
            self._closing
            and not self._queue
            and not self._inflight
            and not self._gangs
        ):
            self._drained.set()

    def _dispatch_ganged(self, assignments) -> None:
        """Ship one dispatch round as per-worker gang requests."""
        by_worker: Dict[int, List[Tuple[_Request, int]]] = {}
        for request, device_id in assignments:
            by_worker.setdefault(
                self._worker_of[device_id], []
            ).append((request, device_id))
        for worker_id, group in sorted(by_worker.items()):
            handle = self._handles.get(worker_id)
            seq = next(self._seq)
            requests = []
            payload = []
            for request, device_id in group:
                request.device_id = device_id
                request.seq = seq
                requests.append(request)
                payload.append((device_id, request.spec))
            self._gangs[seq] = (worker_id, requests)
            try:
                handle.send_gang(seq, payload, self.config.gang)
            except WorkerDiedError:
                self._on_worker_death(worker_id)

    def _dispatch(self, request: _Request, device_id: int) -> None:
        worker_id = self._worker_of[device_id]
        handle = self._handles.get(worker_id)
        seq = next(self._seq)
        request.device_id = device_id
        request.seq = seq
        self._inflight[seq] = request
        try:
            handle.send_run(seq, device_id, request.spec)
        except WorkerDiedError:
            # The reader thread will (or already did) report the death;
            # reporting here too is idempotent and keeps the request on
            # the fast path to re-placement.
            self._on_worker_death(worker_id)

    def _on_message(self, worker_id: int, msg) -> None:
        kind = msg[0]
        if kind == "result":
            _, seq, reply = msg
            self._on_result(seq, reply)
        elif kind == "gang":
            _, seq, replies = msg
            self._on_gang(seq, replies)
        elif kind == "stats":
            _, _seq, stats = msg
            self.report_data.plan_cache[worker_id] = stats.get(
                "plan_cache", {}
            )

    def _on_result(self, seq: int, reply: dict) -> None:
        request = self._inflight.pop(seq, None)
        if request is None:  # raced with a worker-death re-queue
            return
        self._finish(request, reply)
        self._pump()

    def _on_gang(self, seq: int, replies) -> None:
        entry = self._gangs.pop(seq, None)
        if entry is None:  # raced with a worker-death re-queue
            return
        _worker_id, requests = entry
        obs = self.observer
        for request, reply in zip(requests, replies):
            if obs.enabled and reply.get("ganged"):
                obs.counter("gang.hit").inc()
                obs.histogram("gang.size").observe(reply["gang_size"])
            elif obs.enabled:
                reason = (
                    "ejected" if reply.get("ejected")
                    else reply.get("gang_reason") or "?"
                )
                obs.counter("gang.miss", reason=reason).inc()
                if reply.get("ejected"):
                    obs.counter("gang.ejected").inc()
            self._finish(request, reply)
        self._pump()

    def _finish(self, request: _Request, reply: dict) -> None:
        """Fold one worker reply into its request's future + ledgers."""
        device_id = request.device_id
        if reply["device_dead"]:
            self._dead_devices.add(device_id)
        elif device_id not in self._dead_devices:
            self._free_devices.append(device_id)
        self.report_data.plan_cache[reply["worker_id"]] = reply["plan_cache"]
        wall_s = time.perf_counter() - request.submitted_at
        self._ewma_wall_s = (
            wall_s
            if self._ewma_wall_s is None
            else 0.8 * self._ewma_wall_s + 0.2 * wall_s
        )
        result = ServeResult(
            name=request.spec.name,
            tenant=request.spec.tenant,
            output=reply["output"],
            validated=reply["validated"],
            service_cycles=reply["service_cycles"],
            energy_j=reply["energy_j"],
            spills=reply["spills"],
            restores=reply["restores"],
            error=reply["error"],
            worker_id=reply["worker_id"],
            device_id=device_id,
            wall_s=wall_s,
            retries=request.retries,
        )
        self._release_tenant(request)
        if result.ok:
            self.report_data.completed += 1
        else:
            self.report_data.failed += 1
        self.report_data.wall_latencies_s.append(wall_s)
        if self.observer.enabled:
            self.observer.counter(
                "serve.gateway.completed", tenant=result.tenant
            ).inc()
            self.observer.histogram("serve.gateway.wall_us").observe(
                wall_s * 1e6
            )
        if not request.future.done():
            request.future.set_result(result)

    def _release_tenant(self, request: _Request) -> None:
        tenant = request.spec.tenant
        self._tenant_pending[tenant] = max(
            0, self._tenant_pending.get(tenant, 0) - 1
        )
        self._tenant_lanes[tenant] = max(
            0, self._tenant_lanes.get(tenant, 0) - request.spec.footprint.lanes
        )

    def _on_worker_death(self, worker_id: int) -> None:
        """Fail over a crashed worker: retire devices, re-queue flights."""
        handle = self._handles.pop(worker_id, None)
        if handle is None:
            return
        self.report_data.worker_deaths += 1
        self._dead_devices.update(handle.device_ids)
        self._free_devices = deque(
            d for d in self._free_devices if d not in self._dead_devices
        )
        if self.observer.enabled:
            self.observer.counter("serve.gateway.worker_deaths").inc()
        orphans = [
            (seq, request)
            for seq, request in self._inflight.items()
            if request.device_id in handle.device_ids
        ]
        for seq, request in orphans:
            del self._inflight[seq]
        for seq, (gang_worker, requests) in list(self._gangs.items()):
            if gang_worker == worker_id:
                del self._gangs[seq]
                orphans.extend((seq, request) for request in requests)
        for _seq, request in orphans:
            request.retries += 1
            if (
                request.retries <= self.config.max_retries
                and self.live_devices
            ):
                self.report_data.retries += 1
                self._queue.appendleft(request)
            else:
                self._release_tenant(request)
                self.report_data.failed += 1
                if not request.future.done():
                    request.future.set_exception(
                        WorkerDiedError(
                            f"worker {worker_id} died and no retry "
                            f"capacity remains for {request.spec.name!r}"
                        )
                    )
        if not self.live_devices:
            # Total capacity loss: everything still queued fails fast.
            while self._queue:
                request = self._queue.popleft()
                self._release_tenant(request)
                self.report_data.failed += 1
                if not request.future.done():
                    request.future.set_exception(
                        AdmissionError(
                            "all serving capacity lost", reason="capacity"
                        )
                    )
        self._pump()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def report(self) -> GatewayReport:
        """The gateway's aggregate counters (live view)."""
        return self.report_data

    def __repr__(self) -> str:
        state = (
            "closed"
            if self._closed
            else "draining"
            if self._closing
            else "open"
            if self._started
            else "new"
        )
        return (
            f"Gateway({state}, devices={self.live_devices}/"
            f"{len(self._device_config)}, pending={self.pending})"
        )
