"""The asyncio front door: admission, quotas, backpressure, dispatch.

The :class:`Gateway` puts an ``await``-able serving surface in front of
the worker tier. Where :class:`~repro.serve.pool.ServePool` replays a
whole recorded job set deterministically under the simulated clock, the
gateway serves *live* traffic on the wall clock: callers
``await gateway.submit(spec)`` and get a :class:`ServeResult` back when
the worker that owns the chosen device has executed the spec.

Admission control happens before a request touches a queue:

* **closed** — a draining/closed gateway rejects immediately.
* **queue_full** — the bounded queue (``max_queue`` requests queued or
  in flight) rejects with :class:`~repro.common.errors.AdmissionError`
  carrying ``retry_after_s``, the load-shedding contract: the caller
  backs off and retries, the gateway never buffers unboundedly.
* **quota** — per-tenant :class:`TenantQuota` limits, enforced through
  the same :class:`~repro.runtime.job.Footprint` machinery the
  scheduler uses: a tenant is capped on simultaneously pending requests
  and (optionally) on the sum of in-flight footprint *lanes* — CSB
  occupancy, the resource the capacity cliff is about.

Dispatch is footprint-aware round-robin over free devices. Every
worker has a daemon reader thread that forwards replies into the event
loop via ``call_soon_threadsafe`` — the loop thread owns all gateway
state, so there are no locks. A worker crash fails over: its devices
are retired, in-flight requests re-queue onto surviving devices (up to
``max_retries`` attempts each), and only when no device remains does
the gateway fail pending work.

Shutdown is graceful by default: ``drain()`` stops admission and waits
for in-flight and queued work; ``close()`` drains, then shuts the
workers down and joins the reader threads. ``async with Gateway(...)``
does start/close automatically.

**Resilience** (``ServeConfig.resilience``, docs/SERVING.md): workers
emit heartbeats so a monitor task can tell a *hung* worker (alive,
fully silent past ``hang_timeout_s`` — terminated and failed over,
counted separately from a crash) from a merely slow one; per-request
wall-clock deadlines ride the wire and are enforced at admission, in
the queue, at dispatch, and worker-side; straggling requests are
hedged to a second worker (first reply completes the future — replies
are content-deterministic, so the race only picks *when*, never
*what*); and per-worker circuit breakers trip on consecutive transport
faults, steering dispatch around a flaky worker until a half-open
probe clears it. Dropped replies are concluded from the per-worker
FIFO reply order plus heartbeat progress marks, garbled replies from
an unreadable payload; both re-queue the request like a worker-death
orphan.

**Data plane** (``ServeConfig.wire`` / ``batch_window_s``,
docs/SERVING.md): numpy payloads and array results cross the worker
boundary as shared-memory descriptors (:mod:`repro.serve.shm`) when
the platform supports it, and every dispatch rides a batched
``("runs", seq, members, ack)`` frame — one per request by default,
one per per-worker round when the micro-batching window is open. A
lost or garbled batch frame is one transport fault that orphans every
member through the same detectors as before; results, placement, and
telemetry stay bit-identical in every wire mode.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import (
    AdmissionError,
    ConfigError,
    DeadlineExceededError,
    QuotaExceededError,
    WorkerDiedError,
    WorkerTimeoutError,
    WorkerUnresponsiveError,
)
from repro.engine.system import CAPE32K, CAPEConfig
from repro.serve.pool import default_mp_context
from repro.serve.resilience import BreakerState, CircuitBreaker, ResilienceConfig
from repro.serve.shm import WIRE_MODES, HostWire, payload_nbytes
from repro.serve.spec import JobSpec
from repro.serve.worker import WorkerHandle, WorkerOptions

__all__ = [
    "Gateway",
    "GatewayReport",
    "ServeConfig",
    "ServeResult",
    "TenantQuota",
]

#: Period of the gateway's monitor task — the resilience clock that
#: cancels lapsed deadlines, declares hangs, concludes timeouts, and
#: issues hedges. Small enough to react within a heartbeat interval.
_MONITOR_PERIOD_S = 0.02


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits (the quota side of multi-tenancy).

    Args:
        max_pending: requests the tenant may have queued + in flight.
        max_lanes: optional cap on the *sum of footprint lanes* the
            tenant may have in flight — occupancy-weighted fairness, so
            one tenant of CSB-filling jobs can't starve the others by
            request count alone.
    """

    max_pending: int = 64
    max_lanes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise ConfigError("a tenant quota needs max_pending >= 1")
        if self.max_lanes is not None and self.max_lanes < 1:
            raise ConfigError("max_lanes must be positive when set")


@dataclass(frozen=True)
class ServeConfig:
    """Gateway construction knobs (one picklable bag).

    Args:
        configs: device design points; device ``i`` is owned by worker
            ``i % workers``.
        workers: worker process count (clamped to the device count).
        max_queue: bound on requests queued + in flight; beyond it the
            gateway sheds load with ``retry_after_s``.
        default_quota: quota applied to tenants absent from ``quotas``.
        quotas: per-tenant overrides.
        warmup: specs each worker runs at boot to warm its plan cache.
        memory_bytes / accounting / backend: device construction knobs,
            as :class:`~repro.runtime.pool.DevicePool`.
        fault_plan: optional :class:`~repro.faults.FaultPlan` (device
            slices go to the workers; ``WorkerKill`` entries kill whole
            worker processes).
        max_retries: re-placement attempts for a request whose worker
            died mid-flight (or whose reply was concluded lost).
        worker_timeout: wall seconds a single dispatch may stay
            outstanding before its reply is concluded lost and the
            request re-queued — the blunt fallback behind the faster
            heartbeat/seq-order detectors.
        resilience: the :class:`~repro.serve.resilience.
            ResilienceConfig` policy bag — heartbeat interval, hang
            threshold, hedging, breakers, default deadline
            (docs/SERVING.md).
        retry_after_s: floor of the backpressure hint; the advertised
            value scales with observed service time and queue depth.
        gang: gang-execution mode (``True`` / ``False`` / ``"auto"``).
            When enabled, each dispatch round groups the dispatchable
            requests by owning worker and ships one ``("gang", ...)``
            request per worker; the worker gangs what can be ganged
            (``docs/GANG.md``). ``False`` keeps one-request-per-message
            dispatch.
        superplan: whole-kernel superplan mode (``True`` / ``False`` /
            ``"auto"``), shipped to every worker's systems
            (``docs/PERFORMANCE.md``). Results, cycles, and microop
            totals are bit-identical either way.
        wire: data-plane mode (``"auto"`` / ``"shm"`` / ``"pickle"``,
            docs/SERVING.md). With shared memory, numpy payloads and
            array results cross the worker boundary as zero-copy
            segment descriptors instead of pickled bytes. Results,
            placement, and telemetry are bit-identical in every mode.
        batch_window_s: the micro-batching window. ``0`` (default)
            ships each request in its own wire frame; ``> 0`` lets an
            assignable request wait up to this many wall seconds for
            round-mates so each per-worker dispatch round coalesces
            into one ``("runs", ...)`` frame.
    """

    configs: Tuple[CAPEConfig, ...] = (CAPE32K, CAPE32K)
    workers: int = 2
    max_queue: int = 256
    default_quota: TenantQuota = TenantQuota()
    quotas: Dict[str, TenantQuota] = field(default_factory=dict)
    warmup: Tuple[JobSpec, ...] = ()
    memory_bytes: Optional[int] = None
    accounting: str = "paper"
    backend: Optional[str] = None
    fault_plan: object = None
    max_retries: int = 3
    worker_timeout: float = 120.0
    retry_after_s: float = 0.05
    gang: object = False
    superplan: object = False
    resilience: ResilienceConfig = ResilienceConfig()
    wire: str = "auto"
    batch_window_s: float = 0.0

    def __post_init__(self) -> None:
        from repro.gang import resolve_gang_mode
        from repro.plan.superplan import resolve_superplan_mode

        if not self.configs:
            raise ConfigError("a gateway needs at least one device")
        if self.workers < 1:
            raise ConfigError("a gateway needs at least one worker")
        if self.max_queue < 1:
            raise ConfigError("max_queue must be at least 1")
        resolve_gang_mode(self.gang)
        resolve_superplan_mode(self.superplan)
        if self.wire not in WIRE_MODES:
            raise ConfigError(
                f"wire must be one of {WIRE_MODES}, got {self.wire!r}"
            )
        if self.batch_window_s < 0:
            raise ConfigError("batch_window_s must be >= 0")

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)


@dataclass(frozen=True)
class ServeResult:
    """One served request: the reply plus serving metadata."""

    name: str
    tenant: str
    output: Any
    validated: Optional[bool]
    service_cycles: float
    energy_j: float
    spills: int
    restores: int
    error: Optional[str]
    worker_id: int
    device_id: int
    wall_s: float
    retries: int = 0

    @property
    def ok(self) -> bool:
        return self.error is None

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "tenant": self.tenant,
            "output": self.output,
            "validated": self.validated,
            "service_cycles": self.service_cycles,
            "energy_j": self.energy_j,
            "error": self.error,
            "worker_id": self.worker_id,
            "device_id": self.device_id,
            "wall_s": self.wall_s,
            "retries": self.retries,
        }


@dataclass
class GatewayReport:
    """Aggregate serving counters (see :meth:`Gateway.report`)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected_queue_full: int = 0
    rejected_quota: int = 0
    rejected_closed: int = 0
    worker_deaths: int = 0
    worker_unresponsive: int = 0
    retries: int = 0
    hedges_issued: int = 0
    hedges_won: int = 0
    hedges_wasted: int = 0
    breaker_trips: int = 0
    breaker_probes: int = 0
    deadline_met: int = 0
    deadline_missed: int = 0
    deadline_cancelled: int = 0
    #: payload data shipped to workers (spec payloads + goldens) and
    #: received back (result arrays), measured as data bytes — array
    #: nbytes + 8 per scalar — so the figures compare across wire modes.
    payload_bytes_out: int = 0
    payload_bytes_in: int = 0
    #: detected transport faults by kind (dropped/garbled/hang/timeout).
    transport_faults: Dict[str, int] = field(default_factory=dict)
    per_tenant: Dict[str, int] = field(default_factory=dict)
    wall_latencies_s: List[float] = field(default_factory=list)
    plan_cache: Dict[int, dict] = field(default_factory=dict)

    @property
    def rejected(self) -> int:
        return (
            self.rejected_queue_full
            + self.rejected_quota
            + self.rejected_closed
        )

    def latency_percentile(self, pct: float) -> Optional[float]:
        """Wall-latency percentile in seconds (None before traffic)."""
        if not self.wall_latencies_s:
            return None
        ordered = sorted(self.wall_latencies_s)
        index = min(
            len(ordered) - 1, max(0, round(pct / 100 * (len(ordered) - 1)))
        )
        return ordered[index]

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "rejected_queue_full": self.rejected_queue_full,
            "rejected_quota": self.rejected_quota,
            "rejected_closed": self.rejected_closed,
            "worker_deaths": self.worker_deaths,
            "worker_unresponsive": self.worker_unresponsive,
            "retries": self.retries,
            "hedges_issued": self.hedges_issued,
            "hedges_won": self.hedges_won,
            "hedges_wasted": self.hedges_wasted,
            "breaker_trips": self.breaker_trips,
            "breaker_probes": self.breaker_probes,
            "deadline_met": self.deadline_met,
            "deadline_missed": self.deadline_missed,
            "deadline_cancelled": self.deadline_cancelled,
            "payload_bytes_out": self.payload_bytes_out,
            "payload_bytes_in": self.payload_bytes_in,
            "transport_faults": dict(self.transport_faults),
            "per_tenant": dict(self.per_tenant),
            "p50_latency_s": self.latency_percentile(50),
            "p99_latency_s": self.latency_percentile(99),
            "plan_cache": {k: dict(v) for k, v in self.plan_cache.items()},
        }


class _Request:
    """One admitted request's mutable in-gateway state."""

    __slots__ = (
        "spec", "future", "submitted_at", "retries", "device_id", "seq",
        "deadline_at", "pending_seqs", "hedged", "finished", "queued",
    )

    def __init__(
        self,
        spec: JobSpec,
        future: asyncio.Future,
        deadline_at: Optional[float] = None,
    ) -> None:
        self.spec = spec
        self.future = future
        self.submitted_at = time.perf_counter()
        self.retries = 0
        self.device_id: Optional[int] = None
        self.seq: Optional[int] = None
        #: absolute ``time.monotonic()`` deadline, or None (unbounded).
        self.deadline_at = deadline_at
        #: seqs of outstanding run dispatches (primary and hedge).
        self.pending_seqs: set = set()
        self.hedged = False
        self.finished = False
        self.queued = False


class _Frame:
    """One ``("runs", ...)`` frame on the wire: seq × worker × members.

    ``members`` is the ordered ``(request, device_id)`` list the frame
    carries — one entry at ``batch_window_s == 0``, a whole per-worker
    dispatch round when micro-batching coalesces. One wire message has
    one fate: the frame's reply answers every member, and a concluded
    loss (seq-order gap, heartbeat progress mark, worker death, or
    ``worker_timeout``) orphans every member together while counting a
    single transport fault. ``ordinal`` is the *end* position of the
    frame's jobs in the worker's lifetime dispatch count, matching the
    worker-side ``jobs_completed`` heartbeat mark. ``tokens`` are the
    request-arena blocks pinned for the members' shared-memory
    payloads, released only on proof the worker is done reading them.
    """

    __slots__ = (
        "seq", "ordinal", "worker_id", "members", "tokens",
        "is_hedge", "sent_at", "concluded",
    )

    def __init__(self, seq, ordinal, worker_id, members, tokens, is_hedge):
        self.seq = seq
        self.ordinal = ordinal
        self.worker_id = worker_id
        self.members = members
        self.tokens = tokens
        self.is_hedge = is_hedge
        self.sent_at = time.monotonic()
        self.concluded = False


class Gateway:
    """The asyncio serving front door over the worker tier.

    Use as an async context manager::

        async with Gateway(ServeConfig(workers=2)) as gw:
            result = await gw.submit(JobSpec("r0", "dot", {...}))

    All state is owned by the event-loop thread; reader threads only
    ever schedule callbacks onto the loop.
    """

    def __init__(
        self,
        config: ServeConfig = ServeConfig(),
        observer=None,
        exec=None,
    ):
        if exec is not None:
            # The unified ExecConfig overrides the serving-shape members
            # of the ServeConfig; passing both non-defaulted is refused
            # (same precedence contract as the pools).
            from dataclasses import replace

            from repro.runtime.execconfig import resolve_exec

            knobs = resolve_exec(
                exec,
                workers=(config.workers, 2),
                gang=(config.gang, False),
                superplan=(config.superplan, False),
                wire=(config.wire, "auto"),
                batch_window_s=(config.batch_window_s, 0.0),
            )
            config = replace(
                config,
                workers=knobs["workers"],
                gang=knobs["gang"],
                superplan=knobs["superplan"],
                wire=knobs["wire"],
                batch_window_s=knobs["batch_window_s"],
            )
        self.config = config
        from repro.obs.observer import NULL_OBSERVER

        self.observer = observer if observer is not None else NULL_OBSERVER
        self.report_data = GatewayReport()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._handles: Dict[int, WorkerHandle] = {}
        self._readers: List[threading.Thread] = []
        self._stop_readers = threading.Event()
        self._seq = itertools.count()
        self._queue: deque = deque()
        #: Outstanding dispatch frames by seq (primary and hedge).
        self._frames: Dict[int, _Frame] = {}
        #: Requests dispatched and not yet finished/re-queued.
        self._inflight_requests: set = set()
        #: In-flight gang requests:
        #: seq -> (worker_id, [requests], arena tokens).
        self._gangs: Dict[int, Tuple[int, List[_Request], tuple]] = {}
        self._free_devices: deque = deque()
        self._dead_devices: set = set()
        self._worker_of: Dict[int, int] = {}
        self._device_config: Dict[int, CAPEConfig] = {}
        self._tenant_pending: Dict[str, int] = {}
        self._tenant_lanes: Dict[str, int] = {}
        self._started = False
        self._closing = False
        self._closed = False
        self._drained = asyncio.Event()
        self._ewma_wall_s: Optional[float] = None
        # -- data plane ------------------------------------------------
        #: Host side of the shared-memory wire (built in :meth:`start`).
        self._host_wire: Optional[HostWire] = None
        #: Live wire/data-plane counters (the host wire's stats dict).
        self.wire_stats: Optional[dict] = None
        #: Absolute monotonic expiry of the open micro-batching window,
        #: or None when no round is being held for round-mates.
        self._window_deadline: Optional[float] = None
        # -- resilience state ------------------------------------------
        self.resilience = config.resilience
        #: worker_id -> circuit breaker (None when disabled).
        self._breakers: Dict[int, Optional[CircuitBreaker]] = {}
        #: worker_id -> FIFO of outstanding :class:`_Frame`.
        self._wire: Dict[int, deque] = {}
        #: worker_id -> lifetime run dispatches sent (worker ordinals).
        self._wire_sent: Dict[int, int] = {}
        #: worker_id -> monotonic time of the last frame the reader saw.
        self._last_seen: Dict[int, float] = {}
        #: Workers terminated on a hang verdict, awaiting reader EOF.
        self._unresponsive: set = set()
        self._monitor_task: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def __aenter__(self) -> "Gateway":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def start(self) -> None:
        """Boot the workers and their reader threads."""
        if self._started:
            raise ConfigError("gateway already started")
        self._started = True
        self._loop = asyncio.get_running_loop()
        cfg = self.config
        num_workers = min(cfg.workers, len(cfg.configs))
        options = WorkerOptions(
            memory_bytes=cfg.memory_bytes,
            accounting=cfg.accounting,
            backend=cfg.backend,
            warmup=cfg.warmup,
            fault_plan=cfg.fault_plan,
            superplan=cfg.superplan,
            heartbeat_interval_s=cfg.resilience.heartbeat_interval_s,
        )
        ctx = default_mp_context()
        self._host_wire = HostWire(cfg.wire, observer=self.observer)
        self.wire_stats = self._host_wire.stats
        for device_id, config in enumerate(cfg.configs):
            self._worker_of[device_id] = device_id % num_workers
            self._device_config[device_id] = config
            self._free_devices.append(device_id)
        now = time.monotonic()
        for worker_id in range(num_workers):
            owned = [
                (device_id, config)
                for device_id, config in enumerate(cfg.configs)
                if self._worker_of[device_id] == worker_id
            ]
            worker_options = replace(
                options,
                reply_segment=self._host_wire.reply_segment_for(worker_id),
            )
            handle = WorkerHandle(
                worker_id, owned, worker_options, mp_context=ctx
            )
            self._handles[worker_id] = handle.start()
            self._breakers[worker_id] = cfg.resilience.make_breaker()
            self._wire[worker_id] = deque()
            self._wire_sent[worker_id] = 0
            self._last_seen[worker_id] = now
            reader = threading.Thread(
                target=self._reader_main,
                args=(worker_id, handle),
                name=f"cape-serve-reader-{worker_id}",
                daemon=True,
            )
            reader.start()
            self._readers.append(reader)
        self._monitor_task = self._loop.create_task(self._monitor_main())
        if self.observer.enabled:
            self.observer.gauge("serve.gateway.workers").set(num_workers)

    def _reader_main(self, worker_id: int, handle: WorkerHandle) -> None:
        """Reader thread: pump one worker's replies into the loop."""
        while not self._stop_readers.is_set():
            try:
                if not handle._conn.poll(0.05):
                    continue
                msg = handle._conn.recv()
            except (EOFError, BrokenPipeError, OSError):
                if not self._stop_readers.is_set():
                    self._loop.call_soon_threadsafe(
                        self._on_worker_death, worker_id
                    )
                return
            # The hang detector's silence clock: a plain float store is
            # atomic under the GIL, so no lock is needed here.
            self._last_seen[worker_id] = time.monotonic()
            self._loop.call_soon_threadsafe(self._on_message, worker_id, msg)

    async def drain(self) -> None:
        """Stop admitting; wait until queued + in-flight work finishes."""
        self._closing = True
        if not self.pending:
            return
        self._drained.clear()
        await self._drained.wait()

    async def close(self) -> None:
        """Graceful shutdown: drain, stop workers, join readers."""
        if self._closed:
            return
        await self.drain()
        self._closed = True
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            try:
                await self._monitor_task
            except asyncio.CancelledError:
                pass
            self._monitor_task = None
        self._stop_readers.set()
        for handle in self._handles.values():
            await asyncio.to_thread(handle.shutdown)
        for reader in self._readers:
            await asyncio.to_thread(reader.join, 5.0)
        self._handles.clear()
        self._readers.clear()
        if self._host_wire is not None:
            # Unlinks every slab and reply-ring segment; the stats dict
            # (self.wire_stats) survives for post-close reporting.
            self._host_wire.close()
            self._host_wire = None

    # ------------------------------------------------------------------
    # Admission + submission
    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Requests queued + in flight."""
        return (
            len(self._queue)
            + len(self._inflight_requests)
            + sum(len(group) for _wid, group, _tok in self._gangs.values())
        )

    @property
    def live_devices(self) -> int:
        return len(self._device_config) - len(self._dead_devices)

    def retry_after_hint(self) -> float:
        """How long a shed caller should wait before retrying."""
        floor = self.config.retry_after_s
        if self._ewma_wall_s is None or not self.live_devices:
            return floor
        backlog_rounds = (self.pending + 1) / self.live_devices
        return max(floor, self._ewma_wall_s * backlog_rounds)

    def _admit(self, spec: JobSpec) -> None:
        """Raise the appropriate rejection, or record admission."""
        if self._closing or self._closed:
            self.report_data.rejected_closed += 1
            self._count_reject("closed")
            raise AdmissionError(
                "gateway is draining/closed", reason="closed"
            )
        if not self.live_devices:
            self.report_data.rejected_closed += 1
            self._count_reject("capacity")
            raise AdmissionError(
                "no live devices remain", reason="capacity"
            )
        if self.pending >= self.config.max_queue:
            self.report_data.rejected_queue_full += 1
            self._count_reject("queue_full")
            raise AdmissionError(
                f"serving queue is full ({self.pending} pending, "
                f"bound {self.config.max_queue})",
                reason="queue_full",
                retry_after_s=self.retry_after_hint(),
            )
        quota = self.config.quota_for(spec.tenant)
        tenant_pending = self._tenant_pending.get(spec.tenant, 0)
        if tenant_pending >= quota.max_pending:
            self.report_data.rejected_quota += 1
            self._count_reject("quota")
            raise QuotaExceededError(
                f"tenant {spec.tenant!r} has {tenant_pending} requests "
                f"pending (quota {quota.max_pending})",
                tenant=spec.tenant,
                retry_after_s=self.retry_after_hint(),
            )
        lanes = spec.footprint.lanes
        tenant_lanes = self._tenant_lanes.get(spec.tenant, 0)
        if quota.max_lanes is not None and tenant_lanes + lanes > quota.max_lanes:
            self.report_data.rejected_quota += 1
            self._count_reject("quota")
            raise QuotaExceededError(
                f"tenant {spec.tenant!r} has {tenant_lanes} footprint "
                f"lanes in flight; +{lanes} exceeds quota "
                f"{quota.max_lanes}",
                tenant=spec.tenant,
                retry_after_s=self.retry_after_hint(),
            )
        self._tenant_pending[spec.tenant] = tenant_pending + 1
        self._tenant_lanes[spec.tenant] = tenant_lanes + lanes

    def _count_reject(self, reason: str) -> None:
        if self.observer.enabled:
            self.observer.counter(
                "serve.gateway.rejected", reason=reason
            ).inc()

    def submit_nowait(self, spec: JobSpec) -> "asyncio.Future[ServeResult]":
        """Admit (or reject synchronously) and return the result future.

        Raises :class:`~repro.common.errors.AdmissionError` /
        :class:`~repro.common.errors.QuotaExceededError` *immediately*
        when the request is shed — rejection is an admission-time
        verdict, never a late failure.
        """
        if not self._started:
            raise ConfigError("gateway not started (use `async with`)")
        self._admit(spec)
        self.report_data.submitted += 1
        self.report_data.per_tenant[spec.tenant] = (
            self.report_data.per_tenant.get(spec.tenant, 0) + 1
        )
        if self.observer.enabled:
            self.observer.counter(
                "serve.gateway.submitted", tenant=spec.tenant
            ).inc()
        deadline_s = getattr(spec, "deadline_s", None)
        if deadline_s is None:
            deadline_s = self.resilience.default_deadline_s
        deadline_at = (
            None if deadline_s is None else time.monotonic() + deadline_s
        )
        request = _Request(spec, self._loop.create_future(), deadline_at)
        request.queued = True
        self._queue.append(request)
        self._pump()
        return request.future

    async def submit(self, spec: JobSpec) -> ServeResult:
        """Admit a spec and await its result."""
        return await self.submit_nowait(spec)

    async def submit_retrying(
        self, spec: JobSpec, attempts: int = 8
    ) -> ServeResult:
        """Submit, honouring backpressure: sleep ``retry_after_s`` and
        retry on shed (the well-behaved-client loop)."""
        for attempt in range(attempts):
            try:
                return await self.submit(spec)
            except AdmissionError as exc:
                if exc.reason == "closed" or attempt == attempts - 1:
                    raise
                await asyncio.sleep(
                    exc.retry_after_s or self.config.retry_after_s
                )
        raise AssertionError("unreachable")

    # ------------------------------------------------------------------
    # Dispatch + replies (event-loop thread only)
    # ------------------------------------------------------------------

    def _pump(self) -> None:
        """Dispatch queued requests onto free devices.

        Breaker-gated: a device whose owning worker's circuit is OPEN
        is skipped this round (bounded scan, skipped devices return to
        the free list), so traffic routes around a flaky worker until
        its cooldown lapses and a half-open probe clears it. The
        monitor task re-pumps periodically, so skipped work is retried
        without any caller action.

        With ``batch_window_s > 0`` an incomplete round (fewer queued
        requests than free live devices) is held open briefly so
        round-mates can coalesce into one wire frame per worker; the
        window never delays a full round or a draining gateway, and it
        only affects frame *packing* — placement is the same
        footprint-aware round-robin either way.
        """
        window = self.config.batch_window_s
        if window > 0 and self._queue and not self._closing:
            free_live = sum(
                1
                for d in self._free_devices
                if d not in self._dead_devices
            )
            if free_live and len(self._queue) < free_live:
                now = time.monotonic()
                if self._window_deadline is None:
                    self._window_deadline = now + window
                    self._loop.call_later(window, self._pump)
                if now < self._window_deadline:
                    return  # hold the round open for round-mates
        self._window_deadline = None
        assignments = []
        skipped = []
        now = time.monotonic()
        scan = len(self._free_devices)
        while self._queue and self._free_devices and scan > 0:
            scan -= 1
            device_id = self._free_devices.popleft()
            if device_id in self._dead_devices:
                continue
            if not self._breaker_allows(self._worker_of[device_id], now):
                skipped.append(device_id)
                continue
            request = self._queue.popleft()
            assignments.append((request, device_id))
        self._free_devices.extend(skipped)
        if self.config.gang is not False and assignments:
            self._dispatch_ganged(assignments)
        elif assignments:
            by_worker: Dict[int, List[Tuple[_Request, int]]] = {}
            for request, device_id in assignments:
                by_worker.setdefault(
                    self._worker_of[device_id], []
                ).append((request, device_id))
            for worker_id, group in sorted(by_worker.items()):
                if self.config.batch_window_s > 0:
                    # Micro-batched: the worker's whole round rides one
                    # ("runs", ...) frame.
                    self._dispatch_frame(worker_id, group)
                else:
                    # One frame per request: wire-level behaviour (and
                    # fault granularity) identical to per-request
                    # dispatch.
                    for member in group:
                        self._dispatch_frame(worker_id, [member])
        if self.observer.enabled:
            self.observer.gauge("serve.gateway.queue_depth").set(
                len(self._queue)
            )
        if (
            self._closing
            and not self._queue
            and not self._inflight_requests
            and not self._gangs
        ):
            self._drained.set()

    def _breaker_allows(self, worker_id: int, now: float) -> bool:
        """May work be routed to this worker? Counts half-open probes."""
        breaker = self._breakers.get(worker_id)
        if breaker is None:
            return True
        was_closed = breaker.state is BreakerState.CLOSED
        allowed = breaker.allow(now)
        if allowed and not was_closed:
            # The cooldown lapsed: this admission is the probe.
            self.report_data.breaker_probes += 1
            if self.observer.enabled:
                self.observer.counter(
                    "serve.breaker.probes", worker=worker_id
                ).inc()
        return allowed

    def _transport_failure(self, worker_id: int, kind: str) -> None:
        """Account one detected transport fault against a worker."""
        faults = self.report_data.transport_faults
        faults[kind] = faults.get(kind, 0) + 1
        if self.observer.enabled:
            self.observer.counter(
                "faults.transport.detected", kind=kind
            ).inc()
        breaker = self._breakers.get(worker_id)
        if breaker is not None and breaker.record_failure(time.monotonic()):
            self.report_data.breaker_trips += 1
            if self.observer.enabled:
                self.observer.counter(
                    "serve.breaker.trips", worker=worker_id
                ).inc()

    def _transport_success(self, worker_id: int) -> None:
        breaker = self._breakers.get(worker_id)
        if breaker is not None:
            breaker.record_success()

    def _silence_budget_s(self) -> float:
        """Total pipe silence tolerated from a worker that owes work.

        With heartbeats on, a healthy worker is never silent for more
        than an interval or two, so the hang threshold applies; with
        them off, silence is normal during execution and only the
        blunt ``worker_timeout`` bounds it.
        """
        if self.resilience.heartbeat_interval_s > 0:
            return self.resilience.hang_timeout_s
        return self.config.worker_timeout

    def _spec_bytes_out(self, spec: JobSpec) -> int:
        """Data bytes this spec ships to a worker (payload + golden)."""
        return payload_nbytes(spec.payload) + payload_nbytes(spec.golden)

    def _dispatch_ganged(self, assignments) -> None:
        """Ship one dispatch round as per-worker gang requests."""
        by_worker: Dict[int, List[Tuple[_Request, int]]] = {}
        for request, device_id in assignments:
            by_worker.setdefault(
                self._worker_of[device_id], []
            ).append((request, device_id))
        for worker_id, group in sorted(by_worker.items()):
            handle = self._handles.get(worker_id)
            seq = next(self._seq)
            requests = []
            payload = []
            tokens: list = []
            for request, device_id in group:
                request.device_id = device_id
                request.seq = seq
                request.queued = False
                requests.append(request)
                wire_spec, spec_tokens = self._host_wire.encode_spec(
                    request.spec
                )
                tokens.extend(spec_tokens)
                self.report_data.payload_bytes_out += self._spec_bytes_out(
                    request.spec
                )
                payload.append((device_id, wire_spec))
            # Registered before sending so a death during send releases
            # the arena tokens through the normal failover path.
            self._gangs[seq] = (worker_id, requests, tuple(tokens))
            try:
                handle.send_gang(
                    seq,
                    payload,
                    self.config.gang,
                    ack=self._host_wire.ack_for(worker_id),
                )
            except WorkerDiedError:
                self._on_worker_death(worker_id)
                continue
            self._host_wire.note_frame(len(payload))

    def _release_frame(self, frame: _Frame) -> None:
        """Free a frame's request-arena tokens (idempotent).

        Called only on proof the worker is done reading the blocks: its
        reply arrived (even garbled), a drop was proven by the FIFO
        detectors, or the worker is gone. A bare timeout conclusion
        keeps the tokens pinned until one of those proofs lands (the
        arena's own close() unlinks everything as the backstop).
        """
        if frame.tokens and self._host_wire is not None:
            self._host_wire.free(frame.tokens)
        frame.tokens = ()

    def _dispatch_frame(
        self,
        worker_id: int,
        pairs: List[Tuple[_Request, int]],
        is_hedge: bool = False,
    ) -> None:
        """Ship one ``("runs", ...)`` frame carrying ``pairs``."""
        now = time.monotonic()
        members = []
        for request, device_id in pairs:
            if (
                not is_hedge
                and request.deadline_at is not None
                and now >= request.deadline_at
            ):
                # The budget lapsed while queued: cancel instead of
                # burning a device on work whose caller already gave up.
                # (Hedges skip this — their primary may still answer —
                # and ship the lapsed budget for worker-side cancel.)
                if device_id not in self._dead_devices:
                    self._free_devices.append(device_id)
                self._cancel_deadline(request)
                continue
            members.append((request, device_id))
        if not members:
            return
        handle = self._handles.get(worker_id)
        seq = next(self._seq)
        wire_members = []
        tokens: list = []
        for request, device_id in members:
            request.device_id = device_id
            request.seq = seq
            request.queued = False
            self._inflight_requests.add(request)
            request.pending_seqs.add(seq)
            wire_spec, spec_tokens = self._host_wire.encode_spec(
                request.spec
            )
            tokens.extend(spec_tokens)
            self.report_data.payload_bytes_out += self._spec_bytes_out(
                request.spec
            )
            remaining = (
                None
                if request.deadline_at is None
                else request.deadline_at - now
            )
            wire_members.append((device_id, wire_spec, remaining))
        ordinal = self._wire_sent[worker_id] + len(members)
        self._wire_sent[worker_id] = ordinal
        frame = _Frame(
            seq, ordinal, worker_id, members, tuple(tokens), is_hedge
        )
        self._frames[seq] = frame
        self._wire[worker_id].append(frame)
        try:
            handle.send_runs(
                seq, wire_members, ack=self._host_wire.ack_for(worker_id)
            )
        except WorkerDiedError:
            # The reader thread will (or already did) report the death;
            # reporting here too is idempotent and keeps the requests on
            # the fast path to re-placement.
            self._on_worker_death(worker_id)
            return
        self._host_wire.note_frame(len(members))

    def _cancel_deadline(self, request: _Request) -> None:
        """Fail a request whose wall-clock budget lapsed undispatched."""
        request.finished = True
        request.queued = False
        self._inflight_requests.discard(request)
        self._release_tenant(request)
        self.report_data.deadline_cancelled += 1
        self.report_data.failed += 1
        if self.observer.enabled:
            self.observer.counter("serve.deadline.cancelled").inc()
        if not request.future.done():
            request.future.set_exception(
                DeadlineExceededError(
                    f"request {request.spec.name!r} exceeded its "
                    f"wall-clock deadline before dispatch"
                )
            )

    def _on_message(self, worker_id: int, msg) -> None:
        kind = msg[0]
        if kind == "results":
            _, seq, payload = msg
            self._on_results(worker_id, seq, payload)
        elif kind == "heartbeat":
            self._on_heartbeat(worker_id, msg[2] or {})
        elif kind == "gang":
            _, seq, replies = msg
            self._on_gang(seq, replies)
        elif kind == "stats":
            _, _seq, stats = msg
            self.report_data.plan_cache[worker_id] = stats.get(
                "plan_cache", {}
            )

    def _on_heartbeat(self, worker_id: int, info: dict) -> None:
        """Fold a liveness frame: fault gauges + the drop detector.

        ``jobs_completed`` is updated worker-side only *after* a reply
        is sent (or deliberately dropped), and the pipe is FIFO — so a
        heartbeat carrying mark ``n`` proves every reply up to worker
        ordinal ``n`` was already delivered or will never come.
        Anything still on the wire ledger at or below the mark was
        dropped.
        """
        injected = info.get("transport_injected")
        if injected and self.observer.enabled:
            for fault_kind, count in sorted(injected.items()):
                self.observer.gauge(
                    "faults.transport.injected",
                    worker=worker_id,
                    kind=fault_kind,
                ).set(count)
        completed = info.get("jobs_completed")
        if completed is not None:
            wire = self._wire.get(worker_id)
            concluded = False
            while wire and wire[0].ordinal <= completed:
                frame = wire.popleft()
                # The progress mark proves the worker moved past this
                # frame: done reading its arena blocks, reply dropped.
                self._release_frame(frame)
                self._conclude_frame_lost(frame, "dropped")
                concluded = True
            if concluded:
                self._pump()

    def _on_results(self, worker_id: int, seq: int, payload) -> None:
        wire = self._wire.get(worker_id)
        if wire is None:
            return
        # Replies are strictly ordered per worker: a reply sequenced
        # past an outstanding frame proves that frame's reply was
        # dropped.
        while wire and wire[0].seq < seq:
            gapped = wire.popleft()
            self._release_frame(gapped)
            self._conclude_frame_lost(gapped, "dropped")
        if not wire or wire[0].seq != seq:
            return  # stale frame from a worker already failed over
        frame = wire.popleft()
        # The worker replied, so it is provably done reading the
        # frame's request-arena blocks — garbled or not.
        self._release_frame(frame)
        self._frames.pop(seq, None)
        for request, _device_id in frame.members:
            request.pending_seqs.discard(seq)
        if (
            not isinstance(payload, list)
            or len(payload) != len(frame.members)
            or not all(isinstance(r, dict) for r in payload)
        ):
            # A garbled frame: the seq routed it, the payload is junk.
            # One wire message, one fate — every member re-queues.
            self._conclude_frame_lost(frame, "garbled")
            self._pump()
            return
        self._transport_success(worker_id)
        for (request, device_id), reply in zip(frame.members, payload):
            reply = self._host_wire.decode_reply(worker_id, reply)
            self.report_data.payload_bytes_in += payload_nbytes(
                reply.get("output")
            )
            self._settle_device(device_id, reply)
            if frame.concluded:
                # A reply that was merely late: this frame was already
                # concluded lost. If the member's retry is still
                # queued, answer it now; if it re-dispatched, let the
                # new flight answer.
                if not request.finished and request.queued:
                    try:
                        self._queue.remove(request)
                    except ValueError:
                        pass
                    else:
                        request.queued = False
                        self._finish(request, reply, device_id)
                continue
            if request.finished:
                # The hedge race was already decided by a sibling
                # dispatch; this reply's work was redundant (its device
                # is free again).
                continue
            if request.hedged:
                if frame.is_hedge:
                    self.report_data.hedges_won += 1
                    if self.observer.enabled:
                        self.observer.counter("serve.hedge.won").inc()
                else:
                    self.report_data.hedges_wasted += 1
                    if self.observer.enabled:
                        self.observer.counter("serve.hedge.wasted").inc()
            self._finish(request, reply, device_id)
        self._pump()

    def _settle_device(self, device_id: int, reply: dict) -> None:
        """Return a dispatch's device to rotation (or retire it)."""
        if reply.get("device_dead"):
            self._dead_devices.add(device_id)
            self._free_devices = deque(
                d for d in self._free_devices if d not in self._dead_devices
            )
        elif device_id not in self._dead_devices:
            self._free_devices.append(device_id)

    def _conclude_frame_lost(self, frame: _Frame, kind: str) -> None:
        """This frame's reply will never usefully arrive.

        One wire message, one fate: every member request is orphaned
        together, but the transport fault is accounted once per
        *frame* — the wire saw one loss, however many jobs rode it.
        Frees each member's device (unless the whole worker is gone —
        death failover retires those) and, for members with no sibling
        dispatch still able to answer, re-queues or fails the request.
        """
        if frame.concluded:
            return
        frame.concluded = True
        self._frames.pop(frame.seq, None)
        worker_gone = kind in ("died", "unresponsive")
        if not worker_gone:
            self._transport_failure(frame.worker_id, kind)
        for request, device_id in frame.members:
            request.pending_seqs.discard(frame.seq)
            if not worker_gone and device_id not in self._dead_devices:
                self._free_devices.append(device_id)
            if request.finished or request.queued or request.pending_seqs:
                continue
            self._requeue_or_fail(request, kind)

    def _requeue_or_fail(self, request: _Request, kind: str) -> None:
        """A request's last live dispatch is gone: retry or give up."""
        self._inflight_requests.discard(request)
        request.hedged = False
        request.retries += 1
        if request.retries <= self.config.max_retries and self.live_devices:
            self.report_data.retries += 1
            request.queued = True
            self._queue.appendleft(request)
            return
        request.finished = True
        self._release_tenant(request)
        self.report_data.failed += 1
        if not request.future.done():
            if kind == "died":
                exc: Exception = WorkerDiedError(
                    f"worker died and no retry capacity remains for "
                    f"{request.spec.name!r}"
                )
            elif kind == "unresponsive":
                exc = WorkerUnresponsiveError(
                    f"worker went unresponsive and no retry capacity "
                    f"remains for {request.spec.name!r}"
                )
            else:
                exc = WorkerTimeoutError(
                    f"reply for {request.spec.name!r} concluded lost "
                    f"({kind}) and no retry capacity remains"
                )
            request.future.set_exception(exc)

    def _on_gang(self, seq: int, replies) -> None:
        entry = self._gangs.pop(seq, None)
        if entry is None:  # raced with a worker-death re-queue
            return
        worker_id, requests, tokens = entry
        # The gang replied: the worker is done reading the arena blocks.
        if tokens and self._host_wire is not None:
            self._host_wire.free(tokens)
        obs = self.observer
        for request, reply in zip(requests, replies):
            reply = self._host_wire.decode_reply(worker_id, reply)
            self.report_data.payload_bytes_in += payload_nbytes(
                reply.get("output")
            )
            if obs.enabled and reply.get("ganged"):
                obs.counter("gang.hit").inc()
                obs.histogram("gang.size").observe(reply["gang_size"])
            elif obs.enabled:
                reason = (
                    "ejected" if reply.get("ejected")
                    else reply.get("gang_reason") or "?"
                )
                obs.counter("gang.miss", reason=reason).inc()
                if reply.get("ejected"):
                    obs.counter("gang.ejected").inc()
            self._settle_device(request.device_id, reply)
            self._finish(request, reply, request.device_id)
        self._pump()

    def _finish(self, request: _Request, reply: dict, device_id: int) -> None:
        """Fold the winning reply into its request's future + ledgers.

        Device bookkeeping happens per *dispatch* (the caller settles
        the replying dispatch's device); this folds the request-level
        state: tenant release, deadline accounting, the result future.
        """
        request.finished = True
        request.queued = False
        self._inflight_requests.discard(request)
        self.report_data.plan_cache[reply["worker_id"]] = reply["plan_cache"]
        wall_s = time.perf_counter() - request.submitted_at
        self._ewma_wall_s = (
            wall_s
            if self._ewma_wall_s is None
            else 0.8 * self._ewma_wall_s + 0.2 * wall_s
        )
        result = ServeResult(
            name=request.spec.name,
            tenant=request.spec.tenant,
            output=reply["output"],
            validated=reply["validated"],
            service_cycles=reply["service_cycles"],
            energy_j=reply["energy_j"],
            spills=reply["spills"],
            restores=reply["restores"],
            error=reply["error"],
            worker_id=reply["worker_id"],
            device_id=device_id,
            wall_s=wall_s,
            retries=request.retries,
        )
        self._release_tenant(request)
        if result.ok:
            self.report_data.completed += 1
        else:
            self.report_data.failed += 1
        if reply.get("deadline_cancelled"):
            self.report_data.deadline_cancelled += 1
            if self.observer.enabled:
                self.observer.counter("serve.deadline.cancelled").inc()
        elif request.deadline_at is not None:
            if time.monotonic() <= request.deadline_at:
                self.report_data.deadline_met += 1
                if self.observer.enabled:
                    self.observer.counter("serve.deadline.met").inc()
            else:
                self.report_data.deadline_missed += 1
                if self.observer.enabled:
                    self.observer.counter("serve.deadline.missed").inc()
        self.report_data.wall_latencies_s.append(wall_s)
        if self.observer.enabled:
            self.observer.counter(
                "serve.gateway.completed", tenant=result.tenant
            ).inc()
            self.observer.histogram("serve.gateway.wall_us").observe(
                wall_s * 1e6
            )
        if not request.future.done():
            request.future.set_result(result)

    def _release_tenant(self, request: _Request) -> None:
        tenant = request.spec.tenant
        self._tenant_pending[tenant] = max(
            0, self._tenant_pending.get(tenant, 0) - 1
        )
        self._tenant_lanes[tenant] = max(
            0, self._tenant_lanes.get(tenant, 0) - request.spec.footprint.lanes
        )

    def _on_worker_death(
        self, worker_id: int, unresponsive: bool = False
    ) -> None:
        """Fail over a gone worker: retire devices, conclude its wire.

        ``unresponsive=True`` is the hang verdict's entry point (the
        monitor terminated a live-but-silent worker): same failover,
        separate accounting.
        """
        handle = self._handles.pop(worker_id, None)
        if handle is None:
            return
        kind = "unresponsive" if unresponsive else "died"
        if not unresponsive:
            self.report_data.worker_deaths += 1
            if self.observer.enabled:
                self.observer.counter("serve.gateway.worker_deaths").inc()
        self._dead_devices.update(handle.device_ids)
        self._free_devices = deque(
            d for d in self._free_devices if d not in self._dead_devices
        )
        wire = self._wire.get(worker_id)
        if wire:
            for frame in list(wire):
                # A dead worker cannot still be reading the arena.
                self._release_frame(frame)
                self._conclude_frame_lost(frame, kind)
            wire.clear()
        for seq, (gang_worker, requests, tokens) in list(self._gangs.items()):
            if gang_worker == worker_id:
                del self._gangs[seq]
                if tokens and self._host_wire is not None:
                    self._host_wire.free(tokens)
                for request in requests:
                    self._requeue_or_fail(request, kind)
        if not self.live_devices:
            # Total capacity loss: everything still queued fails fast.
            while self._queue:
                request = self._queue.popleft()
                request.finished = True
                request.queued = False
                self._release_tenant(request)
                self.report_data.failed += 1
                if not request.future.done():
                    request.future.set_exception(
                        AdmissionError(
                            "all serving capacity lost", reason="capacity"
                        )
                    )
        self._pump()

    # ------------------------------------------------------------------
    # The monitor task (hangs, deadlines, hedges, timeouts)
    # ------------------------------------------------------------------

    async def _monitor_main(self) -> None:
        """The resilience clock, ~every 20 ms on the event loop."""
        try:
            while True:
                await asyncio.sleep(_MONITOR_PERIOD_S)
                self._tick(time.monotonic())
        except asyncio.CancelledError:
            raise

    def _tick(self, now: float) -> None:
        """One monitor pass: escalate everything the wall clock owes."""
        if not self._started or self._closed:
            return
        # Queued requests whose deadline lapsed are cancelled, not run.
        if self._queue:
            expired = [
                r
                for r in self._queue
                if r.deadline_at is not None and now >= r.deadline_at
            ]
            if expired:
                gone = set(id(r) for r in expired)
                self._queue = deque(
                    r for r in self._queue if id(r) not in gone
                )
                for request in expired:
                    self._cancel_deadline(request)
        # Hang detection: a worker that owes work and has been totally
        # silent (no reply, no heartbeat) past the budget is wedged.
        budget = self._silence_budget_s()
        for worker_id in sorted(self._handles):
            owes = any(
                not f.concluded for f in self._wire.get(worker_id, ())
            ) or any(
                gang_worker == worker_id
                for gang_worker, _reqs, _tok in self._gangs.values()
            )
            if not owes:
                continue
            if now - self._last_seen.get(worker_id, now) <= budget:
                continue
            self._declare_unresponsive(worker_id)
        # Per-frame escalations: timeout conclusions and hedging.
        threshold = self.resilience.hedge_threshold(self._ewma_wall_s)
        for frame in list(self._frames.values()):
            if frame.concluded:
                continue
            age = now - frame.sent_at
            if age > self.config.worker_timeout:
                # No token release here: a timeout is a verdict about
                # the caller's patience, not proof the worker stopped
                # reading. The blocks stay pinned until a FIFO proof,
                # the worker's death, or close() unlinks the arena.
                self._conclude_frame_lost(frame, "timeout")
                continue
            if threshold is None or frame.is_hedge or age <= threshold:
                continue
            for request, _device_id in frame.members:
                if not request.hedged and not request.finished:
                    self._maybe_hedge(request, frame, now)
        self._pump()

    def _declare_unresponsive(self, worker_id: int) -> None:
        """Hang verdict: terminate the wedged process, fail over."""
        handle = self._handles.get(worker_id)
        if handle is None or worker_id in self._unresponsive:
            return
        if not handle.alive:
            self._on_worker_death(worker_id)
            return
        self._unresponsive.add(worker_id)
        self.report_data.worker_unresponsive += 1
        if self.observer.enabled:
            self.observer.counter("serve.worker.unresponsive").inc()
        self._transport_failure(worker_id, "hang")
        handle.terminate(timeout=0.0)
        self._on_worker_death(worker_id, unresponsive=True)

    def _maybe_hedge(
        self, request: _Request, primary: _Frame, now: float
    ) -> None:
        """Re-dispatch a straggler to a free device on another worker.

        The hedge rides its own single-member frame and occupies a free
        device like any dispatch; whichever reply lands first completes
        the future (replies are content-deterministic, so the race only
        decides *when*, never *what*), and the loser's reply just
        returns its device.
        """
        for device_id in list(self._free_devices):
            if device_id in self._dead_devices:
                continue
            worker_id = self._worker_of[device_id]
            if worker_id == primary.worker_id:
                continue
            if not self._breaker_allows(worker_id, now):
                continue
            self._free_devices.remove(device_id)
            request.hedged = True
            self.report_data.hedges_issued += 1
            if self.observer.enabled:
                self.observer.counter("serve.hedge.issued").inc()
            self._dispatch_frame(
                worker_id, [(request, device_id)], is_hedge=True
            )
            return

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def report(self) -> GatewayReport:
        """The gateway's aggregate counters (live view)."""
        return self.report_data

    def __repr__(self) -> str:
        state = (
            "closed"
            if self._closed
            else "draining"
            if self._closing
            else "open"
            if self._started
            else "new"
        )
        return (
            f"Gateway({state}, devices={self.live_devices}/"
            f"{len(self._device_config)}, pending={self.pending})"
        )
