"""The process-sharded device pool: DevicePool bookkeeping, worker
processes for execution.

:class:`ServePool` subclasses :class:`~repro.runtime.pool.DevicePool`
and changes exactly one thing: the execution tier. The discrete-event
loop, placement, scheduling policies, work stealing, retry/quarantine/
probation healing, and telemetry all run unchanged on the main thread in
the same deterministic ``(time, seq)`` event order as the sequential
pool — so placement, results, and telemetry are **bit-identical to
sequential execution** of the same job set under the same fault plan.
What moves out of process is the part threads could never speed up on a
GIL-bound host: the numpy-heavy ``job.execute`` itself, which now runs
inside the worker process owning the job's device.

Jobs must be :class:`~repro.serve.spec.ServeJob` instances (built from
picklable :class:`~repro.serve.spec.JobSpec` descriptions) because only
the spec crosses the pipe. Devices are assigned to workers round-robin;
each worker rebuilds its devices — same config, memory size, accounting,
backend, and fault-plan slice as the in-process pool would use — plus a
per-process plan cache warmed from ``plan_cache_warmup``.

The fault/healing ledger crosses the process boundary in both
directions: a device whose worker-side injector reports whole-device
death comes back flagged in the reply and walks the normal
``DeviceKill`` path; a worker *process* death (injected
:class:`~repro.faults.WorkerKill` or real crash) marks every device the
worker owned dead, fails the in-flight jobs, and lets the inherited
healing ladder retry them on surviving devices — no
:class:`~repro.common.errors.PoolStalledError`, and results identical
to a fault-free run as long as capacity survives.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Sequence

from repro.common.errors import ConfigError, WorkerDiedError
from repro.engine.system import CAPEConfig
from repro.gang import resolve_gang_mode
from repro.runtime.execconfig import ExecConfig, resolve_exec
from repro.runtime.job import JobResult
from repro.runtime.pool import DEFAULT_POOL, Device, DevicePool
from repro.runtime._telemetry import TelemetryReport
from repro.serve.spec import JobSpec, ServeJob
from repro.serve.worker import WorkerHandle, WorkerOptions

__all__ = ["ServePool", "default_mp_context"]


def default_mp_context():
    """``fork`` where available (cheap, inherits kernel registrations),
    else ``spawn``."""
    import multiprocessing as mp

    method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    return mp.get_context(method)


class ServePool(DevicePool):
    """A :class:`DevicePool` whose jobs execute in worker processes.

    Args:
        configs: design points, one device per entry (as DevicePool).
        workers: worker processes; device ``i`` is owned by worker
            ``i % workers`` (clamped to the device count).
        plan_cache_warmup: specs each worker executes once at boot on a
            throwaway system to warm its per-process plan cache.
        worker_timeout: wall seconds to wait for one reply before
            declaring the worker dead (a hung process must not wedge
            the deterministic loop forever).
        mp_context: a ``multiprocessing`` context; defaults to
            :func:`default_mp_context`.
        gang: gang-execution mode (``True`` / ``False`` / ``"auto"``).
            When enabled, each launch batch is split by owning worker
            and shipped as one ``("gang", ...)`` request per worker;
            the worker runs :func:`repro.gang.run_ganged` over its
            shard — stacked replay for eligible groups, sequential
            fallback otherwise. ``"auto"`` is evaluated per worker
            sub-batch. See ``docs/GANG.md``.
        superplan: whole-kernel superplan mode (``True`` / ``False`` /
            ``"auto"``), shipped to every worker's systems via
            :class:`~repro.serve.worker.WorkerOptions`
            (docs/PERFORMANCE.md). Results, cycles, and microop totals
            are bit-identical either way.
        plan_affinity: break placement ties toward devices whose owning
            worker has already run a job's kernel — a worker's plan
            cache is per process, so every device it owns is equally
            warm. Tie-breaking only; placement stays deterministic.
        exec: optional :class:`~repro.runtime.execconfig.ExecConfig`
            bundling ``workers`` / ``gang`` / ``superplan`` /
            ``plan_affinity`` (its ``parallelism`` and ``plan_cache``
            members don't apply to this tier). Mutually exclusive with
            non-default values of those keywords.
        **pool_kwargs: everything :class:`DevicePool` accepts except
            ``parallelism`` (meaningless here — concurrency comes from
            the worker processes) and ``plan_cache`` (each worker runs
            its own per-process cache; the bookkeeping process compiles
            nothing).
    """

    def __init__(
        self,
        configs: Sequence[CAPEConfig] = DEFAULT_POOL,
        workers: int = 2,
        *,
        plan_cache_warmup: Sequence[JobSpec] = (),
        worker_timeout: float = 120.0,
        mp_context=None,
        fault_plan=None,
        gang=False,
        superplan=False,
        plan_affinity=False,
        exec: Optional[ExecConfig] = None,
        **pool_kwargs,
    ) -> None:
        knobs = resolve_exec(
            exec,
            workers=(workers, 2),
            gang=(gang, False),
            superplan=(superplan, False),
            plan_affinity=(plan_affinity, False),
        )
        workers = knobs["workers"]
        gang = knobs["gang"]
        superplan = knobs["superplan"]
        plan_affinity = knobs["plan_affinity"]
        if workers < 1:
            raise ConfigError("a serve pool needs at least one worker")
        for reserved in ("parallelism", "plan_cache"):
            if reserved in pool_kwargs:
                raise ConfigError(
                    f"ServePool does not accept {reserved!r}: worker "
                    f"processes supply the concurrency and own their "
                    f"plan caches"
                )
        # Device-construction knobs are forwarded to the workers so
        # their devices are built exactly like in-process ones; the
        # parent keeps its own copy because DevicePool doesn't retain
        # them.
        self._memory_bytes = pool_kwargs.get("memory_bytes")
        self._accounting = pool_kwargs.get("accounting", "paper")
        self._backend = pool_kwargs.get("backend")
        # The parent's systems are bookkeeping mirrors that never
        # execute a job: no fault injectors (the workers own the
        # injector state), no plan cache, no superplans (those live in
        # the workers via WorkerOptions); plan affinity *does* apply
        # here — placement is a parent-side decision.
        super().__init__(
            configs,
            parallelism=1,
            plan_cache=False,
            plan_affinity=plan_affinity,
            **pool_kwargs,
        )
        #: Superplan mode shipped to the workers' systems.
        self.superplan = superplan
        # The parent's gang knob stays False (its systems never execute
        # jobs); this tier's gang mode steers the worker-side batches.
        self.gang = resolve_gang_mode(gang)
        self.fault_plan = fault_plan
        self.num_workers = min(workers, len(self.devices))
        self.plan_cache_warmup = tuple(plan_cache_warmup)
        self.worker_timeout = worker_timeout
        self._mp_context = mp_context
        #: device_id -> owning worker id (round-robin).
        self.worker_of: Dict[int, int] = {
            d.device_id: d.device_id % self.num_workers for d in self.devices
        }
        self._handles: Dict[int, WorkerHandle] = {}
        self._dead_worker_ids: set = set()
        #: Devices whose worker-side substrate (injector death or
        #: process crash) reported whole-device loss.
        self._dead_device_ids: set = set()
        self._seq = itertools.count()
        #: worker_id -> last seen plan-cache snapshot / stats reply.
        self.worker_stats: Dict[int, dict] = {}

    # ------------------------------------------------------------------
    # Submission sugar
    # ------------------------------------------------------------------

    def submit_specs(
        self,
        specs: Iterable[JobSpec],
        interarrival_cycles: float = 0.0,
    ) -> List[ServeJob]:
        """Materialise and submit a stream of specs."""
        return self.submit_stream(
            [spec.to_job() for spec in specs],
            interarrival_cycles=interarrival_cycles,
        )

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------

    def _start_workers(self) -> None:
        ctx = (
            self._mp_context
            if self._mp_context is not None
            else default_mp_context()
        )
        options = WorkerOptions(
            memory_bytes=self._memory_bytes,
            accounting=self._accounting,
            backend=self._backend,
            warmup=self.plan_cache_warmup,
            fault_plan=self.fault_plan,
            superplan=self.superplan,
        )
        for worker_id in range(self.num_workers):
            owned = [
                (d.device_id, d.config)
                for d in self.devices
                if self.worker_of[d.device_id] == worker_id
            ]
            self._handles[worker_id] = WorkerHandle(
                worker_id, owned, options, mp_context=ctx
            ).start()

    def _stop_workers(self) -> None:
        for worker_id, handle in self._handles.items():
            if handle.alive and worker_id not in self._dead_worker_ids:
                try:
                    seq = next(self._seq)
                    handle.send_stats(seq)
                    kind, rseq, stats = handle.recv(timeout=self.worker_timeout)
                    if kind == "stats" and rseq == seq:
                        self.worker_stats[worker_id] = stats
                except WorkerDiedError:
                    pass
            handle.shutdown()
        self._handles.clear()

    def _on_worker_death(self, handle: WorkerHandle) -> None:
        """Record a crashed worker; its devices die via the ladder."""
        if handle.worker_id in self._dead_worker_ids:
            return
        self._dead_worker_ids.add(handle.worker_id)
        self._dead_device_ids.update(handle.device_ids)
        if self.observer.enabled:
            self.observer.counter("serve.worker_deaths").inc()
            self.observer.instant(
                f"worker-dead:{handle.worker_id}", "serve",
                ts=self.clock.now, tid="pool",
                devices=list(handle.device_ids),
            )

    # ------------------------------------------------------------------
    # The execution tier (the one thing DevicePool doesn't supply)
    # ------------------------------------------------------------------

    def _device_dead(self, device: Device) -> bool:
        return device.device_id in self._dead_device_ids

    def _mark_affinity(self, device: Device, akey) -> None:
        """A worker's plan cache is per *process*: any device owned by
        the placed device's worker is equally warm for this kernel."""
        worker_id = self.worker_of[device.device_id]
        for d in self.devices:
            if self.worker_of[d.device_id] == worker_id:
                d.affinity_keys.add(akey)

    def _crashed_result(self, worker_id: int) -> JobResult:
        return JobResult(
            output=None,
            validated=False,
            service_cycles=0.0,
            energy_j=0.0,
            error=f"WorkerDiedError: serving worker {worker_id} died mid-job",
        )

    def _spec_of(self, job) -> JobSpec:
        spec = getattr(job, "spec", None)
        if spec is None:
            raise ConfigError(
                f"{job!r} carries no JobSpec — ServePool jobs "
                f"must be built via JobSpec.to_job() / "
                f"submit_specs() so they can cross the "
                f"process boundary"
            )
        return spec

    def _apply_reply(self, device: Device, job, reply: dict, handle) -> None:
        """Fold one worker reply into the job, ledgers, and metrics."""
        obs = self.observer
        job.result = JobResult(
            output=reply["output"],
            validated=reply["validated"],
            service_cycles=reply["service_cycles"],
            energy_j=reply["energy_j"],
            spills=reply["spills"],
            restores=reply["restores"],
            error=reply["error"],
        )
        if reply["device_dead"]:
            self._dead_device_ids.add(device.device_id)
        self.worker_stats[handle.worker_id] = {
            "worker_id": handle.worker_id,
            "jobs_executed": reply["jobs_executed"],
            "plan_cache": reply["plan_cache"],
        }
        if obs.enabled:
            obs.counter("serve.worker.jobs", worker=handle.worker_id).inc()
            cache = reply["plan_cache"]
            for key in ("hits", "misses", "entries"):
                obs.gauge(
                    f"serve.plan.{key}", worker=handle.worker_id
                ).set(cache[key])
            if "ganged" in reply:
                # Gang outcome, accounted pool-side: the workers have no
                # observer, so the reply carries what run_ganged would
                # have emitted. gang.size is observed per member here
                # (the in-process pool observes it once per gang).
                if reply["ganged"]:
                    obs.counter("gang.hit").inc()
                    obs.histogram("gang.size").observe(reply["gang_size"])
                elif reply["ejected"]:
                    obs.counter("gang.ejected").inc()
                    obs.counter("gang.miss", reason="ejected").inc()
                else:
                    obs.counter(
                        "gang.miss", reason=reply["gang_reason"] or "?"
                    ).inc()

    def _execute_ganged(self, batch) -> None:
        """Ship one launch batch as per-worker gang requests."""
        by_worker: Dict[int, list] = {}
        for device, job in batch:
            self._spec_of(job)
            by_worker.setdefault(
                self.worker_of[device.device_id], []
            ).append((device, job))
        pending = []
        for worker_id, group in sorted(by_worker.items()):
            handle = self._handles[worker_id]
            if worker_id in self._dead_worker_ids:
                for _device, job in group:
                    job.result = self._crashed_result(worker_id)
                continue
            seq = next(self._seq)
            requests = [
                (device.device_id, self._spec_of(job))
                for device, job in group
            ]
            try:
                handle.send_gang(seq, requests, self.gang)
            except WorkerDiedError:
                self._on_worker_death(handle)
                for _device, job in group:
                    job.result = self._crashed_result(worker_id)
                continue
            pending.append((handle, seq, group))
        for handle, seq, group in pending:
            if handle.worker_id in self._dead_worker_ids:
                for _device, job in group:
                    job.result = self._crashed_result(handle.worker_id)
                continue
            try:
                kind, rseq, replies = handle.recv(timeout=self.worker_timeout)
            except WorkerDiedError:
                self._on_worker_death(handle)
                for _device, job in group:
                    job.result = self._crashed_result(handle.worker_id)
                continue
            if kind != "gang" or rseq != seq or len(replies) != len(group):
                raise ConfigError(
                    f"worker {handle.worker_id} protocol error: expected "
                    f"('gang', {seq}) with {len(group)} replies, got "
                    f"({kind!r}, {rseq}, {len(replies)} replies)"
                )
            for (device, job), reply in zip(group, replies):
                self._apply_reply(device, job, reply, handle)

    @contextmanager
    def _execution_tier(self):
        obs = self.observer
        self._start_workers()
        try:
            if obs.enabled:
                obs.metrics.gauge("serve.workers").set(self.num_workers)

            def execute(batch) -> None:
                if self.gang is not False:
                    self._execute_ganged(batch)
                    return
                pending = []
                for device, job in batch:
                    spec = self._spec_of(job)
                    worker_id = self.worker_of[device.device_id]
                    handle = self._handles[worker_id]
                    if worker_id in self._dead_worker_ids:
                        job.result = self._crashed_result(worker_id)
                        continue
                    seq = next(self._seq)
                    try:
                        handle.send_run(seq, device.device_id, spec)
                    except WorkerDiedError:
                        self._on_worker_death(handle)
                        job.result = self._crashed_result(worker_id)
                        continue
                    pending.append((handle, seq, device, job))
                for handle, seq, device, job in pending:
                    if handle.worker_id in self._dead_worker_ids:
                        job.result = self._crashed_result(handle.worker_id)
                        continue
                    try:
                        kind, rseq, reply = handle.recv(
                            timeout=self.worker_timeout
                        )
                    except WorkerDiedError:
                        self._on_worker_death(handle)
                        job.result = self._crashed_result(handle.worker_id)
                        continue
                    if kind != "result" or rseq != seq:
                        raise ConfigError(
                            f"worker {handle.worker_id} protocol error: "
                            f"expected ('result', {seq}), got ({kind!r}, {rseq})"
                        )
                    self._apply_reply(device, job, reply, handle)

            yield execute
        finally:
            self._stop_workers()

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def run(self, max_events: int = 1_000_000) -> TelemetryReport:
        """Drain the loop with jobs executing on the worker tier.

        Same contract as :meth:`DevicePool.run` — including
        :class:`~repro.common.errors.PoolStalledError` when every
        serviceable device (worker) is gone with work still queued.
        """
        return self._run_parallel(max_events)

    def plan_cache_totals(self) -> dict:
        """Aggregate the per-worker plan-cache snapshots.

        Workers ship :meth:`~repro.plan.PlanCache.snapshot` with every
        reply; this sums the counters across workers. Affinity counters
        are parent-side (placement happens here, the workers never see
        it), so they are folded in from the pool's own ledger.
        """
        totals = {
            "entries": 0, "superplans": 0, "hits": 0, "misses": 0,
            "compiles": 0, "compile_ns": 0,
            "affinity_hits": 0, "affinity_misses": 0,
        }
        per_worker = {}
        for worker_id, stats in sorted(self.worker_stats.items()):
            cache = stats.get("plan_cache") or {}
            per_worker[worker_id] = dict(cache)
            for key in totals:
                totals[key] += int(cache.get(key, 0))
        totals["affinity_hits"] += self._affinity_hits
        totals["affinity_misses"] += self._affinity_misses
        return {"total": totals, "per_worker": per_worker}
