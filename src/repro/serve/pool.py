"""The process-sharded device pool: DevicePool bookkeeping, worker
processes for execution.

:class:`ServePool` subclasses :class:`~repro.runtime.pool.DevicePool`
and changes exactly one thing: the execution tier. The discrete-event
loop, placement, scheduling policies, work stealing, retry/quarantine/
probation healing, and telemetry all run unchanged on the main thread in
the same deterministic ``(time, seq)`` event order as the sequential
pool — so placement, results, and telemetry are **bit-identical to
sequential execution** of the same job set under the same fault plan.
What moves out of process is the part threads could never speed up on a
GIL-bound host: the numpy-heavy ``job.execute`` itself, which now runs
inside the worker process owning the job's device.

Jobs must be :class:`~repro.serve.spec.ServeJob` instances (built from
picklable :class:`~repro.serve.spec.JobSpec` descriptions) because only
the spec crosses the pipe. Devices are assigned to workers round-robin;
each worker rebuilds its devices — same config, memory size, accounting,
backend, and fault-plan slice as the in-process pool would use — plus a
per-process plan cache warmed from ``plan_cache_warmup``.

The fault/healing ledger crosses the process boundary in both
directions: a device whose worker-side injector reports whole-device
death comes back flagged in the reply and walks the normal
``DeviceKill`` path; a worker *process* death (injected
:class:`~repro.faults.WorkerKill` or real crash) marks every device the
worker owned dead, fails the in-flight jobs, and lets the inherited
healing ladder retry them on surviving devices — no
:class:`~repro.common.errors.PoolStalledError`, and results identical
to a fault-free run as long as capacity survives.
"""

from __future__ import annotations

import dataclasses
import itertools
import time
from collections import deque
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Sequence

from repro.common.errors import (
    ConfigError,
    WorkerDiedError,
    WorkerTimeoutError,
)
from repro.engine.system import CAPEConfig
from repro.gang import resolve_gang_mode
from repro.runtime.execconfig import ExecConfig, resolve_exec
from repro.runtime.job import JobResult
from repro.runtime.pool import DEFAULT_POOL, Device, DevicePool
from repro.runtime._telemetry import TelemetryReport
from repro.serve.resilience import BreakerState, CircuitBreaker, ResilienceConfig
from repro.serve.shm import HostWire
from repro.serve.spec import JobSpec, ServeJob
from repro.serve.worker import WorkerHandle, WorkerOptions

__all__ = ["ServePool", "default_mp_context"]

#: How long one poll of a worker pipe blocks while collecting replies.
#: Small enough that other workers' replies and the silence clocks are
#: serviced promptly; the loop is I/O-bound either way.
_POLL_SLICE_S = 0.02


class _Frame:
    """One dispatched ``runs`` frame awaiting its ordered reply.

    Since the batched-dispatch rework, a frame carries *every* member
    of one launch round bound for one worker — one wire message, one
    reply, one fate: a dropped or garbled frame concludes all of its
    members through the same detectors that concluded single dispatches
    before. ``ordinal`` is the worker's lifetime job count *after* this
    frame (heartbeat progress marks land only on frame boundaries), and
    ``tokens`` pins the frame's request-arena blocks until the worker
    is provably done reading them.

    Lives in the pool's per-worker wire ledger (strict FIFO, mirroring
    the worker's reply order) until its reply is received — or, once
    *concluded* lost (drop/timeout/death), until a later reply or the
    ledger's end sweeps it out. Concluded frames are kept in the ledger
    so a reply that turns out to be merely late still matches its frame
    instead of desynchronising the stream.
    """

    __slots__ = (
        "seq", "ordinal", "worker_id", "entries", "tokens", "is_hedge",
        "concluded", "sent_at",
    )

    def __init__(self, seq, ordinal, worker_id, entries, tokens, is_hedge, sent_at):
        self.seq = seq
        self.ordinal = ordinal
        self.worker_id = worker_id
        self.entries = entries
        self.tokens = tokens
        self.is_hedge = is_hedge
        self.concluded = False
        self.sent_at = sent_at


class _Pending:
    """One in-flight batch entry, from dispatch to resolution.

    Tracks the primary dispatch and (optionally) one hedge: which
    replies arrived, which were concluded lost, and how the entry
    finally resolved. Winner selection is canonical — the primary's
    reply wins the bookkeeping whenever it arrives; a hedge reply is
    applied only once the primary is *concluded lost* (death, hang,
    drop, garble), so the ledger never depends on the wall-clock race
    between two live replies.
    """

    __slots__ = (
        "device", "job", "spec", "primary", "hedge", "lost",
        "hedge_reply", "hedge_lost", "hedge_accounted", "resolved",
    )

    def __init__(self, device, job, spec, primary: Optional[_Frame]):
        self.device = device
        self.job = job
        self.spec = spec
        self.primary = primary
        self.hedge: Optional[_Frame] = None
        self.lost = None  # reason once the primary is concluded lost
        self.hedge_reply = None
        self.hedge_lost = False
        self.hedge_accounted = False
        self.resolved = False

    def hedge_open(self) -> bool:
        """A hedge reply may still arrive."""
        return (
            self.hedge is not None
            and self.hedge_reply is None
            and not self.hedge_lost
        )


def default_mp_context():
    """``fork`` where available (cheap, inherits kernel registrations),
    else ``spawn``."""
    import multiprocessing as mp

    method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    return mp.get_context(method)


class ServePool(DevicePool):
    """A :class:`DevicePool` whose jobs execute in worker processes.

    Args:
        configs: design points, one device per entry (as DevicePool).
        workers: worker processes; device ``i`` is owned by worker
            ``i % workers`` (clamped to the device count).
        plan_cache_warmup: specs each worker executes once at boot on a
            throwaway system to warm its per-process plan cache.
        worker_timeout: wall seconds an individual dispatch may stay
            outstanding before its reply is *concluded lost* and the
            job falls to the healing ladder. A slow reply is no longer
            a worker death: the worker stays up, and only hang
            detection (total silence past ``resilience.hang_timeout_s``
            with heartbeats enabled) or pipe EOF retires it.
        resilience: a :class:`~repro.serve.resilience.ResilienceConfig`
            — worker heartbeats + hang detection, hedged re-dispatch of
            stragglers with canonical (primary-wins) winner selection,
            and per-worker circuit breakers. Breakers never steer
            *primary* placement in this tier (placement must stay
            bit-identical to sequential execution, and breaker state is
            wall-clock); they gate hedge targets and feed
            ``serve.breaker.*`` metrics. Defaults to
            ``ResilienceConfig()`` (heartbeats on, hedging off).
        mp_context: a ``multiprocessing`` context; defaults to
            :func:`default_mp_context`.
        gang: gang-execution mode (``True`` / ``False`` / ``"auto"``).
            When enabled, each launch batch is split by owning worker
            and shipped as one ``("gang", ...)`` request per worker;
            the worker runs :func:`repro.gang.run_ganged` over its
            shard — stacked replay for eligible groups, sequential
            fallback otherwise. ``"auto"`` is evaluated per worker
            sub-batch. See ``docs/GANG.md``.
        superplan: whole-kernel superplan mode (``True`` / ``False`` /
            ``"auto"``), shipped to every worker's systems via
            :class:`~repro.serve.worker.WorkerOptions`
            (docs/PERFORMANCE.md). Results, cycles, and microop totals
            are bit-identical either way.
        plan_affinity: break placement ties toward devices whose owning
            worker has already run a job's kernel — a worker's plan
            cache is per process, so every device it owns is equally
            warm. Tie-breaking only; placement stays deterministic.
        wire: the data-plane mode (``"auto"`` / ``"shm"`` /
            ``"pickle"``). On the shm wire, numpy payloads, golden
            vectors, and result arrays cross the worker boundary as
            shared-memory descriptors instead of pickled bytes
            (``repro.serve.shm``); ``"auto"`` picks shm when the
            platform supports it. Results, placement, and telemetry are
            bit-identical in every mode — the wire only changes how the
            bytes travel.
        exec: optional :class:`~repro.runtime.execconfig.ExecConfig`
            bundling ``workers`` / ``gang`` / ``superplan`` /
            ``plan_affinity`` / ``wire`` (its ``parallelism`` and
            ``plan_cache`` members don't apply to this tier). Mutually
            exclusive with non-default values of those keywords.
        **pool_kwargs: everything :class:`DevicePool` accepts except
            ``parallelism`` (meaningless here — concurrency comes from
            the worker processes) and ``plan_cache`` (each worker runs
            its own per-process cache; the bookkeeping process compiles
            nothing).
    """

    def __init__(
        self,
        configs: Sequence[CAPEConfig] = DEFAULT_POOL,
        workers: int = 2,
        *,
        plan_cache_warmup: Sequence[JobSpec] = (),
        worker_timeout: float = 120.0,
        mp_context=None,
        fault_plan=None,
        gang=False,
        superplan=False,
        plan_affinity=False,
        wire: str = "auto",
        resilience: Optional[ResilienceConfig] = None,
        exec: Optional[ExecConfig] = None,
        **pool_kwargs,
    ) -> None:
        knobs = resolve_exec(
            exec,
            workers=(workers, 2),
            gang=(gang, False),
            superplan=(superplan, False),
            plan_affinity=(plan_affinity, False),
            wire=(wire, "auto"),
        )
        workers = knobs["workers"]
        gang = knobs["gang"]
        superplan = knobs["superplan"]
        plan_affinity = knobs["plan_affinity"]
        wire = knobs["wire"]
        if workers < 1:
            raise ConfigError("a serve pool needs at least one worker")
        for reserved in ("parallelism", "plan_cache"):
            if reserved in pool_kwargs:
                raise ConfigError(
                    f"ServePool does not accept {reserved!r}: worker "
                    f"processes supply the concurrency and own their "
                    f"plan caches"
                )
        # Device-construction knobs are forwarded to the workers so
        # their devices are built exactly like in-process ones; the
        # parent keeps its own copy because DevicePool doesn't retain
        # them.
        self._memory_bytes = pool_kwargs.get("memory_bytes")
        self._accounting = pool_kwargs.get("accounting", "paper")
        self._backend = pool_kwargs.get("backend")
        # The parent's systems are bookkeeping mirrors that never
        # execute a job: no fault injectors (the workers own the
        # injector state), no plan cache, no superplans (those live in
        # the workers via WorkerOptions); plan affinity *does* apply
        # here — placement is a parent-side decision.
        super().__init__(
            configs,
            parallelism=1,
            plan_cache=False,
            plan_affinity=plan_affinity,
            **pool_kwargs,
        )
        #: Superplan mode shipped to the workers' systems.
        self.superplan = superplan
        # The parent's gang knob stays False (its systems never execute
        # jobs); this tier's gang mode steers the worker-side batches.
        self.gang = resolve_gang_mode(gang)
        self.fault_plan = fault_plan
        self.num_workers = min(workers, len(self.devices))
        self.plan_cache_warmup = tuple(plan_cache_warmup)
        self.worker_timeout = worker_timeout
        #: Resilience policy: heartbeats/hang detection, hedged
        #: re-dispatch, per-worker circuit breakers (docs/SERVING.md).
        self.resilience = (
            resilience if resilience is not None else ResilienceConfig()
        )
        self._mp_context = mp_context
        #: device_id -> owning worker id (round-robin).
        self.worker_of: Dict[int, int] = {
            d.device_id: d.device_id % self.num_workers for d in self.devices
        }
        self._handles: Dict[int, WorkerHandle] = {}
        self._dead_worker_ids: set = set()
        #: Devices whose worker-side substrate (injector death or
        #: process crash) reported whole-device loss.
        self._dead_device_ids: set = set()
        self._seq = itertools.count()
        #: worker_id -> last seen plan-cache snapshot / stats reply.
        self.worker_stats: Dict[int, dict] = {}
        #: worker_id -> circuit breaker (None when breakers disabled).
        self._breakers: Dict[int, Optional[CircuitBreaker]] = {}
        #: worker_id -> lifetime run-requests sent (mirrors the
        #: worker's ``jobs_executed`` counter; drop detection keys
        #: heartbeat progress against these ordinals).
        self._wire_sent: Dict[int, int] = {}
        #: worker_id -> FIFO of :class:`_Expectation` (the wire ledger;
        #: persists across batches so late replies still match frames).
        self._wire_expect: Dict[int, deque] = {}
        #: worker_id -> monotonic timestamp of the last frame seen
        #: (reply or heartbeat); the silence clock for hang detection.
        self._last_seen: Dict[int, float] = {}
        #: EWMA of observed reply wall times (the hedge threshold's
        #: baseline when ``hedge_after_s`` is not set explicitly).
        self._ewma_reply_s: Optional[float] = None
        #: Workers declared unresponsive (hang detection), a subset of
        #: ``_dead_worker_ids`` once routed around.
        self._unresponsive_worker_ids: set = set()
        #: The requested data-plane mode (resolved per run).
        self.wire = wire
        self._host_wire: Optional[HostWire] = None
        #: Data-plane accounting from the most recent run (the
        #: ``HostWire.stats`` dict, which survives wire shutdown).
        self.wire_stats: Optional[dict] = None

    # ------------------------------------------------------------------
    # Submission sugar
    # ------------------------------------------------------------------

    def submit_specs(
        self,
        specs: Iterable[JobSpec],
        interarrival_cycles: float = 0.0,
    ) -> List[ServeJob]:
        """Materialise and submit a stream of specs."""
        return self.submit_stream(
            [spec.to_job() for spec in specs],
            interarrival_cycles=interarrival_cycles,
        )

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------

    def _start_workers(self) -> None:
        ctx = (
            self._mp_context
            if self._mp_context is not None
            else default_mp_context()
        )
        self._host_wire = HostWire(self.wire, observer=self.observer)
        self.wire_stats = self._host_wire.stats
        options = WorkerOptions(
            memory_bytes=self._memory_bytes,
            accounting=self._accounting,
            backend=self._backend,
            warmup=self.plan_cache_warmup,
            fault_plan=self.fault_plan,
            superplan=self.superplan,
            heartbeat_interval_s=self.resilience.heartbeat_interval_s,
        )
        now = time.monotonic()
        for worker_id in range(self.num_workers):
            owned = [
                (d.device_id, d.config)
                for d in self.devices
                if self.worker_of[d.device_id] == worker_id
            ]
            worker_options = dataclasses.replace(
                options,
                reply_segment=self._host_wire.reply_segment_for(worker_id),
            )
            self._handles[worker_id] = WorkerHandle(
                worker_id, owned, worker_options, mp_context=ctx
            ).start()
            self._breakers[worker_id] = self.resilience.make_breaker()
            self._wire_sent[worker_id] = 0
            self._wire_expect[worker_id] = deque()
            self._last_seen[worker_id] = now

    def _stop_workers(self) -> None:
        try:
            for worker_id, handle in self._handles.items():
                if handle.alive and worker_id not in self._dead_worker_ids:
                    try:
                        seq = next(self._seq)
                        handle.send_stats(seq)
                        deadline = time.monotonic() + self.worker_timeout
                        while True:
                            budget = max(0.05, deadline - time.monotonic())
                            msg = handle.recv(timeout=budget)
                            if msg[0] != "stats":
                                # Heartbeats or straggler replies to already
                                # concluded dispatches: consume and move on.
                                continue
                            _kind, rseq, stats = msg
                            if rseq == seq:
                                self.worker_stats[worker_id] = stats
                            break
                    except (WorkerDiedError, WorkerTimeoutError):
                        pass
                handle.shutdown()
            self._handles.clear()
        finally:
            if self._host_wire is not None:
                # Unlinks every owned segment; mappings held by any
                # still-dying worker keep the memory alive until they
                # close, but the names leave /dev/shm now.
                self._host_wire.close()
                self._host_wire = None

    def _on_worker_death(self, handle: WorkerHandle) -> None:
        """Record a crashed worker; its devices die via the ladder."""
        if handle.worker_id in self._dead_worker_ids:
            return
        self._dead_worker_ids.add(handle.worker_id)
        self._dead_device_ids.update(handle.device_ids)
        self._conclude_worker_gone(handle.worker_id, "died")
        if self.observer.enabled:
            self.observer.counter("serve.worker_deaths").inc()
            self.observer.instant(
                f"worker-dead:{handle.worker_id}", "serve",
                ts=self.clock.now, tid="pool",
                devices=list(handle.device_ids),
            )

    # ------------------------------------------------------------------
    # The execution tier (the one thing DevicePool doesn't supply)
    # ------------------------------------------------------------------

    def _device_dead(self, device: Device) -> bool:
        return device.device_id in self._dead_device_ids

    def _mark_affinity(self, device: Device, akey) -> None:
        """A worker's plan cache is per *process*: any device owned by
        the placed device's worker is equally warm for this kernel."""
        worker_id = self.worker_of[device.device_id]
        for d in self.devices:
            if self.worker_of[d.device_id] == worker_id:
                d.affinity_keys.add(akey)

    def _crashed_result(self, worker_id: int) -> JobResult:
        return JobResult(
            output=None,
            validated=False,
            service_cycles=0.0,
            energy_j=0.0,
            error=f"WorkerDiedError: serving worker {worker_id} died mid-job",
        )

    def _spec_of(self, job) -> JobSpec:
        spec = getattr(job, "spec", None)
        if spec is None:
            raise ConfigError(
                f"{job!r} carries no JobSpec — ServePool jobs "
                f"must be built via JobSpec.to_job() / "
                f"submit_specs() so they can cross the "
                f"process boundary"
            )
        return spec

    def _apply_reply(self, device: Device, job, reply: dict, handle) -> None:
        """Fold one worker reply into the job, ledgers, and metrics."""
        obs = self.observer
        job.result = JobResult(
            output=reply["output"],
            validated=reply["validated"],
            service_cycles=reply["service_cycles"],
            energy_j=reply["energy_j"],
            spills=reply["spills"],
            restores=reply["restores"],
            error=reply["error"],
        )
        if reply["device_dead"]:
            self._dead_device_ids.add(device.device_id)
        self.worker_stats[handle.worker_id] = {
            "worker_id": handle.worker_id,
            "jobs_executed": reply["jobs_executed"],
            "plan_cache": reply["plan_cache"],
        }
        if obs.enabled:
            obs.counter("serve.worker.jobs", worker=handle.worker_id).inc()
            cache = reply["plan_cache"]
            for key in ("hits", "misses", "entries"):
                obs.gauge(
                    f"serve.plan.{key}", worker=handle.worker_id
                ).set(cache[key])
            if "ganged" in reply:
                # Gang outcome, accounted pool-side: the workers have no
                # observer, so the reply carries what run_ganged would
                # have emitted. gang.size is observed per member here
                # (the in-process pool observes it once per gang).
                if reply["ganged"]:
                    obs.counter("gang.hit").inc()
                    obs.histogram("gang.size").observe(reply["gang_size"])
                elif reply["ejected"]:
                    obs.counter("gang.ejected").inc()
                    obs.counter("gang.miss", reason="ejected").inc()
                else:
                    obs.counter(
                        "gang.miss", reason=reply["gang_reason"] or "?"
                    ).inc()

    # ------------------------------------------------------------------
    # Resilient reply collection
    # ------------------------------------------------------------------

    def _silence_budget_s(self) -> float:
        """Total pipe silence tolerated from a live worker with work owed.

        With heartbeats on, a healthy worker is never silent for more
        than an interval or two, so the hang threshold applies; with
        them off, silence is normal during execution and only the blunt
        ``worker_timeout`` bounds it.
        """
        if self.resilience.heartbeat_interval_s > 0:
            return self.resilience.hang_timeout_s
        return self.worker_timeout

    def _transport_failure(self, worker_id: int, kind: str) -> None:
        """Account one detected transport fault against a worker."""
        breaker = self._breakers.get(worker_id)
        if breaker is not None and breaker.record_failure(time.monotonic()):
            if self.observer.enabled:
                self.observer.counter(
                    "serve.breaker.trips", worker=worker_id
                ).inc()
        if self.observer.enabled:
            self.observer.counter("faults.transport.detected", kind=kind).inc()

    def _transport_success(self, worker_id: int) -> None:
        breaker = self._breakers.get(worker_id)
        if breaker is not None:
            breaker.record_success()

    def _transport_failed_result(self, kind: str, worker_id: int) -> JobResult:
        """The failed result a lost dispatch resolves to (ladder fodder)."""
        if kind == "died":
            return self._crashed_result(worker_id)
        messages = {
            "unresponsive": (
                f"WorkerUnresponsiveError: serving worker {worker_id} went "
                f"silent past the hang threshold"
            ),
            "dropped": (
                f"ReplyDrop: reply from serving worker {worker_id} "
                f"concluded lost"
            ),
            "garbled": (
                f"ReplyGarble: serving worker {worker_id} sent an "
                f"unreadable reply"
            ),
            "timeout": (
                f"WorkerTimeoutError: serving worker {worker_id} exceeded "
                f"worker_timeout with the request outstanding"
            ),
        }
        return JobResult(
            output=None,
            validated=False,
            service_cycles=0.0,
            energy_j=0.0,
            error=messages.get(kind, f"{kind}: worker {worker_id}"),
        )

    def _release_frame(self, frame: _Frame) -> None:
        """Return a frame's request-arena blocks to the allocator.

        Called only once the worker is provably done reading them: its
        reply arrived (even garbled), the drop detectors proved the
        frame was processed, or the process itself is gone. A bare
        timeout conclusion does *not* release — the worker may still
        read the blocks later.
        """
        if frame.tokens and self._host_wire is not None:
            self._host_wire.free(frame.tokens)
        frame.tokens = ()

    def _conclude_lost(self, frame: _Frame, kind: str) -> None:
        """Conclude a frame's reply will never usefully arrive.

        One wire message, one fate: every member of the frame is
        concluded lost together — a dropped or garbled batch frame
        resolves all of its members through the same detectors.
        """
        if frame.concluded:
            return
        frame.concluded = True
        self._transport_failure(frame.worker_id, kind)
        for entry in frame.entries:
            if frame.is_hedge:
                entry.hedge_lost = True
            elif entry.lost is None and not entry.resolved:
                entry.lost = kind

    def _conclude_worker_gone(self, worker_id: int, kind: str) -> None:
        """Fold a dead/unresponsive worker over its whole wire ledger."""
        for frame in self._wire_expect.get(worker_id, ()):
            self._release_frame(frame)
            if frame.concluded:
                continue
            frame.concluded = True
            for entry in frame.entries:
                if frame.is_hedge:
                    entry.hedge_lost = True
                elif entry.lost is None and not entry.resolved:
                    entry.lost = kind
        self._wire_expect[worker_id] = deque()

    def _declare_unresponsive(self, handle: WorkerHandle) -> None:
        """Hang verdict: alive but fully silent past the budget.

        Distinct from a death — counted separately — but the remedy is
        the same routing-around: terminate the wedged process and let
        the :meth:`_on_worker_death` failover retire its devices.
        """
        worker_id = handle.worker_id
        if worker_id in self._dead_worker_ids:
            return
        self._unresponsive_worker_ids.add(worker_id)
        if self.observer.enabled:
            self.observer.counter("serve.worker.unresponsive").inc()
        self._transport_failure(worker_id, "hang")
        self._conclude_worker_gone(worker_id, "unresponsive")
        handle.terminate()
        self._on_worker_death(handle)

    def _spec_deadline_s(self, spec) -> Optional[float]:
        deadline = getattr(spec, "deadline_s", None)
        if deadline is None:
            return self.resilience.default_deadline_s
        return deadline

    def _note_reply_time(self, frame: _Frame) -> None:
        dt = max(0.0, time.monotonic() - frame.sent_at)
        prev = self._ewma_reply_s
        self._ewma_reply_s = dt if prev is None else 0.2 * dt + 0.8 * prev

    def _count_deadline(self, reply: dict) -> None:
        if self.observer.enabled and reply.get("deadline_cancelled"):
            self.observer.counter("serve.deadline.cancelled").inc()

    def _count_hedge_wasted(self, entry: _Pending) -> None:
        if entry.hedge is None or entry.hedge_accounted:
            return
        entry.hedge_accounted = True
        if self.observer.enabled:
            self.observer.counter("serve.hedge.wasted").inc()

    def _apply_primary(self, entry: _Pending, reply: dict) -> None:
        self._apply_reply(
            entry.device,
            entry.job,
            reply,
            self._handles[entry.primary.worker_id],
        )
        self._count_deadline(reply)
        entry.resolved = True

    def _apply_hedge(self, entry: _Pending, reply: dict) -> None:
        self._apply_reply(
            entry.device, entry.job, reply, self._handles[entry.hedge.worker_id]
        )
        self._count_deadline(reply)
        entry.resolved = True
        entry.hedge_accounted = True
        if self.observer.enabled:
            self.observer.counter("serve.hedge.won").inc()

    def _live_hedge_targets(self, primary_worker_id: int):
        """Deterministic candidate order for a hedge dispatch."""
        now = time.monotonic()
        obs = self.observer
        for worker_id in sorted(self._handles):
            if (
                worker_id == primary_worker_id
                or worker_id in self._dead_worker_ids
            ):
                continue
            breaker = self._breakers.get(worker_id)
            if breaker is not None:
                was_open = breaker.state is BreakerState.OPEN
                if not breaker.allow(now):
                    continue
                if was_open and obs.enabled:  # cooldown lapsed: a probe
                    obs.counter("serve.breaker.probes", worker=worker_id).inc()
            yield worker_id

    def _issue_hedge(self, entry: _Pending) -> bool:
        """Re-dispatch a straggling entry's spec to another worker.

        The hedge runs on the target worker's first device — replies
        are content-deterministic, so *which* device computed the
        result doesn't matter; the entry's bookkeeping stays keyed on
        the primary placement either way (canonical winner selection).
        """
        for worker_id in self._live_hedge_targets(entry.primary.worker_id):
            handle = self._handles[worker_id]
            seq = next(self._seq)
            wire_spec, tokens = self._host_wire.encode_spec(entry.spec)
            try:
                handle.send_runs(
                    seq,
                    [
                        (
                            handle.device_ids[0],
                            wire_spec,
                            self._spec_deadline_s(entry.spec),
                        )
                    ],
                    ack=self._host_wire.ack_for(worker_id),
                )
            except WorkerDiedError:
                self._host_wire.free(tokens)
                self._on_worker_death(handle)
                continue
            self._host_wire.note_frame(1)
            ordinal = self._wire_sent[worker_id] + 1
            self._wire_sent[worker_id] = ordinal
            frame = _Frame(
                seq, ordinal, worker_id, [entry], tokens, True,
                time.monotonic(),
            )
            entry.hedge = frame
            self._wire_expect[worker_id].append(frame)
            if self.observer.enabled:
                self.observer.counter("serve.hedge.issued").inc()
            return True
        return False

    def _process_frame(self, worker_id: int, msg) -> None:
        """Fold one pipe frame (heartbeat or reply) into the ledgers."""
        obs = self.observer
        self._last_seen[worker_id] = time.monotonic()
        kind = msg[0]
        if kind == "heartbeat":
            info = msg[2] or {}
            injected = info.get("transport_injected")
            if injected and obs.enabled:
                for fault_kind, count in sorted(injected.items()):
                    obs.gauge(
                        "faults.transport.injected",
                        worker=worker_id,
                        kind=fault_kind,
                    ).set(count)
            completed = info.get("jobs_completed")
            if completed is not None:
                # The worker already sent (or dropped) every reply up
                # to this mark, and FIFO delivery read them before this
                # heartbeat — anything still outstanding was dropped.
                # Marks land only on frame boundaries, so a frame whose
                # end ordinal the mark passed was dropped whole.
                q = self._wire_expect[worker_id]
                while q and q[0].ordinal <= completed:
                    frame = q.popleft()
                    self._conclude_lost(frame, "dropped")
                    self._release_frame(frame)
            return
        if kind != "results":
            raise ConfigError(
                f"worker {worker_id} protocol error: unexpected {kind!r} "
                f"frame while collecting run replies"
            )
        _, rseq, payload = msg
        q = self._wire_expect[worker_id]
        # Replies are strictly ordered per worker: a reply sequenced
        # past an outstanding frame proves that frame was dropped.
        while q and q[0].seq < rseq:
            frame = q.popleft()
            self._conclude_lost(frame, "dropped")
            self._release_frame(frame)
        if not q or q[0].seq != rseq:
            raise ConfigError(
                f"worker {worker_id} protocol error: reply seq {rseq} "
                f"matches no outstanding request"
            )
        frame = q.popleft()
        # The worker replied, so it is done reading this frame's
        # request blocks — even if the payload turns out garbled.
        self._release_frame(frame)
        if not isinstance(payload, list):
            # A garbled frame: the seq routed it, the payload is junk —
            # and every member shares the loss.
            self._conclude_lost(frame, "garbled")
            return
        if len(payload) != len(frame.entries):
            raise ConfigError(
                f"worker {worker_id} protocol error: frame seq {rseq} "
                f"carried {len(payload)} replies for "
                f"{len(frame.entries)} members"
            )
        self._transport_success(worker_id)
        self._note_reply_time(frame)
        for entry, reply in zip(frame.entries, payload):
            reply = self._host_wire.decode_reply(worker_id, reply)
            if frame.is_hedge:
                if entry.resolved:
                    self._count_hedge_wasted(entry)
                elif entry.lost is not None:
                    self._apply_hedge(entry, reply)
                else:
                    entry.hedge_reply = reply
                continue
            # The primary's reply always wins the bookkeeping — even
            # when a hedge resolved the entry first, re-applying the
            # primary is a no-op on values (replies are content-
            # deterministic) and keeps the ledger canonical.
            self._apply_primary(entry, reply)
            self._count_hedge_wasted(entry)

    def _sweep_entries(self, entries) -> None:
        """Wall-clock escalations between polls: hangs, timeouts, hedges."""
        now = time.monotonic()
        budget = self._silence_budget_s()
        for worker_id in sorted(self._handles):
            if worker_id in self._dead_worker_ids:
                continue
            q = self._wire_expect[worker_id]
            if not any(not exp.concluded for exp in q):
                continue
            if now - self._last_seen[worker_id] <= budget:
                continue
            handle = self._handles[worker_id]
            if handle.alive:
                self._declare_unresponsive(handle)
            else:
                self._on_worker_death(handle)
        threshold = self.resilience.hedge_threshold(self._ewma_reply_s)
        for entry in entries:
            if entry.resolved:
                continue
            primary = entry.primary
            if (
                entry.lost is None
                and not primary.concluded
                and now - primary.sent_at > self.worker_timeout
            ):
                self._conclude_lost(primary, "timeout")
            if (
                entry.hedge_open()
                and now - entry.hedge.sent_at > self.worker_timeout
            ):
                self._conclude_lost(entry.hedge, "timeout")
            if self.resilience.hedge and entry.hedge is None:
                overdue = entry.lost is not None or (
                    threshold is not None
                    and now - primary.sent_at > threshold
                )
                if overdue:
                    self._issue_hedge(entry)
            if entry.lost is not None and not entry.resolved:
                if entry.hedge_reply is not None:
                    self._apply_hedge(entry, entry.hedge_reply)
                elif not entry.hedge_open():
                    entry.job.result = self._transport_failed_result(
                        entry.lost, primary.worker_id
                    )
                    entry.resolved = True

    def _collect(self, entries) -> None:
        """Drain the wire until every batch entry resolves.

        One poll slice per worker per pass (draining bursts without
        blocking), then a sweep for the wall-clock escalations. Failed
        resolutions feed the inherited healing ladder exactly like an
        in-process device failure, so retries/replays stay deterministic.
        """
        while not all(entry.resolved for entry in entries):
            for worker_id in sorted(self._handles):
                if worker_id in self._dead_worker_ids:
                    continue
                handle = self._handles[worker_id]
                q = self._wire_expect[worker_id]
                try:
                    # Idle workers get a zero-length poll purely to keep
                    # heartbeats from backing up the pipe buffer.
                    msg = handle.recv(timeout=_POLL_SLICE_S if q else 0)
                    while True:
                        self._process_frame(worker_id, msg)
                        msg = handle.recv(timeout=0)
                except WorkerTimeoutError:
                    pass
                except WorkerDiedError:
                    self._on_worker_death(handle)
            self._sweep_entries(entries)

    def _recv_gang_frame(self, handle: WorkerHandle):
        """Await one gang reply, skipping heartbeats; ``None`` on loss.

        Gang batches are not hedged (a batch is one atomic request), so
        the escalation ladder is simpler: silence past the hang budget
        from a live worker is an unresponsive verdict; EOF or the
        overall ``worker_timeout`` is a death.
        """
        worker_id = handle.worker_id
        deadline = time.monotonic() + self.worker_timeout
        while True:
            try:
                msg = handle.recv(timeout=_POLL_SLICE_S)
            except WorkerTimeoutError:
                now = time.monotonic()
                silent = now - self._last_seen.get(worker_id, now)
                if silent > self._silence_budget_s() or now > deadline:
                    if handle.alive:
                        self._declare_unresponsive(handle)
                    else:
                        self._on_worker_death(handle)
                    return None
                continue
            except WorkerDiedError:
                self._on_worker_death(handle)
                return None
            self._last_seen[worker_id] = time.monotonic()
            if msg[0] == "heartbeat":
                continue
            return msg

    def _execute_ganged(self, batch) -> None:
        """Ship one launch batch as per-worker gang requests."""
        by_worker: Dict[int, list] = {}
        for device, job in batch:
            self._spec_of(job)
            by_worker.setdefault(
                self.worker_of[device.device_id], []
            ).append((device, job))
        pending = []
        for worker_id, group in sorted(by_worker.items()):
            handle = self._handles[worker_id]
            if worker_id in self._dead_worker_ids:
                for _device, job in group:
                    job.result = self._crashed_result(worker_id)
                continue
            seq = next(self._seq)
            requests = []
            tokens: tuple = ()
            for device, job in group:
                wire_spec, spec_tokens = self._host_wire.encode_spec(
                    self._spec_of(job)
                )
                tokens += spec_tokens
                requests.append((device.device_id, wire_spec))
            try:
                handle.send_gang(
                    seq, requests, self.gang,
                    ack=self._host_wire.ack_for(worker_id),
                )
            except WorkerDiedError:
                self._host_wire.free(tokens)
                self._on_worker_death(handle)
                for _device, job in group:
                    job.result = self._crashed_result(worker_id)
                continue
            self._host_wire.note_frame(len(requests))
            pending.append((handle, seq, group, tokens))
        for handle, seq, group, tokens in pending:
            if handle.worker_id in self._dead_worker_ids:
                self._host_wire.free(tokens)
                for _device, job in group:
                    job.result = self._crashed_result(handle.worker_id)
                continue
            frame = self._recv_gang_frame(handle)
            self._host_wire.free(tokens)
            if frame is None:  # died or declared unresponsive
                for _device, job in group:
                    job.result = self._crashed_result(handle.worker_id)
                continue
            kind, rseq, replies = frame
            if kind != "gang" or rseq != seq or len(replies) != len(group):
                raise ConfigError(
                    f"worker {handle.worker_id} protocol error: expected "
                    f"('gang', {seq}) with {len(group)} replies, got "
                    f"({kind!r}, {rseq}, {len(replies)} replies)"
                )
            for (device, job), reply in zip(group, replies):
                reply = self._host_wire.decode_reply(
                    handle.worker_id, reply
                )
                self._apply_reply(device, job, reply, handle)

    @contextmanager
    def _execution_tier(self):
        obs = self.observer
        self._start_workers()
        try:
            if obs.enabled:
                obs.metrics.gauge("serve.workers").set(self.num_workers)

            def execute(batch) -> None:
                if self.gang is not False:
                    self._execute_ganged(batch)
                    return
                # Batched dispatch: one ("runs", ...) frame per worker
                # per launch round — pickle + syscall cost amortised
                # over the round instead of paid per request. The
                # inherited driver replays completions in launchpad
                # order afterwards, so grouping cannot perturb the
                # bit-identical placement/telemetry contract.
                by_worker: Dict[int, list] = {}
                for device, job in batch:
                    self._spec_of(job)
                    by_worker.setdefault(
                        self.worker_of[device.device_id], []
                    ).append((device, job))
                entries = []
                for worker_id, group in sorted(by_worker.items()):
                    if worker_id in self._dead_worker_ids:
                        for _device, job in group:
                            job.result = self._crashed_result(worker_id)
                        continue
                    handle = self._handles[worker_id]
                    members = []
                    frame_entries = []
                    tokens: tuple = ()
                    for device, job in group:
                        spec = self._spec_of(job)
                        wire_spec, spec_tokens = (
                            self._host_wire.encode_spec(spec)
                        )
                        tokens += spec_tokens
                        members.append(
                            (
                                device.device_id,
                                wire_spec,
                                self._spec_deadline_s(spec),
                            )
                        )
                        frame_entries.append(_Pending(device, job, spec, None))
                    seq = next(self._seq)
                    try:
                        handle.send_runs(
                            seq,
                            members,
                            ack=self._host_wire.ack_for(worker_id),
                        )
                    except WorkerDiedError:
                        self._host_wire.free(tokens)
                        self._on_worker_death(handle)
                        for _device, job in group:
                            job.result = self._crashed_result(worker_id)
                        continue
                    self._host_wire.note_frame(len(members))
                    ordinal = self._wire_sent[worker_id] + len(members)
                    self._wire_sent[worker_id] = ordinal
                    frame = _Frame(
                        seq, ordinal, worker_id, frame_entries, tokens,
                        False, time.monotonic(),
                    )
                    for entry in frame_entries:
                        entry.primary = frame
                    self._wire_expect[worker_id].append(frame)
                    entries.extend(frame_entries)
                if entries:
                    self._collect(entries)

            yield execute
        finally:
            self._stop_workers()

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def run(self, max_events: int = 1_000_000) -> TelemetryReport:
        """Drain the loop with jobs executing on the worker tier.

        Same contract as :meth:`DevicePool.run` — including
        :class:`~repro.common.errors.PoolStalledError` when every
        serviceable device (worker) is gone with work still queued.
        """
        return self._run_parallel(max_events)

    def plan_cache_totals(self) -> dict:
        """Aggregate the per-worker plan-cache snapshots.

        Workers ship :meth:`~repro.plan.PlanCache.snapshot` with every
        reply; this sums the counters across workers. Affinity counters
        are parent-side (placement happens here, the workers never see
        it), so they are folded in from the pool's own ledger.
        """
        totals = {
            "entries": 0, "superplans": 0, "hits": 0, "misses": 0,
            "compiles": 0, "compile_ns": 0,
            "affinity_hits": 0, "affinity_misses": 0,
        }
        per_worker = {}
        for worker_id, stats in sorted(self.worker_stats.items()):
            cache = stats.get("plan_cache") or {}
            per_worker[worker_id] = dict(cache)
            for key in totals:
                totals[key] += int(cache.get(key, 0))
        totals["affinity_hits"] += self._affinity_hits
        totals["affinity_misses"] += self._affinity_misses
        return {"total": totals, "per_worker": per_worker}
