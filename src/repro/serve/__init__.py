"""repro.serve — the process-sharded serving tier.

Two front doors over one worker substrate:

* :class:`~repro.serve.pool.ServePool` — the deterministic batch tier.
  A :class:`~repro.runtime.pool.DevicePool` whose jobs execute inside
  worker *processes* (one process owns one or more devices) while all
  bookkeeping — placement, scheduling, healing, telemetry — stays on
  the main thread in simulated-clock order. Results are bit-identical
  to sequential execution; the processes exist purely to beat the GIL
  wall that capped worker *threads* at 0.85x (BENCH_5).
* :class:`~repro.serve.gateway.Gateway` — the asyncio front door for
  live traffic: ``await submit(spec)``, per-tenant quotas through the
  :class:`~repro.runtime.job.Footprint` machinery, bounded queues that
  shed load with ``retry_after_s`` hints, graceful drain/shutdown, and
  worker-crash failover.

Work crosses the process boundary as picklable
:class:`~repro.serve.spec.JobSpec` descriptions naming a registered
kernel — with numpy payloads and array results travelling as zero-copy
shared-memory descriptors when the platform supports it
(:mod:`repro.serve.shm`, the ``wire=`` knob) — and each dispatch round
coalesces into batched wire frames. The fault ledger crosses the
boundary in both directions (worker-side injectors report device death
in replies; a worker crash — injectable via
:class:`~repro.faults.WorkerKill` — retires the worker's devices
through the PR-4 healing ladder). See ``docs/SERVING.md``.
"""

from repro.serve.gateway import (
    Gateway,
    GatewayReport,
    ServeConfig,
    ServeResult,
    TenantQuota,
)
from repro.serve.pool import ServePool, default_mp_context
from repro.serve.resilience import (
    BreakerState,
    CircuitBreaker,
    ResilienceConfig,
)
from repro.serve.shm import (
    WIRE_MODES,
    HostWire,
    ShmRef,
    SlabArena,
    WorkerWire,
    payload_nbytes,
    resolve_wire_mode,
    shm_available,
)
from repro.serve.spec import (
    KERNELS,
    JobSpec,
    ServeJob,
    kernel_names,
    register_kernel,
)
from repro.serve.worker import (
    KILLED_EXIT_CODE,
    WorkerHandle,
    WorkerOptions,
    worker_main,
)

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "Gateway",
    "GatewayReport",
    "HostWire",
    "JobSpec",
    "KERNELS",
    "KILLED_EXIT_CODE",
    "ResilienceConfig",
    "ServeConfig",
    "ServeJob",
    "ServePool",
    "ServeResult",
    "ShmRef",
    "SlabArena",
    "TenantQuota",
    "WIRE_MODES",
    "WorkerHandle",
    "WorkerOptions",
    "WorkerWire",
    "default_mp_context",
    "kernel_names",
    "payload_nbytes",
    "register_kernel",
    "resolve_wire_mode",
    "shm_available",
    "worker_main",
]
