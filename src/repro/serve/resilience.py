"""Serving-tier resilience primitives: breakers and the policy bag.

The serving tier's tail-latency discipline under partial failure —
the DRAMA-style straggler mitigation the large-dataset search
literature assumes — is built from four mechanisms, configured here
and enforced in :mod:`repro.serve.pool` / :mod:`repro.serve.gateway`:

* **Heartbeats** — workers emit periodic ``("heartbeat", ...)``
  messages from a side thread, so the parent can tell a *slow* worker
  (replies late, heartbeats flowing) from a *hung* one (process
  alive, pipe silent past ``hang_timeout_s`` →
  :class:`~repro.common.errors.WorkerUnresponsiveError`) from a
  *dead* one (pipe EOF → :class:`~repro.common.errors.WorkerDiedError`).
* **Deadlines** — a request's wall-clock budget rides the wire; the
  worker skips execution of an already-expired request (cheap
  cancel) and the gateway cancels queued work whose deadline lapsed.
* **Hedged re-dispatch** — a request outstanding longer than the
  hedge threshold is re-issued to a second worker. Winner selection
  is *canonical*: whenever the primary's reply arrives it wins the
  bookkeeping, so the deterministic tier's placement/results/telemetry
  stay bit-identical to the unhedged run; the hedge only ever fills
  in for a reply that never comes.
* **Circuit breakers** — per-worker ledgers (modeled on the
  :class:`~repro.runtime.health.DeviceHealth`
  QUARANTINED→PROBATION machine) trip after consecutive transport
  failures, route traffic around the worker for a doubling cooldown,
  then let one half-open probe through.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import ConfigError

__all__ = ["BreakerState", "CircuitBreaker", "ResilienceConfig"]


class BreakerState(enum.Enum):
    """The three states of a per-worker circuit breaker."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass
class CircuitBreaker:
    """One worker's transport-failure ledger and routing switch.

    The wall-clock sibling of the pool's
    :class:`~repro.runtime.health.DeviceHealth` ledger::

        CLOSED ──(threshold consecutive transport failures)──▶ OPEN
           ▲                                                    │
           │                                        (cooldown elapses)
           │                                                    ▼
           └──(probe reply arrives clean)─────────────── HALF_OPEN
                                                                │
                               (probe fails)────────────────────┘
                                             (re-opened, cooldown doubled)

    Transport failures are timeouts, hang verdicts, dropped and
    garbled replies — never an application-level job error (a job
    whose *reply* arrived fine is the healing ladder's business, not
    the wire's). While OPEN, :meth:`allow` steers dispatch around the
    worker; once the cooldown lapses exactly one probe request is let
    through, and its outcome closes or re-opens the circuit.

    All transitions are driven by caller-supplied ``now`` timestamps,
    so the breaker itself is clock-agnostic (wall seconds at the
    gateway, any monotonic float in tests).
    """

    trip_threshold: int = 3
    cooldown_s: float = 0.5
    state: BreakerState = BreakerState.CLOSED
    consecutive_failures: int = 0
    trips: int = 0
    probes: int = 0
    open_until: float = 0.0
    _backoff: float = 0.0

    def __post_init__(self) -> None:
        if self.trip_threshold < 1:
            raise ConfigError("breaker trip_threshold must be at least 1")
        if self.cooldown_s <= 0:
            raise ConfigError("breaker cooldown_s must be positive")

    def allow(self, now: float) -> bool:
        """May a request be routed to this worker right now?

        CLOSED always allows. OPEN refuses until the cooldown lapses,
        at which point the breaker half-opens and admits exactly one
        probe; further requests are refused until that probe's outcome
        is recorded.
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN and now >= self.open_until:
            self.state = BreakerState.HALF_OPEN
            self.probes += 1
            return True
        return False

    def record_success(self) -> None:
        """A clean reply: clear the streak; a probe closes the circuit."""
        self.consecutive_failures = 0
        if self.state is BreakerState.HALF_OPEN:
            self.state = BreakerState.CLOSED
            self._backoff = 0.0

    def record_failure(self, now: float) -> bool:
        """A transport failure at ``now``; True if this trips the circuit.

        A failed half-open probe re-opens immediately (the probe
        disproved the recovery); a CLOSED breaker needs the streak to
        reach ``trip_threshold``.
        """
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN or (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.trip_threshold
        ):
            self.trip(now)
            return True
        return False

    def trip(self, now: float) -> None:
        """Open the circuit; each re-trip doubles the cooldown."""
        self._backoff = (
            self.cooldown_s if self._backoff == 0.0 else self._backoff * 2
        )
        self.state = BreakerState.OPEN
        self.open_until = now + self._backoff
        self.trips += 1
        self.consecutive_failures = 0

    def as_dict(self) -> dict:
        return {
            "state": self.state.value,
            "trips": self.trips,
            "probes": self.probes,
            "consecutive_failures": self.consecutive_failures,
        }


@dataclass(frozen=True)
class ResilienceConfig:
    """The serving tier's resilience policy (one picklable bag).

    Args:
        heartbeat_interval_s: period of the worker-side heartbeat
            thread; ``0`` disables heartbeats (and with them hang
            detection — silence then only resolves at
            ``hang_timeout_s`` against the last reply).
        hang_timeout_s: wall seconds of total pipe silence (no reply,
            no heartbeat) tolerated from a live worker with requests
            outstanding before it is declared unresponsive
            (:class:`~repro.common.errors.WorkerUnresponsiveError`)
            and routed around.
        hedge: enable hedged re-dispatch of stragglers.
        hedge_after_s: outstanding-time threshold that triggers a
            hedge; ``None`` derives it as ``hedge_multiplier`` times
            the observed EWMA service time (with a 10 ms floor).
        hedge_multiplier: the EWMA multiplier used when
            ``hedge_after_s`` is ``None``.
        breaker_threshold: consecutive transport failures that trip a
            worker's circuit breaker; ``0`` disables breakers.
        breaker_cooldown_s: first cooldown of a tripped breaker
            (doubles on every re-trip).
        default_deadline_s: wall-clock deadline applied to requests
            whose spec carries none; ``None`` leaves them unbounded.
    """

    heartbeat_interval_s: float = 0.05
    hang_timeout_s: float = 2.0
    hedge: bool = False
    hedge_after_s: float | None = None
    hedge_multiplier: float = 4.0
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 0.5
    default_deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.heartbeat_interval_s < 0:
            raise ConfigError("heartbeat_interval_s must be >= 0 (0 disables)")
        if self.hang_timeout_s <= 0:
            raise ConfigError("hang_timeout_s must be positive")
        if self.hedge_after_s is not None and self.hedge_after_s <= 0:
            raise ConfigError("hedge_after_s must be positive when set")
        if self.hedge_multiplier <= 1.0:
            raise ConfigError("hedge_multiplier must exceed 1")
        if self.breaker_threshold < 0:
            raise ConfigError("breaker_threshold must be >= 0 (0 disables)")
        if self.breaker_cooldown_s <= 0:
            raise ConfigError("breaker_cooldown_s must be positive")
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise ConfigError("default_deadline_s must be positive when set")

    @property
    def breakers_enabled(self) -> bool:
        return self.breaker_threshold > 0

    def hedge_threshold(self, ewma_s: float | None) -> float | None:
        """The outstanding-time bar that triggers a hedge, or ``None``.

        With hedging off, always ``None``. An explicit ``hedge_after_s``
        wins; otherwise the threshold tracks the observed EWMA service
        time (``None`` until the first reply establishes one).
        """
        if not self.hedge:
            return None
        if self.hedge_after_s is not None:
            return self.hedge_after_s
        if ewma_s is None:
            return None
        return max(0.01, self.hedge_multiplier * ewma_s)

    def make_breaker(self) -> CircuitBreaker | None:
        """A fresh per-worker breaker, or ``None`` when disabled."""
        if not self.breakers_enabled:
            return None
        return CircuitBreaker(
            trip_threshold=self.breaker_threshold,
            cooldown_s=self.breaker_cooldown_s,
        )
