"""Picklable job descriptions for the process-sharded serving tier.

A :class:`~repro.runtime.job.Job` wraps an arbitrary Python callable —
perfect inside one process, unshippable across a pipe. A
:class:`JobSpec` is the serving tier's wire format: a frozen, picklable
description of *what* to run (a registered kernel name plus a payload of
plain values and numpy arrays, or an assembled RISC-V program) together
with the placement metadata the scheduler needs (footprint, priority,
service estimate) and an optional golden output for validation.

Kernels are plain functions ``fn(system, payload) -> output`` registered
by name in :data:`KERNELS` via :func:`register_kernel`. Worker processes
resolve the name back to the function at execution time, so a spec's
pickle carries only data. The built-in kernels cover the homogeneous
serving mixes the benchmarks use — including ``match_count``, the
content-addressable search the substrate is named for. Custom kernels
must be registered before the worker processes start (with the default
``fork`` start method the registry is inherited; under ``spawn`` the
registering module must be importable and imported by both sides — see
``docs/SERVING.md``).

Everything in a spec (and in a kernel's return value) must survive
``pickle`` — numpy arrays, scalars, strings, tuples/dicts of those.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Optional

import numpy as np

from repro.common.errors import ConfigError
from repro.engine.system import CAPESystem
from repro.runtime.job import Footprint, Job

__all__ = [
    "KERNELS",
    "JobSpec",
    "ServeJob",
    "kernel_names",
    "register_kernel",
]

#: Registered serving kernels: name -> ``fn(system, payload) -> output``.
KERNELS: Dict[str, Callable[[CAPESystem, dict], Any]] = {}


def register_kernel(name: str):
    """Decorator: register ``fn(system, payload)`` under ``name``."""

    def deco(fn):
        if name in KERNELS:
            raise ConfigError(f"kernel {name!r} is already registered")
        KERNELS[name] = fn
        return fn

    return deco


def kernel_names() -> tuple:
    """The registered kernel names, sorted (for docs and errors)."""
    return tuple(sorted(KERNELS))


# ----------------------------------------------------------------------
# Built-in kernels (the homogeneous serving mixes)
# ----------------------------------------------------------------------

_BASE = 0x1000


def _load(system: CAPESystem, vreg: int, data: np.ndarray, slot: int = 0) -> int:
    """Write ``data`` to memory and load it into ``vreg``; returns vl."""
    data = np.asarray(data, dtype=np.int64)
    addr = _BASE + slot * 4 * len(data)
    system.memory.write_words(addr, data)
    system.vle(vreg, addr)
    return len(data)


@register_kernel("vadd_sum")
def _vadd_sum(system: CAPESystem, payload: dict):
    """sum(a + a) — the smallest end-to-end vector round trip.

    The operand is loaded into two distinct registers: the associative
    add microcode requires distinct source rows, so this keeps the
    kernel executable (and plan-cacheable) on the bit-level backends.
    """
    data = np.asarray(payload["data"], dtype=np.int64)
    system.vsetvl(len(data))
    _load(system, 1, data, slot=0)
    _load(system, 2, data, slot=1)
    system.vadd(3, 1, 2)
    return int(system.vredsum(3, signed=False))


@register_kernel("dot")
def _dot(system: CAPESystem, payload: dict):
    """x · y through vmul + the global reduction tree."""
    x = np.asarray(payload["x"], dtype=np.int64)
    y = np.asarray(payload["y"], dtype=np.int64)
    system.vsetvl(len(x))
    _load(system, 1, x, slot=0)
    _load(system, 2, y, slot=1)
    system.vmul(3, 1, 2)
    return int(system.vredsum(3, signed=False))


@register_kernel("saxpy_sum")
def _saxpy_sum(system: CAPESystem, payload: dict):
    """sum(a*x + y) with the scalar broadcast through vmv.v.x."""
    x = np.asarray(payload["x"], dtype=np.int64)
    y = np.asarray(payload["y"], dtype=np.int64)
    a = int(payload["a"])
    system.vsetvl(len(x))
    _load(system, 1, x, slot=0)
    _load(system, 2, y, slot=1)
    system.vmv_vx(3, a)
    system.vmul(4, 1, 3)
    system.vadd(5, 4, 2)
    return int(system.vredsum(5, signed=False))


@register_kernel("match_count")
def _match_count(system: CAPESystem, payload: dict):
    """How many elements equal ``needle`` — an associative search.

    The content-addressable request shape: one ``vmseq.vx`` search
    (every lane compares simultaneously) folded through the tag
    popcount. This is the lookup primitive of the paper's Section VII
    memory modes and of every CAM-serving workload in the literature.
    """
    data = np.asarray(payload["data"], dtype=np.int64)
    needle = int(payload["needle"])
    system.vsetvl(len(data))
    _load(system, 1, data)
    system.vmseq_vx(2, 1, needle)
    return int(system.vmask_popcount(2))


@register_kernel("__body__")
def _body_kernel(system: CAPESystem, payload: dict):
    """Escape hatch for :meth:`JobSpec.from_job`: run a plain callable.

    The payload carries the job's original ``body`` function. Such a
    spec works on every in-process surface; crossing a process boundary
    additionally requires the body itself to survive pickle (a
    module-level function — closures and lambdas won't).
    """
    return payload["body"](system)


@register_kernel("program")
def _program(system: CAPESystem, payload: dict):
    """Assemble and interpret a RISC-V program; output = final xregs.

    Payload: ``source`` (assembly text) and optionally ``memory_words``
    (``{byte_addr: array}`` image) and ``result_regs`` (indices of the
    scalar registers to return; defaults to all 32).
    """
    from repro.isa.interpreter import Machine

    for addr, values in (payload.get("memory_words") or {}).items():
        system.memory.write_words(int(addr), np.asarray(values))
    machine = Machine(payload["source"], cape=system).run()
    regs = payload.get("result_regs")
    xregs = list(machine.xregs)
    if regs is None:
        return tuple(int(v) for v in xregs)
    return tuple(int(xregs[int(r)]) for r in regs)


# ----------------------------------------------------------------------
# The spec
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class JobSpec:
    """One picklable serving request.

    Args:
        name: telemetry / result-correlation label.
        kernel: a name registered in :data:`KERNELS`.
        payload: the kernel's input data (picklable values only).
        lanes: vector elements of live state — drives capacity-aware
            placement and per-tenant lane quotas (the
            :class:`~repro.runtime.job.Footprint` machinery).
        vregs: architectural vector registers kept live.
        resident: whether the lanes must be simultaneously CSB-resident.
        priority: higher runs earlier within a queue.
        deadline_cycles: optional turnaround target in *simulated*
            cycles from submission; rides the wire so
            :class:`~repro.runtime._telemetry.TelemetryReport` deadline
            accounting works for served jobs exactly as for in-process
            ones.
        deadline_s: optional *wall-clock* budget in seconds. The
            serving tier carries the remaining budget on every
            dispatch; workers cheap-cancel requests that arrive already
            expired and the gateway cancels queued work whose budget
            lapsed (docs/SERVING.md).
        estimated_cycles: service-time estimate for SJF ordering.
        backend: optional per-job bit-level backend override.
        golden: optional expected output (compared on the worker).
        tenant: quota bucket at the gateway (ignored by the batch pool).
    """

    name: str
    kernel: str
    payload: dict = field(default_factory=dict)
    lanes: int = 64
    vregs: int = 8
    resident: bool = True
    priority: int = 0
    deadline_cycles: Optional[float] = None
    deadline_s: Optional[float] = None
    estimated_cycles: Optional[float] = None
    backend: Optional[str] = None
    golden: Any = None
    tenant: str = "default"

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("a JobSpec needs a non-empty name")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigError("deadline_s must be positive when set")

    @property
    def footprint(self) -> Footprint:
        """The spec's register-file claim (admission + quotas)."""
        return Footprint(
            lanes=self.lanes, vregs=self.vregs, resident=self.resident
        )

    def resolve_kernel(self) -> Callable[[CAPESystem, dict], Any]:
        """Look the kernel up by name; raises ``ConfigError`` if unknown."""
        try:
            return KERNELS[self.kernel]
        except KeyError:
            raise ConfigError(
                f"unknown serving kernel {self.kernel!r} "
                f"(registered: {', '.join(kernel_names())})"
            ) from None

    def build_body(self) -> Callable[[CAPESystem], Any]:
        """The job body a device executes (kernel bound to payload)."""
        fn = self.resolve_kernel()
        payload = self.payload

        def body(system: CAPESystem):
            return fn(system, payload)

        return body

    def to_job(self) -> "ServeJob":
        """Materialise the runtime :class:`Job` for this spec.

        The same construction runs on both sides of the process
        boundary: worker processes execute the job against their own
        device, and the sequential comparison path executes it in
        process — which is what makes "bit-identical to sequential"
        checkable at all.
        """
        return ServeJob(self)

    def with_tenant(self, tenant: str) -> "JobSpec":
        """A copy of the spec rebound to another quota bucket."""
        return replace(self, tenant=tenant)

    @classmethod
    def from_job(cls, job: Job) -> "JobSpec":
        """Describe an existing :class:`~repro.runtime.job.Job` as a spec.

        A :class:`ServeJob` hands back the spec it was built from. Any
        other job is wrapped through the ``__body__`` kernel, which
        carries the job's callable in the payload — fine on every
        in-process surface; shipping it to a worker process additionally
        requires the body to be picklable. ``validate`` predicates
        cannot cross (only ``golden`` survives); a job carrying one is
        refused rather than silently under-validated.
        """
        if isinstance(job, ServeJob):
            return job.spec
        if job.validate is not None:
            raise ConfigError(
                f"job {job.name!r} carries a validate= callable, which a "
                f"JobSpec cannot express; use golden= instead"
            )
        return cls(
            name=job.name,
            kernel="__body__",
            payload={"body": job.body},
            lanes=job.footprint.lanes,
            vregs=job.footprint.vregs,
            resident=job.footprint.resident,
            priority=job.priority,
            deadline_cycles=job.deadline_cycles,
            estimated_cycles=job.estimated_cycles,
            backend=job.backend,
            golden=job.golden,
        )


class ServeJob(Job):
    """A :class:`Job` built from (and still carrying) its spec.

    The spec is the unit that crosses the process boundary; the job
    object itself never leaves the bookkeeping process.
    """

    def __init__(self, spec: JobSpec) -> None:
        super().__init__(
            name=spec.name,
            body=spec.build_body(),
            footprint=spec.footprint,
            priority=spec.priority,
            deadline_cycles=spec.deadline_cycles,
            estimated_cycles=spec.estimated_cycles,
            golden=spec.golden,
            backend=spec.backend,
        )
        self.spec = spec
