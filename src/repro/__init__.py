"""CAPE: A Content-Addressable Processing Engine — full-stack reproduction.

A Python implementation of the HPCA 2021 paper by Caminal et al.: a
CMOS-based associative (content-addressable) processing engine built from
push-rule 6T SRAM arrays, programmable through the RISC-V vector ISA.

Layers (bottom-up):

* ``repro.circuits`` — microoperation delay/energy (Table II), clocking,
  and area (Figure 8).
* ``repro.csb`` — bit-level compute-storage block: subarrays, chains, tag
  routing, and the global reduction tree.
* ``repro.assoc`` — truth tables, bit-serial associative algorithms, the
  behavioural emulator, and the instruction model (Table I).
* ``repro.memory`` — cache hierarchy, MESI coherence, and HBM.
* ``repro.engine`` — VCU, VMU, control processor, and the CAPE system
  (CAPE32k / CAPE131k presets).
* ``repro.baseline`` — out-of-order, SIMD (SVE-like), and multicore
  reference models (Table III).
* ``repro.isa`` — RV64I+RVV subset, assembler, interpreter, intrinsics.
* ``repro.workloads`` — microbenchmarks and Phoenix applications.
* ``repro.memmode`` — Section VII memory-only modes.
* ``repro.eval`` — speedup harness, roofline, and table/figure
  regeneration.
"""

__version__ = "1.0.0"
