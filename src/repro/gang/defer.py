"""Deferred bit-level engine: trace a job's mirror work instead of doing it.

Gang execution runs in two phases. Phase 1 executes each member job
*functionally* on its own device with a :class:`DeferredBitEngine`
standing in for the real :class:`~repro.engine.bitexec.BitEngine`: every
intrinsic that would have run microcode on the mirror CSB is resolved to
its :class:`~repro.plan.CompiledPlan` (warming the plan cache exactly
like live execution) and logged as a trace entry; every register sync is
logged with the functional values; reductions log the functional scalar
they must reproduce. Phase 2 (:mod:`repro.gang.replay`) stacks the
traces of same-shape jobs and replays each plan once across all of them.

The deferred engine reports ``backend == "bitplane"`` so
``CAPESystem.set_backend("bitplane")`` inside ``Job.execute`` is a no-op
while it is installed, and ``deferred = True`` so
``CAPESystem._bitexec`` skips the immediate cross-validation peek (the
mirror state does not exist yet — validation happens at gang replay,
with mismatching members ejected to the sequential path).

Trace entries (tuples, first element is the kind):

* ``("op", key, plan, vl, vstart)`` — one intrinsic's microcode; ``key``
  is the exact :class:`~repro.plan.PlanCache` key the live engine would
  have used (mnemonic, SEW, operand roles, scalar, mask form — never the
  column count), so grouping by trace signature *is* grouping by plan
  key.
* ``("sync", vreg, values)`` — the functional row mirrored after the op
  (or standing alone for loads and unsupported-form fallbacks).
* ``("redsum", vs1, width, vl, vstart, expected)`` — bit-serial
  reduction; ``expected`` is the functional sum the replay must match.
* ``("popcount", vm, vl, vstart, expected)`` — mask pop-count.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.engine.bitexec import MASKABLE, UnsupportedMicrocode, run_microcode
from repro.plan import compile_chain_program, resolve_plan_cache

__all__ = ["DeferredBitEngine", "trace_signature"]


class DeferredBitEngine:
    """A :class:`~repro.engine.bitexec.BitEngine` stand-in that records.

    Duck-types the engine surface :class:`~repro.engine.system.CAPESystem`
    drives — ``execute``/``sync_register``/``popcount``/``reset``/
    ``attach_observer``/``peek`` — but owns no CSB: microcode becomes
    trace entries, syncs become logged functional rows. Plan resolution
    goes through the same cache with the same keys as live execution, so
    a deferred phase warms the cache identically.
    """

    #: Deferred engines never execute eagerly; the system's ``_bitexec``
    #: checks this to skip the immediate cross-validation peek.
    deferred = True

    def __init__(
        self,
        num_chains: int,
        num_subarrays: int,
        num_cols: int,
        plan_cache=None,
        observer=None,
    ) -> None:
        #: Reported backend name; must be "bitplane" so set_backend()
        #: inside Job.execute early-returns while we are installed.
        self.backend = "bitplane"
        self.observer = observer
        self._plan_cache = resolve_plan_cache(plan_cache)
        self._shape = (num_chains, num_subarrays, num_cols)
        self.max_vl = num_chains * num_cols
        #: The recorded trace (see module docstring for entry shapes).
        self.trace: List[tuple] = []
        #: vreg -> last synced functional row (the shadow register file
        #: reductions compute their expected scalars from).
        self._rows = {}

    # -- engine surface -------------------------------------------------

    def reset(self) -> None:
        """Drop the recorded trace and shadow rows (fresh mirror)."""
        self.trace.clear()
        self._rows.clear()

    def attach_observer(self, observer) -> None:
        self.observer = observer

    def sync_register(self, vreg: int, values: np.ndarray) -> None:
        values = np.array(values, dtype=np.int64, copy=True)
        self._rows[vreg] = values
        self.trace.append(("sync", vreg, values))

    def peek(self, vreg: int) -> np.ndarray:
        """Shadow view — the mirror a live engine would hold after the
        last sync. Only reachable from diagnostic paths; the system's
        validation peek is skipped while deferred."""
        row = self._rows.get(vreg)
        if row is None:
            return np.zeros(self.max_vl, dtype=np.int64)
        return row.copy()

    def popcount(self, vreg: int, vl: int, vstart: int) -> None:
        """Log a mask pop-count; returns ``None`` (checked at replay)."""
        row = self._rows.get(vreg)
        count = 0 if row is None else int((row[vstart:vl] & 1).sum())
        self.trace.append(("popcount", vreg, vl, vstart, count))
        return None

    def execute(
        self,
        mnemonic: str,
        vd: Optional[int] = None,
        vs1: Optional[int] = None,
        vs2: Optional[int] = None,
        scalar: Optional[int] = None,
        mask_reg: Optional[int] = None,
        width: int = 32,
        vl: int = 0,
        vstart: int = 0,
    ):
        """Resolve the intrinsic's plan and log it instead of running it.

        Applies exactly the checks the live engine applies — masked
        forms without microcode and aliased operand rows raise
        :class:`UnsupportedMicrocode` — so the functional-fallback
        behaviour (and therefore the trace's sync pattern) matches
        sequential execution entry for entry.
        """
        masked = mask_reg is not None
        if masked and mnemonic not in MASKABLE and mnemonic != "vmerge.vv":
            raise UnsupportedMicrocode(mnemonic)
        sources = [r for r in (vs1, vs2) if r is not None]
        if len(set(sources)) != len(sources) or (
            vd is not None and vd in sources
        ):
            raise UnsupportedMicrocode(f"{mnemonic} with aliased operands")

        if mnemonic == "vredsum.vs":
            row = self._rows.get(vs1)
            expected = 0 if row is None else int(row[vstart:vl].sum())
            self.trace.append(
                ("redsum", vs1, width, vl, vstart, expected)
            )
            # None tells the system to keep the functional total; the
            # bit-level total is checked against ``expected`` at replay.
            return None

        num_subarrays = self._shape[1]
        key = (
            "op", mnemonic, width, num_subarrays, vd, vs1, vs2,
            None if scalar is None else int(scalar), mask_reg, masked,
        )

        def build():
            return compile_chain_program(
                num_subarrays,
                lambda rec: run_microcode(
                    rec, mnemonic, vd, vs1, vs2, scalar, mask_reg,
                    width, masked,
                ),
            )

        cache = self._plan_cache
        if cache is not None:
            plan = cache.get_or_compile(key, build, observer=self.observer)
        else:
            plan = build()
        self.trace.append(("op", key, plan, vl, vstart))
        return None


def trace_signature(trace) -> tuple:
    """Structural signature of a trace: the gang-grouping key.

    Two traces with equal signatures issue the same plans against the
    same registers in the same order — per-member data (synced values,
    expected scalars) and active windows (``vl``/``vstart``) are
    deliberately excluded, so jobs over different data and different
    vector lengths still gang together.
    """
    sig = []
    for entry in trace:
        kind = entry[0]
        if kind == "op":
            sig.append(("op", entry[1]))
        elif kind == "sync":
            sig.append(("sync", entry[1]))
        elif kind == "redsum":
            sig.append(("redsum", entry[1], entry[2]))
        else:
            sig.append(("popcount", entry[1]))
    return tuple(sig)
