"""Gang orchestration: eligibility, trace capture, grouping, dispatch.

:func:`run_ganged` is the one entry point both execution tiers share —
:class:`~repro.runtime.pool.DevicePool` calls it on the main thread for
a launch batch, :mod:`repro.serve.worker` calls it inside a worker
process for the members it owns. It takes ``(system, job)`` pairs,
executes every job exactly once from the caller's point of view
(setting ``job.result``), and reports per-job :class:`GangOutcome`\\ s.

The pipeline:

1. **Eligibility** — a job gangs only when it would execute on the
   bit-plane backend (the job's own ``backend=`` or the device's), the
   device carries no live CSB faults (stuck bits / tag flips / chain
   kills make the mirror diverge by design and belong on the sequential
   ladder; transfer faults and whole-device kills live outside the CSB
   and gang fine), and no microop trace is being kept (bulk charging
   would reorder it). Ineligible jobs run the normal sequential path.
2. **Phase 1: traced functional execution** — each eligible job runs on
   its own device with a :class:`~repro.gang.defer.DeferredBitEngine`
   swapped in, producing the job's real functional result, cycle and
   energy charges, and the mirror trace. A body that switches backends
   mid-job evicts the deferred engine; such jobs are detected and
   re-run sequentially.
3. **Grouping** — traces are grouped by device shape plus
   :func:`~repro.gang.defer.trace_signature` (the plan-key stream), so a
   group shares every compiled plan it will replay.
4. **Phase 2: stacked replay** — each group replays once on a
   :class:`~repro.gang.replay.GangReplay`; surviving members get their
   buffered microop charges flushed to their device's observer, ejected
   members are re-run sequentially (the healing ladder applies there).

Observer families (pool-level observer): ``gang.size`` histogram (one
observation per gang), ``gang.hit`` (jobs whose mirror work was served
by a stacked replay), ``gang.miss`` with a ``reason`` label, and
``gang.ejected``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.csb.counter import MicroopStats
from repro.gang.defer import DeferredBitEngine, trace_signature
from repro.gang.replay import GangMember, GangReplay

__all__ = ["GangOutcome", "ineligible_reason", "run_ganged"]

#: Accepted values for every ``gang=`` knob.
GANG_MODES = (True, False, "auto")


def resolve_gang_mode(gang):
    """Validate a ``gang=`` knob (``True`` / ``False`` / ``"auto"``)."""
    if gang not in GANG_MODES:
        raise ConfigError(
            f"gang must be True, False, or 'auto', got {gang!r}"
        )
    return gang


@dataclass
class GangOutcome:
    """How one job was executed by :func:`run_ganged`."""

    #: Mirror work served by a stacked gang replay.
    ganged: bool = False
    #: Gang check failed for this member; job re-ran sequentially.
    ejected: bool = False
    #: Miss/ejection reason ("backend", "faults", "trace", "singleton",
    #: "backend-switch", or a divergence description); None on a hit.
    reason: Optional[str] = None
    #: Members in this job's gang (0 when not ganged).
    gang_size: int = 0


def ineligible_reason(system, job) -> Optional[str]:
    """Why (system, job) cannot join a gang; ``None`` when it can."""
    backend = job.backend if job.backend is not None else system.backend
    if backend != "bitplane":
        return "backend"
    injector = system.fault_injector
    if injector is not None and injector.has_csb_faults:
        return "faults"
    engine = system._bitengine
    if engine is not None and engine.csb.stats.keep_trace:
        return "trace"
    return None


def _run_sequential(system, job) -> None:
    system.reset()
    job.result = job.execute(system)


def _phase1(system, job):
    """Execute ``job`` functionally with a deferred mirror; return the
    trace, or ``None`` if the body evicted the deferred engine (explicit
    ``set_backend`` mid-job — the job must re-run sequentially)."""
    system.reset()
    previous = system._bitengine
    config = system.config
    engine = DeferredBitEngine(
        config.num_chains,
        config.element_bits,
        config.cols_per_chain,
        plan_cache=system._plan_cache,
        observer=system.observer,
    )
    system._bitengine = engine
    try:
        job.result = job.execute(system)
    finally:
        installed = system._bitengine
        system._bitengine = previous
    return engine.trace if installed is engine else None


def _flush_charges(system, member: GangMember) -> None:
    """Credit a surviving member's buffered microops to its device.

    A throwaway :class:`MicroopStats` bound to the device's observer
    reproduces exactly what the live mirror's counter would have
    emitted (same ``csb.microops`` family, same backend/device labels,
    same totals)."""
    if not member.charges:
        return
    stats = MicroopStats()
    stats.attach_observer(system.observer, backend="bitplane")
    for (op, bit_parallel), n in member.charges.items():
        stats.record(op, bit_parallel, n)


def run_ganged(
    entries: Sequence[Tuple[object, object]],
    *,
    mode=True,
    observer=None,
    run_job: Optional[Callable[[int], None]] = None,
) -> List[GangOutcome]:
    """Execute ``(system, job)`` pairs, ganging what can be ganged.

    Args:
        entries: one (system, job) per device; systems must be distinct
            (a device runs one job at a time).
        mode: ``True`` gangs every eligible job (singleton gangs
            included); ``"auto"`` requires at least two eligible jobs in
            the batch, otherwise everything runs sequentially; ``False``
            runs everything sequentially.
        observer: optional pool-level observer for the ``gang.*``
            metric families.
        run_job: sequential executor ``run_job(index)`` used for
            ineligible jobs and ejected members; defaults to
            ``system.reset(); job.result = job.execute(system)``.

    Returns:
        One :class:`GangOutcome` per entry, in order.
    """
    mode = resolve_gang_mode(mode)
    obs = observer if observer is not None and observer.enabled else None
    if run_job is None:
        def run_job(index):
            system, job = entries[index]
            _run_sequential(system, job)

    outcomes = [GangOutcome() for _ in entries]
    eligible: List[int] = []
    sequential: List[int] = []
    for index, (system, job) in enumerate(entries):
        reason = None if mode is not False else "disabled"
        if reason is None:
            reason = ineligible_reason(system, job)
        if reason is None:
            eligible.append(index)
        else:
            outcomes[index].reason = reason
            sequential.append(index)

    if mode == "auto" and len(eligible) < 2:
        for index in eligible:
            outcomes[index].reason = "singleton"
        sequential = sorted(sequential + eligible)
        eligible = []

    if obs is not None:
        for index in sequential:
            obs.counter("gang.miss", reason=outcomes[index].reason).inc()

    # Phase 1: traced functional execution on each member's own device.
    groups = {}
    for index in eligible:
        system, job = entries[index]
        trace = _phase1(system, job)
        if trace is None:
            outcomes[index].reason = "backend-switch"
            if obs is not None:
                obs.counter("gang.miss", reason="backend-switch").inc()
            run_job(index)
            continue
        config = system.config
        shape = (
            config.num_chains, config.cols_per_chain, config.element_bits,
        )
        key = (shape, trace_signature(trace))
        groups.setdefault(key, []).append((index, trace))

    # Phase 2: one stacked replay per structural group.
    for (_shape, _sig), grouped in groups.items():
        config = entries[grouped[0][0]][0].config
        members = [
            GangMember(trace, label=getattr(entries[i][1], "name", str(i)))
            for i, trace in grouped
        ]
        replay = GangReplay(config, members)
        replay.replay()
        if obs is not None:
            obs.histogram("gang.size").observe(len(members))
        for (index, _trace), member in zip(grouped, members):
            outcome = outcomes[index]
            outcome.gang_size = len(members)
            if member.ejected:
                outcome.ejected = True
                outcome.reason = member.eject_reason
                if obs is not None:
                    obs.counter("gang.ejected").inc()
                    obs.counter("gang.miss", reason="ejected").inc()
                run_job(index)
            else:
                outcome.ganged = True
                system, _job = entries[index]
                _flush_charges(system, member)
                if obs is not None:
                    obs.counter("gang.hit").inc()

    for index in sequential:
        run_job(index)
    return outcomes
