"""Phase 2 of gang execution: replay stacked traces on one wide backend.

A gang of K same-shape devices is realised as a single fresh
:class:`~repro.csb.bitplane.BitplaneBackend` whose column axis is K
contiguous device-sized blocks — member ``k`` owns columns
``[k*C, (k+1)*C)`` where ``C`` is the device's ``max_vl``. Because the
VMU interleave makes fused column ``e`` hold element ``e``, a member
block is just that device's ganged backend laid side by side with its
peers: the conceptual ``(devices, planes, cols)`` stack flattened along
the column axis. Every lowered plan kernel is already width-agnostic
(plans are shared across device widths since PR 5), so one kernel
invocation over ``K*C`` columns **is** the batched per-step numpy op —
searches, updates, and LUT gathers sweep all K devices at once.

Per-member state enters through two narrow doors:

* **syncs** — the K functional rows are concatenated and exploded into
  bit-planes with one :func:`~repro.common.bitutils.ints_to_bits` call;
* **active windows** — each member's ``vl``/``vstart`` becomes ones in
  its column block, so heterogeneous vector lengths gang together.

Cross-validation is batched and lazy: after replaying an op the
destination is *checked at the adjacent sync* (the system always syncs
the destination right after validating it), one
:func:`~repro.common.bitutils.bits_to_ints` gather compared against the
stacked functional rows under a per-column allowed-bits mask — bit 0
for mask producers, ``2^SEW-1`` inside the window, every bit outside it
— exactly the predicate ``CAPESystem._bitexec_matches`` applies per
device. A member that fails any check (op, redsum, or popcount) is
**ejected**: its gang outcome is discarded and the caller re-runs the
job on its own device, where the PR 4 healing ladder applies. Ejection
never poisons peers — no lowered kernel reads across columns.

Microop charges are buffered per member (static plan charges plus the
dynamically-sized ``rmw_register`` sweeps) and flushed by the caller
only for members whose gang execution survived, so observer totals stay
bit-identical to sequential execution.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional, Tuple

import numpy as np

from repro.circuits.microops import Microop
from repro.common.bitutils import bits_to_ints, ints_to_bits
from repro.common.errors import ConfigError
from repro.csb.bitplane import BitplaneBackend
from repro.csb.reduction import ReductionTree
from repro.engine.bitexec import MASK_RESULTS
from repro.plan.plan import _Ctx, _op_rmw
from repro.plan.recorder import NUM_ROWS

__all__ = ["GangMember", "GangReplay"]


class GangMember:
    """One device's contribution to a gang: its trace and its tally."""

    __slots__ = ("trace", "label", "charges", "ejected", "eject_reason")

    def __init__(self, trace, label: str = "?") -> None:
        self.trace = trace
        self.label = label
        #: Buffered microop charges, keyed like MicroopStats.counts.
        self.charges: Counter = Counter()
        self.ejected = False
        self.eject_reason: Optional[str] = None


class _GangCtx:
    """The :class:`~repro.plan.plan._Ctx` shape over the stacked backend.

    ``chain`` is ``None``: the only lowered kernel that touches it
    (``_op_rmw``) is intercepted and driven straight at the backend with
    per-member charge accounting.
    """

    __slots__ = _Ctx.__slots__

    def __init__(self, backend, active_u8, env) -> None:
        self.bits = backend.bits
        self.tags = backend.tags
        self.env = env
        self.active_u8 = active_u8
        self.active_inv = active_u8 ^ 1
        self.chain = None
        self.C = backend.num_cols


class GangReplay:
    """Replay K structurally-identical traces on one stacked backend.

    Args:
        config: the members' shared :class:`~repro.engine.system.CAPEConfig`
            design point (same chains, columns, and element width — the
            runner groups by shape before building a gang).
        members: :class:`GangMember` per device, traces already verified
            to share a :func:`~repro.gang.defer.trace_signature`.

    After :meth:`replay`, each member carries its buffered ``charges``
    and, on divergence, ``ejected``/``eject_reason``.
    """

    #: Test seam: when set (class or instance attribute), called as
    #: ``chaos_hook(replay, index, kind)`` before each trace entry is
    #: replayed — chaos tests use it to flip a tag or bitcell of one
    #: member mid-gang and assert the ejection path. ``None`` in
    #: production.
    chaos_hook = None

    def __init__(self, config, members: List[GangMember]) -> None:
        if not members:
            raise ConfigError("a gang needs at least one member")
        lengths = {len(m.trace) for m in members}
        if len(lengths) != 1:
            raise ConfigError(
                f"gang members disagree on trace length: {sorted(lengths)}"
            )
        self.config = config
        self.members = members
        self.K = len(members)
        self.C = config.max_vl
        self.S = config.element_bits
        self.num_chains = config.num_chains
        self.cols_per_chain = config.cols_per_chain
        #: The stacked mirror: K contiguous device-sized column blocks.
        self.backend = BitplaneBackend(self.S, NUM_ROWS, self.K * self.C)
        self._tree = ReductionTree(self.num_chains)
        self._full_mask = (np.int64(1) << self.S) - np.int64(1)
        self._active_key: Optional[Tuple] = None
        self._active_u8: Optional[np.ndarray] = None
        #: (vd, value_mask, windows) of the op awaiting its sync check.
        self._pending = None

    def member_slice(self, k: int) -> slice:
        """Column block of member ``k`` in the stacked backend."""
        return slice(k * self.C, (k + 1) * self.C)

    # -- active-window stacking ----------------------------------------

    def _active(self, windows: Tuple[Tuple[int, int], ...]) -> np.ndarray:
        """Gang-wide active mask from per-member ``(vl, vstart)``."""
        if windows == self._active_key:
            return self._active_u8
        active = np.zeros(self.K * self.C, dtype=np.uint8)
        for k, (vl, vstart) in enumerate(windows):
            active[k * self.C + vstart: k * self.C + vl] = 1
        self._active_key = windows
        self._active_u8 = active
        return active

    # -- ejection -------------------------------------------------------

    def _eject(self, k: int, reason: str) -> None:
        member = self.members[k]
        if not member.ejected:
            member.ejected = True
            member.eject_reason = reason

    # -- replay ---------------------------------------------------------

    def replay(self) -> None:
        """Walk the stacked trace; see the class docstring for effects."""
        members = self.members
        length = len(members[0].trace)
        # Plain-function lookup: a hook assigned on the class must not
        # bind as a method (it is called with the replay passed
        # explicitly), so bypass the descriptor protocol.
        hook = self.__dict__.get("chaos_hook", type(self).__dict__.get("chaos_hook"))
        for index in range(length):
            if hook is not None:
                hook(self, index, members[0].trace[index][0])
            rows = [m.trace[index] for m in members]
            kind = rows[0][0]
            if kind == "op":
                self._replay_op(rows)
            elif kind == "sync":
                self._replay_sync(rows)
            elif kind == "redsum":
                self._replay_redsum(rows)
            else:
                self._replay_popcount(rows)
        self._pending = None

    def _replay_op(self, rows) -> None:
        _, key, plan, _vl, _vstart = rows[0]
        windows = tuple((entry[3], entry[4]) for entry in rows)
        active = self._active(windows)
        ctx = _GangCtx(self.backend, active, [None] * plan._num_tokens)
        for fn, payload in plan._lowered:
            if fn is _op_rmw:
                self._gang_rmw(payload, ctx, windows)
            else:
                fn(payload, ctx)
        if plan.charges:
            for member in self.members:
                if not member.ejected:
                    member.charges.update(plan.charges)
        mnemonic, width = key[1], key[2]
        value_mask = (
            np.int64(1) if mnemonic in MASK_RESULTS
            else (np.int64(1) << width) - np.int64(1)
        )
        self._pending = (key[4], value_mask, windows)

    def _gang_rmw(self, payload, ctx, windows) -> None:
        vd, vs1, fn, width = payload
        width = self.S if width is None else width
        mask = (1 << width) - 1
        self.backend.map_register(vd, vs1, fn, mask, active=ctx.active_u8)
        for k, (vl, vstart) in enumerate(windows):
            n = vl - vstart
            member = self.members[k]
            if n and not member.ejected:
                member.charges[(Microop.READ, True)] += n
                member.charges[(Microop.WRITE, True)] += n

    def _replay_sync(self, rows) -> None:
        vreg = rows[0][1]
        stacked = np.concatenate([entry[2] for entry in rows])
        pending = self._pending
        if pending is not None and pending[0] == vreg:
            self._check_destination(vreg, stacked, pending[1], pending[2])
            self._pending = None
        self.backend.set_register_planes(vreg, ints_to_bits(stacked, self.S))

    def _check_destination(self, vd, want, value_mask, windows) -> None:
        """The batched form of ``CAPESystem._bitexec_matches``."""
        got = bits_to_ints(self.backend.bits[:, vd, :])
        allow = np.full(self.K * self.C, self._full_mask, dtype=np.int64)
        for k, (vl, vstart) in enumerate(windows):
            allow[k * self.C + vstart: k * self.C + vl] = value_mask
        bad = (got & allow) != (want & allow)
        if not bad.any():
            return
        for k in range(self.K):
            if not self.members[k].ejected and bad[self.member_slice(k)].any():
                self._eject(k, f"op divergence on v{vd}")

    def _replay_redsum(self, rows) -> None:
        _, vs1, width, _vl, _vstart, _exp = rows[0]
        windows = tuple((entry[3], entry[4]) for entry in rows)
        active = self._active(windows).astype(bool)
        partials = np.zeros((self.K, self.num_chains), dtype=np.int64)
        for bit in reversed(range(width)):
            tags = self.backend.search(bit, {vs1: 1})
            hits = (tags.astype(bool) & active).reshape(
                self.K, self.cols_per_chain, self.num_chains
            )
            partials = (partials << 1) + hits.sum(axis=1)
        for k, entry in enumerate(rows):
            member = self.members[k]
            if member.ejected:
                continue
            total = self._tree.reduce([int(p) for p in partials[k]])
            if total != entry[5]:
                self._eject(k, "redsum divergence")
                continue
            member.charges[(Microop.SEARCH, True)] += width
            member.charges[(Microop.REDUCE, True)] += width

    def _replay_popcount(self, rows) -> None:
        vm = rows[0][1]
        windows = tuple((entry[2], entry[3]) for entry in rows)
        active = self._active(windows)
        tags = self.backend.search(0, {vm: 1})
        masked = tags & active
        for k, entry in enumerate(rows):
            member = self.members[k]
            if member.ejected:
                continue
            if int(masked[self.member_slice(k)].sum()) != entry[4]:
                self._eject(k, "popcount divergence")
