"""Gang execution: one CompiledPlan replayed across N stacked devices.

SIMD over *devices*: same-shape devices running structurally identical
jobs stack their bit-plane mirrors into one wide
:class:`~repro.csb.bitplane.BitplaneBackend` and replay each compiled
plan once with a single batched numpy op per step — amortising the
per-dispatch Python overhead that threads (BENCH_5) and processes
(BENCH_6) could not, so it wins even on one CPU. Results, cycles,
energy, and microop totals stay bit-identical to sequential execution;
a member that diverges mid-gang is ejected onto the sequential path
(where the fault-healing ladder applies) without touching its peers.

See :mod:`repro.gang.runner` for the orchestration contract,
:mod:`repro.gang.defer` for phase-1 trace capture, and
:mod:`repro.gang.replay` for the stacked replay; docs/GANG.md covers
eligibility, fallback, and fault-ejection semantics.
"""

from repro.gang.defer import DeferredBitEngine, trace_signature
from repro.gang.replay import GangMember, GangReplay
from repro.gang.runner import (
    GANG_MODES,
    GangOutcome,
    ineligible_reason,
    resolve_gang_mode,
    run_ganged,
)

__all__ = [
    "DeferredBitEngine",
    "GANG_MODES",
    "GangMember",
    "GangOutcome",
    "GangReplay",
    "ineligible_reason",
    "resolve_gang_mode",
    "run_ganged",
    "trace_signature",
]
