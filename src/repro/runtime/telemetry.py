"""Deprecated import path — telemetry moved behind the facade.

``repro.runtime.telemetry`` is kept as a shim: the implementation now
lives in :mod:`repro.runtime._telemetry` and the public classes are
re-exported from :mod:`repro.runtime` and :mod:`repro.api`. Import from
there instead; this module will be removed in a future release.
"""

import warnings

from repro.runtime._telemetry import (  # noqa: F401
    DeviceRecord,
    JobRecord,
    Telemetry,
    TelemetryReport,
)

warnings.warn(
    "repro.runtime.telemetry is deprecated; import Telemetry/"
    "TelemetryReport from repro.runtime (or repro.api)",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["DeviceRecord", "JobRecord", "Telemetry", "TelemetryReport"]
