"""Device pool: shard a job stream across N CAPE systems.

The pool turns the single-shot simulator into a servable engine: a
stream of jobs is placed across a heterogeneous set of
:class:`~repro.engine.system.CAPESystem` devices (mixing CAPE32k and
CAPE131k presets), each with its own queue, and a simulated clock
interleaves the device timelines deterministically.

Placement is *capacity-aware best-fit*: a job goes to the
smallest-capacity device whose CSB holds its resident footprint — big
devices stay free for the jobs that actually need their lanes — with
queue length breaking ties. Jobs too large for every device are either
spill-served on the largest device (segmented jobs, through
:mod:`repro.runtime.context`) or refused with the structured
:class:`~repro.common.errors.CSBCapacityError`.

Idle devices steal queued work from the most-loaded peer (from the tail
of its queue, classic work-stealing order), so one hot queue cannot
leave the rest of the pool dark.

The pool is also *self-healing*: each device carries a
:class:`~repro.runtime.health.DeviceHealth` ledger. A failed job is
retried on another device (bounded attempts, exponential backoff in
device cycles); a device that fails ``failure_threshold`` jobs in a row
is quarantined for a time-boxed backoff and then re-admitted on
probation with a small probe job; a device whose fault injector reports
whole-device death is retired permanently and its queue re-placed. When
every path is exhausted — the event budget runs out or every serviceable
device is quarantined/dead with work still queued — :meth:`DevicePool.run`
raises :class:`~repro.common.errors.PoolStalledError` naming the stuck
jobs instead of silently returning.
"""

from __future__ import annotations

import os
import threading
import warnings
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Deque, Iterable, List, Optional, Sequence, Tuple

from repro.common.errors import (
    ConfigError,
    CSBCapacityError,
    DeviceFailedError,
    PoolStalledError,
    RetryExhaustedError,
)
from repro.engine.system import CAPE32K, CAPE131K, CAPEConfig, CAPESystem
from repro.faults.injector import FaultInjector
from repro.gang import resolve_gang_mode, run_ganged
from repro.memory.mainmem import WordMemory
from repro.obs.observer import NULL_OBSERVER
from repro.plan import resolve_plan_cache
from repro.plan.superplan import resolve_superplan_mode

from repro.runtime.clock import SimClock
from repro.runtime.execconfig import ExecConfig, resolve_exec
from repro.runtime.health import DeviceHealth, HealthState
from repro.runtime.job import Job, JobState
from repro.runtime.scheduler import Scheduler
from repro.runtime._telemetry import DeviceRecord, Telemetry, TelemetryReport

#: Default pool shape: two small shards + one large for capacity-hungry
#: jobs, mirroring the paper's two design points.
DEFAULT_POOL = (CAPE32K, CAPE32K, CAPE131K)


class ThreadParallelismWarning(RuntimeWarning):
    """Thread parallelism was requested where threads cannot help."""


#: One warning per process — the pool may be constructed hundreds of
#: times in a sweep and the advice doesn't change.
_thread_parallelism_warned = False


def _warn_thread_parallelism(parallelism: int) -> None:
    """Warn (once) that worker *threads* cannot beat sequential here.

    BENCH_5 measured ``DevicePool(parallelism=4)`` at **0.85x**
    sequential on a single-CPU host: the interpreter lock plus
    numpy-bound workers leave nothing for extra threads to run, so the
    batching overhead is pure loss. Process sharding (``repro.serve``)
    is the escape hatch. Multi-core hosts are left alone — numpy
    releases the GIL inside the fused bit-plane kernels, which is
    where thread parallelism genuinely pays.
    """
    global _thread_parallelism_warned
    if _thread_parallelism_warned or (os.cpu_count() or 1) > 1:
        return
    _thread_parallelism_warned = True
    warnings.warn(
        f"DevicePool(parallelism={parallelism}) uses worker *threads*, "
        f"which cannot help on this {os.cpu_count() or 1}-CPU host "
        f"(BENCH_5 measured 0.85x vs sequential: GIL + numpy-bound "
        f"workers). Use the process-sharded serving tier instead — "
        f"repro.serve.ServePool / repro.api.serve (docs/SERVING.md).",
        ThreadParallelismWarning,
        stacklevel=3,
    )


class Device:
    """One pool shard: a CAPE system plus its queue and timeline."""

    def __init__(self, device_id: int, system: CAPESystem) -> None:
        self.device_id = device_id
        self.system = system
        self.queue: Deque[Job] = deque()
        self.current: Optional[Job] = None
        self.busy_until = 0.0
        self.busy_cycles = 0.0
        self.jobs_run = 0
        self.lane_occupancies: List[float] = []
        self.health = DeviceHealth()
        self.injector: Optional[FaultInjector] = None
        #: Superplan affinity keys (job kernel names) this device has
        #: been placed for — a proxy for "its plan cache is warm here".
        self.affinity_keys: set = set()
        #: Serialises job execution on this device's system — the
        #: parallel driver runs *different* devices concurrently, never
        #: one device's jobs, so the injector/health ledger and the
        #: device's CSB state see a single writer at a time.
        self.lock = threading.Lock()

    @property
    def config(self) -> CAPEConfig:
        return self.system.config

    @property
    def name(self) -> str:
        return f"{self.config.name}#{self.device_id}"

    @property
    def load(self) -> int:
        """Queued plus running jobs — the placement tie-breaker."""
        return len(self.queue) + (1 if self.current is not None else 0)

    def __repr__(self) -> str:
        return f"Device({self.name}, load={self.load})"


class DevicePool:
    """A multi-tenant CAPE runtime over a pool of devices.

    Typical use::

        pool = DevicePool(policy="sjf")
        for job in jobs:
            pool.submit(job)
        report = pool.run()
        print(report.job_table())

    Args:
        configs: design points, one device per entry (mixed presets
            welcome).
        policy: queue-ordering policy name or instance (see
            :mod:`repro.runtime.scheduler`).
        work_stealing: let idle devices pull from loaded peers.
        memory_bytes: per-device functional memory size (defaults to
            each system's 64 MiB store).
        accounting: instruction accounting mode passed to every device.
        backend: execution backend selected on every device
            (``"reference"`` or ``"bitplane"``); ``None`` keeps the
            fast functional-only path. Individual jobs may still
            override it via ``Job(backend=...)``.
        observer: optional :class:`repro.obs.Observer`. Each device's
            system publishes under a ``device=<name>`` label, and the
            pool itself records scheduling events (arrivals, job spans
            per device lane, steals) on the simulated-cycle timeline.
        fault_plan: optional :class:`repro.faults.FaultPlan`; each device
            gets a :class:`repro.faults.FaultInjector` over its slice of
            the plan (``plan.for_device(i)``), and the self-healing
            machinery below keeps the stream running through the
            injected failures. ``None`` leaves every injection hook as a
            single ``None`` check.
        max_retries: failed-job re-executions allowed after the first
            attempt before the job is declared FAILED with
            :class:`~repro.common.errors.RetryExhaustedError`.
        failure_threshold: consecutive failures that quarantine a device.
        quarantine_cycles: first quarantine's length in device cycles
            (doubles on each re-quarantine).
        retry_backoff_cycles: base delay before a failed job is
            re-queued (doubles per attempt).
        parallelism: worker threads executing *independent devices'*
            jobs concurrently (numpy releases the GIL inside the fused
            bit-plane kernels). ``1`` (default) keeps the fully
            sequential event loop. Simulated-clock order, placement, and
            per-device job sequences are identical either way — see
            ``docs/PERFORMANCE.md`` for the exact contract.
        plan_cache: microcode plan-cache knob passed to every device's
            system. ``True`` (default) shares the process-wide cache
            across all devices — the second device to dispatch an
            intrinsic reuses the first one's compiled plan.
        gang: gang-execution mode (``True`` / ``False`` / ``"auto"``).
            When enabled, each launch batch is handed to
            :func:`repro.gang.run_ganged`: eligible bit-plane jobs with
            matching plan-key streams replay their mirrors as one
            stacked gang, ineligible or ejected jobs fall back to the
            per-device path. Results, cycles, energy, and microop
            totals are bit-identical either way — see ``docs/GANG.md``.
        superplan: whole-kernel superplan mode (``True`` / ``False`` /
            ``"auto"``) passed to every device's system: each job body
            runs inside a superplan scope, fusing eligible mirror
            microcode into one cached trace (docs/PERFORMANCE.md).
            Results, cycles, and microop totals are bit-identical either
            way.
        plan_affinity: break placement ties toward devices whose plan
            caches are warm for a job's kernel (spec-carrying jobs
            only). Tie-breaking only — with the default ``False``,
            placement is unchanged bit-for-bit; with it on, placement
            is still deterministic.
        exec: optional :class:`~repro.runtime.execconfig.ExecConfig`
            bundling ``plan_cache`` / ``parallelism`` / ``gang`` /
            ``superplan`` / ``plan_affinity``.
            Mutually exclusive with non-default values of those
            keywords (:class:`~repro.common.errors.ConfigError`).
    """

    def __init__(
        self,
        configs: Sequence[CAPEConfig] = DEFAULT_POOL,
        policy="fifo",
        work_stealing: bool = True,
        memory_bytes: Optional[int] = None,
        accounting: str = "paper",
        backend: Optional[str] = None,
        observer=None,
        fault_plan=None,
        max_retries: int = 3,
        failure_threshold: int = 3,
        quarantine_cycles: float = 50_000.0,
        retry_backoff_cycles: float = 1_000.0,
        parallelism: int = 1,
        plan_cache=True,
        gang=False,
        superplan=False,
        plan_affinity=False,
        exec: Optional[ExecConfig] = None,
    ) -> None:
        if not configs:
            raise ConfigError("a pool needs at least one device")
        knobs = resolve_exec(
            exec,
            plan_cache=(plan_cache, True),
            parallelism=(parallelism, 1),
            gang=(gang, False),
            superplan=(superplan, False),
            plan_affinity=(plan_affinity, False),
        )
        plan_cache = knobs["plan_cache"]
        parallelism = knobs["parallelism"]
        if parallelism < 1:
            raise ConfigError("parallelism must be at least 1")
        self.gang = resolve_gang_mode(knobs["gang"])
        self.superplan = resolve_superplan_mode(knobs["superplan"])
        #: Plan-affinity placement: prefer a warm device when breaking
        #: best-fit ties. Off by default — placement is bit-identical to
        #: the affinity-free pool unless explicitly enabled.
        self.plan_affinity = bool(knobs["plan_affinity"])
        #: Pool-side affinity ledger (placement decisions, not cache
        #: lookups) — the serving pool reads these because its parent
        #: process holds no plan cache to count into.
        self._affinity_hits = 0
        self._affinity_misses = 0
        self._plan_cache_resolved = resolve_plan_cache(plan_cache)
        self.clock = SimClock()
        self.scheduler = Scheduler(policy)
        self.telemetry = Telemetry()
        self.work_stealing = work_stealing
        self.observer = observer if observer is not None else NULL_OBSERVER
        self.fault_plan = fault_plan
        self.max_retries = max_retries
        self.retry_backoff_cycles = retry_backoff_cycles
        self.parallelism = parallelism
        if parallelism > 1:
            _warn_thread_parallelism(parallelism)
            if self.observer.enabled:
                # Workers get-or-create device-labelled series concurrently.
                self.observer.metrics.enable_thread_safety()
        #: Launch batch under construction (parallel run only): jobs
        #: started by the current timestamp's events, executed together
        #: once the timestamp is fully drained. ``None`` = inline mode.
        self._launching: Optional[List[Tuple[Device, Job]]] = None
        self.devices = []
        for i, config in enumerate(configs):
            system = CAPESystem(
                config,
                memory=(
                    WordMemory(memory_bytes)
                    if memory_bytes is not None
                    else None
                ),
                accounting=accounting,
                backend=backend,
                plan_cache=plan_cache,
                superplan=self.superplan,
            )
            device = Device(i, system)
            device.health = DeviceHealth(
                failure_threshold=failure_threshold,
                quarantine_cycles=quarantine_cycles,
            )
            system.attach_observer(
                self.observer.labelled(device=device.name)
            )
            if fault_plan is not None:
                device.injector = FaultInjector(fault_plan.for_device(i))
                system.attach_fault_injector(device.injector)
            self.devices.append(device)
        self._submitted: List[Job] = []
        #: Jobs with no accepting device right now; replayed on the next
        #: probationary re-admission.
        self._parked: List[Job] = []

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(self, job: Job, at_cycle: float = 0.0) -> Job:
        """Enqueue a job to arrive at ``at_cycle`` on the shared clock."""
        if job.state is not JobState.PENDING:
            raise ConfigError(f"{job!r} was already submitted")
        job.state = JobState.QUEUED
        self._submitted.append(job)
        self.clock.schedule_at(at_cycle, lambda j=job: self._arrive(j))
        return job

    def submit_stream(
        self, jobs: Iterable[Job], interarrival_cycles: float = 0.0
    ) -> List[Job]:
        """Submit jobs with a fixed interarrival spacing."""
        out = []
        for i, job in enumerate(jobs):
            out.append(self.submit(job, at_cycle=i * interarrival_cycles))
        return out

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def place(self, job: Job, exclude: Sequence[int] = ()) -> Device:
        """Choose the device a job queues on (capacity-aware best-fit).

        Only devices whose health ledger is *accepting* (healthy or on
        probation) are candidates; ``exclude`` softly steers a retried
        job away from the device that just failed it, unless no other
        accepting device exists. Raises
        :class:`~repro.common.errors.DeviceFailedError` when every
        device is quarantined or dead.
        """
        live = [d for d in self.devices if d.health.accepting]
        if not live:
            raise DeviceFailedError(
                f"no accepting device for job {job.name!r}: "
                f"every device is quarantined or dead"
            )
        candidates = [d for d in live if d.device_id not in exclude] or live
        fitting = [d for d in candidates if job.footprint.fits(d.config)]
        if fitting:
            akey = self._affinity_key(job) if self.plan_affinity else None
            if akey is not None:
                # Same best-fit ordering, with cache warmth inserted as
                # a tie-breaker between capacity and load: among equal
                # capacities, a device already placed for this kernel
                # replays superplans straight out of its warm cache.
                chosen = min(
                    fitting,
                    key=lambda d: (
                        d.config.max_vl,
                        0 if akey in d.affinity_keys else 1,
                        d.load,
                        d.device_id,
                    ),
                )
                self._note_affinity(akey in chosen.affinity_keys)
                self._mark_affinity(chosen, akey)
                return chosen
            return min(
                fitting,
                key=lambda d: (d.config.max_vl, d.load, d.device_id),
            )
        if job.spillable:
            # Serve on the largest device: fewest segments, least spill
            # traffic per pass.
            return min(
                candidates,
                key=lambda d: (-d.config.max_vl, d.load, d.device_id),
            )
        best = max(d.config.max_vl for d in self.devices)
        raise CSBCapacityError(
            f"job {job.name!r} needs {job.footprint.lanes} resident lanes; "
            f"largest device offers {best} and the job is not spill-servable",
            requested_lanes=job.footprint.lanes,
            available_lanes=best,
            cols_per_chain=self.devices[0].config.cols_per_chain,
            requested_registers=job.footprint.vregs,
            available_registers=CAPESystem.NUM_VREGS,
        )

    @staticmethod
    def _affinity_key(job: Job):
        """A job's superplan-affinity key, or ``None``.

        Spec-carrying jobs use their kernel name — jobs of one kernel
        replay the same superplan sequence, so a device that already ran
        the kernel holds its fused plans warm. Ad-hoc callable jobs have
        no stable identity and never steer placement.
        """
        spec = getattr(job, "spec", None)
        return getattr(spec, "kernel", None)

    def _note_affinity(self, warm: bool) -> None:
        """Record one affinity placement decision (cache + observer)."""
        if warm:
            self._affinity_hits += 1
        else:
            self._affinity_misses += 1
        cache = self._plan_cache_resolved
        if cache is not None:
            cache.note_affinity(warm)
        if self.observer.enabled:
            self.observer.counter(
                "plan.affinity.placements",
                outcome="warm" if warm else "cold",
            ).inc()

    def _mark_affinity(self, device: Device, akey) -> None:
        """Mark a placement's warm scope — this one device here; the
        serving pool widens it to every device of the owning worker
        (their plan cache is per process, not per device)."""
        device.affinity_keys.add(akey)

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------

    def _arrive(self, job: Job) -> None:
        job.submit_cycle = self.clock.now
        device = self._enqueue(job)
        if self.observer.enabled:
            self.observer.counter("runtime.jobs", event="arrived").inc()
            if device is not None:
                self.observer.instant(
                    f"arrive:{job.name}", "runtime", ts=self.clock.now,
                    tid=device.name, lanes=job.footprint.lanes,
                )

    def _enqueue(self, job: Job, exclude: Sequence[int] = ()) -> Optional[Device]:
        """Place and queue a job; park it when no device is accepting."""
        try:
            device = self.place(job, exclude=exclude)
        except DeviceFailedError:
            self._parked.append(job)
            if self.observer.enabled:
                self.observer.instant(
                    f"park:{job.name}", "runtime",
                    ts=self.clock.now, tid="pool",
                )
            return None
        self.scheduler.admit(job, device.config)  # raises if unservable
        device.queue.append(job)
        self.telemetry.sample_queue(
            device.device_id, self.clock.now, len(device.queue)
        )
        obs = self.observer
        if obs.enabled:
            obs.histogram("runtime.queue_depth", device=device.name).observe(
                len(device.queue)
            )
        self._dispatch(device)
        if self.work_stealing and device.current is not None:
            # The placed device is busy: let an idle peer steal the work
            # rather than leaving it dark until its next completion.
            for peer in self.devices:
                if peer.current is None and not peer.queue:
                    self._dispatch(peer)
        return device

    def _dispatch(self, device: Device) -> None:
        if device.current is not None or not device.health.accepting:
            return
        if device.health.state is HealthState.PROBATION:
            # Risk the cheapest queued job on silicon fresh out of
            # quarantine, whatever the configured ordering policy.
            job = self.scheduler.pick_probe(device.queue, device.config)
        else:
            job = self.scheduler.pick(device.queue, device.config)
        if job is None and self.work_stealing:
            job = self._steal(device)
        if job is None:
            return
        self._start(device, job)

    def _start(self, device: Device, job: Job) -> None:
        job.epoch += 1
        job.state = JobState.RUNNING
        job.start_cycle = self.clock.now
        job.device_id = device.device_id
        device.current = job
        if self._launching is not None:
            # Parallel run: defer execution until the current timestamp
            # is fully drained, then run the batch across devices. The
            # bookkeeping above already marks the device busy, so later
            # events in this timestamp place work exactly as the
            # sequential loop would.
            self._launching.append((device, job))
            return
        self._run_job(device, job)
        self._finish_start(device, job)

    def _run_job(self, device: Device, job: Job) -> None:
        """Execute a started job on its device (worker-thread safe).

        The job executes functionally *now*; its cycle cost stretches
        over simulated time, so completion lands at now + service. Only
        this method runs off the main thread, and only under the
        device's lock — everything it touches (the system, its CSB, the
        injector, the device-labelled observer series) belongs to this
        one device.
        """
        with device.lock:
            device.system.reset()
            job.result = job.execute(device.system)

    def _finish_start(self, device: Device, job: Job) -> None:
        """Main-thread bookkeeping after a started job has executed."""
        result = job.result
        device.lane_occupancies.append(
            min(job.footprint.lanes, device.config.max_vl)
            / device.config.max_vl
        )
        finish = self.clock.now + result.service_cycles
        device.busy_until = finish
        device.busy_cycles += result.service_cycles
        obs = self.observer
        if obs.enabled:
            obs.complete(
                f"job:{job.name}", "runtime",
                ts=job.start_cycle, dur=result.service_cycles,
                tid=device.name, lanes=job.footprint.lanes,
                stolen=job.stolen,
            )
        self.clock.schedule_at(
            finish,
            lambda d=device, j=job, e=job.epoch: self._complete(d, j, e),
        )

    def _complete(
        self, device: Device, job: Job, epoch: Optional[int] = None
    ) -> None:
        if device.current is not job or (
            epoch is not None and job.epoch != epoch
        ):
            # A superseded dispatch (the job was re-placed, or the
            # device was retired mid-flight): drop the stale event.
            return
        job.finish_cycle = self.clock.now
        device.current = None
        device.jobs_run += 1
        ok = job.result is not None and job.result.validated
        if ok:
            job.state = JobState.DONE
            device.health.record_success()
            if self.observer.enabled:
                self.observer.counter("runtime.jobs", event="done").inc()
            self.telemetry.record_complete(job, device.name)
        else:
            self._handle_failure(device, job)
        self.telemetry.sample_queue(
            device.device_id, self.clock.now, len(device.queue)
        )
        self._dispatch(device)

    # ------------------------------------------------------------------
    # Self-healing
    # ------------------------------------------------------------------

    def _device_dead(self, device: Device) -> bool:
        """Did this device's substrate report whole-device death?

        The in-process pool asks the device's fault injector; the
        process-sharded serving pool overrides this with the death
        ledger it maintains from worker replies and process exits.
        """
        return device.injector is not None and device.injector.dead

    def _handle_failure(self, device: Device, job: Job) -> None:
        """Walk the recovery ladder for one failed execution."""
        if self.observer.enabled:
            self.observer.counter("runtime.jobs", event="failed").inc()
        if self._device_dead(device):
            self._kill_device(device)
        elif device.health.record_failure(self.clock.now):
            self._on_quarantine(device)
        self._retry_or_fail(device, job)

    def _kill_device(self, device: Device) -> None:
        """Retire a device whose injector reported whole-device death."""
        if not device.health.alive:
            return
        device.health.kill()
        self.telemetry.record_device_death()
        if self.observer.enabled:
            self.observer.counter("runtime.device_deaths").inc()
            self.observer.instant(
                f"device-dead:{device.name}", "runtime",
                ts=self.clock.now, tid=device.name,
            )
        self._drain(device)

    def _on_quarantine(self, device: Device) -> None:
        """Bench a device and schedule its probationary re-admission."""
        self.telemetry.record_quarantine()
        if self.observer.enabled:
            self.observer.counter("runtime.quarantined").inc()
            self.observer.instant(
                f"quarantine:{device.name}", "runtime",
                ts=self.clock.now, tid=device.name,
                until=device.health.quarantined_until,
            )
        self._drain(device)
        self.clock.schedule_at(
            device.health.quarantined_until,
            lambda d=device: self._readmit(d),
        )

    def _drain(self, device: Device) -> None:
        """Re-place a benched device's queue onto its peers."""
        while device.queue:
            job = device.queue.popleft()
            self._enqueue(job, exclude=(device.device_id,))

    def _readmit(self, device: Device) -> None:
        """A quarantine lapsed: move to probation and replay parked work."""
        if not device.health.readmit(self.clock.now):
            return
        if self.observer.enabled:
            self.observer.instant(
                f"probation:{device.name}", "runtime",
                ts=self.clock.now, tid=device.name,
            )
        parked, self._parked = self._parked, []
        for job in parked:
            self._enqueue(job)
        self._dispatch(device)

    def _retry_or_fail(self, device: Device, job: Job) -> None:
        """Bounded retry with exponential backoff, away from ``device``."""
        job.attempts += 1
        if job.attempts <= self.max_retries:
            job.state = JobState.QUEUED
            self.telemetry.record_retry()
            if self.observer.enabled:
                self.observer.counter("runtime.retries").inc()
                self.observer.instant(
                    f"retry:{job.name}", "runtime",
                    ts=self.clock.now, tid=device.name,
                    attempt=job.attempts,
                )
            delay = self.retry_backoff_cycles * (2 ** (job.attempts - 1))
            self.clock.schedule_at(
                self.clock.now + delay,
                lambda j=job, e=(device.device_id,): self._enqueue(j, e),
            )
            return
        job.state = JobState.FAILED
        last = job.result.error if job.result else None
        err = RetryExhaustedError(
            f"job {job.name!r} failed {job.attempts} attempts "
            f"(last error: {last or 'validation failed'})"
        )
        if job.result is not None:
            job.result.error = f"RetryExhaustedError: {err}"
        self.telemetry.record_complete(job, device.name)

    def _steal(self, thief: Device) -> Optional[Job]:
        """Pull one job from the tail of the most-loaded peer's queue."""
        victims = sorted(
            (d for d in self.devices if d is not thief and d.queue),
            key=lambda d: (-len(d.queue), d.device_id),
        )
        for victim in victims:
            # Tail-first: steal the work the victim would reach last.
            for index in range(len(victim.queue) - 1, -1, -1):
                job = victim.queue[index]
                if job.footprint.fits(thief.config) or job.spillable:
                    del victim.queue[index]
                    job.stolen = True
                    obs = self.observer
                    if obs.enabled:
                        obs.counter("runtime.steals").inc()
                        obs.instant(
                            f"steal:{job.name}", "runtime",
                            ts=self.clock.now, tid=thief.name,
                            victim=victim.name,
                        )
                    self.telemetry.record_steal()
                    self.telemetry.sample_queue(
                        victim.device_id, self.clock.now, len(victim.queue)
                    )
                    return job
        return None

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def run(self, max_events: int = 1_000_000) -> TelemetryReport:
        """Drain the event loop and fold telemetry into a report.

        Raises :class:`~repro.common.errors.PoolStalledError` naming the
        stuck jobs when the event budget is exhausted with events still
        pending, or when the loop drains with work still queued (every
        serviceable device quarantined or dead, parked jobs included) —
        never a silent partial return.
        """
        if self.parallelism > 1 or self.gang is not False:
            # Gang execution needs the batched driver too: the launchpad
            # is what turns a timestamp's starts into a gangable batch.
            return self._run_parallel(max_events)
        events = 0
        while self.clock.tick():
            events += 1
            if events >= max_events and len(self.clock) > 0:
                raise PoolStalledError(
                    f"event budget of {max_events:,} exhausted with "
                    f"{len(self.clock)} events pending",
                    [j.name for j in self._stuck_jobs()],
                )
        stuck = self._stuck_jobs()
        if stuck:
            raise PoolStalledError(
                "every serviceable device is quarantined or dead",
                [j.name for j in stuck],
            )
        return self.report()

    @contextmanager
    def _execution_tier(self):
        """Yield a ``execute(batch)`` callable for the batched driver.

        The base tier is a bounded :class:`ThreadPoolExecutor`:
        independent devices' jobs execute on worker threads under their
        device locks (numpy releases the GIL inside the fused bit-plane
        kernels). ``repro.serve.ServePool`` overrides this with a
        process-sharded tier that ships each job to the worker process
        owning its device — everything else about the event loop is
        shared.
        """
        obs = self.observer
        with ThreadPoolExecutor(
            max_workers=self.parallelism, thread_name_prefix="cape-pool"
        ) as executor:
            if obs.enabled:
                obs.metrics.gauge("pool.parallel.workers").set(self.parallelism)

            def execute(batch) -> None:
                if self.gang is not False:
                    # Gang path: the whole batch runs on the main thread
                    # — one stacked replay per eligible group, the
                    # sequential fallback (ineligible or ejected jobs)
                    # via the same locked per-device runner.
                    run_ganged(
                        [(device.system, job) for device, job in batch],
                        mode=self.gang,
                        observer=self.observer,
                        run_job=lambda i: self._run_job(*batch[i]),
                    )
                    return
                if len(batch) == 1:
                    self._run_job(*batch[0])
                    return
                futures = [
                    executor.submit(self._run_job, device, job)
                    for device, job in batch
                ]
                for future in futures:
                    future.result()

            yield execute

    def _run_parallel(self, max_events: int) -> TelemetryReport:
        """Batched event loop: independent devices execute concurrently.

        All events sharing the earliest simulated timestamp fire on the
        main thread in the same deterministic (time, seq) order as the
        sequential loop; job *starts* within that timestamp only record
        bookkeeping and land on a launchpad. The batch of started jobs
        then executes across the execution tier — at most one job per
        device (``device.current`` blocks a second dispatch) — and
        post-run bookkeeping replays on the main thread in launchpad
        order. Placement decisions therefore match the sequential loop
        exactly; the tier (worker threads here, worker processes in
        ``repro.serve``) only supplies host concurrency.
        """
        obs = self.observer
        events = 0
        with self._execution_tier() as execute:
            while True:
                t = self.clock.next_time
                if t is None:
                    break
                self._launching = []
                # Callbacks may schedule more events at this same
                # timestamp (e.g. a completion freeing a device that
                # immediately dispatches) — keep draining until the
                # earliest pending time moves forward.
                while self.clock.next_time == t:
                    self.clock.tick()
                    events += 1
                batch, self._launching = self._launching, None
                if batch:
                    execute(batch)
                    for device, job in batch:
                        self._finish_start(device, job)
                    if obs.enabled:
                        obs.metrics.counter("pool.parallel.batches").inc()
                        obs.metrics.counter("pool.parallel.jobs").inc(len(batch))
                        obs.metrics.histogram("pool.parallel.batch_width").observe(
                            len(batch)
                        )
                if events >= max_events and len(self.clock) > 0:
                    raise PoolStalledError(
                        f"event budget of {max_events:,} exhausted with "
                        f"{len(self.clock)} events pending",
                        [j.name for j in self._stuck_jobs()],
                    )
        stuck = self._stuck_jobs()
        if stuck:
            raise PoolStalledError(
                "every serviceable device is quarantined or dead",
                [j.name for j in stuck],
            )
        return self.report()

    def _stuck_jobs(self) -> List[Job]:
        """Submitted jobs still queued/running (parked jobs are QUEUED)."""
        return [
            j for j in self._submitted
            if j.state in (JobState.QUEUED, JobState.RUNNING)
        ]

    @property
    def makespan_cycles(self) -> float:
        """Pool completion time: the max over the device timelines."""
        return max((d.busy_until for d in self.devices), default=0.0)

    def report(self) -> TelemetryReport:
        frequency = self.devices[0].system.circuit.frequency_hz
        records = [
            DeviceRecord(
                device_id=d.device_id,
                name=d.config.name,
                max_vl=d.config.max_vl,
                jobs_run=d.jobs_run,
                busy_cycles=d.busy_cycles,
                lane_occupancies=list(d.lane_occupancies),
            )
            for d in self.devices
        ]
        return self.telemetry.report(records, self.makespan_cycles, frequency)
