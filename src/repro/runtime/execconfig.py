"""One execution-shape knob for every submission surface.

Before this module, execution shape was spread across per-surface
keyword arguments: ``DevicePool(parallelism=..., plan_cache=...)``,
``ServePool(workers=...)``, ``api.serve(config=ServeConfig(...))``.
:class:`ExecConfig` folds them — plus the gang-execution mode — into a
single frozen dataclass accepted everywhere jobs are submitted
(:func:`repro.api.submit`, :class:`~repro.runtime.pool.DevicePool`,
:class:`~repro.serve.pool.ServePool`,
:class:`~repro.serve.gateway.Gateway`).

Each surface consumes the members that apply to it (a thread-parallel
``DevicePool`` ignores ``workers``; a process-sharded ``ServePool``
ignores ``parallelism``) — the unused members are carried, not
rejected, so one ``ExecConfig`` can describe a workload as it moves
between tiers.

Precedence
----------

Legacy keyword arguments remain for compatibility, with one rule:

* ``exec=None`` (default): the legacy keywords apply, with each
  surface's historical defaults (``DevicePool`` keeps ``gang=False``).
* ``exec=ExecConfig(...)``: the config wins outright. Passing a
  *non-default* legacy keyword alongside it raises
  :class:`~repro.common.errors.ConfigError` — silently preferring one
  over the other is how configuration bugs hide.

Note the deliberate default shift: ``ExecConfig().gang == "auto"``
(gang whenever at least two jobs are eligible), while the legacy
surfaces default to ``gang=False``. Opting into the new config is
opting into gang execution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.gang.runner import resolve_gang_mode
from repro.plan.superplan import resolve_superplan_mode

__all__ = ["ExecConfig", "resolve_exec"]


@dataclass(frozen=True)
class ExecConfig:
    """Execution shape for a submission surface.

    Args:
        plan_cache: microcode plan-cache knob (``True`` for the
            process-wide cache, ``False``/``None`` to compile per
            dispatch, or an explicit
            :class:`~repro.plan.PlanCache`).
        parallelism: worker threads for in-process pools
            (:class:`~repro.runtime.pool.DevicePool`).
        workers: worker processes for the process-sharded serving tier
            (:class:`~repro.serve.pool.ServePool`, the gateway).
        gang: gang-execution mode — ``True`` gangs every eligible job,
            ``"auto"`` gangs when at least two jobs in a batch are
            eligible, ``False`` disables stacked replay (docs/GANG.md).
        superplan: whole-kernel superplan mode — ``True``/``"auto"``
            fuse each job body's eligible mirror microcode into one
            cached trace, ``False`` replays per instruction
            (docs/PERFORMANCE.md). Same eligibility rules as gang
            (plain bit-plane backend, no faults, no microop trace);
            results, cycles, and microop totals are identical either
            way.
        plan_affinity: prefer devices/workers whose plan caches are
            already warm for a job's superplan keys when breaking
            placement ties. Tie-breaking only: with affinity off (the
            default) placement is unchanged bit-for-bit.
        wire: serving-tier data-plane mode — ``"auto"`` ships numpy
            payloads/results as shared-memory descriptors when the
            platform supports it, ``"shm"`` requires it, ``"pickle"``
            keeps everything inline (docs/SERVING.md). Results,
            placement, and telemetry are bit-identical in every mode.
        batch_window_s: the gateway's micro-batching window — how long
            an assignable request may wait for round-mates so one wire
            frame can carry the whole per-worker round. ``0`` (the
            default) dispatches each request in its own frame.
    """

    plan_cache: object = True
    parallelism: int = 1
    workers: int = 2
    gang: object = "auto"
    superplan: object = "auto"
    plan_affinity: bool = False
    wire: str = "auto"
    batch_window_s: float = 0.0

    def __post_init__(self) -> None:
        if self.parallelism < 1:
            raise ConfigError("parallelism must be at least 1")
        if self.workers < 1:
            raise ConfigError("workers must be at least 1")
        resolve_gang_mode(self.gang)
        resolve_superplan_mode(self.superplan)
        # Inline literal check: importing repro.serve.shm here would
        # cycle (serve -> runtime.pool -> execconfig).
        if self.wire not in ("auto", "shm", "pickle"):
            raise ConfigError(
                f"wire must be one of ('auto', 'shm', 'pickle'), "
                f"got {self.wire!r}"
            )
        if self.batch_window_s < 0:
            raise ConfigError("batch_window_s must be >= 0")


def resolve_exec(exec_config: ExecConfig | None, **legacy):
    """Merge an optional :class:`ExecConfig` with legacy keywords.

    ``legacy`` maps each knob name to a ``(value, default)`` pair as the
    calling surface received it. Returns ``{name: effective_value}``
    for exactly the requested knobs.

    Raises:
        ConfigError: ``exec_config`` was given together with a legacy
            keyword that differs from its surface default.
    """
    if exec_config is None:
        return {name: value for name, (value, _default) in legacy.items()}
    if not isinstance(exec_config, ExecConfig):
        raise ConfigError(
            f"exec must be an ExecConfig, got {type(exec_config).__name__}"
        )
    clash = sorted(
        name for name, (value, default) in legacy.items() if value != default
    )
    if clash:
        raise ConfigError(
            f"pass {', '.join(clash)} inside ExecConfig, not alongside it "
            f"(exec= was given, so the legacy keyword(s) would be ignored)"
        )
    return {name: getattr(exec_config, name) for name in legacy}
