"""Vector-context spill/restore through the VMU (the capacity valve).

The CSB register file is the scarce resource the runtime schedules
around (the Section VI-E capacity cliff): a job whose live vector state
does not fit a device's lanes must *time-share* the register file. This
module implements the save/restore half of that: snapshots of the
architectural vector state (selected registers' windows plus the
``vl``/``vstart``/SEW CSRs) spilled to a reserved slab of device memory
over the VMU's bulk path — so every spill and restore shows up in the
run's HBM cycles and energy, and scheduling decisions have a visible,
physical cost.

The CSR portion of a context is control-processor state and costs
nothing to stage; the register windows pay full HBM freight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Tuple

from repro.common.errors import CapacityError, ConfigError
from repro.engine.system import CAPESystem
from repro.memory.mainmem import WORD_BYTES

#: Default base of the spill slab: above the workload array slots
#: (``ARRAY_BASE + 3 * ARRAY_SPACING``) in the default 64 MiB store.
SPILL_BASE = 0x0340_0000


@dataclass(frozen=True)
class VectorContext:
    """One spilled context: where it lives and the CSRs to re-arm.

    Attributes:
        addr: slab address of the contiguous register block.
        regs: architectural register indices, in spill order.
        vl / vstart / sew: the CSR state at spill time.
        capacity_words: slab words reserved (for in-place re-spill).
    """

    addr: int
    regs: Tuple[int, ...]
    vl: int
    vstart: int
    sew: int
    capacity_words: int

    @property
    def words(self) -> int:
        return len(self.regs) * self.vl


@dataclass
class ContextStats:
    """Spill-path accounting, aggregated across a job or device."""

    spills: int = 0
    restores: int = 0
    bytes_spilled: int = 0
    bytes_restored: int = 0
    cycles: float = 0.0


class ContextManager:
    """Allocates spill slots in a device's memory and moves contexts.

    One manager per device execution; slots are keyed by any hashable
    (the runtime uses segment indices) and reused in place when the same
    key is re-spilled with a compatible shape.

    Args:
        system: the device whose state is being staged.
        base: first byte of the spill slab (word-aligned).
        limit: one past the last usable slab byte (defaults to the end
            of the device's memory).
        protect: append + verify XOR parity words on every context
            (one word per register). Defaults to on exactly when the
            system carries a fault injector with a live plan, so the
            fault-free path keeps its byte counts and the chaos path
            detects corrupted slabs instead of reloading garbage.
    """

    def __init__(
        self,
        system: CAPESystem,
        base: int = SPILL_BASE,
        limit: int = 0,
        protect: bool = None,
    ) -> None:
        if base % WORD_BYTES != 0:
            raise ConfigError("spill base must be word-aligned")
        self.system = system
        self.base = base
        self.limit = limit if limit > 0 else system.memory.size_bytes
        if not base < self.limit <= system.memory.size_bytes:
            raise ConfigError(
                f"spill slab [{base:#x}, {self.limit:#x}) outside device "
                f"memory of {system.memory.size_bytes:#x} bytes"
            )
        if protect is None:
            injector = getattr(system, "fault_injector", None)
            protect = injector is not None and injector.protect_slabs
        self.protect = bool(protect)
        self._next = base
        self._slots: Dict[Hashable, VectorContext] = {}
        self.stats = ContextStats()

    def __contains__(self, key: Hashable) -> bool:
        return key in self._slots

    def _allocate(self, key: Hashable, words: int) -> Tuple[int, int]:
        """Reuse the key's slot when it still fits, else carve a new one."""
        old = self._slots.get(key)
        if old is not None and words <= old.capacity_words:
            return old.addr, old.capacity_words
        addr = self._next
        end = addr + words * WORD_BYTES
        if end > self.limit:
            raise CapacityError(
                f"spill slab exhausted: need {words * WORD_BYTES} bytes at "
                f"{addr:#x}, slab ends at {self.limit:#x}"
            )
        self._next = end
        return addr, words

    def spill(self, key: Hashable, regs) -> VectorContext:
        """Save ``regs``' active windows + CSRs under ``key``.

        Charges the bulk HBM transfer to the device's stats and returns
        the recorded context.
        """
        regs = tuple(dict.fromkeys(int(r) for r in regs))  # dedupe, keep order
        if not regs:
            raise ConfigError("cannot spill an empty register set")
        system = self.system
        words = len(regs) * system.vl
        # Parity words live after the data rows inside the same slot.
        alloc_words = words + (len(regs) if self.protect else 0)
        addr, capacity = self._allocate(key, alloc_words)
        cycles = system.spill_vregs(regs, addr, protect=self.protect)
        ctx = VectorContext(
            addr=addr,
            regs=regs,
            vl=system.vl,
            vstart=system.vstart,
            sew=system.sew,
            capacity_words=capacity,
        )
        self._slots[key] = ctx
        self.stats.spills += 1
        self.stats.bytes_spilled += words * WORD_BYTES
        self.stats.cycles += cycles
        return ctx

    def restore(self, key: Hashable) -> VectorContext:
        """Re-arm the CSRs and reload the registers spilled under ``key``."""
        try:
            ctx = self._slots[key]
        except KeyError:
            raise ConfigError(f"no spilled context under key {key!r}") from None
        system = self.system
        if system.sew != ctx.sew:
            system.set_sew(ctx.sew)
        system.vl = ctx.vl
        system.vstart = ctx.vstart
        cycles = system.fill_vregs(ctx.regs, ctx.addr, protect=self.protect)
        self.stats.restores += 1
        self.stats.bytes_restored += ctx.words * WORD_BYTES
        self.stats.cycles += cycles
        return ctx
