"""Multi-tenant CAPE device runtime (serving layer).

Turns the single-shot simulator into a servable engine: jobs wrap any
CAPE kernel with a vector-register footprint, priority, and deadline; a
capacity-aware scheduler admits them against the CSB capacity cliff
(Section VI-E) or serves oversized footprints through context
spill/restore; and a device pool shards the stream across mixed
CAPE32k/CAPE131k systems under a deterministic simulated clock, with
per-job and per-device telemetry. The pool self-heals through injected
faults (:mod:`repro.faults`): bounded retries with exponential backoff,
per-device health ledgers with quarantine/probation, and permanent
retirement of dead devices — see :mod:`repro.runtime.health`.

See ``docs/RUNTIME.md`` for the job model, the scheduling policies, and
the spill-cost model.
"""

from repro.runtime.clock import SimClock
from repro.runtime.context import ContextManager, ContextStats, VectorContext
from repro.runtime.execconfig import ExecConfig
from repro.runtime.health import DeviceHealth, HealthState
from repro.runtime.job import (
    Footprint,
    Job,
    JobResult,
    JobState,
    SegmentedJob,
)
from repro.runtime.pool import (
    DEFAULT_POOL,
    Device,
    DevicePool,
    ThreadParallelismWarning,
)
from repro.runtime.scheduler import (
    POLICIES,
    BestFitPolicy,
    FIFOPolicy,
    Scheduler,
    SchedulingPolicy,
    ShortestJobFirstPolicy,
    make_policy,
)
from repro.runtime._telemetry import (
    DeviceRecord,
    JobRecord,
    Telemetry,
    TelemetryReport,
)

__all__ = [
    "BestFitPolicy",
    "ContextManager",
    "ContextStats",
    "DEFAULT_POOL",
    "Device",
    "DeviceHealth",
    "DevicePool",
    "DeviceRecord",
    "ExecConfig",
    "FIFOPolicy",
    "HealthState",
    "Footprint",
    "Job",
    "JobRecord",
    "JobResult",
    "JobState",
    "POLICIES",
    "Scheduler",
    "SchedulingPolicy",
    "SegmentedJob",
    "ShortestJobFirstPolicy",
    "SimClock",
    "Telemetry",
    "TelemetryReport",
    "ThreadParallelismWarning",
    "VectorContext",
    "make_policy",
]
