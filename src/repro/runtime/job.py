"""Job abstraction: schedulable units of CAPE work.

A :class:`Job` wraps anything that runs against a
:class:`~repro.engine.system.CAPESystem` — a ``repro.workloads`` kernel,
an assembled RISC-V program driven through the interpreter, or a plain
callable of intrinsics — together with the metadata the scheduler
places it by: its vector-register *footprint*, priority, deadline, and
a service-time estimate.

Footprints follow the paper's capacity model (Section VI-E): a job
either strip-mines over arbitrary vl windows (``resident=False``, runs
anywhere), requires its lanes simultaneously CSB-resident
(``resident=True``, only fits devices with enough chains), or — when
resident state exceeds every device — is *spill-served* as a
:class:`SegmentedJob`, time-sharing the register file through
:mod:`repro.runtime.context` at explicit HBM cost.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

import numpy as np

from repro.common.errors import ConfigError, CSBCapacityError, ReproError
from repro.engine.system import CAPEConfig, CAPESystem
from repro.runtime.context import ContextManager
from repro.workloads.base import Workload, WorkloadResult


@dataclass(frozen=True)
class Footprint:
    """A job's claim on the CSB register file.

    Attributes:
        lanes: vector elements of live state (columns across chains).
        vregs: architectural vector registers the job keeps live.
        resident: whether the lanes must be simultaneously resident
            (kmeans-style reuse) or the job strip-mines over any granted
            vl (streaming kernels).
    """

    lanes: int
    vregs: int = 8
    resident: bool = True

    def __post_init__(self) -> None:
        if self.lanes <= 0:
            raise ConfigError("footprint lanes must be positive")
        if not 0 < self.vregs <= CAPESystem.NUM_VREGS:
            raise ConfigError(
                f"footprint vregs must be in [1, {CAPESystem.NUM_VREGS}]"
            )

    def fits(self, config: CAPEConfig) -> bool:
        """Does this footprint fit the design point's CSB?"""
        if not self.resident:
            return True
        return self.lanes <= config.max_vl

    def check(self, config: CAPEConfig) -> None:
        """Raise a structured capacity error unless the footprint fits."""
        if not self.fits(config):
            raise CSBCapacityError(
                f"footprint of {self.lanes} resident lanes x {self.vregs} "
                f"registers exceeds {config.name}'s {config.max_vl} lanes",
                requested_lanes=self.lanes,
                available_lanes=config.max_vl,
                cols_per_chain=config.cols_per_chain,
                requested_registers=self.vregs,
                available_registers=CAPESystem.NUM_VREGS,
            )


class JobState(enum.Enum):
    """Lifecycle of a job inside the pool."""

    PENDING = "pending"
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass
class JobResult:
    """Outcome of one job execution on a device."""

    output: Any
    validated: bool
    service_cycles: float
    energy_j: float
    spills: int = 0
    restores: int = 0
    error: Optional[str] = None


class Job:
    """One schedulable unit of CAPE work.

    Args:
        name: label used in telemetry tables.
        body: callable taking the device's :class:`CAPESystem`; its
            return value becomes the job's output.
        footprint: register-file claim used for admission/placement.
        priority: higher runs earlier within a queue (default 0).
        deadline_cycles: optional turnaround target, in cycles from
            submission; telemetry reports met/missed.
        estimated_cycles: service-time estimate for shortest-job-first
            (falls back to the footprint's lane count).
        golden: optional expected output; compared with
            ``np.array_equal`` after the run.
        validate: optional predicate over the output (wins over
            ``golden``).
        backend: optional execution backend (``"reference"`` or
            ``"bitplane"``) selected on the device for this job's
            duration; every intrinsic is then cross-validated against
            the bit-level CSB. ``None`` (default) keeps the device's
            own backend setting.
    """

    _ids = itertools.count()

    #: Oversized jobs of this class may be spill-served (segment the
    #: register file through HBM) instead of being refused admission.
    spillable = False

    def __init__(
        self,
        name: str,
        body: Callable[[CAPESystem], Any],
        footprint: Footprint,
        priority: int = 0,
        deadline_cycles: Optional[float] = None,
        estimated_cycles: Optional[float] = None,
        golden: Any = None,
        validate: Optional[Callable[[Any], bool]] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.job_id = next(Job._ids)
        self.name = name
        self.body = body
        self.footprint = footprint
        self.priority = priority
        self.deadline_cycles = deadline_cycles
        self.estimated_cycles = estimated_cycles
        self.golden = golden
        self.validate = validate
        self.backend = backend
        self.state = JobState.PENDING
        self.submit_cycle: Optional[float] = None
        self.start_cycle: Optional[float] = None
        self.finish_cycle: Optional[float] = None
        self.device_id: Optional[int] = None
        self.stolen = False
        self.result: Optional[JobResult] = None
        #: Failed executions so far (the pool's bounded-retry ledger).
        self.attempts = 0
        #: Dispatch epoch; completions from a superseded dispatch (e.g.
        #: a job re-placed off a dead device) are ignored by the pool.
        self.epoch = 0

    def __repr__(self) -> str:
        return (
            f"Job(#{self.job_id} {self.name!r}, {self.footprint.lanes} lanes, "
            f"prio {self.priority}, {self.state.value})"
        )

    @property
    def service_estimate(self) -> float:
        """Comparable service-time guess for shortest-job-first."""
        if self.estimated_cycles is not None:
            return float(self.estimated_cycles)
        return float(self.footprint.lanes)

    # -- execution -----------------------------------------------------

    def execute(self, system: CAPESystem, observer=None) -> JobResult:
        """Run on a (freshly reset) device; returns the result record.

        Library errors — validation mismatches, structured capacity
        errors from strict allocations — are captured in the result
        rather than unwinding the pool's event loop. ``observer``
        defaults to the system's own; the job body's host-side execution
        is recorded as a wall-clock span and its outcome as a
        ``runtime.jobs`` counter.
        """
        obs = observer if observer is not None else system.observer
        start_cycles = system.stats.cycles
        start_energy = system.stats.energy_j
        previous_backend = system.backend
        if self.backend is not None:
            system.set_backend(self.backend)
        span = (
            obs.span(f"job:{self.name}", cat="job", tid="jobs")
            if obs.enabled
            else None
        )
        try:
            if span is not None:
                with span:
                    output = self._run_body(system)
            else:
                output = self._run_body(system)
        except ReproError as exc:
            if obs.enabled:
                obs.counter("runtime.job_errors", kind=type(exc).__name__).inc()
            return JobResult(
                output=None,
                validated=False,
                service_cycles=system.stats.cycles - start_cycles,
                energy_j=system.stats.energy_j - start_energy,
                error=f"{type(exc).__name__}: {exc}",
            )
        finally:
            if self.backend is not None:
                system.set_backend(previous_backend)
        result = JobResult(
            output=output,
            validated=self._validated(output),
            service_cycles=system.stats.cycles - start_cycles,
            energy_j=system.stats.energy_j - start_energy,
        )
        return result

    def _run_body(self, system: CAPESystem) -> Any:
        # One job body == one superplan scope: a no-op unless the device
        # was built with superplan enabled, in which case eligible mirror
        # microcode fuses into one cached whole-kernel trace.
        with system.superplan_scope():
            return self.body(system)

    def _validated(self, output: Any) -> bool:
        if self.validate is not None:
            return bool(self.validate(output))
        if self.golden is not None:
            return bool(np.array_equal(np.asarray(output), np.asarray(self.golden)))
        if isinstance(output, WorkloadResult):
            return output.checked
        return True

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_spec(cls, spec) -> "Job":
        """Materialise a :class:`~repro.serve.spec.JobSpec` as a job.

        The inverse bridge is :meth:`JobSpec.from_job
        <repro.serve.spec.JobSpec.from_job>`; together they let the
        unified :func:`repro.api.submit` accept specs on every surface
        (single device, in-process pool, process-sharded serving).
        Delegates to ``spec.to_job()``, so the resulting job still
        carries its spec and can cross a process boundary.
        """
        return spec.to_job()

    @classmethod
    def from_workload(
        cls,
        workload: Workload,
        priority: int = 0,
        deadline_cycles: Optional[float] = None,
        estimated_cycles: Optional[float] = None,
        lanes: Optional[int] = None,
        vregs: int = 8,
        resident: bool = False,
        backend: Optional[str] = None,
    ) -> "Job":
        """Wrap a ``repro.workloads`` kernel as a job.

        Workload kernels strip-mine internally (``resident=False``), so
        they run on any device; their lane count still steers the
        capacity-aware placement toward a device where the working set
        stays CSB-resident. Validation rides the workload's own golden
        check (``run_cape`` raises on mismatch, and its
        :class:`WorkloadResult` carries ``checked``).
        """
        if lanes is None:
            lanes = getattr(workload, "n", None) or getattr(workload, "points", None)
        if lanes is None:
            raise ConfigError(
                f"cannot infer {workload.name}'s lanes; pass lanes= explicitly"
            )
        return cls(
            name=workload.name,
            body=workload.run_cape,
            footprint=Footprint(lanes=int(lanes), vregs=vregs, resident=resident),
            priority=priority,
            deadline_cycles=deadline_cycles,
            estimated_cycles=estimated_cycles,
            backend=backend,
        )

    @classmethod
    def from_program(
        cls,
        name: str,
        source: str,
        footprint: Footprint,
        priority: int = 0,
        deadline_cycles: Optional[float] = None,
        estimated_cycles: Optional[float] = None,
        golden: Any = None,
        validate: Optional[Callable[[Any], bool]] = None,
        backend: Optional[str] = None,
    ) -> "Job":
        """Wrap an assembled RISC-V program (run via the interpreter).

        The program is assembled once at job-construction time; each
        execution interprets it on the target device. The job's output
        is the :class:`~repro.isa.interpreter.MachineResult` (use
        ``validate`` to check its final ``xregs``/memory).
        """
        from repro.isa.assembler import assemble
        from repro.isa.interpreter import Machine

        words = assemble(source)

        def body(system: CAPESystem):
            return Machine(words, cape=system).run()

        return cls(
            name=name,
            body=body,
            footprint=footprint,
            priority=priority,
            deadline_cycles=deadline_cycles,
            estimated_cycles=estimated_cycles,
            golden=golden,
            validate=validate,
            backend=backend,
        )


class SegmentedJob(Job):
    """A resident job larger than a device: spill-served in segments.

    The job's lanes are partitioned into MAX_VL-sized segments. Each
    *pass* visits every segment: the segment's live registers are
    restored from the spill slab (after their first visit), the segment
    body runs, and the registers are spilled again before the register
    file is handed to the next segment. On a device big enough to hold
    the whole footprint there is exactly one segment and the spill path
    never engages — the same job description scales down to zero
    overhead.

    Args:
        name: telemetry label.
        total_lanes: the full resident footprint, possibly > MAX_VL.
        segment_body: ``fn(system, offset, vl, pass_index)`` computing
            one segment's slice; its final-pass return values are
            collected.
        live_vregs: architectural registers carrying state across
            passes (the spilled/restored set).
        passes: times each segment is visited (iterative kernels).
        finalize: optional ``fn(final_pass_returns) -> output``.
    """

    spillable = True

    def __init__(
        self,
        name: str,
        total_lanes: int,
        segment_body: Callable[[CAPESystem, int, int, int], Any],
        live_vregs: Tuple[int, ...],
        passes: int = 1,
        finalize: Optional[Callable[[List[Any]], Any]] = None,
        priority: int = 0,
        deadline_cycles: Optional[float] = None,
        estimated_cycles: Optional[float] = None,
        golden: Any = None,
        validate: Optional[Callable[[Any], bool]] = None,
    ) -> None:
        live_vregs = tuple(int(r) for r in live_vregs)
        if not live_vregs:
            raise ConfigError("a segmented job needs at least one live register")
        if passes <= 0:
            raise ConfigError("passes must be positive")
        super().__init__(
            name=name,
            body=self._run_segments,  # dispatched through _run_body
            footprint=Footprint(
                lanes=total_lanes, vregs=len(live_vregs), resident=True
            ),
            priority=priority,
            deadline_cycles=deadline_cycles,
            estimated_cycles=estimated_cycles,
            golden=golden,
            validate=validate,
        )
        self.segment_body = segment_body
        self.live_vregs = live_vregs
        self.passes = passes
        self.finalize = finalize
        self.context_stats = None  # ContextStats of the last execution

    def segments(self, config: CAPEConfig) -> List[Tuple[int, int]]:
        """The (offset, vl) partition of the footprint on ``config``."""
        out = []
        offset = 0
        while offset < self.footprint.lanes:
            vl = min(config.max_vl, self.footprint.lanes - offset)
            out.append((offset, vl))
            offset += vl
        return out

    def execute(self, system: CAPESystem, observer=None) -> JobResult:
        result = super().execute(system, observer=observer)
        if self.context_stats is not None:
            result.spills = self.context_stats.spills
            result.restores = self.context_stats.restores
        return result

    def _run_segments(self, system: CAPESystem) -> Any:
        manager = ContextManager(system)
        self.context_stats = manager.stats
        segments = self.segments(system.config)
        swap = len(segments) > 1  # register file must be time-shared
        finals: List[Any] = []
        for pass_index in range(self.passes):
            for seg_index, (offset, vl) in enumerate(segments):
                if seg_index in manager:
                    manager.restore(seg_index)
                else:
                    system.vsetvl(vl)
                value = self.segment_body(system, offset, vl, pass_index)
                last_visit = (
                    pass_index == self.passes - 1
                    and seg_index == len(segments) - 1
                )
                if swap and not last_visit:
                    manager.spill(seg_index, self.live_vregs)
                if pass_index == self.passes - 1:
                    finals.append(value)
        if self.finalize is not None:
            return self.finalize(finals)
        return finals
