"""Per-device health ledger: the pool's self-healing state machine.

Each :class:`~repro.runtime.pool.DevicePool` device carries one
:class:`DeviceHealth` tracking consecutive job failures and walking a
four-state machine::

    HEALTHY ──(threshold consecutive failures)──▶ QUARANTINED
       ▲                                              │
       │                                   (backoff elapses)
       │                                              ▼
       └──(probe job succeeds)──────────────── PROBATION
                                                      │
                             (probe job fails)────────┘ (re-quarantined,
                                                         backoff doubled)

    any state ──(injected whole-device death)──▶ DEAD (terminal)

Quarantine is time-boxed in *device cycles* with exponential backoff: the
first quarantine lasts ``quarantine_cycles``, each re-quarantine doubles
it. A quarantined device accepts no work; on re-admission it runs in
PROBATION, where the scheduler feeds it one small probe job — success
restores HEALTHY (and resets the backoff), failure re-quarantines
immediately. DEAD devices never return.

All transitions are driven by the pool's simulated clock — no wall time,
so a healing sequence replays deterministically.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class HealthState(enum.Enum):
    """The four health states of a pool device."""

    HEALTHY = "healthy"
    QUARANTINED = "quarantined"
    PROBATION = "probation"
    DEAD = "dead"


@dataclass
class DeviceHealth:
    """Failure ledger + state machine for one device (see module doc).

    Attributes:
        failure_threshold: consecutive failures that trigger quarantine.
        quarantine_cycles: first quarantine's length in device cycles
            (doubles on every re-quarantine).
        consecutive_failures / total_failures: the ledger.
        quarantines: times this device has been quarantined.
        state: current :class:`HealthState`.
        quarantined_until: cycle at which a quarantine lapses.
    """

    failure_threshold: int = 3
    quarantine_cycles: float = 50_000.0
    consecutive_failures: int = 0
    total_failures: int = 0
    quarantines: int = 0
    state: HealthState = HealthState.HEALTHY
    quarantined_until: float = 0.0
    _backoff: float = field(default=0.0, repr=False)

    @property
    def accepting(self) -> bool:
        """May the device be handed work (including probation probes)?"""
        return self.state in (HealthState.HEALTHY, HealthState.PROBATION)

    @property
    def alive(self) -> bool:
        return self.state is not HealthState.DEAD

    def record_success(self) -> None:
        """A job completed: clear the streak; a probe ends probation."""
        self.consecutive_failures = 0
        if self.state is HealthState.PROBATION:
            self.state = HealthState.HEALTHY
            self._backoff = 0.0

    def record_failure(self, now: float) -> bool:
        """A job failed at cycle ``now``; True if this quarantines.

        A failure during probation re-quarantines immediately (the probe
        disproved the recovery); otherwise the streak must reach
        ``failure_threshold``.
        """
        self.consecutive_failures += 1
        self.total_failures += 1
        if self.state is HealthState.PROBATION or (
            self.state is HealthState.HEALTHY
            and self.consecutive_failures >= self.failure_threshold
        ):
            self.quarantine(now)
            return True
        return False

    def quarantine(self, now: float) -> None:
        """Bench the device; each re-quarantine doubles the backoff."""
        self._backoff = (
            self.quarantine_cycles if self._backoff == 0.0 else self._backoff * 2
        )
        self.state = HealthState.QUARANTINED
        self.quarantined_until = now + self._backoff
        self.quarantines += 1
        self.consecutive_failures = 0

    def readmit(self, now: float) -> bool:
        """Move a lapsed quarantine to probation; True on transition."""
        if (
            self.state is HealthState.QUARANTINED
            and now >= self.quarantined_until
        ):
            self.state = HealthState.PROBATION
            return True
        return False

    def kill(self) -> None:
        """Terminal: an injected whole-device death."""
        self.state = HealthState.DEAD
