"""Simulated-clock event loop for the device-pool runtime.

The pool multiplexes many jobs onto many :class:`~repro.engine.system.
CAPESystem` instances. Each device advances its own cycle timeline when
a job runs on it; the clock merges those timelines into one global,
*deterministic* order: events fire strictly by (time, insertion order),
so two runs of the same job stream interleave identically — no wall
clock, threads, or randomness anywhere in the loop.

Times are CAPE cycles (floats, like :class:`CAPERunStats.cycles`); the
telemetry layer converts to seconds at the device frequency.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Tuple

from repro.common.errors import ConfigError


class SimClock:
    """A deterministic discrete-event scheduler.

    Events are ``(time, seq, callback)`` triples in a heap; ``seq`` is a
    monotone insertion counter that breaks time ties, which makes the
    firing order a pure function of the schedule calls.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Callable[[], Any]]] = []
        self._seq = 0
        self.events_fired = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def next_time(self):
        """Timestamp of the earliest pending event, or ``None`` if idle.

        Lets the pool's parallel driver drain all events sharing one
        simulated timestamp as a batch without firing any of them early.
        """
        return self._heap[0][0] if self._heap else None

    def schedule_at(self, time: float, callback: Callable[[], Any]) -> None:
        """Fire ``callback`` when the clock reaches ``time`` cycles."""
        if time < self.now:
            raise ConfigError(
                f"cannot schedule at {time} cycles: clock already at {self.now}"
            )
        heapq.heappush(self._heap, (float(time), self._seq, callback))
        self._seq += 1

    def schedule_in(self, delay: float, callback: Callable[[], Any]) -> None:
        """Fire ``callback`` after ``delay`` cycles."""
        if delay < 0:
            raise ConfigError("delay must be non-negative")
        self.schedule_at(self.now + delay, callback)

    def tick(self) -> bool:
        """Fire the earliest pending event; returns False when idle."""
        if not self._heap:
            return False
        time, _, callback = heapq.heappop(self._heap)
        self.now = time
        self.events_fired += 1
        callback()
        return True

    def run(self, max_events: int = 1_000_000) -> int:
        """Drain the event queue; returns the number of events fired.

        ``max_events`` bounds runaway feedback loops (an event that
        always schedules another); hitting it raises.
        """
        fired = 0
        while self.tick():
            fired += 1
            if fired >= max_events:
                raise ConfigError(
                    f"event loop exceeded {max_events} events — "
                    "a callback is rescheduling itself unconditionally"
                )
        return fired
