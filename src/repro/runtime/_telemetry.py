"""Telemetry: per-job latency, per-device utilization, queue depths.

The pool records three streams while the simulated clock runs — job
lifecycle timestamps, device busy intervals, and queue-depth samples at
every scheduling event — and folds them into a :class:`TelemetryReport`
whose tables render through :func:`repro.eval.tables.format_table`, the
same path as the paper-figure benches.

All times are device cycles; the report converts to seconds at the
pool's clock frequency.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.eval.tables import format_table
from repro.runtime.job import Job, JobState


@dataclass
class JobRecord:
    """One job's lifecycle timestamps and outcome."""

    job_id: int
    name: str
    device_id: int
    device_name: str
    priority: int
    lanes: int
    submit_cycle: float
    start_cycle: float
    finish_cycle: float
    validated: bool
    state: str
    spills: int = 0
    restores: int = 0
    stolen: bool = False
    deadline_cycles: Optional[float] = None
    error: Optional[str] = None
    attempts: int = 0

    @property
    def wait_cycles(self) -> float:
        return self.start_cycle - self.submit_cycle

    @property
    def service_cycles(self) -> float:
        return self.finish_cycle - self.start_cycle

    @property
    def turnaround_cycles(self) -> float:
        return self.finish_cycle - self.submit_cycle

    @property
    def deadline_met(self) -> Optional[bool]:
        if self.deadline_cycles is None:
            return None
        return self.turnaround_cycles <= self.deadline_cycles


@dataclass
class DeviceRecord:
    """One device's aggregate service record."""

    device_id: int
    name: str
    max_vl: int
    jobs_run: int
    busy_cycles: float
    lane_occupancies: List[float] = field(default_factory=list)

    @property
    def mean_occupancy(self) -> float:
        """Mean fraction of the CSB's lanes jobs kept live."""
        if not self.lane_occupancies:
            return 0.0
        return sum(self.lane_occupancies) / len(self.lane_occupancies)

    def utilization(self, makespan_cycles: float) -> float:
        if makespan_cycles <= 0:
            return 0.0
        return self.busy_cycles / makespan_cycles


class Telemetry:
    """Event-time collector the pool writes into."""

    def __init__(self) -> None:
        self.jobs: List[JobRecord] = []
        #: device_id -> [(cycle, queue depth)] sampled at scheduling events.
        self.queue_samples: Dict[int, List[Tuple[float, int]]] = {}
        self.steals = 0
        self.retries = 0
        self.quarantines = 0
        self.device_deaths = 0

    def sample_queue(self, device_id: int, cycle: float, depth: int) -> None:
        self.queue_samples.setdefault(device_id, []).append((cycle, depth))

    def record_steal(self) -> None:
        self.steals += 1

    def record_retry(self) -> None:
        self.retries += 1

    def record_quarantine(self) -> None:
        self.quarantines += 1

    def record_device_death(self) -> None:
        self.device_deaths += 1

    def record_complete(self, job: Job, device_name: str) -> None:
        result = job.result
        self.jobs.append(
            JobRecord(
                job_id=job.job_id,
                name=job.name,
                device_id=job.device_id,
                device_name=device_name,
                priority=job.priority,
                lanes=job.footprint.lanes,
                submit_cycle=job.submit_cycle,
                start_cycle=job.start_cycle,
                finish_cycle=job.finish_cycle,
                validated=bool(result and result.validated),
                state=job.state.value,
                spills=result.spills if result else 0,
                restores=result.restores if result else 0,
                stolen=job.stolen,
                deadline_cycles=job.deadline_cycles,
                error=result.error if result else None,
                attempts=job.attempts,
            )
        )

    def report(
        self,
        devices: List[DeviceRecord],
        makespan_cycles: float,
        frequency_hz: float,
    ) -> "TelemetryReport":
        return TelemetryReport(
            jobs=sorted(self.jobs, key=lambda r: r.job_id),
            devices=devices,
            makespan_cycles=makespan_cycles,
            frequency_hz=frequency_hz,
            queue_samples=self.queue_samples,
            steals=self.steals,
            retries=self.retries,
            quarantines=self.quarantines,
            device_deaths=self.device_deaths,
        )


@dataclass
class TelemetryReport:
    """The pool run's full service record, renderable as tables."""

    jobs: List[JobRecord]
    devices: List[DeviceRecord]
    makespan_cycles: float
    frequency_hz: float
    queue_samples: Dict[int, List[Tuple[float, int]]]
    steals: int = 0
    retries: int = 0
    quarantines: int = 0
    device_deaths: int = 0

    # -- aggregates -----------------------------------------------------

    @property
    def makespan_seconds(self) -> float:
        return self.makespan_cycles / self.frequency_hz

    @property
    def completed(self) -> int:
        return sum(1 for j in self.jobs if j.state == JobState.DONE.value)

    @property
    def failed(self) -> int:
        return sum(1 for j in self.jobs if j.state != JobState.DONE.value)

    @property
    def throughput_jobs_per_s(self) -> float:
        if self.makespan_seconds <= 0:
            return 0.0
        return self.completed / self.makespan_seconds

    def mean_turnaround_cycles(self) -> float:
        if not self.jobs:
            return 0.0
        return sum(j.turnaround_cycles for j in self.jobs) / len(self.jobs)

    def percentile_turnaround_cycles(self, pct: float) -> float:
        """Turnaround percentile (nearest-rank) across all jobs."""
        if not self.jobs:
            return 0.0
        values = sorted(j.turnaround_cycles for j in self.jobs)
        rank = max(1, int(round(pct / 100.0 * len(values))))
        return values[min(rank, len(values)) - 1]

    def queue_depth_histogram(
        self, device_id: Optional[int] = None
    ) -> Dict[int, int]:
        """depth -> number of scheduling events observing that depth."""
        counts: Counter = Counter()
        for did, samples in sorted(self.queue_samples.items()):
            if device_id is not None and did != device_id:
                continue
            counts.update(depth for _, depth in samples)
        return dict(sorted(counts.items()))

    # -- export ---------------------------------------------------------

    def as_dict(self) -> dict:
        """JSON-able export, same contract as the other stats surfaces
        (``CAPERunStats.as_dict`` / ``ProfileReport.as_dict``)."""
        return {
            "jobs": [asdict(j) for j in self.jobs],
            "devices": [asdict(d) for d in self.devices],
            "makespan_cycles": self.makespan_cycles,
            "makespan_seconds": self.makespan_seconds,
            "frequency_hz": self.frequency_hz,
            "completed": self.completed,
            "failed": self.failed,
            "throughput_jobs_per_s": self.throughput_jobs_per_s,
            "mean_turnaround_cycles": self.mean_turnaround_cycles(),
            "steals": self.steals,
            "retries": self.retries,
            "quarantines": self.quarantines,
            "device_deaths": self.device_deaths,
            "queue_depth_histogram": self.queue_depth_histogram(),
        }

    # -- tables ---------------------------------------------------------

    def job_table(self) -> str:
        rows = []
        for j in self.jobs:
            deadline = "-"
            if j.deadline_met is not None:
                deadline = "met" if j.deadline_met else "MISSED"
            rows.append(
                [
                    j.job_id,
                    j.name,
                    j.device_name,
                    j.lanes,
                    j.priority,
                    round(j.wait_cycles),
                    round(j.service_cycles),
                    round(j.turnaround_cycles),
                    j.spills,
                    j.restores,
                    "yes" if j.stolen else "no",
                    deadline,
                    "ok" if j.validated else "FAIL",
                ]
            )
        return format_table(
            [
                "job", "name", "device", "lanes", "prio", "wait", "service",
                "turnaround", "spills", "restores", "stolen", "deadline", "check",
            ],
            rows,
        )

    def device_table(self) -> str:
        rows = []
        for d in self.devices:
            rows.append(
                [
                    d.device_id,
                    d.name,
                    d.max_vl,
                    d.jobs_run,
                    round(d.busy_cycles),
                    round(100 * d.utilization(self.makespan_cycles), 1),
                    round(100 * d.mean_occupancy, 1),
                ]
            )
        return format_table(
            [
                "device", "config", "lanes", "jobs", "busy cycles",
                "util %", "occupancy %",
            ],
            rows,
        )

    def queue_table(self) -> str:
        histogram = self.queue_depth_histogram()
        total = sum(histogram.values()) or 1
        rows = [
            [depth, count, round(100 * count / total, 1)]
            for depth, count in histogram.items()
        ]
        return format_table(["queue depth", "events", "events %"], rows)

    def summary(self) -> str:
        parts = [
            f"{self.completed}/{len(self.jobs)} jobs completed in "
            f"{self.makespan_cycles:,.0f} cycles "
            f"({self.makespan_seconds * 1e3:.2f} ms at "
            f"{self.frequency_hz / 1e9:.1f} GHz)",
            f"throughput {self.throughput_jobs_per_s:,.0f} jobs/s",
            f"mean turnaround {self.mean_turnaround_cycles():,.0f} cycles "
            f"(p95 {self.percentile_turnaround_cycles(95):,.0f})",
            f"{self.steals} work steals",
        ]
        if self.retries:
            parts.append(f"{self.retries} retries")
        if self.quarantines:
            parts.append(f"{self.quarantines} quarantines")
        if self.device_deaths:
            parts.append(f"{self.device_deaths} device deaths")
        if self.failed:
            parts.append(f"{self.failed} FAILED")
        return "; ".join(parts)
