"""Capacity-aware job scheduling policies.

Admission is the hard constraint: a *resident* job is only admitted to a
device whose CSB holds its footprint — otherwise the admission check
raises the structured :class:`~repro.common.errors.CSBCapacityError`
(unless the job is spill-servable, in which case it is admitted and the
pool serves it through the context spill path at explicit HBM cost).

Queue *ordering* is the pluggable soft policy. All policies respect
priority first (higher runs earlier); within a priority band they
differ:

``fifo``
    submission order — the latency-fair baseline.
``sjf``
    shortest job first by the service-time estimate; minimises mean
    wait under convoy effects (a long Phoenix app no longer blocks a
    burst of microbenchmarks).
``best-fit``
    largest footprint that fits the device first; packs the register
    file tightly so capacity-hungry jobs drain before fragmenting
    arrivals, and falls back to FIFO among equals.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Sequence, Type

from repro.common.errors import ConfigError
from repro.engine.system import CAPEConfig

from repro.runtime.job import Job


class SchedulingPolicy(abc.ABC):
    """Orders a device's queue; ``select`` returns the index to run next."""

    name: str = "policy"

    @abc.abstractmethod
    def select(self, queue: Sequence[Job], config: CAPEConfig) -> Optional[int]:
        """Index of the next job to dispatch, or ``None`` if empty."""

    def _band(self, queue: Sequence[Job]) -> Sequence[int]:
        """Indices of the highest-priority band, in queue order."""
        if not queue:
            return ()
        top = max(job.priority for job in queue)
        return [i for i, job in enumerate(queue) if job.priority == top]


class FIFOPolicy(SchedulingPolicy):
    """First-come, first-served within the top priority band."""

    name = "fifo"

    def select(self, queue: Sequence[Job], config: CAPEConfig) -> Optional[int]:
        band = self._band(queue)
        return band[0] if band else None


class ShortestJobFirstPolicy(SchedulingPolicy):
    """Smallest service-time estimate first (ties to queue order)."""

    name = "sjf"

    def select(self, queue: Sequence[Job], config: CAPEConfig) -> Optional[int]:
        band = self._band(queue)
        if not band:
            return None
        return min(band, key=lambda i: (queue[i].service_estimate, i))


class BestFitPolicy(SchedulingPolicy):
    """Largest footprint that fits the device's CSB first.

    Jobs larger than the device (spill-served) rank after every fitting
    job: their register-file hunger is unbounded anyway, so tight
    packing gains nothing by running them early.
    """

    name = "best-fit"

    def select(self, queue: Sequence[Job], config: CAPEConfig) -> Optional[int]:
        band = self._band(queue)
        if not band:
            return None
        fitting = [i for i in band if queue[i].footprint.lanes <= config.max_vl]
        if fitting:
            return max(fitting, key=lambda i: (queue[i].footprint.lanes, -i))
        return band[0]


POLICIES: Dict[str, Type[SchedulingPolicy]] = {
    cls.name: cls
    for cls in (FIFOPolicy, ShortestJobFirstPolicy, BestFitPolicy)
}


def make_policy(policy) -> SchedulingPolicy:
    """Resolve a policy name or instance to an instance."""
    if isinstance(policy, SchedulingPolicy):
        return policy
    try:
        return POLICIES[policy]()
    except KeyError:
        raise ConfigError(
            f"unknown scheduling policy {policy!r} "
            f"(choose from {sorted(POLICIES)})"
        ) from None


class Scheduler:
    """Admission control + queue ordering for one device pool.

    Args:
        policy: a name from :data:`POLICIES` or a policy instance.
    """

    def __init__(self, policy="fifo") -> None:
        self.policy = make_policy(policy)

    def admit(self, job: Job, config: CAPEConfig) -> bool:
        """Check a job against a device's capacity.

        Returns ``True`` when the footprint fits outright, ``False``
        when the job must be spill-served, and raises the structured
        :class:`CSBCapacityError` when it can be neither.
        """
        if job.footprint.fits(config):
            return True
        if job.spillable:
            return False
        job.footprint.check(config)  # raises with the exact shortfall
        raise AssertionError("unreachable")  # pragma: no cover

    def pick(self, queue, config: CAPEConfig) -> Optional[Job]:
        """Remove and return the next job for a device, if any."""
        index = self.policy.select(queue, config)
        if index is None:
            return None
        job = queue[index]
        del queue[index]
        return job

    def pick_probe(self, queue, config: CAPEConfig) -> Optional[Job]:
        """Remove and return the *smallest* queued job, if any.

        A device on probation gets the cheapest available canary —
        risking the least work on silicon that just left quarantine —
        regardless of the configured ordering policy.
        """
        if not queue:
            return None
        index = min(
            range(len(queue)),
            key=lambda i: (queue[i].service_estimate, i),
        )
        job = queue[index]
        del queue[index]
        return job
