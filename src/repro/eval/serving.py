"""Serving evaluation: throughput/latency report for pool runs.

Folds a :class:`~repro.runtime.telemetry.TelemetryReport` into the same
plain-text table format as the paper-figure benches — per-job latency
breakdown, per-device utilization/occupancy, queue-depth histogram, and
a throughput/latency headline — so a runtime experiment drops into the
evaluation flow like any other artefact.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.eval.tables import format_table

if TYPE_CHECKING:  # import cycle: repro.runtime.telemetry renders via eval
    from repro.runtime._telemetry import TelemetryReport


def latency_table(report: TelemetryReport) -> str:
    """Wait/service/turnaround percentiles across the job stream."""
    rows: List[list] = []
    for label, values in (
        ("wait", [j.wait_cycles for j in report.jobs]),
        ("service", [j.service_cycles for j in report.jobs]),
        ("turnaround", [j.turnaround_cycles for j in report.jobs]),
    ):
        if not values:
            rows.append([label, 0, 0, 0, 0])
            continue
        ordered = sorted(values)

        def pct(p: float) -> float:
            rank = max(1, int(round(p / 100.0 * len(ordered))))
            return ordered[min(rank, len(ordered)) - 1]

        rows.append(
            [
                label,
                round(sum(ordered) / len(ordered)),
                round(pct(50)),
                round(pct(95)),
                round(ordered[-1]),
            ]
        )
    return format_table(
        ["phase (cycles)", "mean", "p50", "p95", "max"], rows
    )


def wire_table(stats: dict) -> str:
    """Data-plane ledger: frames, batching, bytes, shm hit rate.

    ``stats`` is a serving tier's wire-stats dict
    (:attr:`~repro.serve.pool.ServePool.wire_stats` /
    :attr:`~repro.serve.gateway.Gateway.wire_stats`, the live stats of
    the tier's :class:`~repro.serve.shm.HostWire`).
    """
    frames = stats.get("frames", 0)
    jobs = stats.get("batched_jobs", 0)
    rows = [
        ["wire mode", stats.get("mode", "?")],
        ["frames sent", frames],
        ["jobs carried", jobs],
        ["jobs per frame", round(jobs / frames, 2) if frames else 0.0],
        ["payload bytes out", stats.get("bytes_out", 0)],
        ["payload bytes in", stats.get("bytes_in", 0)],
        ["shm transfers", stats.get("shm_hits", 0)],
        ["pickle fallbacks", stats.get("fallbacks", 0)],
    ]
    return format_table(["wire", "value"], rows)


def healing_table(report: TelemetryReport) -> str:
    """Self-healing ledger: retries, quarantines, and device deaths."""
    retried = [j for j in report.jobs if j.attempts > 0]
    rows = [
        ["retries", report.retries],
        ["jobs retried", len(retried)],
        ["max attempts on one job", max((j.attempts for j in retried), default=0)],
        ["quarantines", report.quarantines],
        ["device deaths", report.device_deaths],
    ]
    return format_table(["event", "count"], rows)


def serving_report(
    report: TelemetryReport,
    title: str = "CAPE pool run",
    wire: dict | None = None,
) -> str:
    """One printable report: headline, jobs, latency, devices, queues.

    A self-healing section (retry/quarantine/death counts) appears only
    when the run actually healed something — fault-free reports are
    unchanged. Pass a serving tier's ``wire_stats`` dict as ``wire`` to
    append a data-plane section (:func:`wire_table`).
    """
    sections = [
        title,
        "=" * len(title),
        report.summary(),
        "",
        "Per-job telemetry",
        report.job_table(),
        "",
        "Latency distribution",
        latency_table(report),
        "",
        "Per-device service record",
        report.device_table(),
        "",
        "Queue-depth histogram (all devices)",
        report.queue_table(),
    ]
    if report.retries or report.quarantines or report.device_deaths:
        sections += [
            "",
            "Self-healing ledger",
            healing_table(report),
        ]
    if wire is not None:
        sections += [
            "",
            "Wire / data plane",
            wire_table(wire),
        ]
    return "\n".join(sections)
