"""Roofline model (Williams et al.) for CAPE design points (Figure 10).

Throughput is measured in lane-operations per second (one 32-bit element
result of a vector instruction = one lane-op); operational intensity in
lane-ops per byte of main-memory traffic. The compute roof of a CAPE
configuration is the rate at which the CSB retires lane-ops on its
cheapest-per-lane mixes (vl lanes every ~cycles(vadd) cycles); the memory
roof is the HBM bandwidth divided by the bytes per lane-op at a given
intensity.

The paper's observations to reproduce: constant-intensity apps keep their
intensity and move *up* (toward the memory-bound roofline) when capacity
grows 32k -> 131k; variable-intensity apps stay far below the rooflines
and can even lose throughput as command distribution grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Type

from repro.assoc.instruction_model import InstructionModel
from repro.engine.system import CAPEConfig, CAPESystem
from repro.memory.hbm import HBMConfig
from repro.workloads.base import Workload


@dataclass(frozen=True)
class RooflinePoint:
    """One application's position in roofline space."""

    name: str
    intensity_ops_per_byte: float
    throughput_ops_per_s: float
    bound: str  # "compute" or "memory"


class Roofline:
    """Roofline for one CAPE configuration.

    Args:
        config: the CAPE design point.
        reference_cycles: per-lane cost anchor — cycles of the vector add
            (the representative arithmetic instruction).
    """

    def __init__(self, config: CAPEConfig) -> None:
        self.config = config
        model = InstructionModel(width=config.element_bits)
        self._add_cycles = model.cycles("vadd.vv")
        system = CAPESystem(config)
        self.frequency_hz = system.circuit.frequency_hz
        self.bandwidth_bytes_per_s = HBMConfig().total_bandwidth_bytes_per_s

    @property
    def compute_roof_ops_per_s(self) -> float:
        """Peak lane-op rate: every lane completes one vadd per 8n+2."""
        return self.config.max_vl * self.frequency_hz / self._add_cycles

    def memory_roof_ops_per_s(self, intensity: float) -> float:
        """Bandwidth-limited lane-op rate at a given intensity."""
        return self.bandwidth_bytes_per_s * intensity

    def ridge_intensity(self) -> float:
        """Intensity where the compute and memory roofs meet."""
        return self.compute_roof_ops_per_s / self.bandwidth_bytes_per_s

    def attainable(self, intensity: float) -> float:
        """Roofline ceiling at ``intensity``."""
        return min(self.compute_roof_ops_per_s, self.memory_roof_ops_per_s(intensity))

    # ------------------------------------------------------------------

    def measure(self, workload_cls: Type[Workload], **kwargs) -> RooflinePoint:
        """Place one workload in this configuration's roofline space.

        Intensity = vector lane-ops per byte moved over the VMU;
        throughput = lane-ops per second of the measured run.
        """
        workload = workload_cls(**kwargs)
        cape = CAPESystem(self.config)
        result = workload.run_cape(cape)
        lane_ops = _lane_ops(cape)
        traffic = cape.vmu.stats.bytes_loaded + cape.vmu.stats.bytes_stored
        intensity = lane_ops / traffic if traffic else float("inf")
        throughput = lane_ops / result.seconds
        bound = (
            "memory"
            if self.attainable(intensity) < self.compute_roof_ops_per_s
            else "compute"
        )
        return RooflinePoint(workload.name, intensity, throughput, bound)


def _lane_ops(cape: CAPESystem) -> int:
    """Lane-operations retired: vector instructions x active lanes.

    Uses the VCU's instruction count with the system's (final) vl as the
    per-instruction lane count — exact for fixed-vl runs, a close
    approximation for strip-mined loops.
    """
    return cape.vcu.stats.instructions * max(1, cape.vl)
