"""Speedup harness: run one workload on every system and compare.

The comparisons mirror the paper's area-equivalence methodology:
CAPE32k against one out-of-order tile, CAPE131k against two, with a
three-core system shown for reference (Figure 11); the SVE study
normalises SIMD configurations to a scalar run of the same core
(Figure 12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Type

from repro.baseline.multicore import Multicore
from repro.baseline.ooo import OoOCore
from repro.baseline.simd import SIMDConfig, SIMDCore
from repro.engine.system import CAPE131K, CAPE32K, CAPEConfig, CAPESystem
from repro.workloads.base import Workload


@dataclass
class SpeedupRow:
    """One workload's cross-system comparison (Figure 11 data)."""

    name: str
    intensity: str
    cape32k_s: float
    cape131k_s: float
    core1_s: float
    core2_s: float
    core3_s: float

    @property
    def speedup_32k(self) -> float:
        """CAPE32k vs one core (area-equivalent)."""
        return self.core1_s / self.cape32k_s

    @property
    def speedup_131k(self) -> float:
        """CAPE131k vs two cores (area-equivalent)."""
        return self.core2_s / self.cape131k_s

    @property
    def speedup_131k_vs_3core(self) -> float:
        """CAPE131k vs the three-core reference point."""
        return self.core3_s / self.cape131k_s


def _run_cape(workload_cls: Type[Workload], config: CAPEConfig, **kwargs) -> float:
    workload = workload_cls(**kwargs)
    result = workload.run_cape(CAPESystem(config))
    return result.seconds


def run_workload(workload_cls: Type[Workload], **kwargs) -> SpeedupRow:
    """Produce one Figure 11 row for a workload class."""
    probe = workload_cls(**kwargs)
    trace = probe.scalar_trace()
    core1 = OoOCore().run(trace).seconds
    core2 = Multicore(2).run(probe.scalar_trace()).seconds
    core3 = Multicore(3).run(probe.scalar_trace()).seconds
    return SpeedupRow(
        name=probe.name,
        intensity=probe.intensity,
        cape32k_s=_run_cape(workload_cls, CAPE32K, **kwargs),
        cape131k_s=_run_cape(workload_cls, CAPE131K, **kwargs),
        core1_s=core1,
        core2_s=core2,
        core3_s=core3,
    )


def run_phoenix_suite(
    apps: Optional[Iterable[Type[Workload]]] = None,
) -> List[SpeedupRow]:
    """Figure 11: all Phoenix applications across all systems."""
    from repro.workloads.phoenix import PHOENIX_APPS

    classes = list(apps) if apps is not None else list(PHOENIX_APPS.values())
    return [run_workload(cls) for cls in classes]


def run_micro_suite(
    benches: Optional[Iterable[Type[Workload]]] = None,
) -> List[SpeedupRow]:
    """Figure 9: the microbenchmarks across all systems."""
    from repro.workloads.micro import MICROBENCHMARKS

    classes = list(benches) if benches is not None else list(MICROBENCHMARKS.values())
    return [run_workload(cls) for cls in classes]


@dataclass
class SIMDRow:
    """One workload's SVE comparison (Figure 12 data)."""

    name: str
    scalar_s: float
    sve128_s: float
    sve256_s: float
    sve512_s: float
    cape32k_s: float

    def speedup(self, bits: int) -> float:
        return self.scalar_s / {128: self.sve128_s, 256: self.sve256_s, 512: self.sve512_s}[bits]

    @property
    def cape_vs_sve512(self) -> float:
        return self.sve512_s / self.cape32k_s


def compare_simd(workload_cls: Type[Workload], **kwargs) -> SIMDRow:
    """Figure 12: scalar vs 128/256/512-bit SVE vs CAPE32k."""
    probe = workload_cls(**kwargs)
    scalar = OoOCore().run(probe.scalar_trace()).seconds
    times = {}
    for bits in (128, 256, 512):
        core = SIMDCore(SIMDConfig(vector_bits=bits))
        times[bits] = core.run(probe.simd_trace(core.lanes)).seconds
    cape = _run_cape(workload_cls, CAPE32K, **kwargs)
    return SIMDRow(
        name=probe.name,
        scalar_s=scalar,
        sve128_s=times[128],
        sve256_s=times[256],
        sve512_s=times[512],
        cape32k_s=cape,
    )
