"""Plain-text table rendering for bench output."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render a simple aligned ASCII table."""
    str_rows: List[List[str]] = [
        [_fmt(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
