"""One-shot evaluation report: ``python -m repro.eval.report``.

Regenerates the paper's evaluation artefacts as a single text report:
Table I, Table II, the area study, microbenchmark and Phoenix speedups,
the SVE comparison, and the roofline placement. ``--quick`` restricts the
run to the calibration tables and a reduced workload set.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from typing import Dict, List, Optional, TextIO

from repro.assoc.instruction_model import InstructionModel
from repro.circuits.area import AreaModel
from repro.circuits.microops import CircuitModel, Microop
from repro.common.units import PJ, PS
from repro.engine.system import CAPE131K, CAPE32K
from repro.eval.harness import compare_simd, run_micro_suite, run_phoenix_suite
from repro.eval.roofline import Roofline
from repro.eval.tables import format_table


def _section(out: TextIO, title: str) -> None:
    out.write("\n" + "=" * 72 + "\n")
    out.write(title + "\n")
    out.write("=" * 72 + "\n")


def report_table_ii(out: TextIO) -> None:
    _section(out, "Table II — microoperation delay / energy, and the clock")
    model = CircuitModel()
    rows = []
    for op in Microop:
        t = model.timings[op]
        rows.append([
            op.value,
            round(t.delay_s / PS),
            "-" if t.bs_energy_j is None else round(t.bs_energy_j / PJ, 1),
            "-" if t.bp_energy_j is None else round(t.bp_energy_j / PJ, 1),
        ])
    out.write(format_table(["microop", "delay (ps)", "BS E (pJ)", "BP E (pJ)"], rows))
    out.write(
        f"\ncritical path {model.critical_path_s / PS:.0f} ps -> "
        f"{model.max_frequency_hz / 1e9:.2f} GHz raw -> "
        f"{model.frequency_hz / 1e9:.2f} GHz derated\n"
    )


def report_table_i(out: TextIO) -> None:
    _section(out, "Table I — instruction metrics (paper vs measured)")
    model = InstructionModel(width=32)
    rows = [
        [
            r.mnemonic, r.category, r.tt_entries, r.reduction_cycles,
            r.paper_cycles, r.measured_cycles,
            r.paper_energy_pj, round(r.energy_per_lane_pj, 2),
        ]
        for r in model.table_i()
    ]
    out.write(
        format_table(
            ["inst", "cat", "TT", "red", "cyc paper", "cyc meas",
             "pJ paper", "pJ meas"],
            rows,
        )
    )
    out.write("\n")


def report_area(out: TextIO) -> None:
    _section(out, "Figure 8 — area equivalence")
    model = AreaModel()
    rows = [
        [
            c.name, c.num_chains, round(c.area_mm2(model), 2),
            round(model.equivalent_baseline_cores(c.num_chains), 2),
        ]
        for c in (CAPE32K, CAPE131K)
    ]
    out.write(format_table(["config", "chains", "tile mm^2", "OoO tiles"], rows))
    out.write(f"\nchain layout: 13 x 175 um^2; reference tile {model.reference_tile_mm2} mm^2\n")


def report_micro(out: TextIO) -> None:
    _section(out, "Figure 9 — microbenchmark speedups")
    rows = run_micro_suite()
    out.write(
        format_table(
            ["bench", "intensity", "CAPE32k vs 1c", "CAPE131k vs 2c"],
            [[r.name, r.intensity, round(r.speedup_32k, 2), round(r.speedup_131k, 2)]
             for r in rows],
        )
    )
    out.write("\n")


def report_phoenix(out: TextIO) -> None:
    _section(out, "Figure 11 — Phoenix speedups")
    rows = run_phoenix_suite()
    out.write(
        format_table(
            ["app", "intensity", "CAPE32k vs 1c", "CAPE131k vs 2c", "CAPE131k vs 3c"],
            [
                [r.name, r.intensity, round(r.speedup_32k, 2),
                 round(r.speedup_131k, 2), round(r.speedup_131k_vs_3core, 2)]
                for r in rows
            ],
        )
    )
    geo = math.exp(sum(math.log(r.speedup_32k) for r in rows) / len(rows))
    arith = sum(r.speedup_32k for r in rows) / len(rows)
    out.write(f"\nCAPE32k vs 1-core: geo-mean {geo:.1f}x / arith-mean {arith:.1f}x\n")


def report_simd(out: TextIO) -> None:
    _section(out, "Figure 12 — SVE SIMD study")
    from repro.workloads.phoenix import PHOENIX_APPS

    rows = [compare_simd(cls) for cls in PHOENIX_APPS.values()]
    out.write(
        format_table(
            ["app", "SVE-128", "SVE-256", "SVE-512", "CAPE32k/SVE-512"],
            [
                [r.name, round(r.speedup(128), 2), round(r.speedup(256), 2),
                 round(r.speedup(512), 2), round(r.cape_vs_sve512, 2)]
                for r in rows
            ],
        )
    )
    out.write("\n")


def report_roofline(out: TextIO) -> None:
    _section(out, "Figure 10 — roofline placement")
    from repro.workloads.phoenix import Histogram, KMeans, LinearRegression, PCA

    for config in (CAPE32K, CAPE131K):
        roofline = Roofline(config)
        out.write(
            f"\n{config.name}: compute roof "
            f"{roofline.compute_roof_ops_per_s / 1e9:.0f} Gop/s, "
            f"ridge {roofline.ridge_intensity():.2f} op/B\n"
        )
        points = [
            roofline.measure(cls)
            for cls in (LinearRegression, Histogram, KMeans, PCA)
        ]
        out.write(
            format_table(
                ["app", "op/B", "Gop/s", "bound"],
                [
                    [p.name, round(p.intensity_ops_per_byte, 2),
                     round(p.throughput_ops_per_s / 1e9, 1), p.bound]
                    for p in points
                ],
            )
        )
        out.write("\n")


def export_json(directory: str, quick: bool) -> List[str]:
    """Write each artefact's data as a JSON file; returns the paths.

    The files carry the raw series behind the figures so downstream
    users can plot them without re-running the simulations.
    """
    os.makedirs(directory, exist_ok=True)
    written: List[str] = []

    def dump(name: str, payload) -> None:
        path = os.path.join(directory, name)
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        written.append(path)

    model = InstructionModel(width=32)
    dump(
        "table1_instructions.json",
        [
            {
                "inst": r.mnemonic,
                "category": r.category,
                "tt_entries": r.tt_entries,
                "reduction_cycles": r.reduction_cycles,
                "paper_cycles": r.paper_cycles,
                "measured_cycles": r.measured_cycles,
                "paper_energy_pj": r.paper_energy_pj,
                "measured_energy_pj": round(r.energy_per_lane_pj, 3),
            }
            for r in model.table_i()
        ],
    )
    circuit = CircuitModel()
    dump(
        "table2_microops.json",
        {
            op.value: {
                "delay_ps": round(circuit.timings[op].delay_s / PS, 1),
                "bs_energy_pj": (
                    None
                    if circuit.timings[op].bs_energy_j is None
                    else round(circuit.timings[op].bs_energy_j / PJ, 2)
                ),
                "bp_energy_pj": (
                    None
                    if circuit.timings[op].bp_energy_j is None
                    else round(circuit.timings[op].bp_energy_j / PJ, 2)
                ),
            }
            for op in Microop
        },
    )
    if not quick:
        dump(
            "fig11_phoenix.json",
            [
                {
                    "app": r.name,
                    "intensity": r.intensity,
                    "speedup_cape32k_vs_1core": round(r.speedup_32k, 3),
                    "speedup_cape131k_vs_2core": round(r.speedup_131k, 3),
                    "speedup_cape131k_vs_3core": round(r.speedup_131k_vs_3core, 3),
                }
                for r in run_phoenix_suite()
            ],
        )
        dump(
            "fig9_micro.json",
            [
                {
                    "bench": r.name,
                    "intensity": r.intensity,
                    "speedup_cape32k_vs_1core": round(r.speedup_32k, 3),
                    "speedup_cape131k_vs_2core": round(r.speedup_131k, 3),
                }
                for r in run_micro_suite()
            ],
        )
    return written


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the CAPE paper's evaluation as a text report."
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="calibration tables and area only (seconds instead of minutes)",
    )
    parser.add_argument(
        "--json",
        metavar="DIR",
        help="also export the raw series as JSON files into DIR",
    )
    args = parser.parse_args(argv)
    out = sys.stdout
    out.write("CAPE (HPCA 2021) reproduction — evaluation report\n")
    report_table_ii(out)
    report_table_i(out)
    report_area(out)
    if not args.quick:
        report_micro(out)
        report_phoenix(out)
        report_simd(out)
        report_roofline(out)
    if args.json:
        for path in export_json(args.json, args.quick):
            out.write(f"wrote {path}\n")
    out.write("\nDone. See EXPERIMENTS.md for the paper-vs-measured notes.\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
