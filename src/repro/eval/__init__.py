"""Evaluation harness: speedups, roofline, and table formatting.

Regenerates the paper's evaluation artefacts: per-workload speedups of
CAPE32k/CAPE131k over the area-equivalent 1/2/3-core baselines
(Figure 11), the SVE SIMD comparison (Figure 12), the microbenchmark
study (Figure 9), and the roofline analysis (Figure 10).
"""

from repro.eval.harness import (
    SpeedupRow,
    compare_simd,
    run_phoenix_suite,
    run_micro_suite,
)
from repro.eval.roofline import Roofline, RooflinePoint
from repro.eval.serving import (
    healing_table,
    latency_table,
    serving_report,
    wire_table,
)
from repro.eval.tables import format_table

__all__ = [
    "Roofline",
    "RooflinePoint",
    "SpeedupRow",
    "compare_simd",
    "format_table",
    "healing_table",
    "latency_table",
    "run_micro_suite",
    "run_phoenix_suite",
    "serving_report",
    "wire_table",
]
