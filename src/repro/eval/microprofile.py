"""Observer-driven profiling of the Fig. 9 kernel set.

The canonical per-kernel measurement used by the paper-figure benches:
one function runs the microbenchmark kernels (vvadd, vvmul, saxpy,
memcpy, dotprod, idxsrch) as real associative microcode on a bit-level
CSB, and :func:`profile_fig9_kernels` wraps each kernel in a
:class:`~repro.obs.ProfileReport` scope so its microop mix, cycle
breakdown, and energy come straight from the observer's counters — the
accounting ``benchmarks/bench_fig9_microbenchmarks.py`` and
``bench_table2_microops.py`` previously assembled by hand.

Because both backends charge microops through the same shared
:class:`~repro.csb.counter.MicroopStats`, the per-kernel totals here are
equal by construction across ``reference`` and ``bitplane`` — asserted
in ``tests/csb/test_backend_equiv.py`` and ``bench_table2_microops.py``.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from typing import Optional, Tuple

from repro.obs import Observer, ProfileReport

#: Kernel scope names, in execution order (setup covers vsetvl + loads).
FIG9_KERNELS = (
    "setup", "vvadd", "vvmul", "saxpy", "memcpy", "dotprod", "idxsrch",
    "store",
)


def run_fig9_kernels(
    backend: Optional[str],
    num_chains: int = 64,
    sew: int = 8,
    seed: int = 7,
    observer: Optional[Observer] = None,
    profile: Optional[ProfileReport] = None,
    plan_cache=True,
    superplan=False,
) -> Tuple[float, int]:
    """Run the Fig. 9 kernel set; returns ``(elapsed_seconds, checksum)``.

    With ``backend=`` set every supported intrinsic also executes as
    associative microcode on the CSB mirror and is cross-validated, so
    the wall time is dominated by microcode execution on the selected
    backend. The checksum must agree across backends. ``profile`` wraps
    each kernel in a :meth:`ProfileReport.kernel` scope. ``plan_cache``
    is the system's microcode plan-cache knob (``False`` re-walks the
    FSM per dispatch — the pre-plan behaviour, used by the plan-cache
    comparison bench). ``superplan`` additionally fuses the kernel set's
    mirror microcode into one cached whole-kernel trace (the checksum,
    cycles, and microop totals are identical either way).
    """
    import numpy as np

    from repro.engine.system import CAPEConfig, CAPESystem

    config = CAPEConfig("fig9-bit", num_chains=num_chains)
    cape = CAPESystem(
        config, backend=backend, observer=observer, plan_cache=plan_cache,
        superplan=superplan,
    )
    n = config.max_vl
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 1 << sew, n, dtype=np.int64)
    b = rng.integers(0, 1 << sew, n, dtype=np.int64)
    base_a, base_b = 0x10000, 0x80000
    cape.vmu.map_range(base_a, 4 * n)
    cape.vmu.map_range(base_b, 4 * n)
    cape.vmu.store(base_a, a)
    cape.vmu.store(base_b, b)

    scope = profile.kernel if profile is not None else (lambda name: nullcontext())

    start = time.perf_counter()
    with cape.superplan_scope():
        with scope("setup"):
            cape.vsetvl(n, sew=sew)
            cape.vle(1, base_a)
            cape.vle(2, base_b)
        with scope("vvadd"):
            cape.vadd(3, 1, 2)
        with scope("vvmul"):
            cape.vmul(4, 1, 2)
        with scope("saxpy"):
            cape.vadd(5, 4, 3)
        with scope("memcpy"):
            cape.vmv(6, 1)
        with scope("dotprod"):
            dot = cape.vredsum(4, signed=False)
        with scope("idxsrch"):
            cape.vmseq_vx(7, 1, int(a[0]))
            hits = cape.vmask_popcount(7)
        with scope("store"):
            cape.vse(5, base_b)
    elapsed = time.perf_counter() - start

    checksum = int(dot) + int(hits) + int(cape.read_vreg(5).sum())
    return elapsed, checksum


def profile_fig9_kernels(
    backend: Optional[str],
    num_chains: int = 64,
    sew: int = 8,
    seed: int = 7,
) -> ProfileReport:
    """Profile the kernel set under a fresh observer; returns the report."""
    observer = Observer()
    profile = ProfileReport(observer)
    run_fig9_kernels(
        backend,
        num_chains=num_chains,
        sew=sew,
        seed=seed,
        observer=observer,
        profile=profile,
    )
    return profile
