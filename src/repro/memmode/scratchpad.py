"""Scratchpad mode: the CSB as directly-addressed memory (Section VII).

The VMU accepts ordinary load/store requests from remote nodes and
performs physical address indexing into the CSB. Words are stored
row-wise: word ``w`` lives in row ``w // 32`` (wrapping through the
subarrays) at the 32 bitcells of one subarray row — Jeloka et al.'s row
reads take one cycle and row writes two.
"""

from __future__ import annotations

import numpy as np

from repro.common.bitutils import bits_to_ints, ints_to_bits
from repro.common.errors import CapacityError, ConfigError
from repro.csb.csb import CSB

#: Row read / write latency in CSB cycles (Jeloka et al., Section VII).
ROW_READ_CYCLES = 1
ROW_WRITE_CYCLES = 2


class Scratchpad:
    """Word-addressable scratchpad over a CSB.

    A subarray row (32 bitcells) holds one 32-bit word. Capacity is
    ``chains x subarrays x rows`` words.
    """

    def __init__(self, csb: CSB) -> None:
        self.csb = csb
        self._rows_per_subarray = csb.chains[0].subarrays[0].num_rows
        self.capacity_words = (
            csb.num_chains * csb.num_subarrays * self._rows_per_subarray
        )
        self.cycles = 0

    def _locate(self, word_index: int):
        if not 0 <= word_index < self.capacity_words:
            raise CapacityError(
                f"word {word_index} outside scratchpad capacity "
                f"{self.capacity_words}"
            )
        rows_per_chain = self.csb.num_subarrays * self._rows_per_subarray
        chain = word_index // rows_per_chain
        rest = word_index % rows_per_chain
        subarray = rest // self._rows_per_subarray
        row = rest % self._rows_per_subarray
        return chain, subarray, row

    def write_word(self, addr: int, value: int) -> None:
        """Store a 32-bit word at byte address ``addr`` (word-aligned)."""
        if addr % 4 != 0:
            raise ConfigError(f"address {addr:#x} is not word-aligned")
        chain, subarray, row = self._locate(addr // 4)
        bits = ints_to_bits(np.array([value]), 32)[:, 0]
        self.csb.chains[chain].subarrays[subarray].write_row(row, bits)
        self.cycles += ROW_WRITE_CYCLES

    def read_word(self, addr: int) -> int:
        """Load the 32-bit word at byte address ``addr``."""
        if addr % 4 != 0:
            raise ConfigError(f"address {addr:#x} is not word-aligned")
        chain, subarray, row = self._locate(addr // 4)
        bits = self.csb.chains[chain].subarrays[subarray].read_row(row)
        self.cycles += ROW_READ_CYCLES
        return int(bits_to_ints(bits[:, None])[0])

    def write_block(self, addr: int, values: np.ndarray) -> None:
        """Store consecutive words starting at ``addr``."""
        for i, value in enumerate(np.asarray(values)):
            self.write_word(addr + 4 * i, int(value))

    def read_block(self, addr: int, count: int) -> np.ndarray:
        """Load ``count`` consecutive words starting at ``addr``."""
        return np.array(
            [self.read_word(addr + 4 * i) for i in range(count)], dtype=np.int64
        )
