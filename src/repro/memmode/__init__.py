"""Memory-only modes for the CSB (Section VII).

CAPE's compute-storage block can be reconfigured by the chip as plain
storage whenever that is more useful than associative compute:

* :class:`Scratchpad` — a physically-indexed block of memory reachable
  through ordinary loads/stores routed to the VMU.
* :class:`KeyValueStore` — content-addressable key-value pairs; a chain
  holds 16 x 32 = 512 pairs, looked up with a single parallel search.
* :class:`VictimCache` — the CSB emulating a victim cache: lines stored
  row-wise (tags and data not bit-sliced), up to ten index bits, with
  tag-match searches driven by a small VCU microprogram.
"""

from repro.memmode.kvstore import KeyValueStore
from repro.memmode.scratchpad import Scratchpad
from repro.memmode.victim_cache import VictimCache

__all__ = ["KeyValueStore", "Scratchpad", "VictimCache"]
