"""Victim-cache mode (Section VII).

The CSB emulates a victim cache for an L2 (or an extra LLC slice): each
cache line — tag and data — is stored *row-wise* (not bit-sliced, since
lines are large). With 32 rows of subarrays and 32 bitcell rows per
subarray the CSB offers 1,024 line rows, i.e. up to ten index bits. An
access runs a few microinstructions that search a set's rows for a tag
match and, on a hit, command the VMU to deliver the block. Row reads take
one cycle and row writes two (Jeloka et al.).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.common.errors import ConfigError

#: Jeloka et al. row access latencies, in CSB cycles.
ROW_READ_CYCLES = 1
ROW_WRITE_CYCLES = 2
#: Tag-match microprogram: one search plus the hit/miss resolution.
TAG_SEARCH_CYCLES = 2


@dataclass
class VictimCacheStats:
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class VictimCache:
    """The CSB configured as a victim cache.

    Args:
        num_rows: line-capacity of the CSB in rows (1,024 for the
            published geometry: 32 subarray rows x 32 bitcell rows).
        line_bytes: cache line size of the cache being augmented.
        ways: associativity of the emulated victim cache; the row space
            is split into ``num_rows / ways`` sets (index bits <= 10).
    """

    def __init__(
        self, num_rows: int = 1024, line_bytes: int = 64, ways: int = 8
    ) -> None:
        if num_rows <= 0 or num_rows % ways != 0:
            raise ConfigError("num_rows must be a positive multiple of ways")
        self.num_rows = num_rows
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = num_rows // ways
        if self.num_sets > 1024:
            raise ConfigError("the CSB supports at most ten index bits")
        self._sets: Dict[int, "OrderedDict[int, np.ndarray]"] = {}
        self.stats = VictimCacheStats()
        self.cycles = 0

    def _locate(self, line_addr: int) -> Tuple[int, int]:
        index = line_addr % self.num_sets
        tag = line_addr // self.num_sets
        return index, tag

    def insert(self, addr: int, data: Optional[np.ndarray] = None) -> None:
        """Install a victim line (called by the L2 on eviction)."""
        line_addr = addr // self.line_bytes
        index, tag = self._locate(line_addr)
        lines = self._sets.setdefault(index, OrderedDict())
        if tag in lines:
            lines.move_to_end(tag)
        else:
            if len(lines) >= self.ways:
                lines.popitem(last=False)  # evict LRU
                self.stats.evictions += 1
            if data is None:
                data = np.zeros(self.line_bytes, dtype=np.uint8)
            lines[tag] = np.asarray(data, dtype=np.uint8)
        self.stats.insertions += 1
        self.cycles += TAG_SEARCH_CYCLES + ROW_WRITE_CYCLES

    def lookup(self, addr: int) -> Optional[np.ndarray]:
        """Probe on an L2 miss; returns the block on a hit.

        The probe runs concurrently with the LLC access in the host
        system, so only CSB-side cycles are accounted here.
        """
        line_addr = addr // self.line_bytes
        index, tag = self._locate(line_addr)
        lines = self._sets.get(index)
        self.cycles += TAG_SEARCH_CYCLES
        if lines is not None and tag in lines:
            lines.move_to_end(tag)
            self.stats.hits += 1
            self.cycles += ROW_READ_CYCLES
            return lines[tag].copy()
        self.stats.misses += 1
        return None

    @property
    def index_bits(self) -> int:
        """Address index bits consumed by the set mapping."""
        return int(np.log2(self.num_sets)) if self.num_sets > 1 else 0
