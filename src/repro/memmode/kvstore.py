"""Key-value storage mode (Section VII).

Keys and values are 32-bit; a pair occupies one column position at one of
16 row-pairs (key row, value row), so a 32-subarray chain stores
16 x 32 = 512 pairs — about half a million pairs in CAPE32k. Keys are
bit-sliced like vector operands, so a lookup is a bit-parallel search of
one key row across every chain simultaneously, followed by the bit-serial
tag combine; the matched column's value is then read out. The control
processor maintains the free list (as the paper suggests), and the VCU's
scan microprogram realises inserts into free slots.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.errors import CapacityError, ConfigError
from repro.csb.csb import CSB

#: Row pairs per chain: rows 0..31 hold 16 (key, value) row pairs.
ROW_PAIRS = 16


class KeyValueStore:
    """Content-addressable key-value store over a CSB."""

    def __init__(self, csb: CSB) -> None:
        self.csb = csb
        self.capacity = csb.num_chains * csb.num_cols * ROW_PAIRS
        # CP-side free list: (chain, row_pair, column) slots.
        self._free: List[Tuple[int, int, int]] = [
            (chain, pair, col)
            for chain in range(csb.num_chains)
            for pair in range(ROW_PAIRS)
            for col in range(csb.num_cols)
        ]
        self._free.reverse()  # pop() yields slots in natural order
        self._occupied: Dict[Tuple[int, int, int], int] = {}
        self.cycles = 0

    def __len__(self) -> int:
        return len(self._occupied)

    # ------------------------------------------------------------------

    def insert(self, key: int, value: int) -> None:
        """Insert (or update) a key-value pair.

        Raises:
            CapacityError: when no free slot remains.
        """
        limit = 1 << self.csb.num_subarrays
        if not 0 <= key < limit or not 0 <= value < limit:
            raise ConfigError(
                f"key/value must fit in {self.csb.num_subarrays} bits"
            )
        slot = self._find(key)
        if slot is None:
            if not self._free:
                raise CapacityError("key-value store is full")
            slot = self._free.pop()
        chain, pair, col = slot
        self.csb.chains[chain].write_element(2 * pair, col, key)
        self.csb.chains[chain].write_element(2 * pair + 1, col, value)
        self._occupied[slot] = key
        self.cycles += 2  # two element writes

    def lookup(self, key: int) -> Optional[int]:
        """Find a key; returns its value or ``None``.

        One bit-parallel search per row-pair, across all chains at once,
        plus the tag combine and a single element read on a hit.
        """
        slot = self._find(key)
        if slot is None:
            return None
        chain, pair, col = slot
        return self.csb.chains[chain].read_element(2 * pair + 1, col)

    def delete(self, key: int) -> bool:
        """Remove a key; returns True when it was present."""
        slot = self._find(key)
        if slot is None:
            return False
        del self._occupied[slot]
        self._free.append(slot)
        return True

    # ------------------------------------------------------------------

    def _find(self, key: int) -> Optional[Tuple[int, int, int]]:
        """Associative probe: search each row-pair until the key matches."""
        width = self.csb.num_subarrays
        key_bits = [(key >> i) & 1 for i in range(width)]
        for pair in range(ROW_PAIRS):
            row = 2 * pair
            keys = [{row: key_bits[i]} for i in range(width)]
            self.cycles += 1  # one bit-parallel search (all chains)
            for chain_id, chain in enumerate(self.csb.chains):
                chain.search_bit_parallel(keys)
                match = chain.combine_tags_serial()
                self.cycles += 0  # combine overlaps across chains
                for col in np.flatnonzero(match):
                    slot = (chain_id, pair, int(col))
                    if slot in self._occupied and self._occupied[slot] == key:
                        return slot
        return None
