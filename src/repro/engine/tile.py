"""Tiled-chip integration (paper Sections I, III, VII).

The paper envisions CAPE as "a standalone core that specializes in
associative computing, [which] can be integrated in a tiled multicore
chip alongside other types of compute engines". This module provides that
chip-level view:

* a :class:`TiledChip` hosting CAPE tiles and out-of-order core tiles on
  a shared HBM stack, with bandwidth contention between concurrently
  running tiles;
* mode switching for CAPE tiles: a tile not running vector work can be
  reconfigured as a scratchpad, key-value store, or victim cache serving
  a neighbouring core tile (Section VII).

Timing model for co-scheduled jobs: compute portions of different tiles
overlap fully; the HBM is shared, so each tile's memory portion stretches
by the number of tiles concurrently streaming.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from repro.baseline.ooo import OoOConfig, OoOCore, RunResult
from repro.baseline.trace import Trace
from repro.common.errors import ConfigError
from repro.csb.csb import CSB
from repro.engine.system import CAPEConfig, CAPESystem
from repro.memmode import KeyValueStore, Scratchpad, VictimCache
from repro.memory.hbm import HBM
from repro.memory.hierarchy import CacheHierarchy, HierarchyConfig


class TileMode(enum.Enum):
    """Operating mode of a CAPE tile."""

    COMPUTE = "compute"
    SCRATCHPAD = "scratchpad"
    KEY_VALUE = "key_value"
    VICTIM_CACHE = "victim_cache"


@dataclass
class CoScheduleResult:
    """Outcome of running jobs concurrently on a chip."""

    per_tile_seconds: Dict[str, float]
    chip_seconds: float


class CAPETile:
    """One CAPE tile with Section VII mode switching.

    In COMPUTE mode the tile exposes a :class:`CAPESystem`. The
    memory-only modes re-purpose a bit-level CSB of the same geometry
    (scaled down by ``memmode_chains`` for simulation tractability).
    """

    def __init__(
        self,
        name: str,
        config: CAPEConfig,
        memmode_chains: int = 4,
    ) -> None:
        self.name = name
        self.config = config
        self.mode = TileMode.COMPUTE
        self.system: Optional[CAPESystem] = CAPESystem(config)
        self._memmode_chains = memmode_chains
        self.storage: Optional[object] = None

    def set_mode(self, mode: TileMode) -> None:
        """Reconfigure the tile; storage modes build the backing CSB."""
        self.mode = mode
        if mode is TileMode.COMPUTE:
            self.system = CAPESystem(self.config)
            self.storage = None
            return
        self.system = None
        csb = CSB(
            num_chains=self._memmode_chains,
            num_subarrays=self.config.element_bits,
            num_cols=self.config.cols_per_chain,
        )
        if mode is TileMode.SCRATCHPAD:
            self.storage = Scratchpad(csb)
        elif mode is TileMode.KEY_VALUE:
            self.storage = KeyValueStore(csb)
        elif mode is TileMode.VICTIM_CACHE:
            self.storage = VictimCache(
                num_rows=self.config.cols_per_chain * self.config.element_bits,
                ways=8,
            )
        else:
            raise ConfigError(f"unknown tile mode {mode}")

    def require_compute(self) -> CAPESystem:
        if self.mode is not TileMode.COMPUTE or self.system is None:
            raise ConfigError(
                f"tile {self.name} is in {self.mode.value} mode, not compute"
            )
        return self.system


class CoreTile:
    """One out-of-order core tile (the baseline tile of Table III)."""

    def __init__(
        self,
        name: str,
        config: OoOConfig = OoOConfig(),
        hierarchy_config: HierarchyConfig = HierarchyConfig(),
        victim_cache: Optional[VictimCache] = None,
    ) -> None:
        self.name = name
        self.hierarchy = CacheHierarchy(
            hierarchy_config, victim_cache=victim_cache
        )
        self.core = OoOCore(config, self.hierarchy)

    def run(self, trace: Trace) -> RunResult:
        return self.core.run(trace)


class TiledChip:
    """A chip of CAPE and core tiles sharing one HBM stack.

    Args:
        cape_tiles: CAPE tile count (CAPE32k geometry each by default).
        core_tiles: out-of-order core tile count.
    """

    def __init__(
        self,
        cape_tiles: int = 1,
        core_tiles: int = 1,
        cape_config: Optional[CAPEConfig] = None,
    ) -> None:
        if cape_tiles < 0 or core_tiles < 0 or cape_tiles + core_tiles == 0:
            raise ConfigError("a chip needs at least one tile")
        from repro.engine.system import CAPE32K

        config = cape_config if cape_config is not None else CAPE32K
        self.hbm = HBM()
        self.cape: List[CAPETile] = [
            CAPETile(f"cape{i}", config) for i in range(cape_tiles)
        ]
        self.cores: List[CoreTile] = [
            CoreTile(f"core{i}") for i in range(core_tiles)
        ]

    def tile(self, name: str) -> Union[CAPETile, CoreTile]:
        for t in self.cape + self.cores:
            if t.name == name:
                return t
        raise ConfigError(f"no tile named {name!r}")

    def attach_victim_cache(self, cape_name: str, core_name: str) -> VictimCache:
        """Section VII: a CAPE tile backs a core tile's L2 as victim cache."""
        cape_tile = self.tile(cape_name)
        core_tile = self.tile(core_name)
        if not isinstance(cape_tile, CAPETile) or not isinstance(core_tile, CoreTile):
            raise ConfigError("victim-cache pairing needs a CAPE and a core tile")
        cape_tile.set_mode(TileMode.VICTIM_CACHE)
        core_tile.hierarchy.victim_cache = cape_tile.storage
        return cape_tile.storage

    # ------------------------------------------------------------------

    def co_schedule(self, jobs: Dict[str, Callable]) -> CoScheduleResult:
        """Run one job per tile "concurrently".

        Each job callable receives its tile and returns a standalone-run
        ``(compute_seconds, memory_seconds)`` split. Compute overlaps
        across tiles; memory portions contend for the shared HBM, so each
        tile's memory time stretches by the number of tiles with a
        non-trivial memory portion.
        """
        splits: Dict[str, tuple] = {}
        for name, job in jobs.items():
            splits[name] = job(self.tile(name))
        streams = sum(1 for _, mem in splits.values() if mem > 1e-12)
        contention = max(1, streams)
        per_tile = {
            name: compute + mem * contention
            for name, (compute, mem) in splits.items()
        }
        return CoScheduleResult(
            per_tile_seconds=per_tile,
            chip_seconds=max(per_tile.values()) if per_tile else 0.0,
        )


def cape_job(workload_factory) -> Callable:
    """Adapt a workload to a CAPE-tile job for :meth:`co_schedule`."""

    def job(tile: CAPETile) -> tuple:
        system = tile.require_compute()
        workload_factory().run_cape(system)
        freq = system.stats.frequency_hz
        compute = (
            system.stats.compute_cycles + system.stats.scalar_exposed_cycles
        ) / freq
        memory = system.stats.memory_cycles / freq
        return compute, memory

    return job


def core_job(trace_factory) -> Callable:
    """Adapt a scalar trace to a core-tile job for :meth:`co_schedule`."""

    def job(tile: CoreTile) -> tuple:
        trace = trace_factory()
        result = tile.run(trace)
        # Split the interval-model time: memory-bound share approximated
        # by the hierarchy's accumulated latency.
        mem_cycles = min(result.cycles, tile.hierarchy.total_cycles / 4)
        compute = (result.cycles - mem_cycles) / result.frequency_hz
        memory = mem_cycles / result.frequency_hz
        return compute, memory

    return job
