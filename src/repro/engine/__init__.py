"""CAPE's micro-architecture blocks and system model (Sections III, V, VI-C).

* :mod:`repro.engine.vcu` — the vector control unit: chain-controller
  FSM, truth-table memory/decoder, and global command distribution.
* :mod:`repro.engine.vmu` — the vector memory unit: sub-request
  splitting, chain interleaving, replica loads, coherence traffic.
* :mod:`repro.engine.cp` — the in-order control processor and its
  vector-shadow issue rules.
* :mod:`repro.engine.system` — the integrated CAPE system with the
  CAPE32k / CAPE131k presets and the intrinsics-level execution API used
  by the workloads.
"""

from repro.engine.cp import ControlProcessor
from repro.engine.system import (
    CAPE32K,
    CAPE131K,
    CAPEConfig,
    CAPESystem,
)
from repro.obs.stats import CAPERunStats
from repro.engine.tile import CAPETile, CoreTile, TiledChip, TileMode
from repro.engine.vcu import ChainControllerFSM, SequencerState, TTDecoder, VCU
from repro.engine.vmu import VMU, PageFault, VMUConfig

__all__ = [
    "CAPE131K",
    "CAPE32K",
    "CAPEConfig",
    "CAPERunStats",
    "CAPESystem",
    "CAPETile",
    "ChainControllerFSM",
    "ControlProcessor",
    "CoreTile",
    "PageFault",
    "SequencerState",
    "TTDecoder",
    "TiledChip",
    "TileMode",
    "VCU",
    "VMU",
    "VMUConfig",
]
