"""Vector Control Unit: chain controllers, sequencer FSM, TT decoder.

The VCU (Section V-D) turns each vector instruction into CSB commands:

* A *global control unit* holds the programmable truth-table store and,
  on dispatch, pushes the instruction's truth table to every chain
  controller over a pipelined H-tree (global command distribution — a
  constant number of cycles of overhead per vector instruction that grows
  with the chain count).
* Each *chain controller* walks the table with a five-state sequencer —
  (1) Idle, (2) Read TTM, (3) Generate comparand/mask for search,
  (4) Generate data/mask for update, (5) Reduce — tracking a ``upc``
  counter over TTM entries and a ``bit`` counter over element bits.
* The *truth-table decoder* shifts the stored row values into position
  and ORs them into the digital command word driven onto the chain's
  command bus (143 bits at the 32-bit configuration).

The system timing model uses :class:`VCU` for dispatch overhead and
instruction latency; :class:`ChainControllerFSM` and :class:`TTDecoder`
are the architectural models, unit-tested for sequencing fidelity.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.assoc.instruction_model import InstructionModel
from repro.assoc.truthtable import TruthTable, TTEntry, UpdateOp
from repro.common.errors import CapacityError, ConfigError
from repro.csb.chain import NUM_VREGS, MetaRow
from repro.csb.reduction import ReductionTree
from repro.plan import compile_chain_program, resolve_plan_cache

#: Command-bus width per chain at the 32-bit configuration (Section V-D).
COMMAND_BUS_BITS = 143


class SequencerState(enum.Enum):
    """The chain-controller FSM states (Figure 7, top centre)."""

    IDLE = "idle"
    READ_TTM = "read_ttm"
    GEN_SEARCH = "gen_search"
    GEN_UPDATE = "gen_update"
    REDUCE = "reduce"


@dataclass(frozen=True)
class CommandWord:
    """One decoded command driven onto a chain's command bus.

    Row-indexed bit masks over the subarray's 36 rows: ``search_mask``
    selects the driven rows and ``search_data`` their searched values;
    likewise for the update phase. ``subarray_select`` picks the active
    subarray (bit-serial) or all (bit-parallel).
    """

    search_mask: int = 0
    search_data: int = 0
    update_mask: int = 0
    update_data: int = 0
    update_next_mask: int = 0
    update_next_data: int = 0
    subarray_select: int = -1  # -1 = all subarrays (bit-parallel)
    accumulate: bool = False
    route_next: bool = False
    reduce: bool = False


class TTDecoder:
    """Decodes TTM entries into command words (Figure 7, top right).

    Binds the entry's symbolic operand roles to physical rows: register
    roles come from the dispatched instruction's fields, metadata roles
    from the fixed MetaRow assignment.
    """

    _META_ROWS = {
        "carry": int(MetaRow.CARRY),
        "mask": int(MetaRow.MASK),
        "flag": int(MetaRow.FLAG),
        "scratch": int(MetaRow.SCRATCH),
    }

    def __init__(self, vd: int, vs1: int, vs2: int = 0) -> None:
        for reg in (vd, vs1, vs2):
            if not 0 <= reg < NUM_VREGS:
                raise ConfigError(f"register {reg} out of range")
        self._binding = {"vd": vd, "vs1": vs1, "vs2": vs2, **self._META_ROWS}

    def row_of(self, role: str) -> int:
        try:
            return self._binding[role]
        except KeyError:
            raise ConfigError(f"unknown operand role {role!r}") from None

    def decode(self, entry: TTEntry, subarray: int) -> CommandWord:
        """Shift-and-OR an entry's stored bits into one command word."""
        search_mask = search_data = 0
        for role, bit in entry.search:
            row = self.row_of(role)
            search_mask |= 1 << row
            search_data |= bit << row
        update_mask = update_data = 0
        next_mask = next_data = 0
        for op in entry.updates:
            row = self.row_of(op.role)
            if op.next_subarray:
                next_mask |= 1 << row
                next_data |= op.value << row
            else:
                update_mask |= 1 << row
                update_data |= op.value << row
        return CommandWord(
            search_mask=search_mask,
            search_data=search_data,
            update_mask=update_mask,
            update_data=update_data,
            update_next_mask=next_mask,
            update_next_data=next_data,
            subarray_select=subarray,
            accumulate=entry.accumulate,
            route_next=entry.route_next,
            reduce=entry.reduce,
        )


class ChainControllerFSM:
    """The five-state sequencer walking a truth table over element bits.

    Args:
        table: the instruction's truth table (held in the controller's
            TTM after global distribution).
        decoder: operand-bound TT decoder.
        width: element width in bits.
        msb_first: walk bits from the most significant end (reductions,
            comparisons) instead of LSB-first (arithmetic).
    """

    def __init__(
        self,
        table: TruthTable,
        decoder: TTDecoder,
        width: int,
        msb_first: bool = False,
    ) -> None:
        if width <= 0:
            raise ConfigError("width must be positive")
        self.table = table
        self.decoder = decoder
        self.width = width
        self.msb_first = msb_first
        self.state = SequencerState.IDLE
        self.upc = 0
        self.bit = width - 1 if msb_first else 0

    def run(self) -> Iterator[Tuple[SequencerState, Optional[CommandWord]]]:
        """Generate the (state, command) sequence for one instruction.

        Yields one tuple per FSM transition; commands accompany the
        GEN_SEARCH / GEN_UPDATE / REDUCE states.
        """
        bits = (
            range(self.width - 1, -1, -1)
            if self.msb_first
            else range(self.width)
        )
        for bit in bits:
            self.bit = bit
            self.upc = 0
            for upc, entry in enumerate(self.table.entries):
                self.upc = upc
                self.state = SequencerState.READ_TTM
                yield self.state, None
                word = self.decoder.decode(entry, subarray=bit)
                if entry.has_search:
                    self.state = SequencerState.GEN_SEARCH
                    yield self.state, word
                if entry.has_update:
                    self.state = SequencerState.GEN_UPDATE
                    yield self.state, word
                if entry.reduce:
                    self.state = SequencerState.REDUCE
                    yield self.state, word
        self.state = SequencerState.IDLE
        yield self.state, None


#: Reference truth tables for the instructions whose microcode is fully
#: TTM-expressible (one table walk per bit). They mirror the executable
#: microcode of ``repro.assoc.algorithms``.
TRUTH_TABLES: Dict[str, TruthTable] = {
    "vadd.vv": TruthTable(
        "vadd.vv",
        (
            TTEntry(search=(("vs1", 0), ("vs2", 0), ("carry", 1))),
            TTEntry(search=(("vs1", 0), ("vs2", 1), ("carry", 0)), accumulate=True),
            TTEntry(search=(("vs1", 1), ("vs2", 0), ("carry", 0)), accumulate=True),
            TTEntry(search=(("vs1", 1), ("vs2", 1), ("carry", 1)), accumulate=True),
            TTEntry(search=(("vs1", 1), ("vs2", 1)), route_next=True),
            TTEntry(search=(("vs1", 1), ("carry", 1)), route_next=True, accumulate=True),
            TTEntry(
                search=(("vs2", 1), ("carry", 1)),
                route_next=True,
                accumulate=True,
                updates=(
                    UpdateOp("vd", 1),
                    UpdateOp("carry", 1, next_subarray=True),
                ),
            ),
        ),
    ),
    "vand.vv": TruthTable(
        "vand.vv",
        (
            TTEntry(
                search=(("vs1", 1), ("vs2", 1)),
                updates=(UpdateOp("vd", 1),),
            ),
        ),
    ),
    "vor.vv": TruthTable(
        "vor.vv",
        (
            TTEntry(
                search=(("vs1", 0), ("vs2", 0)),
                updates=(UpdateOp("vd", 0),),
            ),
        ),
    ),
    "vxor.vv": TruthTable(
        "vxor.vv",
        (
            TTEntry(search=(("vs1", 1), ("vs2", 0))),
            TTEntry(
                search=(("vs1", 0), ("vs2", 1)),
                accumulate=True,
                updates=(UpdateOp("vd", 1),),
            ),
        ),
    ),
    "vmslt.vv": TruthTable(
        "vmslt.vv",
        (
            TTEntry(search=(("vs1", 0), ("vs2", 1)), route_next=True),
            TTEntry(search=(("vs1", 0), ("carry", 1)), route_next=True, accumulate=True),
            TTEntry(
                search=(("vs2", 1), ("carry", 1)),
                route_next=True,
                accumulate=True,
                updates=(UpdateOp("carry", 1, next_subarray=True),),
            ),
        ),
    ),
    "vredsum.vs": TruthTable(
        "vredsum.vs",
        (TTEntry(search=(("vs1", 1),), reduce=True),),
    ),
}


def _word_to_key(mask: int, data: int, num_rows: int = 36) -> Dict[int, int]:
    """Expand a command word's (mask, data) pair into a row -> bit map."""
    key = {}
    for row in range(num_rows):
        if (mask >> row) & 1:
            key[row] = (data >> row) & 1
    return key


def _apply_table(
    chain,
    table: TruthTable,
    decoder: TTDecoder,
    width: int,
    msb_first: bool,
    preamble: Tuple[Tuple[int, int], ...],
):
    """Walk the FSM once, driving ``chain`` (live or recording).

    Returns ``(used_reduce, reduce_values)`` where ``reduce_values`` is
    the per-bit redsum partial list — plain ints on a live chain, plan
    tokens under a :class:`~repro.plan.RecordingChain`.
    """
    for row, value in preamble:
        chain.update_bit_parallel(row, value, use_tags=False)
    fsm = ChainControllerFSM(table, decoder, width, msb_first=msb_first)
    reduce_values = []
    used_reduce = False
    for state, word in fsm.run():
        if word is None:
            continue
        subarray = word.subarray_select % chain.num_subarrays
        if state is SequencerState.GEN_SEARCH:
            if word.reduce:
                continue  # the REDUCE state performs the echo search
            key = _word_to_key(word.search_mask, word.search_data)
            if word.route_next:
                chain.search_accumulate_next(
                    subarray, key, accumulate=word.accumulate
                )
            else:
                chain.search(subarray, key, accumulate=word.accumulate)
        elif state is SequencerState.GEN_UPDATE:
            local_key = _word_to_key(word.update_mask, word.update_data)
            next_key = _word_to_key(word.update_next_mask, word.update_next_data)
            if local_key and next_key:
                (l_row, l_val), = local_key.items()
                (n_row, n_val), = next_key.items()
                chain.update_prop(subarray, l_row, l_val, n_row, n_val)
            elif local_key:
                (l_row, l_val), = local_key.items()
                chain.update(subarray, l_row, l_val)
            elif next_key:
                (n_row, n_val), = next_key.items()
                chain.update_next(subarray, n_row, n_val)
        elif state is SequencerState.REDUCE:
            used_reduce = True
            key = _word_to_key(word.search_mask, word.search_data)
            (row, _), = key.items()
            reduce_values.append(chain.redsum_step(subarray, row))
    return used_reduce, reduce_values


def _fold_reduce(values) -> int:
    """Fold per-bit redsum partials MSB-first, as the FSM walk did."""
    total = 0
    for value in values:
        total = (total << 1) + int(value)
    return total


def execute_table(
    chain,
    table: TruthTable,
    decoder: TTDecoder,
    width: int,
    msb_first: bool = False,
    preamble: Tuple[Tuple[int, int], ...] = (),
    plan_cache=True,
):
    """Drive a bit-level chain from a truth table through the FSM path.

    This is the architectural execution route: the chain controller's
    sequencer walks the TTM, the decoder produces command words, and the
    commands are applied to the chain's row/column drivers — validating
    that the TTM encoding is sufficient to realise the associative
    algorithms (the executable microcode in ``repro.assoc.algorithms``
    is the reference).

    The walk is compiled once per (table, binding, width, direction,
    subarray count) into a :class:`~repro.plan.CompiledPlan` and replayed
    from the plan cache on repeats — identical state transitions and
    identical microop charges, without re-running the sequencer.

    Args:
        chain: the bit-level chain to drive.
        table: the instruction's truth table.
        decoder: operand-bound TT decoder.
        width: element width in bits.
        msb_first: bit-walk direction.
        preamble: (row, value) bulk initialisations issued before the
            table walk (the "+2" initialisation updates of Table I).
        plan_cache: ``True`` (default) for the process-wide plan cache,
            ``False``/``None`` to re-walk the FSM every call, or an
            explicit :class:`~repro.plan.PlanCache`.

    Returns:
        The accumulated redsum value when the table engages the
        reduction logic, else ``None``.
    """
    cache = resolve_plan_cache(plan_cache)
    if cache is not None:
        key = (
            "table", chain.num_subarrays, width, bool(msb_first), table,
            tuple(preamble), tuple(sorted(decoder._binding.items())),
        )
        try:
            hash(key)
        except TypeError:
            key = None  # exotic hand-built table; fall through to the walk
        if key is not None:
            plan = cache.get_or_compile(
                key,
                lambda: compile_chain_program(
                    chain.num_subarrays,
                    lambda rec: _apply_table(
                        rec, table, decoder, width, msb_first, preamble
                    ),
                ),
            )
            used_reduce, values = plan.replay(chain)
            return _fold_reduce(values) if used_reduce else None
    used_reduce, values = _apply_table(
        chain, table, decoder, width, msb_first, preamble
    )
    return _fold_reduce(values) if used_reduce else None


@dataclass
class VCUStats:
    """Dispatch counters, including the per-mnemonic instruction mix."""

    instructions: int = 0
    csb_cycles: int = 0
    distribution_cycles: int = 0
    energy_j: float = 0.0
    mix: Dict[str, int] = field(default_factory=dict)

    def count(self, mnemonic: str) -> None:
        self.mix[mnemonic] = self.mix.get(mnemonic, 0) + 1


class VCU:
    """Timing/energy model of the vector control unit.

    Args:
        num_chains: chains driven by this VCU (sets the distribution
            H-tree depth and the reduction tree).
        model: instruction timing/energy oracle.
    """

    #: Chains sharing one chain controller (chain groups, Figure 7).
    CHAINS_PER_CONTROLLER = 8

    def __init__(self, num_chains: int, model: InstructionModel) -> None:
        if num_chains <= 0:
            raise ConfigError("num_chains must be positive")
        self.num_chains = num_chains
        self.model = model
        self.reduction_tree = ReductionTree(num_chains)
        self.stats = VCUStats()
        #: Optional :class:`repro.obs.Observer` (set by the system) and a
        #: callable yielding the run's current cycle for trace timestamps.
        self.observer = None
        self.cycle_source = None

    def _observe(self, mnemonic: str, vl: int, cycles: int, total: int,
                 energy_j: float) -> None:
        obs = self.observer
        if obs is None or not obs.enabled:
            return
        obs.counter("vcu.instructions", opcode=mnemonic).inc()
        obs.counter("vcu.cycles", kind="csb").inc(cycles)
        obs.counter("vcu.cycles", kind="distribution").inc(
            self.distribution_cycles
        )
        obs.counter("vcu.energy_j").inc(energy_j)
        ts = self.cycle_source() if self.cycle_source is not None else 0.0
        obs.complete(mnemonic, "microcode", ts=ts, dur=total, tid="vcu", vl=vl)

    @property
    def num_controllers(self) -> int:
        return math.ceil(self.num_chains / self.CHAINS_PER_CONTROLLER)

    @property
    def distribution_cycles(self) -> int:
        """Pipelined H-tree latency from the global unit to controllers.

        One pipeline stage per H-tree level (4-ary), constant per vector
        instruction — and growing with CSB capacity, which is one of the
        scalability headwinds the paper observes for CAPE131k.
        """
        if self.num_controllers == 1:
            return 1
        return max(1, math.ceil(math.log(self.num_controllers, 4)))

    def dispatch(self, mnemonic: str, vl: int, reduction: bool = False) -> int:
        """Dispatch one vector instruction; returns CAPE cycles consumed.

        Args:
            mnemonic: the instruction.
            vl: active vector length (for energy accounting and the
                active-window masking).
            reduction: engage the global reduction tree (redsum and the
                compare post-processing across chains).
        """
        if vl < 0:
            raise CapacityError("vl must be non-negative")
        cycles = self.model.cycles(mnemonic)
        if reduction:
            cycles += self.reduction_tree.num_stages
        total = self.distribution_cycles + cycles
        self.stats.instructions += 1
        self.stats.count(mnemonic)
        self.stats.csb_cycles += cycles
        self.stats.distribution_cycles += self.distribution_cycles
        energy = self.model.energy_per_lane_j(mnemonic) * vl
        self.stats.energy_j += energy
        if self.observer is not None:
            self._observe(mnemonic, vl, cycles, total, energy)
        return total

    def dispatch_raw(
        self, cycles: int, vl: int, energy_per_lane_j: float = 0.0
    ) -> int:
        """Dispatch a microcoded sequence with explicit cycle/energy cost.

        Used for operations outside the Table I set whose cost is derived
        directly from their microoperation structure (e.g. the single-pass
        tag-bit pop count behind ``vcpop.m``).
        """
        total = self.distribution_cycles + cycles
        self.stats.instructions += 1
        self.stats.count("microcoded")
        self.stats.csb_cycles += cycles
        self.stats.distribution_cycles += self.distribution_cycles
        energy = energy_per_lane_j * vl
        self.stats.energy_j += energy
        if self.observer is not None:
            self._observe("microcoded", vl, cycles, total, energy)
        return total
