"""Bit-accurate execution engine behind :class:`~repro.engine.system.CAPESystem`.

By default the system simulator executes vector intrinsics *functionally*
(packed numpy rows) and charges timing from the instruction model — the
paper's gem5 methodology. With a backend selected, every supported compute
intrinsic is *also* executed as real microcode on a bit-level CSB and
cross-validated bit-exactly against the functional result, turning whole
application runs into end-to-end validation of the associative microcode.

The engine drives one of two execution shapes:

* ``backend="bitplane"``: the CSB's fused :attr:`~repro.csb.csb.CSB.ganged`
  chain — all chains execute each microoperation in one vectorized kernel
  (the hardware's lockstep, literally), fast enough for full workloads;
* ``backend="reference"``: the per-subarray model, looped over every
  chain in Python — the always-available ground truth, practical at the
  small configurations the test suite uses.

Both run identical microcode from :mod:`repro.assoc.algorithms`. A few
cases have no microcode (masked ``vmul``/``vrsub``, aliased destination
forms that the algorithms refuse); those fall back to the functional
result, which is synced into the CSB so the bit-level state never drifts.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.assoc import algorithms as alg
from repro.csb.chain import Chain
from repro.csb.csb import CSB
from repro.plan import compile_chain_program, resolve_plan_cache

#: Mnemonics whose microcode honours the MASK metadata rows.
MASKABLE = {
    "vadd.vv",
    "vsub.vv",
    "vand.vv",
    "vor.vv",
    "vxor.vv",
    "vadd.vx",
    "vmv.v.x",
    "vmv.v.v",
}

#: Mnemonics producing a mask (only bit 0 of the destination is defined).
MASK_RESULTS = {"vmseq.vx", "vmseq.vv", "vmslt.vv", "vmsltu.vv", "vmsne.vv"}

#: Every mnemonic :func:`run_microcode` can lower. Superplan recording
#: defers exactly these forms (minus the unsupported/aliased cases the
#: engine would refuse); anything else flushes and takes the live path.
SUPPORTED_MICROCODE = frozenset(
    {
        "vadd.vv", "vsub.vv", "vand.vv", "vor.vv", "vxor.vv",
        "vadd.vx", "vrsub.vx", "vmul.vv", "vmv.v.x", "vmv.v.v",
        "vmerge.vv", "vmseq.vx", "vmseq.vv", "vmslt.vv", "vmsltu.vv",
        "vmsne.vv", "vmin.vv", "vmax.vv", "vminu.vv", "vmaxu.vv",
        "vsll.vi", "vsrl.vi", "vsra.vi",
    }
)


def microcode_unsupported_reason(
    mnemonic: str,
    vd: Optional[int],
    vs1: Optional[int],
    vs2: Optional[int],
    mask_reg: Optional[int],
) -> Optional[str]:
    """Why this intrinsic form has no microcode path (``None`` = it has).

    The exact predicate :meth:`BitEngine.execute` raises
    :class:`UnsupportedMicrocode` for, factored out so superplan
    recording and gang deferral classify forms identically to live
    execution without running anything.
    """
    if mnemonic not in SUPPORTED_MICROCODE and mnemonic != "vredsum.vs":
        return f"unsupported mnemonic {mnemonic}"
    if mask_reg is not None and mnemonic not in MASKABLE and mnemonic != "vmerge.vv":
        return f"masked {mnemonic} has no microcode"
    sources = [r for r in (vs1, vs2) if r is not None]
    if len(set(sources)) != len(sources) or (vd is not None and vd in sources):
        return f"{mnemonic} with aliased operands"
    return None


class UnsupportedMicrocode(Exception):
    """Raised when an intrinsic form has no microcode implementation."""


class BitEngine:
    """A bit-level CSB mirror of the functional vector state.

    Args:
        num_chains: chains in the CSB (the config's chain count).
        num_subarrays: bit-slices per chain (the element width).
        num_cols: columns per chain.
        backend: ``"bitplane"`` (ganged, vectorized) or ``"reference"``
            (per-chain Python loop).
        observer: optional :class:`repro.obs.Observer` forwarded to the
            CSB's microop counters (survives :meth:`reset`).
        fault_injector: optional :class:`repro.faults.FaultInjector`;
            forwarded to every CSB this engine builds, so injected CSB
            faults survive :meth:`reset` (silicon defects do not heal
            between jobs).
        plan_cache: ``True`` for the process-wide
            :data:`~repro.plan.cache.GLOBAL_PLAN_CACHE`, ``False``/``None``
            to re-walk the microcode on every dispatch, or an explicit
            :class:`~repro.plan.PlanCache`.
    """

    #: Live engines execute eagerly; :class:`~repro.gang.DeferredBitEngine`
    #: overrides this so ``CAPESystem._bitexec`` skips the immediate
    #: cross-validation peek and lets gang replay check the mirror later.
    deferred = False

    def __init__(
        self,
        num_chains: int,
        num_subarrays: int,
        num_cols: int,
        backend: str = "bitplane",
        observer=None,
        fault_injector=None,
        plan_cache=None,
    ) -> None:
        self.backend = backend
        self.observer = observer
        self.fault_injector = fault_injector
        self._plan_cache = resolve_plan_cache(plan_cache)
        self._shape = (num_chains, num_subarrays, num_cols)
        self.csb = CSB(
            num_chains, num_subarrays, num_cols, backend=backend,
            observer=observer, fault_injector=fault_injector,
        )
        self._window = (self.csb.max_vl, 0)

    def reset(self) -> None:
        """Zero the bit-level state (fresh CSB, full window)."""
        self.csb = CSB(
            *self._shape, backend=self.backend, observer=self.observer,
            fault_injector=self.fault_injector,
        )
        self._window = (self.csb.max_vl, 0)

    def repair(self, injector) -> List[int]:
        """Remap permanently faulty chains onto spares; return them.

        Asks the injector which chains carry live permanent faults and
        retires as many as the spare budget allows. A remapped chain's
        faults stop being asserted (the spare is clean silicon); the
        caller re-syncs register state and charges the remap cost.
        """
        remapped = []
        for chain in injector.faulty_chains():
            if injector.remap_chain(chain):
                remapped.append(chain)
        return remapped

    def attach_observer(self, observer) -> None:
        """(Re)bind the observer on the live CSB and future resets."""
        self.observer = observer
        self.csb.stats.attach_observer(observer, backend=self.csb.backend_name)

    @property
    def targets(self) -> List[Chain]:
        """The chains microcode runs on: the single ganged chain under
        the bitplane backend, every chain under the reference backend."""
        if self.csb.ganged is not None:
            return [self.csb.ganged]
        return self.csb.chains

    def set_window(self, vl: int, vstart: int) -> None:
        """Program the active window (cached; cheap to call per-op)."""
        if (vl, vstart) != self._window:
            self.csb.set_vector_length(vl, vstart)
            self._window = (vl, vstart)

    def sync_register(self, vreg: int, values: np.ndarray) -> None:
        """Mirror one functional register row into the CSB (host-side)."""
        self.csb.poke_vector(vreg, values)

    def peek(self, vreg: int) -> np.ndarray:
        """Full-width unsigned view of one register, element order."""
        return self.csb.peek_vector(vreg)

    def popcount(self, vreg: int, vl: int, vstart: int) -> int:
        """Bit-level ``vcpop.m``: echo-search bit 0, pop-count the tags."""
        self.set_window(vl, vstart)
        total = 0
        for chain in self.targets:
            tags = chain.backend.search(0, {vreg: 1})
            total += int((tags & chain.active_columns).sum())
        return total

    def execute(
        self,
        mnemonic: str,
        vd: Optional[int] = None,
        vs1: Optional[int] = None,
        vs2: Optional[int] = None,
        scalar: Optional[int] = None,
        mask_reg: Optional[int] = None,
        width: int = 32,
        vl: int = 0,
        vstart: int = 0,
    ):
        """Run one intrinsic's microcode on the bit-level CSB.

        Sources must already be mirrored in the CSB (the system keeps
        every written register synced). Returns the reduction scalar for
        ``vredsum.vs``, otherwise ``None`` (the destination lands in the
        CSB).

        Raises:
            UnsupportedMicrocode: the form has no microcode (the caller
                falls back to the functional result).
            ConfigError: the algorithms refused the operand combination
                (e.g. an aliased destination) — treated the same way.
        """
        self.set_window(vl, vstart)
        masked = mask_reg is not None
        if masked and mnemonic not in MASKABLE and mnemonic != "vmerge.vv":
            raise UnsupportedMicrocode(mnemonic)
        # The associative algorithms assume distinct operand rows: two
        # sources on one row would collapse the search key, and a
        # destination aliasing a source corrupts the operand mid-walk.
        sources = [r for r in (vs1, vs2) if r is not None]
        if len(set(sources)) != len(sources) or (
            vd is not None and vd in sources
        ):
            raise UnsupportedMicrocode(f"{mnemonic} with aliased operands")

        if mnemonic == "vredsum.vs":
            return self.csb.redsum(vs1, width)

        cache = self._plan_cache
        plan = None
        if cache is not None:
            key = (
                "op", mnemonic, width, self._shape[1], vd, vs1, vs2,
                None if scalar is None else int(scalar), mask_reg, masked,
            )
            plan = cache.get_or_compile(
                key,
                lambda: compile_chain_program(
                    self._shape[1],
                    lambda rec: run_microcode(
                        rec, mnemonic, vd, vs1, vs2, scalar, mask_reg,
                        width, masked,
                    ),
                ),
                observer=self.observer,
            )

        stats = self.csb.stats
        try:
            for i, chain in enumerate(self.targets):
                # The VCU broadcasts one microop sequence to every chain
                # in lockstep; walking the chains in Python charges it
                # once (the reference backend mutes chains after the
                # first, matching the ganged bitplane tally).
                stats.muted = i > 0
                if plan is not None:
                    plan.replay(chain)
                else:
                    run_microcode(
                        chain, mnemonic, vd, vs1, vs2, scalar, mask_reg,
                        width, masked,
                    )
        finally:
            stats.muted = False
        return None

    def _execute_on(
        self,
        chain: Chain,
        mnemonic: str,
        vd: Optional[int],
        vs1: Optional[int],
        vs2: Optional[int],
        scalar: Optional[int],
        mask_reg: Optional[int],
        width: int,
        masked: bool,
    ) -> None:
        """Run one intrinsic's microcode on a single chain."""
        run_microcode(
            chain, mnemonic, vd, vs1, vs2, scalar, mask_reg, width, masked
        )


def run_microcode(
    chain,
    mnemonic: str,
    vd: Optional[int],
    vs1: Optional[int],
    vs2: Optional[int],
    scalar: Optional[int],
    mask_reg: Optional[int],
    width: int,
    masked: bool,
) -> None:
    """Drive one intrinsic's microcode against a chain-shaped target.

    ``chain`` is either a live :class:`~repro.csb.chain.Chain` (direct
    execution) or a :class:`~repro.plan.RecordingChain` (plan
    compilation) — the microcode only touches the shared chain surface,
    which is what makes record-once/replay-many sound.
    """
    if masked and mnemonic != "vmerge.vv":
        alg.broadcast_mask(chain, mask_reg)
    if mnemonic in ("vadd.vv", "vsub.vv"):
        func = alg.vadd_vv if mnemonic == "vadd.vv" else alg.vsub_vv
        func(chain, vd, vs1, vs2, width, masked)
    elif mnemonic in ("vand.vv", "vor.vv", "vxor.vv"):
        func = {
            "vand.vv": alg.vand_vv,
            "vor.vv": alg.vor_vv,
            "vxor.vv": alg.vxor_vv,
        }[mnemonic]
        func(chain, vd, vs1, vs2, masked)
    elif mnemonic == "vadd.vx":
        alg.vadd_vx(chain, vd, vs1, int(scalar), width, masked)
    elif mnemonic == "vrsub.vx":
        alg.vrsub_vx(chain, vd, vs1, int(scalar), width)
    elif mnemonic == "vmul.vv":
        alg.vmul_vv(chain, vd, vs1, vs2, width)
    elif mnemonic == "vmv.v.x":
        alg.vmv_vx(chain, vd, int(scalar), masked)
    elif mnemonic == "vmv.v.v":
        alg.vmv_vv(chain, vd, vs1, masked)
    elif mnemonic == "vmerge.vv":
        alg.vmerge_vvm(chain, vd, vs1, vs2, mask_reg)
    elif mnemonic == "vmseq.vx":
        alg.vmseq_vx(chain, vd, vs1, int(scalar), width)
    elif mnemonic == "vmseq.vv":
        alg.vmseq_vv(chain, vd, vs1, vs2, width)
    elif mnemonic == "vmslt.vv":
        alg.vmslt_vv(chain, vd, vs1, vs2, width)
    elif mnemonic == "vmsltu.vv":
        alg.vmsltu_vv(chain, vd, vs1, vs2, width)
    elif mnemonic == "vmsne.vv":
        alg.vmsne_vv(chain, vd, vs1, vs2, width)
    elif mnemonic in ("vmin.vv", "vmax.vv", "vminu.vv", "vmaxu.vv"):
        func = {
            "vmin.vv": alg.vmin_vv,
            "vmax.vv": alg.vmax_vv,
            "vminu.vv": alg.vminu_vv,
            "vmaxu.vv": alg.vmaxu_vv,
        }[mnemonic]
        func(chain, vd, vs1, vs2, width)
    elif mnemonic in ("vsll.vi", "vsrl.vi", "vsra.vi"):
        func = {
            "vsll.vi": alg.vsll_vi,
            "vsrl.vi": alg.vsrl_vi,
            "vsra.vi": alg.vsra_vi,
        }[mnemonic]
        func(chain, vd, vs1, int(scalar), width)
    else:
        raise UnsupportedMicrocode(mnemonic)
