"""Control Processor issue model (Sections III, V-B).

The CP is a small dual-issue in-order RISC-V core. Vector instructions
are offloaded at commit to the VCU/VMU and the CP tracks one outstanding
vector instruction: in its shadow, independent scalar instructions may
issue and execute (but not commit), while a subsequent *vector*
instruction stalls at issue until the outstanding one commits.

This module accounts that overlap: scalar work submitted while a vector
instruction is outstanding hides under it (up to its duration); vector
instructions serialise against each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.baseline.inorder import InOrderConfig, InOrderCore, control_processor_hierarchy
from repro.baseline.trace import TraceBlock
from repro.common.errors import ConfigError


@dataclass
class CPStats:
    """Cycle breakdown of the control processor."""

    scalar_cycles: float = 0.0
    hidden_scalar_cycles: float = 0.0
    vector_cycles: float = 0.0

    @property
    def exposed_scalar_cycles(self) -> float:
        return self.scalar_cycles - self.hidden_scalar_cycles


class ControlProcessor:
    """The in-order scalar core with vector-shadow accounting."""

    def __init__(self, config: Optional[InOrderConfig] = None) -> None:
        self.core = InOrderCore(
            config if config is not None else InOrderConfig(),
            control_processor_hierarchy(),
        )
        self.stats = CPStats()
        self._shadow_budget = 0.0  # cycles of the outstanding vector op

    @property
    def frequency_hz(self) -> float:
        return self.core.config.frequency_hz

    def vector_issue(self, cycles: float) -> float:
        """Account one vector instruction of ``cycles`` duration.

        Returns the cycles actually added to the timeline. A subsequent
        vector instruction stalls until this one commits, so vector time
        accumulates fully; the instruction's duration then becomes shadow
        budget for later scalar work.
        """
        if cycles < 0:
            raise ConfigError("vector cycles must be non-negative")
        self.stats.vector_cycles += cycles
        self._shadow_budget = cycles
        return cycles

    def scalar_block(self, block: TraceBlock) -> float:
        """Account a block of scalar work on the CP.

        Returns the *exposed* cycles added to the timeline after hiding
        what fits in the current vector shadow.
        """
        cycles = self.core.block_cycles(block)
        self.stats.scalar_cycles += cycles
        hidden = min(cycles, self._shadow_budget)
        self._shadow_budget -= hidden
        self.stats.hidden_scalar_cycles += hidden
        return cycles - hidden

    def scalar_ops(
        self,
        int_ops: int = 0,
        branches: int = 0,
        loads=None,
        stores=None,
        branch_miss_rate: float = 0.0,
        dependent_loads: int = 0,
        name: str = "scalar",
    ) -> float:
        """Convenience wrapper building a block from raw counts."""
        import numpy as np

        block = TraceBlock(
            name=name,
            int_ops=int_ops,
            branches=branches,
            branch_miss_rate=branch_miss_rate,
            loads=np.asarray(loads if loads is not None else [], dtype=np.int64),
            stores=np.asarray(stores if stores is not None else [], dtype=np.int64),
            dependent_loads=dependent_loads,
        )
        return self.scalar_block(block)
