"""The CAPE system model: CP + VCU + VMU + CSB (Sections III, VI-C).

This is the reproduction's analogue of the paper's gem5 integration: a
cycle-approximate system simulator where vector instructions execute
*functionally* on packed numpy vectors and are *charged* latency/energy
from the instruction model (Table I), the VCU command-distribution model,
the VMU/HBM transfer model, and the control processor's issue rules. The
bit-level CSB of :mod:`repro.csb` validates the functional semantics in
the test suite; stepping every subarray for whole applications is what
the instruction-level model exists to avoid — exactly the paper's
methodology split (Section VI).

Presets: ``CAPE32K`` (1,024 chains = 32,768 lanes, area-equivalent to one
out-of-order tile) and ``CAPE131K`` (4,096 chains = 131,072 lanes, two
tiles).
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.assoc.instruction_model import InstructionModel
from repro.baseline.trace import TraceBlock
from repro.circuits.area import AreaModel
from repro.circuits.microops import CircuitModel
from repro.common.bitutils import to_signed, to_unsigned
from repro.common.errors import (
    CapacityError,
    ConfigError,
    CSBCapacityError,
    ProtocolError,
)
from repro.common.bitutils import ints_to_bits
from repro.engine.bitexec import (
    MASK_RESULTS,
    BitEngine,
    UnsupportedMicrocode,
    microcode_unsupported_reason,
    run_microcode,
)
from repro.csb.bitplane import BitplaneBackend
from repro.plan import compile_chain_program
from repro.plan.superplan import (
    fuse_plans,
    resolve_superplan_mode,
    superplan_key,
)
from repro.engine.cp import ControlProcessor, CPStats
from repro.engine.vcu import VCU, VCUStats
from repro.engine.vmu import VMU, PageFault, VMUConfig, VMUStats
from repro.memory.hbm import HBM
from repro.memory.mainmem import WordMemory
from repro.obs.observer import NULL_OBSERVER
from repro.obs.stats import CAPERunStats as _CAPERunStats

#: CP cycles charged per page-fault service (trap + OS page-in bookkeeping;
#: the HBM fill itself is charged through the VMU on the retried transfer).
PAGE_FAULT_HANDLER_CYCLES = 5000

#: Energy per transferred byte on the HBM interface (~3.9 pJ/bit).
HBM_ENERGY_PER_BYTE_J = 31.2e-12

#: Cycles charged for re-syncing the mirror CSB and retrying one
#: intrinsic's microcode after a detected bit-level divergence.
FAULT_RETRY_CYCLES = 64

#: Cycles charged per chain remapped onto a spare (copy the chain's
#: register columns through the VMU path and reprogram the steering).
CHAIN_REMAP_CYCLES = 256


@dataclass(frozen=True)
class CAPEConfig:
    """A CAPE design point.

    Attributes:
        name: label (CAPE32k / CAPE131k).
        num_chains: chains in the CSB.
        cols_per_chain: elements per chain (32).
        element_bits: element width / subarrays per chain (32).
    """

    name: str
    num_chains: int
    cols_per_chain: int = 32
    element_bits: int = 32

    def __post_init__(self) -> None:
        if self.num_chains <= 0:
            raise ConfigError("num_chains must be positive")

    @property
    def max_vl(self) -> int:
        """MAX_VL: the lane count (chains x columns)."""
        return self.num_chains * self.cols_per_chain

    def area_mm2(self, area_model: Optional[AreaModel] = None) -> float:
        model = area_model if area_model is not None else AreaModel()
        return model.cape_tile_area_mm2(self.num_chains)


CAPE32K = CAPEConfig(name="CAPE32k", num_chains=1024)
CAPE131K = CAPEConfig(name="CAPE131k", num_chains=4096)


def __getattr__(name: str):
    """Deprecated deep-import shim: ``CAPERunStats`` now lives in
    :mod:`repro.obs.stats` (import it from :mod:`repro.api` or
    :mod:`repro.obs`)."""
    if name == "CAPERunStats":
        from repro.common.deprecation import warn_once_per_site

        warn_once_per_site(
            "importing CAPERunStats from repro.engine.system is deprecated; "
            "use repro.api (or repro.obs.stats)",
        )
        return _CAPERunStats
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class CAPESystem:
    """Executable CAPE system with an intrinsics-level API.

    Vector state is held functionally (one numpy row per architectural
    vector register, unsigned modulo 2^32); every intrinsic updates the
    state and charges cycles/energy. Typical use::

        cape = CAPESystem(CAPE32K)
        cape.memory.write_words(0x1000, data)
        vl = cape.vsetvl(len(data))
        cape.vle(1, 0x1000)
        cape.vadd_vx(2, 1, 5)
        cape.vse(2, 0x8000)
        stats = cape.stats

    Args:
        config: design point (CAPE32K / CAPE131K).
        memory: functional main memory (fresh 64 MiB store by default).
        accounting: instruction cycle accounting — ``"paper"`` (Table I
            closed forms) or ``"measured"`` (emulated microcode counts).
        backend: optional bit-accurate execution backend. ``None``
            (default) runs purely functionally; ``"bitplane"`` or
            ``"reference"`` additionally executes every supported compute
            intrinsic as microcode on a bit-level CSB and raises
            :class:`~repro.common.errors.ProtocolError` if the two ever
            diverge (see :mod:`repro.engine.bitexec`). Charged cycles and
            energy are identical in all modes — charging always comes
            from the instruction model.
        observer: optional :class:`repro.obs.Observer`; counters and
            trace events flow from every layer (VCU, VMU, CSB backend,
            paging, spill path) into it. Defaults to the shared null
            observer, which costs one attribute check per charge.
        fault_injector: optional :class:`repro.faults.FaultInjector`
            bound via :meth:`attach_fault_injector`; with none attached
            every injection hook is a single ``None`` check.
        plan_cache: microcode plan caching for the bit-accurate backend —
            ``True`` (default) shares the process-wide
            :data:`~repro.plan.cache.GLOBAL_PLAN_CACHE`, ``False`` re-walks
            the microcode on every dispatch, or pass an explicit
            :class:`~repro.plan.PlanCache`. Plans are pure (identical
            results, cycles, and ``csb.microops``), so this is purely a
            host-speed knob.
    """

    NUM_VREGS = 32

    def __init__(
        self,
        config: CAPEConfig = CAPE32K,
        memory: Optional[WordMemory] = None,
        accounting: str = "paper",
        circuit: Optional[CircuitModel] = None,
        backend: Optional[str] = None,
        observer=None,
        fault_injector=None,
        plan_cache=True,
        superplan=False,
    ) -> None:
        self.config = config
        self.circuit = circuit if circuit is not None else CircuitModel()
        self.model = InstructionModel(
            self.circuit, width=config.element_bits, accounting=accounting
        )
        self.memory = memory if memory is not None else WordMemory()
        self.hbm = HBM()
        self.cp = ControlProcessor()
        self.vcu = VCU(config.num_chains, self.model)
        # Sub-requests must not cover more elements than there are
        # chains (Section V-E); small test configurations shrink them.
        vmu_config = VMUConfig(
            sub_request_bytes=min(512, config.num_chains * 4)
        )
        self.vmu = VMU(
            config.num_chains,
            self.hbm,
            self.memory,
            vmu_config,
            frequency_hz=self.circuit.frequency_hz,
        )
        self.vregs = np.zeros((self.NUM_VREGS, config.max_vl), dtype=np.int64)
        self.vl = config.max_vl
        self.vstart = 0
        self.stats = _CAPERunStats(frequency_hz=self.circuit.frequency_hz)
        self._memory_energy_j = 0.0
        self._accounting = accounting
        #: Selected element width (SEW). Narrower elements keep one lane
        #: per chain column but walk fewer bit-slices, so bit-serial
        #: instructions speed up proportionally (Section V-A: "element
        #: types smaller than 32 bits ... handled by the microcode").
        self.sew = config.element_bits
        self._models = {config.element_bits: self.model}
        self._mod = np.int64(1) << self.sew
        #: Architectural registers written since construction/reset —
        #: the register-file occupancy the runtime schedules against.
        self._written_vregs: set = set()
        self._plan_cache = plan_cache
        #: Whole-kernel superplan mode (True / False / "auto"): inside a
        #: :meth:`superplan_scope`, eligible intrinsics defer their
        #: mirror microcode into one fused cached trace (docs/PERFORMANCE.md).
        self.superplan = resolve_superplan_mode(superplan)
        self._sp_session: Optional[list] = None
        self._sp_window: Optional[tuple] = None
        #: vd -> functional row snapshot at its last deferred write.
        self._sp_expected: dict = {}
        self._bitengine: Optional[BitEngine] = None
        self.fault_injector = None
        self.observer = NULL_OBSERVER
        self.attach_observer(observer)
        if fault_injector is not None:
            self.attach_fault_injector(fault_injector)
        if backend is not None:
            self.set_backend(backend)

    @property
    def backend(self) -> Optional[str]:
        """Name of the active bit-accurate backend (None = functional)."""
        return self._bitengine.backend if self._bitengine is not None else None

    def attach_observer(self, observer) -> None:
        """Thread one observer through every instrumented layer.

        ``None`` (re)binds the shared null observer. The VCU gets a
        ``cycle_source`` so its microcode trace events are stamped with
        the run's simulated-cycle timeline.
        """
        self.observer = observer if observer is not None else NULL_OBSERVER
        live = self.observer if self.observer.enabled else None
        self.vcu.observer = live
        self.vcu.cycle_source = lambda: self.stats.cycles
        self.vmu.observer = live
        if self.fault_injector is not None:
            self.fault_injector.observer = live
        if self._bitengine is not None:
            self._bitengine.attach_observer(self.observer)

    def attach_fault_injector(self, injector) -> None:
        """Bind a per-device fault injector to every injection site.

        Threads the injector into the VMU transfer paths, the cycle
        charging path (whole-device death), and — rebuilding the mirror
        CSB if a backend is active — the execution backend. Injector
        state persists across :meth:`reset`, so faults carry over between
        jobs on the same device; pass ``None`` to detach.
        """
        self._superplan_flush()
        self.fault_injector = injector
        self.vmu.fault_injector = injector
        if injector is not None and injector.observer is None:
            injector.observer = self.observer if self.observer.enabled else None
        if self._bitengine is not None:
            backend = self._bitengine.backend
            self._bitengine = None
            self.set_backend(backend)

    def set_backend(self, backend: Optional[str]) -> None:
        """Select the bit-accurate execution backend at runtime.

        Switching to a backend builds a bit-level CSB and mirrors every
        live register into it, so cross-validation can start mid-program;
        ``None`` drops back to purely functional execution.
        """
        if backend is None:
            self._superplan_flush()
            self._bitengine = None
            return
        if self._bitengine is not None and self._bitengine.backend == backend:
            return
        self._superplan_flush()
        self._bitengine = BitEngine(
            self.config.num_chains,
            self.config.element_bits,
            self.config.cols_per_chain,
            backend=backend,
            observer=self.observer,
            fault_injector=self.fault_injector,
            plan_cache=self._plan_cache,
        )
        for vreg in self._written_vregs:
            self._bitengine.sync_register(vreg, self.vregs[vreg])

    def reset(self, clear_memory: bool = False) -> None:
        """Restore architectural and stats state without reconstruction.

        Re-arms the system for a fresh run — vector registers, vl/vstart,
        SEW, cycle/energy stats, CP shadow, VCU/VMU counters, and the
        paging model all return to their initial state. Main-memory
        *contents* are preserved unless ``clear_memory`` is set, so a
        device pool can reuse one system (and its preloaded data) across
        jobs instead of rebuilding it per run.
        """
        self._superplan_flush()
        self.vregs.fill(0)
        self.vl = self.config.max_vl
        self.vstart = 0
        if self.sew != self.config.element_bits:
            self.set_sew(self.config.element_bits)
        self.stats = _CAPERunStats(frequency_hz=self.circuit.frequency_hz)
        self._memory_energy_j = 0.0
        self._written_vregs.clear()
        self.cp.stats = CPStats()
        self.cp._shadow_budget = 0.0
        self.vcu.stats = VCUStats()
        self.vmu.stats = VMUStats()
        self.vmu._mapped_pages = None
        if self._bitengine is not None:
            self._bitengine.reset()
        if clear_memory:
            self.memory._words.fill(0)

    def set_sew(self, bits: int) -> None:
        """Select the element width (8, 16, or the full hardware width).

        Reconfigures the microcode sequences: the truth-table walks cover
        ``bits`` slices instead of 32, so e.g. ``vadd`` drops from 8x32+2
        to 8x8+2 cycles at SEW=8.
        """
        if bits not in (8, 16, self.config.element_bits):
            raise ConfigError(
                f"SEW {bits} unsupported (8, 16, or "
                f"{self.config.element_bits})"
            )
        # A width change invalidates the deferred window: replay what is
        # pending under the SEW it was issued at.
        self._superplan_flush()
        if bits not in self._models:
            self._models[bits] = InstructionModel(
                self.circuit, width=bits, accounting=self._accounting
            )
        self.sew = bits
        self.model = self._models[bits]
        self.vcu.model = self.model
        self._mod = np.int64(1) << bits

    # ------------------------------------------------------------------
    # Configuration intrinsics
    # ------------------------------------------------------------------

    def vsetvl(
        self, requested: int, sew: Optional[int] = None, strict: bool = False
    ) -> int:
        """``vsetvli``: request a vector length; returns the granted vl.

        Grants ``min(requested, MAX_VL)`` per the RISC-V VLA contract.
        Chains whose columns fall wholly outside the active window
        power-gate their peripherals (Section V-F). ``sew`` optionally
        reprograms the element width (vtype's e8/e16/e32). With
        ``strict`` the VLA clamp becomes a :class:`CSBCapacityError`
        instead — the allocation mode runtimes use to learn the exact
        shortfall rather than silently strip-mine.
        """
        if requested < 0:
            raise CSBCapacityError(
                "requested vl must be non-negative",
                requested_lanes=requested,
                available_lanes=self.config.max_vl,
                cols_per_chain=self.config.cols_per_chain,
            )
        if strict and requested > self.config.max_vl:
            raise CSBCapacityError(
                f"requested vl {requested} exceeds MAX_VL "
                f"{self.config.max_vl} ({self.config.num_chains} chains x "
                f"{self.config.cols_per_chain} columns)",
                requested_lanes=requested,
                available_lanes=self.config.max_vl,
                cols_per_chain=self.config.cols_per_chain,
            )
        self._superplan_flush()
        if sew is not None and sew != self.sew:
            self.set_sew(sew)
        self.vl = min(requested, self.config.max_vl)
        self._charge_compute_cycles(1)
        return self.vl

    def set_vstart(self, vstart: int) -> None:
        """Program the ``vstart`` CSR (index of the first active element)."""
        if not 0 <= vstart <= self.vl:
            raise ConfigError(f"vstart {vstart} outside [0, vl={self.vl}]")
        if vstart != self.vstart:
            self._superplan_flush()
        self.vstart = vstart

    @property
    def active_slice(self) -> slice:
        return slice(self.vstart, self.vl)

    # ------------------------------------------------------------------
    # Memory intrinsics (through the VMU)
    # ------------------------------------------------------------------

    def vle(self, vd: int, addr: int) -> None:
        """``vle32.v vd, (addr)`` — unit-stride vector load.

        Page faults restart the instruction at the faulting element via
        ``vstart`` (Section V-C): the completed prefix is architecturally
        committed, the CP services the fault, and the transfer resumes.
        """
        original_vstart = self.vstart
        offset = 0
        while True:
            remaining = self.vl - self.vstart
            try:
                values, cycles = self.vmu.load(
                    addr + 4 * offset, remaining, element_bytes=self.sew // 8
                )
            except PageFault as fault:
                self._commit_load_prefix(vd, addr, offset, fault.element_index)
                offset += fault.element_index
                self._service_fault(fault)
                continue
            self._write_active(vd, values)
            self._charge_memory(cycles, len(values) * 4)
            break
        self.vstart = original_vstart

    def vse(self, vs: int, addr: int) -> None:
        """``vse32.v vs, (addr)`` — unit-stride vector store.

        Restartable at the faulting index, like :meth:`vle`.
        """
        original_vstart = self.vstart
        offset = 0
        while True:
            values = self._read_active(vs)
            try:
                cycles = self.vmu.store(
                    addr + 4 * offset, values, element_bytes=self.sew // 8
                )
            except PageFault as fault:
                k = fault.element_index
                if k > 0:
                    prefix_cycles = self.vmu.store(
                        addr + 4 * offset, values[:k], element_bytes=self.sew // 8
                    )
                    self._charge_memory(prefix_cycles, 4 * k)
                    self.set_vstart(self.vstart + k)
                    offset += k
                self._service_fault(fault)
                continue
            self._charge_memory(cycles, len(values) * 4)
            break
        self.vstart = original_vstart

    def _commit_load_prefix(self, vd: int, addr: int, offset: int, count: int) -> None:
        """Commit the elements transferred before a load fault."""
        if count <= 0:
            return
        self._superplan_flush()
        values, cycles = self.vmu.load(
            addr + 4 * offset, count, element_bytes=self.sew // 8
        )
        sl = slice(self.vstart, self.vstart + count)
        self.vregs[vd, sl] = to_unsigned(values, self.sew)
        self._written_vregs.add(vd)
        self._bitsync(vd)
        self._charge_memory(cycles, 4 * count)
        self.set_vstart(self.vstart + count)

    def _service_fault(self, fault: PageFault) -> None:
        """Trap to the CP, page the faulting address in, account the cost."""
        self.vmu.map_range(fault.addr, 4)
        self.stats.page_faults += 1
        self.stats.cycles += PAGE_FAULT_HANDLER_CYCLES
        self.stats.scalar_exposed_cycles += PAGE_FAULT_HANDLER_CYCLES
        obs = self.observer
        if obs.enabled:
            obs.counter("engine.page_faults").inc()
            obs.counter("engine.cycles", kind="scalar").inc(PAGE_FAULT_HANDLER_CYCLES)
            obs.complete(
                "page_fault.service",
                "engine",
                ts=self.stats.cycles - PAGE_FAULT_HANDLER_CYCLES,
                dur=PAGE_FAULT_HANDLER_CYCLES,
                tid="cp",
                addr=fault.addr,
            )

    def vlse(self, vd: int, addr: int, stride_bytes: int) -> None:
        """``vlse32.v`` — strided load (one packet per element)."""
        values, cycles = self.vmu.load_strided(
            addr, self.vl - self.vstart, stride_bytes
        )
        self._write_active(vd, values)
        self._charge_memory(cycles, len(values) * 4)

    def vsse(self, vs: int, addr: int, stride_bytes: int) -> None:
        """``vsse32.v`` — strided store (one packet per element)."""
        values = self._read_active(vs)
        cycles = self.vmu.store_strided(addr, values, stride_bytes)
        self._charge_memory(cycles, len(values) * 4)

    def vlrw(self, vd: int, addr: int, chunk: int) -> None:
        """``vlrw.v vd, r1, r2`` — replica vector load (Section V-G)."""
        values, cycles = self.vmu.load_replica(addr, chunk, self.vl - self.vstart)
        self._write_active(vd, values)
        self._charge_memory(cycles, chunk * 4)

    # ------------------------------------------------------------------
    # Arithmetic / logic intrinsics (through the VCU)
    # ------------------------------------------------------------------

    def vadd(self, vd: int, vs1: int, vs2: int, mask: Optional[int] = None) -> None:
        """``vadd.vv`` (optionally masked by register ``mask``)."""
        self._binary("vadd.vv", vd, vs1, vs2, lambda a, b: a + b, mask)

    def vsub(self, vd: int, vs1: int, vs2: int, mask: Optional[int] = None) -> None:
        """``vsub.vv``."""
        self._binary("vsub.vv", vd, vs1, vs2, lambda a, b: a - b, mask)

    def vmul(self, vd: int, vs1: int, vs2: int, mask: Optional[int] = None) -> None:
        """``vmul.vv`` — low half of the product."""
        self._binary("vmul.vv", vd, vs1, vs2, lambda a, b: a * b, mask)

    def vand(self, vd: int, vs1: int, vs2: int, mask: Optional[int] = None) -> None:
        """``vand.vv``."""
        self._binary("vand.vv", vd, vs1, vs2, lambda a, b: a & b, mask)

    def vor(self, vd: int, vs1: int, vs2: int, mask: Optional[int] = None) -> None:
        """``vor.vv``."""
        self._binary("vor.vv", vd, vs1, vs2, lambda a, b: a | b, mask)

    def vxor(self, vd: int, vs1: int, vs2: int, mask: Optional[int] = None) -> None:
        """``vxor.vv``."""
        self._binary("vxor.vv", vd, vs1, vs2, lambda a, b: a ^ b, mask)

    def vadd_vx(self, vd: int, vs1: int, scalar: int, mask: Optional[int] = None) -> None:
        """``vadd.vx`` — add a scalar to every element."""
        s = int(scalar)
        self._binary("vadd.vx", vd, vs1, None, lambda a, _: a + s, mask, scalar=s)

    def vrsub_vx(self, vd: int, vs1: int, scalar: int, mask: Optional[int] = None) -> None:
        """``vrsub.vx`` — reverse subtract: vd = scalar - vs1."""
        s = int(scalar)
        self._binary("vrsub.vx", vd, vs1, None, lambda a, _: s - a, mask, scalar=s)

    def vsll_vi(self, vd: int, vs1: int, shamt: int) -> None:
        """``vsll.vi`` — logical shift left by an immediate."""
        self._shift("vsll.vi", vd, vs1, shamt, lambda a, k: a << k)

    def vsrl_vi(self, vd: int, vs1: int, shamt: int) -> None:
        """``vsrl.vi`` — logical shift right by an immediate."""
        self._shift("vsrl.vi", vd, vs1, shamt, lambda a, k: a >> k)

    def vsra_vi(self, vd: int, vs1: int, shamt: int) -> None:
        """``vsra.vi`` — arithmetic shift right by an immediate."""
        bits = self.sew

        def op(a: np.ndarray, k: int) -> np.ndarray:
            return to_unsigned(to_signed(a, bits) >> k, bits)

        self._shift("vsra.vi", vd, vs1, shamt, op)

    def _shift(self, mnemonic, vd, vs1, shamt, op) -> None:
        if not 0 <= shamt < self.sew:
            raise ConfigError(
                f"shift amount {shamt} outside [0, {self.sew})"
            )
        sl = self.active_slice
        self.vregs[vd, sl] = op(self.vregs[vs1, sl], int(shamt)) % self._mod
        self._written_vregs.add(vd)
        cycles = self.vcu.dispatch(mnemonic, self.vl - self.vstart)
        self._charge_compute(cycles)
        self._bitexec(mnemonic, vd=vd, vs1=vs1, scalar=int(shamt))

    def vmin(self, vd: int, vs1: int, vs2: int) -> None:
        """``vmin.vv`` — signed element-wise minimum."""
        self._minmax("vmin.vv", vd, vs1, vs2, signed=True, smaller=True)

    def vmax(self, vd: int, vs1: int, vs2: int) -> None:
        """``vmax.vv`` — signed element-wise maximum."""
        self._minmax("vmax.vv", vd, vs1, vs2, signed=True, smaller=False)

    def vminu(self, vd: int, vs1: int, vs2: int) -> None:
        """``vminu.vv`` — unsigned element-wise minimum."""
        self._minmax("vminu.vv", vd, vs1, vs2, signed=False, smaller=True)

    def vmaxu(self, vd: int, vs1: int, vs2: int) -> None:
        """``vmaxu.vv`` — unsigned element-wise maximum."""
        self._minmax("vmaxu.vv", vd, vs1, vs2, signed=False, smaller=False)

    def _minmax(self, mnemonic, vd, vs1, vs2, signed, smaller) -> None:
        sl = self.active_slice
        bits = self.sew
        a, b = self.vregs[vs1, sl], self.vregs[vs2, sl]
        if signed:
            a, b = to_signed(a, bits), to_signed(b, bits)
        out = np.minimum(a, b) if smaller else np.maximum(a, b)
        self.vregs[vd, sl] = to_unsigned(out, bits)
        self._written_vregs.add(vd)
        cycles = self.vcu.dispatch(mnemonic, self.vl - self.vstart)
        self._charge_compute(cycles)
        self._bitexec(mnemonic, vd=vd, vs1=vs1, vs2=vs2)

    def vmsne(self, vd: int, vs1: int, vs2: int) -> None:
        """``vmsne.vv`` — inequality mask."""
        sl = self.active_slice
        self.vregs[vd, sl] = (
            self.vregs[vs1, sl] != self.vregs[vs2, sl]
        ).astype(np.int64)
        self._written_vregs.add(vd)
        cycles = self.vcu.dispatch("vmsne.vv", self.vl - self.vstart)
        self._charge_compute(cycles)
        self._bitexec("vmsne.vv", vd=vd, vs1=vs1, vs2=vs2)

    def vmv_vx(self, vd: int, scalar: int) -> None:
        """``vmv.v.x`` — broadcast a scalar."""
        sl = self.active_slice
        self.vregs[vd, sl] = to_unsigned(np.int64(scalar), self.sew)
        self._written_vregs.add(vd)
        cycles = self.vcu.dispatch("vmv.v.x", self.vl - self.vstart)
        self._charge_compute(cycles)
        self._bitexec("vmv.v.x", vd=vd, scalar=int(scalar))

    def vmv(self, vd: int, vs1: int) -> None:
        """``vmv.v.v`` — register copy."""
        sl = self.active_slice
        self.vregs[vd, sl] = self.vregs[vs1, sl]
        self._written_vregs.add(vd)
        cycles = self.vcu.dispatch("vmv.v.v", self.vl - self.vstart)
        self._charge_compute(cycles)
        self._bitexec("vmv.v.v", vd=vd, vs1=vs1)

    # ------------------------------------------------------------------
    # Comparisons and select
    # ------------------------------------------------------------------

    def vmseq_vx(self, vd: int, vs1: int, scalar: int) -> None:
        """``vmseq.vx`` — mask of elements equal to a scalar."""
        sl = self.active_slice
        s = to_unsigned(np.int64(scalar), self.sew)
        self.vregs[vd, sl] = (self.vregs[vs1, sl] == s).astype(np.int64)
        self._written_vregs.add(vd)
        cycles = self.vcu.dispatch("vmseq.vx", self.vl - self.vstart)
        self._charge_compute(cycles)
        self._bitexec("vmseq.vx", vd=vd, vs1=vs1, scalar=int(scalar))

    def vmseq(self, vd: int, vs1: int, vs2: int) -> None:
        """``vmseq.vv``."""
        sl = self.active_slice
        self.vregs[vd, sl] = (
            self.vregs[vs1, sl] == self.vregs[vs2, sl]
        ).astype(np.int64)
        self._written_vregs.add(vd)
        cycles = self.vcu.dispatch("vmseq.vv", self.vl - self.vstart)
        self._charge_compute(cycles)
        self._bitexec("vmseq.vv", vd=vd, vs1=vs1, vs2=vs2)

    def vmslt(self, vd: int, vs1: int, vs2: int) -> None:
        """``vmslt.vv`` — signed less-than mask."""
        sl = self.active_slice
        bits = self.sew
        a = to_signed(self.vregs[vs1, sl], bits)
        b = to_signed(self.vregs[vs2, sl], bits)
        self.vregs[vd, sl] = (a < b).astype(np.int64)
        self._written_vregs.add(vd)
        cycles = self.vcu.dispatch("vmslt.vv", self.vl - self.vstart)
        self._charge_compute(cycles)
        self._bitexec("vmslt.vv", vd=vd, vs1=vs1, vs2=vs2)

    def vmsltu(self, vd: int, vs1: int, vs2: int) -> None:
        """``vmsltu.vv`` — unsigned less-than mask."""
        sl = self.active_slice
        self.vregs[vd, sl] = (
            self.vregs[vs1, sl] < self.vregs[vs2, sl]
        ).astype(np.int64)
        self._written_vregs.add(vd)
        cycles = self.vcu.dispatch("vmsltu.vv", self.vl - self.vstart)
        self._charge_compute(cycles)
        self._bitexec("vmsltu.vv", vd=vd, vs1=vs1, vs2=vs2)

    def vmerge(self, vd: int, vs1: int, vs2: int, vm: int = 0) -> None:
        """``vmerge.vvm`` — vd = mask ? vs1 : vs2."""
        sl = self.active_slice
        m = (self.vregs[vm, sl] & 1) == 1
        self.vregs[vd, sl] = np.where(
            m, self.vregs[vs1, sl], self.vregs[vs2, sl]
        )
        self._written_vregs.add(vd)
        cycles = self.vcu.dispatch("vmerge.vv", self.vl - self.vstart)
        self._charge_compute(cycles)
        self._bitexec("vmerge.vv", vd=vd, vs1=vs1, vs2=vs2, mask_reg=vm)

    # ------------------------------------------------------------------
    # Reduction
    # ------------------------------------------------------------------

    def vredsum(self, vs1: int, signed: bool = True) -> int:
        """``vredsum.vs`` — sum all active elements to a scalar.

        Bit-serially echoes each bit through the tags, pop-counts per
        chain, and combines partials through the pipelined global tree —
        roughly 8x faster than an element-wise add (Section V-G).
        """
        sl = self.active_slice
        vals = self.vregs[vs1, sl]
        if signed:
            total = int(to_signed(vals, self.sew).sum())
        else:
            total = int(vals.sum())
        cycles = self.vcu.dispatch(
            "vredsum.vs", self.vl - self.vstart, reduction=True
        )
        self._charge_compute(cycles)
        if self._bitengine is not None:
            bit_total = self._bitexec("vredsum.vs", vs1=vs1)
            if bit_total is not None and bit_total != int(vals.sum()):
                if not self._tolerate_fault("redsum"):
                    raise ProtocolError(
                        f"bit-level {self._bitengine.backend!r} backend redsum "
                        f"{bit_total} != functional {int(vals.sum())} "
                        f"(vs1=v{vs1}, vl={self.vl}, vstart={self.vstart})"
                    )
        return total

    def vmask_popcount(self, vm: int) -> int:
        """``vcpop.m``-style count of set mask bits.

        A mask is a single bit per element, so the reduction is one
        echo-search plus one pass through the pipelined tree — the 1-bit
        special case of the redsum (Figure 6).
        """
        sl = self.active_slice
        count = int((self.vregs[vm, sl] & 1).sum())
        cycles = self.vcu.dispatch_raw(
            1 + self.vcu.reduction_tree.num_stages,
            self.vl - self.vstart,
            energy_per_lane_j=0.4e-12 / 32,
        )
        self._charge_compute(cycles)
        if self._bitengine is not None:
            self._superplan_flush()
            bit_count = self._bitengine.popcount(vm, self.vl, self.vstart)
            # A deferred (gang phase 1) engine returns None: the count
            # is cross-checked at stacked replay instead.
            if bit_count is not None and bit_count != count:
                if not self._tolerate_fault("popcount"):
                    raise ProtocolError(
                        f"bit-level {self._bitengine.backend!r} backend popcount "
                        f"{bit_count} != functional {count} (vm=v{vm})"
                    )
        return count

    def fence(self) -> None:
        """Memory fence between scalar and vector accesses.

        CAPE does not disambiguate store-load or store-store ordering
        between vector and scalar instructions (footnote 1): the compiler
        or programmer inserts fences. A fence waits for the outstanding
        vector instruction's shadow to drain, serialising the CP against
        the CSB.
        """
        drained = self.cp._shadow_budget
        self.cp._shadow_budget = 0.0
        self.stats.cycles += drained
        self.stats.scalar_exposed_cycles += drained
        obs = self.observer
        if obs.enabled and drained:
            obs.counter("engine.cycles", kind="scalar").inc(drained)

    def vfirst(self, vm: int) -> int:
        """``vfirst.m``-style find-first-set mask bit (or -1).

        CAPE's updates deliberately avoid a priority encoder (Section
        VI-A), so find-first is microcoded as a binary search over the
        active window: each probe masks half the remaining columns and
        pop-counts the tags through the tree — log2(vl) popcount passes.
        """
        sl = self.active_slice
        bits = self.vregs[vm, sl] & 1
        hits = np.flatnonzero(bits)
        result = int(hits[0]) + self.vstart if len(hits) else -1
        active = max(1, self.vl - self.vstart)
        probes = max(1, math.ceil(math.log2(active)))
        per_probe = 1 + self.vcu.reduction_tree.num_stages
        cycles = self.vcu.dispatch_raw(
            probes * per_probe, active, energy_per_lane_j=0.4e-12 / 32
        )
        self._charge_compute(cycles)
        return result

    # ------------------------------------------------------------------
    # Scalar work (control processor)
    # ------------------------------------------------------------------

    def scalar_block(self, block: TraceBlock) -> None:
        """Run scalar work on the CP; hides under vector shadows."""
        exposed = self.cp.scalar_block(block)
        self.stats.cycles += exposed
        self.stats.scalar_exposed_cycles += exposed
        obs = self.observer
        if obs.enabled and exposed:
            obs.counter("engine.cycles", kind="scalar").inc(exposed)

    def scalar_ops(self, **kwargs) -> None:
        """Scalar work from raw counts (see ``ControlProcessor.scalar_ops``)."""
        exposed = self.cp.scalar_ops(**kwargs)
        self.stats.cycles += exposed
        self.stats.scalar_exposed_cycles += exposed
        obs = self.observer
        if obs.enabled and exposed:
            obs.counter("engine.cycles", kind="scalar").inc(exposed)

    # ------------------------------------------------------------------
    # Host-side accessors
    # ------------------------------------------------------------------

    def read_vreg(self, vreg: int, signed: bool = False) -> np.ndarray:
        """Inspect a vector register's active elements (no cost)."""
        vals = self.vregs[vreg, self.active_slice].copy()
        if signed:
            return to_signed(vals, self.sew)
        return vals

    def vreg_occupancy(self) -> tuple:
        """Architectural registers written since construction/reset.

        The register-file occupancy a runtime places jobs against: a
        sorted tuple of vector-register indices holding live state.
        """
        return tuple(sorted(self._written_vregs))

    @property
    def lane_occupancy(self) -> float:
        """Fraction of the CSB's lanes inside the active vl window."""
        return self.vl / self.config.max_vl

    # ------------------------------------------------------------------
    # Context save/restore hooks (runtime spill path)
    # ------------------------------------------------------------------

    def spill_vregs(self, regs, addr: int, protect: bool = False) -> float:
        """Save registers' ``[0, vl)`` windows to memory; returns cycles.

        The bulk VMU path stores the block contiguously at ``addr`` and
        the transfer is charged like any vector store (HBM cycles and
        energy land in :attr:`stats`), so scheduling decisions that
        force spills are visible in the run's totals. ``protect`` appends
        one XOR parity word per register (verified on restore).
        """
        regs = list(regs)
        if not regs:
            return 0.0
        start = self.stats.cycles
        block = self.vregs[regs, : self.vl]
        cycles = self.vmu.spill(addr, block, protect=protect)
        words = block.size + (len(regs) if protect else 0)
        self._charge_memory(cycles, words * 4)
        obs = self.observer
        if obs.enabled:
            obs.counter("runtime.spills").inc()
            obs.counter("runtime.spill_bytes").inc(block.size * 4)
            obs.complete(
                "context.spill", "runtime",
                ts=start, dur=self.stats.cycles - start,
                tid="context", regs=len(regs),
            )
        return cycles

    def fill_vregs(self, regs, addr: int, protect: bool = False) -> float:
        """Restore registers spilled by :meth:`spill_vregs`; returns cycles.

        With ``protect=True`` the slab's parity words are verified first;
        a corrupted slab raises
        :class:`~repro.common.errors.SpillCorruptionError` before any row
        reaches the register file.
        """
        regs = list(regs)
        if not regs:
            return 0.0
        start = self.stats.cycles
        self._superplan_flush()
        block, cycles = self.vmu.fill(addr, len(regs), self.vl, protect=protect)
        for row, reg in zip(block, regs):
            self.vregs[reg, : self.vl] = row
            self._written_vregs.add(reg)
            self._bitsync(reg)
        words = block.size + (len(regs) if protect else 0)
        self._charge_memory(cycles, words * 4)
        obs = self.observer
        if obs.enabled:
            obs.counter("runtime.restores").inc()
            obs.complete(
                "context.restore", "runtime",
                ts=start, dur=self.stats.cycles - start,
                tid="context", regs=len(regs),
            )
        return cycles

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _binary(self, mnemonic, vd, vs1, vs2, op, mask, scalar=None) -> None:
        sl = self.active_slice
        a = self.vregs[vs1, sl]
        b = self.vregs[vs2, sl] if vs2 is not None else None
        result = op(a, b) % self._mod
        if mask is not None:
            m = (self.vregs[mask, sl] & 1) == 1
            result = np.where(m, result, self.vregs[vd, sl])
            # Mask broadcast into the MASK metadata rows (3 microops).
            self._charge_compute_cycles(3)
        self.vregs[vd, sl] = result
        self._written_vregs.add(vd)
        cycles = self.vcu.dispatch(mnemonic, self.vl - self.vstart)
        self._charge_compute(cycles)
        self._bitexec(mnemonic, vd=vd, vs1=vs1, vs2=vs2, scalar=scalar, mask_reg=mask)

    def _bitexec(
        self,
        mnemonic,
        vd=None,
        vs1=None,
        vs2=None,
        scalar=None,
        mask_reg=None,
    ):
        """Execute + cross-validate one intrinsic on the bit-level backend.

        Runs the microcode on the mirror CSB, then compares the
        destination against the functional register file: within the
        active window modulo 2^SEW (bit 0 only for mask-producing ops,
        whose upper bit-planes are architecturally undefined), and
        bit-for-bit outside the window, which catches microcode leaking
        past vstart/vl. On success the functional row is re-synced so the
        mirror never accumulates stale upper bit-planes. Forms without
        microcode (masked vmul/vrsub, aliased destinations the algorithms
        refuse) fall back to mirroring the functional result.

        Returns the bit-level scalar for ``vredsum.vs``, else ``None``.
        """
        engine = self._bitengine
        if engine is None:
            return None
        sp = self._sp_session
        if sp is not None:
            if self._sp_deferrable(engine, mnemonic, vd, vs1, vs2, mask_reg):
                if not sp:
                    self._sp_window = (self.vl, self.vstart, self.sew)
                sp.append((
                    "op", mnemonic, self.sew, self.config.element_bits,
                    vd, vs1, vs2,
                    None if scalar is None else int(scalar),
                    mask_reg, mask_reg is not None,
                ))
                # Snapshot the functional destination *now* (the
                # functional op already ran): a later instruction in the
                # same kernel may overwrite this row before the flush —
                # e.g. a non-deferrable form targeting the same vd — and
                # validation must compare against the value this write
                # produced, not the live register file.
                self._sp_expected[vd] = self.vregs[vd].copy()
                return None
            # An op the superplan path can't absorb: replay what is
            # pending, then take the live per-instruction path below.
            self._superplan_flush()
        try:
            result = engine.execute(
                mnemonic,
                vd=vd,
                vs1=vs1,
                vs2=vs2,
                scalar=scalar,
                mask_reg=mask_reg,
                width=self.sew,
                vl=self.vl,
                vstart=self.vstart,
            )
        except (UnsupportedMicrocode, ConfigError):
            if vd is not None:
                engine.sync_register(vd, self.vregs[vd])
            return None
        if mnemonic == "vredsum.vs":
            return result
        if engine.deferred:
            # Gang phase 1: the mirror doesn't exist yet. The trace
            # carries this sync; the stacked replay validates the
            # destination with the same predicate before applying it.
            engine.sync_register(vd, self.vregs[vd])
            return None
        if not self._bitexec_matches(engine, mnemonic, vd):
            if self.fault_injector is None:
                raise ProtocolError(
                    f"bit-level {engine.backend!r} backend diverged from the "
                    f"functional model on {mnemonic} (vd=v{vd}, vl={self.vl}, "
                    f"vstart={self.vstart}, sew={self.sew})"
                )
            self._recover_bitexec(mnemonic, vd, vs1, vs2, scalar, mask_reg)
        engine.sync_register(vd, self.vregs[vd])
        return None

    def _bitexec_matches(self, engine, mnemonic, vd) -> bool:
        """Compare the mirror's destination against the functional row.

        Within the active window modulo 2^SEW (bit 0 only for mask
        results); bit-for-bit outside it.
        """
        got = engine.peek(vd)
        want = self.vregs[vd]
        bits = 1 if mnemonic in MASK_RESULTS else int(self._mod - 1)
        sl = self.active_slice
        outside = np.ones(len(got), dtype=bool)
        outside[sl] = False
        return bool(
            np.array_equal(got[sl] & bits, want[sl] & bits)
            and np.array_equal(got[outside], want[outside])
        )

    # ------------------------------------------------------------------
    # Whole-kernel superplans (docs/PERFORMANCE.md)
    # ------------------------------------------------------------------

    @contextmanager
    def superplan_scope(self):
        """Defer eligible mirror microcode into one fused superplan.

        Inside the scope, compute intrinsics still execute functionally
        and charge cycles/energy per instruction; only the bit-level
        mirror's microcode is deferred, as the per-instruction plan keys.
        Any non-deferrable event — reductions, loads/spills touching the
        mirror, window or SEW changes, backend/injector swaps — replays
        the pending sequence first, so observable state at every flush
        point is identical to per-instruction execution. Eligibility is
        re-checked per instruction (plain bit-plane backend, no fault
        injector, no microop trace, microcode exists for the form), so
        the reference and faulty paths are untouched.

        A no-op unless ``superplan`` was enabled at construction (or via
        :class:`~repro.runtime.execconfig.ExecConfig`); nesting re-enters
        the outer session. On an exception the pending tail is discarded
        un-replayed — the runtime resets the device before its next job.
        """
        if not self.superplan or self._sp_session is not None:
            yield
            return
        self._sp_session = []
        self._sp_expected = {}
        try:
            yield
            self._superplan_flush()
        finally:
            self._sp_session = None
            self._sp_expected = {}

    def _sp_deferrable(self, engine, mnemonic, vd, vs1, vs2, mask_reg) -> bool:
        """Can this intrinsic's mirror microcode join the open session?"""
        return (
            vd is not None
            and mnemonic != "vredsum.vs"
            and type(engine) is BitEngine
            and engine.csb.ganged is not None
            and type(engine.csb.base) is BitplaneBackend
            and self.fault_injector is None
            and engine._plan_cache is not None
            and not engine.csb.stats.keep_trace
            and microcode_unsupported_reason(mnemonic, vd, vs1, vs2, mask_reg)
            is None
        )

    def _superplan_flush(self) -> None:
        """Replay the pending deferred sequence as one fused superplan.

        Fetches (or fuses and caches) the superplan keyed by the pending
        per-instruction plan-key sequence, replays it once on the ganged
        bit-plane chain, then validates and re-syncs every register the
        sequence wrote — with exactly the per-instruction predicate,
        expressed in the bit-plane domain: modulo 2^SEW inside the active
        window (bit 0 only for mask producers), bit-for-bit outside it.
        The re-sync zeroes the architecturally-undefined upper planes
        inside the window, so the mirror is left bit-identical to what
        per-instruction execution (validate + ``sync_register``) leaves.
        """
        sp = self._sp_session
        if not sp:
            return
        pending, self._sp_session = sp, []
        expected, self._sp_expected = self._sp_expected, {}
        engine = self._bitengine
        vl, vstart, sew = self._sp_window
        cache = engine._plan_cache
        nsub = self.config.element_bits
        skey = superplan_key(nsub, sew, pending)

        def build():
            entries = []
            for key in pending:
                (_tag, mnemonic, width, _nsub, vd, vs1, vs2, scalar,
                 mask_reg, masked) = key
                plan = cache.get_or_compile(
                    key,
                    lambda m=mnemonic, d=vd, a=vs1, b=vs2, s=scalar,
                    mr=mask_reg, w=width, mk=masked: compile_chain_program(
                        nsub,
                        lambda rec: run_microcode(
                            rec, m, d, a, b, s, mr, w, mk
                        ),
                    ),
                    observer=self.observer,
                )
                entries.append((mnemonic, vd, mnemonic in MASK_RESULTS, plan))
            return fuse_plans(skey, nsub, entries)

        plan = cache.get_or_compile(skey, build, observer=self.observer)
        engine.set_window(vl, vstart)
        plan.replay(engine.csb.ganged)
        self._sp_validate(engine, plan, expected, vl, vstart, sew)
        obs = self.observer
        if obs.enabled:
            obs.counter("plan.superplan.flush").inc()
            obs.counter("plan.superplan.instructions").inc(
                plan.num_instructions
            )
            # Two monotone series rather than a "saved" delta: LUT
            # pack/gather splitting can make a fused trace *longer*
            # than its inputs when nothing is reused (counters must
            # never decrease).
            obs.counter("plan.superplan.kernels_in").inc(plan.kernels_in)
            obs.counter("plan.superplan.kernels_out").inc(plan.kernels_out)

    def _sp_validate(self, engine, plan, expected, vl, vstart, sew) -> None:
        """Validate + re-sync each register a replayed superplan wrote.

        ``expected`` maps vd -> the functional row snapshotted when its
        last deferred write was recorded — the live register file may
        already hold a *later* value for the same vd (written by the
        non-deferrable op that triggered this flush).
        """
        base = engine.csb.base
        nsub = self.config.element_bits
        sl = slice(vstart, vl)
        for vd, is_mask in plan.writes:
            nbits = 1 if is_mask else sew
            got = base.bits[:, vd, :]
            want = expected[vd]
            ok = bool(
                np.array_equal(
                    got[:nbits, sl], ints_to_bits(want[sl], nbits)
                )
            )
            # Bit-for-bit outside the active window (catches microcode
            # leaking past vstart/vl, like the per-instruction check).
            if ok and vstart:
                ok = bool(
                    np.array_equal(
                        got[:, :vstart], ints_to_bits(want[:vstart], nsub)
                    )
                )
            if ok and vl < got.shape[1]:
                ok = bool(
                    np.array_equal(
                        got[:, vl:], ints_to_bits(want[vl:], nsub)
                    )
                )
            if not ok:
                raise ProtocolError(
                    f"bit-level {engine.backend!r} backend diverged from "
                    f"the functional model replaying a superplan of "
                    f"{plan.num_instructions} instructions (vd=v{vd}, "
                    f"vl={vl}, vstart={vstart}, sew={sew})"
                )
            # Re-sync: zero the architecturally-undefined upper planes
            # inside the window. The defined planes just validated equal
            # to the functional row, so this leaves the mirror exactly
            # where per-instruction sync_register would.
            if nbits < nsub:
                got[nbits:, sl] = 0

    def _tolerate_fault(self, kind: str) -> bool:
        """Count a detected bit-level divergence under fault injection.

        Returns True when an injector is attached — the caller keeps the
        functional result (reduction fallback) instead of treating the
        divergence as a protocol violation and crashing the device.
        """
        fi = self.fault_injector
        if fi is None:
            return False
        obs = self.observer
        if obs.enabled:
            obs.counter("faults.detected", kind=kind).inc()
            obs.counter("faults.repaired", kind="fallback").inc()
            obs.instant(f"fault-detected:{kind}", "faults")
        return True

    def _recover_bitexec(self, mnemonic, vd, vs1, vs2, scalar, mask_reg) -> None:
        """Repair ladder for a detected bit-level divergence.

        Detect → remap permanently-faulty chains onto spares (when the
        budget allows) → re-sync the mirror's live registers → retry the
        microcode once → fall back to the functional result if it still
        diverges. Each rung is charged in simulated cycles, so recovery
        has a visible cost; the caller re-syncs the destination, so the
        mirror never keeps faulty state regardless of the outcome.
        """
        engine = self._bitengine
        fi = self.fault_injector
        obs = self.observer
        if obs.enabled:
            obs.counter("faults.detected", kind="divergence").inc()
            obs.instant("fault-detected:divergence", "faults", op=mnemonic)
        remapped = engine.repair(fi)
        if remapped:
            self._charge_compute_cycles(CHAIN_REMAP_CYCLES * len(remapped))
            if obs.enabled:
                obs.counter("faults.repaired", kind="remap").inc(len(remapped))
                obs.instant("fault-remap", "faults", chains=len(remapped))
        # The divergence may have corrupted operand rows too (a stuck
        # bit lands wherever it lands): restore the whole mirror from
        # the functional state before retrying.
        for reg in sorted(self._written_vregs):
            if reg != vd:
                engine.sync_register(reg, self.vregs[reg])
        self._charge_compute_cycles(FAULT_RETRY_CYCLES)
        try:
            engine.execute(
                mnemonic, vd=vd, vs1=vs1, vs2=vs2, scalar=scalar,
                mask_reg=mask_reg, width=self.sew, vl=self.vl,
                vstart=self.vstart,
            )
            healed = self._bitexec_matches(engine, mnemonic, vd)
        except (UnsupportedMicrocode, ConfigError):  # pragma: no cover
            healed = False
        if obs.enabled:
            obs.counter(
                "faults.repaired", kind="retry" if healed else "fallback"
            ).inc()

    def _bitsync(self, vd: int) -> None:
        """Mirror one functional register into the bit-level backend.

        Callers that overwrite the functional row first must
        ``_superplan_flush()`` *before* the overwrite — a pending
        deferred write to ``vd`` validates against the pre-overwrite
        functional value, exactly as per-instruction execution would
        have at issue time.
        """
        if self._bitengine is not None:
            self._bitengine.sync_register(vd, self.vregs[vd])

    def _write_active(self, vd: int, values: np.ndarray) -> None:
        self._superplan_flush()
        sl = self.active_slice
        expected = sl.stop - sl.start
        if len(values) != expected:
            raise CSBCapacityError(
                f"vector of {len(values)} values does not match active "
                f"window of {expected}",
                requested_lanes=len(values),
                available_lanes=expected,
                cols_per_chain=self.config.cols_per_chain,
            )
        self.vregs[vd, sl] = to_unsigned(values, self.sew)
        self._written_vregs.add(vd)
        self._bitsync(vd)

    def _read_active(self, vs: int) -> np.ndarray:
        return self.vregs[vs, self.active_slice].copy()

    def _charge_compute(self, cycles: float) -> None:
        added = self.cp.vector_issue(cycles)
        self.stats.cycles += added
        self.stats.compute_cycles += added
        self.stats.vector_instructions += 1
        self.stats.energy_j = self.vcu.stats.energy_j + self._memory_energy_j
        obs = self.observer
        if obs.enabled:
            obs.counter("engine.cycles", kind="compute").inc(added)
            obs.counter("engine.instructions", kind="vector").inc()
        if self.fault_injector is not None:
            self.fault_injector.charge(added)

    def _charge_compute_cycles(self, cycles: float) -> None:
        self.stats.cycles += cycles
        self.stats.compute_cycles += cycles
        obs = self.observer
        if obs.enabled:
            obs.counter("engine.cycles", kind="compute").inc(cycles)
        if self.fault_injector is not None:
            self.fault_injector.charge(cycles)

    def _charge_memory(self, cycles: float, num_bytes: int) -> None:
        added = self.cp.vector_issue(cycles)
        self.stats.cycles += added
        self.stats.memory_cycles += added
        self.stats.memory_instructions += 1
        self._memory_energy_j += num_bytes * HBM_ENERGY_PER_BYTE_J
        self.stats.energy_j = self.vcu.stats.energy_j + self._memory_energy_j
        obs = self.observer
        if obs.enabled:
            obs.counter("engine.cycles", kind="memory").inc(added)
            obs.counter("engine.instructions", kind="memory").inc()
            obs.counter("engine.hbm_bytes").inc(num_bytes)
            obs.counter("engine.hbm_energy_j").inc(
                num_bytes * HBM_ENERGY_PER_BYTE_J
            )
        if self.fault_injector is not None:
            self.fault_injector.charge(added)
