"""Vector Memory Unit (Section V-E): cacheless vector transfers.

The VMU breaks each vector memory instruction into *sub-requests* of the
memory data-bus packet size. Adjacent vector elements are interleaved
across chains (like byte interleaving across DRAM chips), so every chain
can accept its element of a sub-request independently and a full
sub-request transfers into the CSB in a single cycle. The VMU is sized so
a sub-request never exceeds the chain count — no buffering needed — and
CSB writes proceed concurrently with the main-memory transfers, leaving
vector loads/stores bandwidth-bound on HBM.

The CSB is cacheless; the VMU sits directly on the memory bus and follows
the same coherence protocol as the control processor's caches (modelled as
range invalidations/downgrades — a trivial overhead, since the CP and CSB
share little data).

Also implements the CAPE-specific *replica vector load* ``vlrw.v v1, r1,
r2`` (Section V-G): loads ``r2`` contiguous values and replicates them
along the whole vector register, paying memory traffic for just one copy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.common.errors import (
    CapacityError,
    ConfigError,
    PageFault,
    SpillCorruptionError,
)
from repro.memory.hbm import HBM
from repro.memory.mainmem import WORD_BYTES, WordMemory

__all__ = ["PAGE_BYTES", "PageFault", "VMU", "VMUConfig", "VMUStats"]

#: Virtual-memory page size used by the fault model.
PAGE_BYTES = 4096

# PageFault historically lived here; it now sits in the shared error
# taxonomy (repro.common.errors) and is re-exported for compatibility.


@dataclass(frozen=True)
class VMUConfig:
    """VMU parameters.

    Attributes:
        sub_request_bytes: memory data-bus packet size; must not cover
            more elements than there are chains.
        element_bytes: vector element size (32-bit).
        coherence_cycles: flat per-instruction cost of the coherence
            interaction with the CP's caches ("very trivial performance
            overhead").
    """

    sub_request_bytes: int = 512
    element_bytes: int = WORD_BYTES
    coherence_cycles: int = 4

    def __post_init__(self) -> None:
        if self.sub_request_bytes <= 0 or self.element_bytes <= 0:
            raise ConfigError("VMU sizes must be positive")

    @property
    def elements_per_sub_request(self) -> int:
        return self.sub_request_bytes // self.element_bytes


@dataclass
class VMUStats:
    """Transfer counters."""

    loads: int = 0
    stores: int = 0
    replica_loads: int = 0
    bytes_loaded: int = 0
    bytes_stored: int = 0
    sub_requests: int = 0
    spills: int = 0
    fills: int = 0


class VMU:
    """Functional + timing model of the vector memory unit.

    Args:
        num_chains: CSB chains (sub-requests must fit within them).
        hbm: the memory system's timing model.
        memory: functional word store shared with the control processor.
        config: VMU parameters.
        frequency_hz: CAPE clock, to convert HBM seconds into cycles.
    """

    def __init__(
        self,
        num_chains: int,
        hbm: HBM,
        memory: WordMemory,
        config: VMUConfig = VMUConfig(),
        frequency_hz: float = 2.7e9,
    ) -> None:
        if config.elements_per_sub_request > num_chains:
            raise ConfigError(
                f"sub-request of {config.elements_per_sub_request} elements "
                f"exceeds {num_chains} chains (would require VMU buffering)"
            )
        self.num_chains = num_chains
        self.hbm = hbm
        self.memory = memory
        self.config = config
        self.frequency_hz = frequency_hz
        self.stats = VMUStats()
        #: Optional :class:`repro.obs.Observer` (set by the system).
        self.observer = None
        #: Optional :class:`repro.faults.FaultInjector` (set by the
        #: system); corrupts in-flight transfers and written spill slabs.
        self.fault_injector = None
        # Fault model: None = no paging (every page mapped); otherwise
        # the set of mapped page numbers.
        self._mapped_pages = None

    def _obs_count(self, name: str, amount: float = 1.0, **labels) -> None:
        obs = self.observer
        if obs is not None and obs.enabled:
            obs.counter(name, **labels).inc(amount)

    # ------------------------------------------------------------------
    # Virtual-memory fault model (Section V-C)
    # ------------------------------------------------------------------

    def enable_paging(self, mapped_ranges=()) -> None:
        """Turn on the page-fault model with the given mapped ranges."""
        self._mapped_pages = set()
        for base, num_bytes in mapped_ranges:
            self.map_range(base, num_bytes)

    def map_range(self, base: int, num_bytes: int) -> None:
        """Mark every page overlapping ``[base, base+num_bytes)`` mapped."""
        if self._mapped_pages is None:
            self._mapped_pages = set()
        first = base // PAGE_BYTES
        last = (base + max(0, num_bytes - 1)) // PAGE_BYTES
        self._mapped_pages.update(range(first, last + 1))

    def _check_pages(self, addr: int, vl: int) -> None:
        """Raise :class:`PageFault` at the first unmapped element.

        Unit-stride element start addresses cover a contiguous page
        range, so the walk is over pages, not elements; the faulting
        element is the first whose start address lands in the unmapped
        page (an element's page is that of its start address).
        """
        if self._mapped_pages is None or vl <= 0:
            return
        element_bytes = self.config.element_bytes
        first = addr // PAGE_BYTES
        last = (addr + (vl - 1) * element_bytes) // PAGE_BYTES
        for p in range(first, last + 1):
            if p not in self._mapped_pages:
                if p == first:
                    element = 0
                else:
                    element = -((addr - p * PAGE_BYTES) // element_bytes)
                raise PageFault(element, addr + element * element_bytes)

    # ------------------------------------------------------------------

    def _transfer_cycles(self, num_bytes: int) -> int:
        """Cycles for a unit-stride transfer of ``num_bytes``.

        The HBM side is bandwidth-bound (channel-interleaved); the CSB
        side consumes one sub-request per cycle. The two overlap, so the
        cost is their maximum, plus the coherence handshake.
        """
        mem_s = self.hbm.transfer_time_s(num_bytes, interleaved=True)
        mem_cycles = math.ceil(mem_s * self.frequency_hz)
        sub_requests = math.ceil(num_bytes / self.config.sub_request_bytes)
        self.stats.sub_requests += sub_requests
        self._obs_count("vmu.sub_requests", sub_requests)
        return max(mem_cycles, sub_requests) + self.config.coherence_cycles

    def load(self, addr: int, vl: int, element_bytes: Optional[int] = None) -> tuple:
        """``vle<sew>.v``: load ``vl`` elements; returns (values, cycles).

        ``element_bytes`` reflects the selected SEW for traffic/timing
        purposes (the functional store keeps one word slot per element).
        Raises :class:`PageFault` at the first element whose page is
        unmapped (when the paging model is enabled); the instruction is
        restartable at that index.
        """
        if vl < 0:
            raise CapacityError("vl must be non-negative")
        eb = element_bytes if element_bytes is not None else self.config.element_bytes
        self._check_pages(addr, vl)
        values = self.memory.read_words(addr, vl)
        if self.fault_injector is not None:
            values = self.fault_injector.filter_transfer("load", values)
        num_bytes = vl * eb
        cycles = self._transfer_cycles(num_bytes)
        self.stats.loads += 1
        self.stats.bytes_loaded += num_bytes
        self._obs_count("vmu.loads")
        self._obs_count("vmu.bytes", num_bytes, dir="load")
        return values, cycles

    def store(self, addr: int, values: np.ndarray, element_bytes: Optional[int] = None) -> int:
        """``vse<sew>.v``: store elements; returns cycles.

        Raises :class:`PageFault` like :meth:`load` when paging is on.
        """
        values = np.asarray(values)
        eb = element_bytes if element_bytes is not None else self.config.element_bytes
        self._check_pages(addr, len(values))
        if self.fault_injector is not None:
            values = self.fault_injector.filter_transfer("store", values)
        self.memory.write_words(addr, values)
        num_bytes = len(values) * eb
        cycles = self._transfer_cycles(num_bytes)
        self.stats.stores += 1
        self.stats.bytes_stored += num_bytes
        self._obs_count("vmu.stores")
        self._obs_count("vmu.bytes", num_bytes, dir="store")
        return cycles

    def load_strided(self, addr: int, vl: int, stride_bytes: int) -> tuple:
        """``vlse32.v``: strided load — one sub-request per element.

        Strided access defeats the chain interleaving: each element rides
        its own memory packet, so the transfer is latency/packet-bound
        rather than bandwidth-bound.
        """
        addrs = addr + stride_bytes * np.arange(vl)
        values = np.array(
            [self.memory.read_word(int(a)) for a in addrs], dtype=np.int64
        )
        packet = self.config.sub_request_bytes
        mem_s = self.hbm.transfer_time_s(vl * packet, interleaved=True)
        cycles = math.ceil(mem_s * self.frequency_hz) + self.config.coherence_cycles
        self.stats.loads += 1
        self.stats.bytes_loaded += vl * packet
        self.stats.sub_requests += vl
        self._obs_count("vmu.loads")
        self._obs_count("vmu.bytes", vl * packet, dir="load")
        self._obs_count("vmu.sub_requests", vl)
        return values, cycles

    def store_strided(self, addr: int, values: np.ndarray, stride_bytes: int) -> int:
        """``vsse32.v``: strided store — one packet per element.

        Like the strided load, stride defeats the chain interleaving, so
        the transfer pays a memory packet per element.
        """
        values = np.asarray(values)
        for i, value in enumerate(values):
            self.memory.write_word(addr + i * stride_bytes, int(value))
        packet = self.config.sub_request_bytes
        mem_s = self.hbm.transfer_time_s(len(values) * packet, interleaved=True)
        cycles = math.ceil(mem_s * self.frequency_hz) + self.config.coherence_cycles
        self.stats.stores += 1
        self.stats.bytes_stored += len(values) * packet
        self.stats.sub_requests += len(values)
        self._obs_count("vmu.stores")
        self._obs_count("vmu.bytes", len(values) * packet, dir="store")
        self._obs_count("vmu.sub_requests", len(values))
        return cycles

    def load_replica(self, addr: int, chunk: int, vl: int) -> tuple:
        """``vlrw.v vd, r1, r2``: replica vector load (Section V-G).

        Loads ``chunk`` contiguous elements once and replicates them along
        the register: memory traffic for a single copy, CSB-side broadcast
        of one column per cycle.
        """
        if chunk <= 0:
            raise ConfigError("replica chunk must be positive")
        base = self.memory.read_words(addr, chunk)
        reps = math.ceil(vl / chunk)
        values = np.tile(base, reps)[:vl]
        num_bytes = chunk * self.config.element_bytes
        mem_s = self.hbm.transfer_time_s(num_bytes, interleaved=True)
        mem_cycles = math.ceil(mem_s * self.frequency_hz)
        # Broadcast: every chain receives the replicated pattern; one
        # column (one element per chain) commits per cycle.
        broadcast_cycles = math.ceil(vl / self.num_chains)
        cycles = max(mem_cycles, broadcast_cycles) + self.config.coherence_cycles
        self.stats.replica_loads += 1
        self.stats.bytes_loaded += num_bytes
        self.stats.sub_requests += math.ceil(num_bytes / self.config.sub_request_bytes)
        self._obs_count("vmu.replica_loads")
        self._obs_count("vmu.bytes", num_bytes, dir="load")
        self._obs_count("vmu.sub_requests", math.ceil(num_bytes / self.config.sub_request_bytes))
        return values, cycles

    # ------------------------------------------------------------------
    # Bulk architectural-state transfers (runtime spill/restore path)
    # ------------------------------------------------------------------

    @staticmethod
    def _slab_parity(block: np.ndarray) -> np.ndarray:
        """One XOR parity word per register row of a spill block."""
        if block.shape[1] == 0:
            return np.zeros(block.shape[0], dtype=np.int64)
        return np.bitwise_xor.reduce(block.astype(np.int64), axis=1)

    def spill(self, addr: int, block: np.ndarray, protect: bool = False) -> int:
        """Bulk-store a register block (context spill); returns cycles.

        ``block`` is ``(registers, lanes)``; rows are laid out
        contiguously at ``addr``. The whole block rides one unit-stride
        burst — a single coherence handshake for the full transfer, since
        the spill slab is runtime-private and pinned (no page faults).

        With ``protect=True`` one XOR parity word per row is appended
        after the data (and charged as extra traffic); :meth:`fill`
        verifies it on restore, so a corrupted slab is detected instead
        of silently reloading garbage.
        """
        block = np.atleast_2d(np.asarray(block))
        self.memory.write_words(addr, block.reshape(-1))
        words = block.size
        if protect:
            parity = self._slab_parity(block)
            self.memory.write_words(addr + words * WORD_BYTES, parity)
            words += len(parity)
        if self.fault_injector is not None:
            self.fault_injector.corrupt_slab(self.memory, addr, block.size)
        num_bytes = words * self.config.element_bytes
        cycles = self._transfer_cycles(num_bytes)
        self.stats.spills += 1
        self.stats.bytes_stored += num_bytes
        self._obs_count("vmu.spills")
        self._obs_count("vmu.bytes", num_bytes, dir="store")
        return cycles

    def fill(
        self, addr: int, rows: int, row_len: int, protect: bool = False
    ) -> tuple:
        """Bulk-load a spilled register block; returns (block, cycles).

        Inverse of :meth:`spill`: reads ``rows x row_len`` words laid out
        contiguously at ``addr`` and returns them as a 2-D block. With
        ``protect=True`` the parity words written by a protected spill
        are re-read and checked row by row.

        Raises:
            SpillCorruptionError: a protected slab's recomputed parity
                disagrees with the stored parity (names the bad rows).
        """
        if rows < 0 or row_len < 0:
            raise CapacityError("fill shape must be non-negative")
        flat = self.memory.read_words(addr, rows * row_len)
        block = flat.reshape(rows, row_len)
        words = block.size
        if protect:
            stored = self.memory.read_words(addr + words * WORD_BYTES, rows)
            words += rows
            bad = np.nonzero(self._slab_parity(block) != stored)[0]
            if len(bad):
                self._obs_count("faults.detected", kind="spill_parity")
                raise SpillCorruptionError(addr, bad)
        num_bytes = words * self.config.element_bytes
        cycles = self._transfer_cycles(num_bytes)
        self.stats.fills += 1
        self.stats.bytes_loaded += num_bytes
        self._obs_count("vmu.fills")
        self._obs_count("vmu.bytes", num_bytes, dir="load")
        return block, cycles

    def load_indexed(self, base: int, indices) -> tuple:
        """Vector-indexed (gather) load — not supported.

        The paper leaves vector-indexed loads/stores for future work
        (Section V-C, footnote: software restart markers may address
        their restartability at minimal overhead).
        """
        raise NotImplementedError(
            "vector-indexed loads/stores are left for future work "
            "(CAPE paper, Section V-C)"
        )
