"""Call-site-scoped deprecation warnings.

The stock :func:`warnings.warn` dedupes through the global filter
registry, which is keyed per *module* of the caller — one script that
calls a deprecated shim from ten places gets one warning, and a process
that has already tripped the filter stays silent even when a different
file starts using the shim. For migration work the useful unit is the
**call site**: every ``(filename, lineno)`` that still uses a deprecated
entry point should hear about it exactly once, however many times the
loop around it runs.

:func:`warn_once_per_site` implements that: the first call from a given
site emits the warning through :func:`warnings.warn` (so filters,
``-W error``, and ``pytest.warns`` all keep working), and later calls
from the same site are free. Sites are remembered for the life of the
process; :func:`reset_warning_registry` clears them (test isolation).
"""

from __future__ import annotations

import sys
import warnings
from typing import Set, Tuple

__all__ = ["warn_once_per_site", "reset_warning_registry"]

#: ``(filename, lineno)`` pairs that have already warned.
_seen_sites: Set[Tuple[str, int]] = set()


def warn_once_per_site(
    message: str,
    category: type = DeprecationWarning,
    stacklevel: int = 2,
) -> None:
    """Emit ``message`` once per caller call site.

    ``stacklevel`` follows the :func:`warnings.warn` convention: ``2``
    attributes the warning to the caller of the function that invokes
    this helper (the right value for a deprecated shim warning about
    its own caller).
    """
    try:
        frame = sys._getframe(stacklevel)
    except ValueError:  # shallower stack than requested: warn anyway
        frame = None
    if frame is not None:
        site = (frame.f_code.co_filename, frame.f_lineno)
        if site in _seen_sites:
            return
        _seen_sites.add(site)
    # +1 to hop over this helper's own frame so the reported location
    # matches the recorded site.
    warnings.warn(message, category, stacklevel=stacklevel + 1)


def reset_warning_registry() -> None:
    """Forget every recorded call site (each will warn again)."""
    _seen_sites.clear()
