"""Bit-manipulation helpers shared by the CSB simulator and the ISA layer.

The CSB stores data as numpy arrays of single bits (dtype uint8, values 0/1)
with the least-significant bit at index 0, matching the bit-slice order of a
CAPE chain (subarray *i* holds bit *i*).
"""

from __future__ import annotations

import numpy as np


def ints_to_bits(values: np.ndarray, width: int) -> np.ndarray:
    """Explode unsigned integers into a little-endian bit matrix.

    Args:
        values: integer array of shape ``(n,)``; values are taken modulo
            ``2**width`` so signed inputs wrap like hardware registers.
        width: number of bits per element.

    Returns:
        uint8 array of shape ``(width, n)`` where row ``i`` is bit ``i``.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    vals = np.asarray(values, dtype=np.int64) & ((1 << width) - 1 if width < 64 else -1)
    shifts = np.arange(width, dtype=np.int64)[:, None]
    return ((vals[None, :] >> shifts) & 1).astype(np.uint8)


def bits_to_ints(bits: np.ndarray) -> np.ndarray:
    """Collapse a little-endian bit matrix back into unsigned integers.

    Args:
        bits: uint8 array of shape ``(width, n)``.

    Returns:
        int64 array of shape ``(n,)``.
    """
    bits = np.asarray(bits)
    if bits.ndim != 2:
        raise ValueError(f"expected a (width, n) bit matrix, got shape {bits.shape}")
    width = bits.shape[0]
    weights = (np.int64(1) << np.arange(width, dtype=np.int64))[:, None]
    return (bits.astype(np.int64) * weights).sum(axis=0)


def mask_lsbs(width: int) -> int:
    """Return an integer with the ``width`` least-significant bits set."""
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return (1 << width) - 1


def to_signed(values: np.ndarray, width: int) -> np.ndarray:
    """Reinterpret unsigned ``width``-bit values as two's-complement."""
    vals = np.asarray(values, dtype=np.int64)
    sign = np.int64(1) << (width - 1)
    return (vals ^ sign) - sign


def to_unsigned(values: np.ndarray, width: int) -> np.ndarray:
    """Reinterpret (possibly negative) values as unsigned ``width``-bit."""
    vals = np.asarray(values, dtype=np.int64)
    if width >= 64:
        return vals
    return vals & ((np.int64(1) << width) - 1)
