"""Exception hierarchy for the CAPE reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value."""


class CapacityError(ReproError):
    """A request exceeds the capacity of a hardware structure.

    Raised e.g. when a vector length exceeds MAX_VL, a truth table exceeds
    the TTM entry count, or a key-value insert finds no free slot.
    """


class CSBCapacityError(CapacityError):
    """A vector-state request exceeds the CSB's footprint.

    Structured variant of :class:`CapacityError` for the register-file
    capacity cliff (Section VI-E): carries the requested vs. available
    footprint so schedulers and callers can react programmatically
    (queue, spill, or re-place the work) instead of parsing a message.

    Attributes:
        requested_lanes / available_lanes: vector elements (columns
            summed over chains) requested vs. what the CSB offers.
        cols_per_chain: columns per chain, to convert lanes to chains.
        requested_registers / available_registers: architectural vector
            registers requested vs. the register-file rows available
            (``None`` when the failure is lane-only).
    """

    def __init__(
        self,
        message: str,
        *,
        requested_lanes: int = 0,
        available_lanes: int = 0,
        cols_per_chain: int = 32,
        requested_registers=None,
        available_registers=None,
    ) -> None:
        super().__init__(message)
        self.requested_lanes = requested_lanes
        self.available_lanes = available_lanes
        self.cols_per_chain = max(1, cols_per_chain)
        self.requested_registers = requested_registers
        self.available_registers = available_registers

    @property
    def requested_chains(self) -> int:
        """Chains needed for the requested lanes (ceiling division)."""
        return -(-self.requested_lanes // self.cols_per_chain)

    @property
    def available_chains(self) -> int:
        return self.available_lanes // self.cols_per_chain

    @property
    def shortfall_lanes(self) -> int:
        """Lanes the request overshoots capacity by (never negative)."""
        return max(0, self.requested_lanes - self.available_lanes)


class ProtocolError(ReproError):
    """A hardware protocol invariant was violated.

    Examples: searching more than four rows of one subarray, updating more
    than one row per subarray, or an illegal MESI transition.
    """


class PageFault(ReproError):
    """A vector memory instruction touched an unmapped page.

    Carries the element index at which the transfer stopped, so the
    control processor can restart the instruction there via ``vstart``
    (Section V-C: "load/store operations can be restarted at the index
    where a page fault occurred").
    """

    def __init__(self, element_index: int, addr: int) -> None:
        super().__init__(f"page fault at element {element_index} (addr {addr:#x})")
        self.element_index = element_index
        self.addr = addr
