"""Exception hierarchy for the CAPE reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value."""


class CapacityError(ReproError):
    """A request exceeds the capacity of a hardware structure.

    Raised e.g. when a vector length exceeds MAX_VL, a truth table exceeds
    the TTM entry count, or a key-value insert finds no free slot.
    """


class ProtocolError(ReproError):
    """A hardware protocol invariant was violated.

    Examples: searching more than four rows of one subarray, updating more
    than one row per subarray, or an illegal MESI transition.
    """
