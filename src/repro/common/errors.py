"""Exception hierarchy for the CAPE reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value."""


class CapacityError(ReproError):
    """A request exceeds the capacity of a hardware structure.

    Raised e.g. when a vector length exceeds MAX_VL, a truth table exceeds
    the TTM entry count, or a key-value insert finds no free slot.
    """


class CSBCapacityError(CapacityError):
    """A vector-state request exceeds the CSB's footprint.

    Structured variant of :class:`CapacityError` for the register-file
    capacity cliff (Section VI-E): carries the requested vs. available
    footprint so schedulers and callers can react programmatically
    (queue, spill, or re-place the work) instead of parsing a message.

    Attributes:
        requested_lanes / available_lanes: vector elements (columns
            summed over chains) requested vs. what the CSB offers.
        cols_per_chain: columns per chain, to convert lanes to chains.
        requested_registers / available_registers: architectural vector
            registers requested vs. the register-file rows available
            (``None`` when the failure is lane-only).
    """

    def __init__(
        self,
        message: str,
        *,
        requested_lanes: int = 0,
        available_lanes: int = 0,
        cols_per_chain: int = 32,
        requested_registers=None,
        available_registers=None,
    ) -> None:
        super().__init__(message)
        self.requested_lanes = requested_lanes
        self.available_lanes = available_lanes
        self.cols_per_chain = max(1, cols_per_chain)
        self.requested_registers = requested_registers
        self.available_registers = available_registers

    @property
    def requested_chains(self) -> int:
        """Chains needed for the requested lanes (ceiling division)."""
        return -(-self.requested_lanes // self.cols_per_chain)

    @property
    def available_chains(self) -> int:
        return self.available_lanes // self.cols_per_chain

    @property
    def shortfall_lanes(self) -> int:
        """Lanes the request overshoots capacity by (never negative)."""
        return max(0, self.requested_lanes - self.available_lanes)


class ProtocolError(ReproError):
    """A hardware protocol invariant was violated.

    Examples: searching more than four rows of one subarray, updating more
    than one row per subarray, or an illegal MESI transition.
    """


class PageFault(ReproError):
    """A vector memory instruction touched an unmapped page.

    Carries the element index at which the transfer stopped, so the
    control processor can restart the instruction there via ``vstart``
    (Section V-C: "load/store operations can be restarted at the index
    where a page fault occurred").
    """

    def __init__(self, element_index: int, addr: int) -> None:
        super().__init__(f"page fault at element {element_index} (addr {addr:#x})")
        self.element_index = element_index
        self.addr = addr


class FaultInjectionError(ConfigError):
    """A fault plan is malformed or targets state that cannot exist.

    Raised when a :class:`repro.faults.FaultPlan` is validated or bound
    to a device — a stuck-at value outside {0, 1}, a chain or element
    index beyond the CSB's shape, an unknown transfer kind. Injection
    itself never raises this: a bad plan is a configuration bug, caught
    before any fault fires.
    """


class DeviceFailedError(ReproError):
    """A device died mid-job (injected whole-device failure).

    Raised from the charging path once a device's cumulative cycles
    cross its :class:`repro.faults.DeviceKill` threshold — and on every
    charge thereafter, so a dead device cannot quietly keep serving.
    The pool catches it through the job-result error channel, marks the
    device dead in its health ledger, and re-places the work elsewhere.
    """


class RetryExhaustedError(ReproError):
    """A job failed on every allowed attempt and will not be retried.

    The pool's bounded-retry policy (``max_retries`` attempts with
    exponential backoff in device cycles) gave up on the job; the final
    :class:`~repro.runtime.job.JobResult` carries this error's message so
    the telemetry names why the job is FAILED.
    """


class SpillCorruptionError(ReproError):
    """A context spill slab failed its parity check on restore.

    Each protected spill appends one XOR parity word per register row;
    a restore that recomputes different parity names the corrupted rows
    here instead of silently reloading garbage into the register file.

    Attributes:
        addr: slab address of the corrupted block.
        bad_rows: indices of the rows whose parity mismatched.
    """

    def __init__(self, addr: int, bad_rows) -> None:
        self.addr = addr
        self.bad_rows = tuple(int(r) for r in bad_rows)
        rows = ", ".join(str(r) for r in self.bad_rows)
        super().__init__(
            f"spill slab at {addr:#x} corrupted: parity mismatch on "
            f"row(s) {rows}"
        )


class AdmissionError(ReproError):
    """The serving gateway refused a request at the front door.

    The gateway applies backpressure instead of buffering without
    bound: a request that cannot be admitted right now — the pending
    queue is full, the tenant is over quota, or the footprint fits no
    live device — is rejected immediately with a ``retry_after_s``
    hint so a well-behaved client can back off and resubmit.

    Attributes:
        reason: machine-readable rejection class (``"queue_full"``,
            ``"quota"``, ``"capacity"``, ``"closed"``).
        retry_after_s: suggested client backoff in wall seconds
            (``None`` when retrying cannot help, e.g. capacity).
    """

    def __init__(self, message: str, reason: str, retry_after_s=None) -> None:
        self.reason = reason
        self.retry_after_s = retry_after_s
        hint = (
            f" (retry after {retry_after_s:.3g}s)"
            if retry_after_s is not None
            else ""
        )
        super().__init__(f"{message}{hint}")


class QuotaExceededError(AdmissionError):
    """A tenant exceeded its serving quota (in-flight jobs or lanes).

    Per-tenant admission rides the same :class:`~repro.runtime.job.
    Footprint` machinery as device placement: each tenant's in-flight
    footprint lanes and job count are bounded, and a submit past either
    bound is rejected here rather than starving the other tenants.
    """

    def __init__(self, message: str, tenant: str, retry_after_s=None) -> None:
        self.tenant = tenant
        super().__init__(message, reason="quota", retry_after_s=retry_after_s)


class WorkerDiedError(ReproError):
    """A serving worker process died with requests in flight.

    The process-sharded tier treats a worker crash exactly like an
    injected :class:`repro.faults.DeviceKill` on every device the
    worker owned: the devices are retired, their queues re-placed, and
    the in-flight jobs retried elsewhere. This error surfaces only when
    no retry path remains (or directly from a raw
    :class:`repro.serve.worker.WorkerHandle`).
    """


class WorkerTimeoutError(ReproError):
    """A worker reply did not arrive within the poll window.

    Distinct from :class:`WorkerDiedError`: the worker *process* is
    still alive — the reply is merely late (a slow worker, a loaded
    host) or lost (a dropped reply, a hung worker). Callers decide how
    to escalate: keep waiting, hedge the request to another worker, or
    conclude unresponsiveness once the hang threshold passes. The
    serving tier never treats this alone as a crash.
    """


class WorkerUnresponsiveError(WorkerTimeoutError):
    """A live worker process stopped making observable progress.

    The escalation of :class:`WorkerTimeoutError`: the process is
    alive but has sent neither replies nor heartbeats past the hang
    threshold — a wedged interpreter, a deadlock, an injected
    :class:`repro.faults.WorkerHang`. The serving tier routes around
    the worker (terminate + failover) but counts it separately from a
    process death.
    """


class DeadlineExceededError(ReproError):
    """A served request blew its wall-clock deadline.

    Raised to the submitter when the gateway cancels a request whose
    deadline expired before (or while) it could be dispatched; workers
    enforce the same deadline by skipping execution of an
    already-expired request (a cheap cancel, reported in the reply
    rather than raised).
    """


class PoolStalledError(ReproError):
    """The pool's event loop stopped with jobs still queued or running.

    Raised by :meth:`repro.runtime.pool.DevicePool.run` when the event
    budget is exhausted, or when the loop drains while jobs remain stuck
    (e.g. every surviving device is dead and work is parked). Carries
    the stuck jobs' names so the operator sees *what* is stranded, not
    just that something is.

    Attributes:
        reason: why the loop stopped.
        job_names: names of the jobs left queued/running/parked.
    """

    def __init__(self, reason: str, job_names=()) -> None:
        self.reason = reason
        self.job_names = tuple(str(n) for n in job_names)
        stuck = ", ".join(self.job_names) if self.job_names else "none"
        super().__init__(f"pool stalled: {reason}; stuck jobs: {stuck}")
