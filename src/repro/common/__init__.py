"""Shared utilities: units, bit manipulation helpers, and error types.

Everything in this package is substrate-neutral — no CAPE-specific policy
lives here, only plumbing shared by the circuit, CSB, engine, memory, and
baseline layers.
"""

from repro.common.bitutils import (
    bits_to_ints,
    ints_to_bits,
    mask_lsbs,
    to_signed,
    to_unsigned,
)
from repro.common.errors import (
    CapacityError,
    ConfigError,
    CSBCapacityError,
    PageFault,
    ProtocolError,
    ReproError,
)
from repro.common.units import (
    GHZ,
    GIB,
    KIB,
    MIB,
    MS,
    NJ,
    NS,
    PJ,
    PS,
    US,
    Energy,
    Time,
    cycles_to_seconds,
    seconds_to_cycles,
)

__all__ = [
    "GHZ",
    "GIB",
    "KIB",
    "MIB",
    "MS",
    "NJ",
    "NS",
    "PJ",
    "PS",
    "US",
    "CSBCapacityError",
    "CapacityError",
    "ConfigError",
    "Energy",
    "PageFault",
    "ProtocolError",
    "ReproError",
    "Time",
    "bits_to_ints",
    "cycles_to_seconds",
    "ints_to_bits",
    "mask_lsbs",
    "seconds_to_cycles",
    "to_signed",
    "to_unsigned",
]
