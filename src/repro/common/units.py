"""Physical units used throughout the models.

All internal model state is kept in SI base units (seconds, joules, bytes).
The constants here are multipliers: ``3 * NS`` is three nanoseconds in
seconds, ``energy / PJ`` renders joules as picojoules for reporting.
"""

from __future__ import annotations

# Time multipliers (value in seconds).
PS = 1e-12
NS = 1e-9
US = 1e-6
MS = 1e-3

# Energy multipliers (value in joules).
PJ = 1e-12
NJ = 1e-9

# Frequency multiplier (value in hertz).
GHZ = 1e9

# Capacity multipliers (value in bytes).
KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

# Readability aliases for annotations: plain floats carrying SI units.
Time = float
Energy = float


def cycles_to_seconds(cycles: float, frequency_hz: float) -> float:
    """Convert a cycle count at ``frequency_hz`` into seconds."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return cycles / frequency_hz


def seconds_to_cycles(seconds: float, frequency_hz: float) -> float:
    """Convert wall-clock ``seconds`` into cycles at ``frequency_hz``."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return seconds * frequency_hz
