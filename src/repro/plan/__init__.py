"""repro.plan — compiled microcode plans and the cross-device plan cache.

The VCU is a vertical-microcode machine: a given (mnemonic, SEW,
operand-roles, mask-form) always decodes to the same search/update
command stream. This package records that stream once
(:class:`RecordingChain`), freezes it into an immutable
:class:`CompiledPlan` with steps pre-lowered to fused bit-plane kernels,
and shares plans process-wide through :class:`PlanCache` — so repeat
dispatches skip the FSM/truth-table walk entirely while charging
identical cycles and publishing identical ``csb.microops``.

See ``docs/PERFORMANCE.md`` for the design, keying rules, and the
equivalence contract.
"""

from repro.plan.cache import (
    GLOBAL_PLAN_CACHE,
    PlanCache,
    resolve_plan_cache,
)
from repro.plan.plan import CompiledPlan, compile_chain_program
from repro.plan.recorder import RecordingChain, Token
from repro.plan.superplan import (
    SUPERPLAN_MODES,
    Superplan,
    fuse_plans,
    resolve_superplan_mode,
    superplan_key,
)

__all__ = [
    "GLOBAL_PLAN_CACHE",
    "SUPERPLAN_MODES",
    "CompiledPlan",
    "PlanCache",
    "RecordingChain",
    "Superplan",
    "Token",
    "compile_chain_program",
    "fuse_plans",
    "resolve_plan_cache",
    "resolve_superplan_mode",
    "superplan_key",
]
