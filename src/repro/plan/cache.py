"""Process-wide LRU cache of compiled microcode plans.

Plans are pure functions of their key — (mnemonic, SEW, operand roles,
mask form, subarray count) for intrinsics, (table, decoder binding,
width, walk order) for raw FSM walks — and capture no chain or device
state, so the cache never needs invalidation. One :data:`GLOBAL_PLAN_CACHE`
is shared across every ``BitEngine``/``CAPESystem``/``DevicePool`` in the
process: the second device to dispatch ``vadd.vv`` at SEW=32 reuses the
plan the first one compiled.

The cache is thread-safe (the parallel device pool compiles from worker
threads). Compilation happens *outside* the lock — recording a microcode
walk can take microseconds and must not serialise unrelated lookups —
with a first-wins re-check on insert so concurrent compilers of the same
key converge on one plan object.

Plans are no longer per-instruction-dispatch only: because a lowered
plan is width-agnostic (its kernels read the column count from the
backend they run over), gang execution (:mod:`repro.gang`) replays the
*same* cached plan once across the stacked column blocks of N devices —
the plan-key stream is what the gang runner groups jobs by, and the
eligibility rules (bit-plane backend, no live CSB faults, no microop
trace) are documented in ``docs/GANG.md``.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Optional

from repro.common.errors import ConfigError
from repro.plan.plan import CompiledPlan

#: Default maximum number of cached plans. A plan is a few KiB of step
#: tuples and lookup tables; 1024 of them is megabytes, far beyond any
#: realistic (mnemonic × SEW × roles) working set.
DEFAULT_CAPACITY = 1024


class PlanCache:
    """A bounded, thread-safe, never-invalidated LRU of compiled plans."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ConfigError("plan cache capacity must be positive")
        self.capacity = capacity
        self._plans: "OrderedDict[object, CompiledPlan]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.compile_ns = 0
        self.affinity_hits = 0
        self.affinity_misses = 0

    def get_or_compile(
        self,
        key,
        builder: Callable[[], CompiledPlan],
        observer=None,
    ) -> CompiledPlan:
        """Return the plan for ``key``, compiling via ``builder`` on miss.

        ``builder`` runs outside the lock; if two threads race on the
        same key the first insert wins and the loser's plan is dropped
        (plans for one key are interchangeable by construction).
        """
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                self.hits += 1
                if observer is not None and observer.enabled:
                    observer.counter("plan.cache.hit").inc()
                return plan
        start = time.perf_counter_ns()
        plan = builder()
        elapsed_ns = time.perf_counter_ns() - start
        with self._lock:
            existing = self._plans.get(key)
            if existing is not None:
                self._plans.move_to_end(key)
                self.hits += 1
                if observer is not None and observer.enabled:
                    observer.counter("plan.cache.hit").inc()
                return existing
            self.misses += 1
            self.compile_ns += elapsed_ns
            self._plans[key] = plan
            while len(self._plans) > self.capacity:
                self._plans.popitem(last=False)
        if observer is not None and observer.enabled:
            observer.counter("plan.cache.miss").inc()
            observer.histogram("plan.cache.compile_ns").observe(elapsed_ns)
        return plan

    def note_affinity(self, warm: bool) -> None:
        """Count one plan-affinity placement decision against this cache.

        The pools call this when affinity steers (or fails to steer) a
        job toward warm state, so the counters ride the same snapshot
        the serving workers already ship across the pipe.
        """
        with self._lock:
            if warm:
                self.affinity_hits += 1
            else:
                self.affinity_misses += 1

    def snapshot(self) -> dict:
        """The one plan-cache stats surface (picklable, cheap).

        Keys: ``entries`` / ``superplans`` (cached whole-kernel fusions
        among them), ``hits`` / ``misses`` (lookups), ``compiles`` and
        ``compile_ns`` (actual builds and their wall time), and
        ``affinity_hits`` / ``affinity_misses`` (plan-affinity placement
        decisions recorded by the pools via :meth:`note_affinity`).
        Serving workers ship this with every reply so the gateway can
        aggregate per-process cache behaviour without sharing memory;
        benchmarks and ``repro.api`` re-export it instead of reading
        cache internals.
        """
        from repro.plan.superplan import Superplan

        with self._lock:
            return {
                "entries": len(self._plans),
                "superplans": sum(
                    1 for p in self._plans.values()
                    if isinstance(p, Superplan)
                ),
                "hits": self.hits,
                "misses": self.misses,
                "compiles": self.misses,
                "compile_ns": self.compile_ns,
                "affinity_hits": self.affinity_hits,
                "affinity_misses": self.affinity_misses,
            }

    def stats(self) -> dict:
        """Deprecated alias of :meth:`snapshot` (kept for old callers)."""
        return self.snapshot()

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._plans

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self.hits = 0
            self.misses = 0
            self.compile_ns = 0
            self.affinity_hits = 0
            self.affinity_misses = 0

    def __repr__(self) -> str:
        return (
            f"PlanCache({len(self)}/{self.capacity} plans, "
            f"{self.hits} hits, {self.misses} misses)"
        )


#: The shared process-wide cache (``plan_cache=True`` everywhere).
GLOBAL_PLAN_CACHE = PlanCache()


def resolve_plan_cache(plan_cache) -> Optional[PlanCache]:
    """Normalise the ``plan_cache=`` knob every layer accepts.

    ``True`` → the process-wide :data:`GLOBAL_PLAN_CACHE`; ``False`` or
    ``None`` → no caching (every dispatch re-walks the FSM, the pre-plan
    behaviour); a :class:`PlanCache` instance → that instance.
    """
    if plan_cache is True:
        return GLOBAL_PLAN_CACHE
    if plan_cache is None or plan_cache is False:
        return None
    if isinstance(plan_cache, PlanCache):
        return plan_cache
    raise ConfigError(
        f"plan_cache must be True, False, None, or a PlanCache, "
        f"got {plan_cache!r}"
    )
