"""Recording chain: captures a microcode walk as a flat step stream.

CAPE's VCU is a vertical-microcode machine — for a given (mnemonic, SEW,
operand roles, mask form) the sequencer FSM and truth-table decoder emit
the *same* search/update command stream every time. The
:class:`RecordingChain` duck-types :class:`~repro.csb.chain.Chain` just
far enough for the associative algorithms and the FSM walk to run
against it, recording every chain-level microoperation into a flat list
of ``(method, args)`` steps instead of touching bitcell state.

Values a walk produces and later consumes (a search's tag vector routed
into a bit-parallel select, a serial tag combine loaded back onto the
tag bus, a redsum pop-count) are represented by :class:`Token`
placeholders, so the recorded program is a small dataflow graph that a
:class:`~repro.plan.plan.CompiledPlan` can replay on any real chain.

Operand validation mirrors what :class:`~repro.csb.chain.Chain` and the
backends would enforce on first execution, so a malformed program fails
at compile time exactly where the uncompiled walk would have failed.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.microops import Microop
from repro.common.errors import ConfigError, ProtocolError
from repro.csb.chain import NUM_VREGS, MetaRow
from repro.csb.subarray import MAX_SEARCH_ROWS

#: Wordlines per subarray (32 vector registers + 4 metadata rows).
NUM_ROWS = NUM_VREGS + len(MetaRow)


class Token:
    """Placeholder for a value produced by a recorded step.

    Tokens stand in for the arrays (tag vectors) and scalars (redsum
    pop-counts) a microcode walk threads from one step to another; at
    replay each token resolves to the value the corresponding step
    produced on the live chain.
    """

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.index})"


class RecordingChain:
    """A chain-shaped recorder: every microoperation becomes a step.

    Only the surface the microcode layer actually drives is implemented;
    anything else is a genuine error (the plan compiler must never
    silently drop state the real chain would have mutated).
    """

    def __init__(self, num_subarrays: int) -> None:
        if num_subarrays <= 0:
            raise ConfigError("num_subarrays must be positive")
        self.num_subarrays = num_subarrays
        #: Recorded steps: (method name, args tuple, output token index).
        self.steps: List[Tuple[str, tuple, Optional[int]]] = []
        #: Static microop charges of the recorded stream, keyed like
        #: :class:`~repro.csb.counter.MicroopStats.counts`. Dynamic
        #: charges (``rmw_register``) are levied at replay instead.
        self.charges: Counter = Counter()
        self._num_tokens = 0

    # ------------------------------------------------------------------
    # Recording plumbing
    # ------------------------------------------------------------------

    def _emit(self, method: str, *args) -> None:
        self.steps.append((method, args, None))

    def _emit_value(self, method: str, *args) -> Token:
        token = Token(self._num_tokens)
        self._num_tokens += 1
        self.steps.append((method, args, token.index))
        return token

    def _charge(self, op: Microop, bit_parallel: bool, n: int = 1) -> None:
        if n:
            self.charges[(op, bit_parallel)] += n

    @property
    def num_tokens(self) -> int:
        return self._num_tokens

    # ------------------------------------------------------------------
    # Validation (mirrors Chain / backend checks at compile time)
    # ------------------------------------------------------------------

    def _check_subarray(self, subarray: int) -> None:
        if not 0 <= subarray < self.num_subarrays:
            raise ConfigError(
                f"subarray {subarray} out of range [0, {self.num_subarrays})"
            )

    def _check_vreg(self, vreg: int) -> None:
        if not 0 <= vreg < NUM_VREGS:
            raise ConfigError(
                f"vector register {vreg} out of range [0, {NUM_VREGS})"
            )

    def _check_row(self, row: int) -> None:
        if not 0 <= row < NUM_ROWS:
            raise ConfigError(f"row {row} out of range [0, {NUM_ROWS})")

    def _check_key(self, key: Mapping[int, int]) -> dict:
        if len(key) > MAX_SEARCH_ROWS:
            raise ProtocolError(
                f"search may drive at most {MAX_SEARCH_ROWS} rows, "
                f"got {len(key)}"
            )
        for row in key:
            self._check_row(row)
        return {int(row): int(bit) & 1 for row, bit in key.items()}

    # ------------------------------------------------------------------
    # Search microoperations
    # ------------------------------------------------------------------

    def search(
        self,
        subarray: int,
        key: Mapping[int, int],
        accumulate: bool = False,
    ) -> Token:
        self._check_subarray(subarray)
        key = self._check_key(key)
        self._charge(Microop.SEARCH, False)
        return self._emit_value("search", subarray, key, bool(accumulate))

    def search_accumulate_next(
        self,
        subarray: int,
        key: Mapping[int, int],
        accumulate: bool = True,
    ) -> Token:
        self._check_subarray(subarray)
        key = self._check_key(key)
        self._charge(Microop.SEARCH, False)
        return self._emit_value(
            "search_accumulate_next", subarray, key, bool(accumulate)
        )

    def search_bit_parallel(
        self,
        keys: Sequence[Mapping[int, int]],
        accumulate: bool = False,
    ) -> Token:
        if len(keys) != self.num_subarrays:
            raise ConfigError(
                f"expected {self.num_subarrays} keys, got {len(keys)}"
            )
        keys = tuple(self._check_key(key) for key in keys)
        self._charge(Microop.SEARCH, True)
        return self._emit_value("search_bit_parallel", keys, bool(accumulate))

    # ------------------------------------------------------------------
    # Update microoperations
    # ------------------------------------------------------------------

    def update(self, subarray: int, row: int, value: int) -> None:
        self._check_subarray(subarray)
        self._check_row(row)
        self._charge(Microop.UPDATE, False)
        self._emit("update", subarray, row, int(value) & 1)

    def update_prop(
        self,
        subarray: int,
        row: int,
        value: int,
        next_row: int,
        next_value: int,
    ) -> None:
        self._check_subarray(subarray)
        self._check_row(row)
        self._check_row(next_row)
        self._charge(Microop.UPDATE_PROP, False)
        self._emit(
            "update_prop", subarray, row, int(value) & 1,
            next_row, int(next_value) & 1,
        )

    def update_next(self, subarray: int, next_row: int, value: int) -> None:
        self._check_subarray(subarray)
        self._check_row(next_row)
        self._charge(Microop.UPDATE, False)
        self._emit("update_next", subarray, next_row, int(value) & 1)

    def update_row_full(self, subarray: int, row: int, value: int) -> None:
        self._check_subarray(subarray)
        self._check_row(row)
        self._charge(Microop.UPDATE, False)
        self._emit("update_row_full", subarray, row, int(value) & 1)

    def update_bit_parallel(
        self, row: int, value: int, use_tags: bool = True
    ) -> None:
        self._check_row(row)
        self._charge(Microop.UPDATE, True)
        self._emit("update_bit_parallel", row, int(value) & 1, bool(use_tags))

    def update_bit_parallel_select(
        self, row: int, value: int, select
    ) -> None:
        self._check_row(row)
        if not isinstance(select, Token):
            select = np.asarray(select, dtype=np.uint8)
        self._charge(Microop.UPDATE, True)
        self._emit("update_bit_parallel_select", row, int(value) & 1, select)

    def update_bit_parallel_values(
        self, row: int, values: Sequence[int], use_tags: bool = False
    ) -> None:
        self._check_row(row)
        if len(values) != self.num_subarrays:
            raise ConfigError(
                f"expected {self.num_subarrays} values, got {len(values)}"
            )
        self._charge(Microop.UPDATE, True)
        self._emit(
            "update_bit_parallel_values",
            row,
            tuple(int(v) & 1 for v in values),
            bool(use_tags),
        )

    # ------------------------------------------------------------------
    # Tag plumbing (free of microop cost, like the real chain)
    # ------------------------------------------------------------------

    def set_tags(self, subarray: int, tags) -> None:
        self._check_subarray(subarray)
        if not isinstance(tags, Token):
            tags = np.asarray(tags, dtype=np.uint8)
        self._emit("set_tags", subarray, tags)

    def clear_tags(self) -> None:
        self._emit("clear_tags")

    def combine_tags_serial(self, limit: Optional[int] = None) -> Token:
        limit = self.num_subarrays if limit is None else int(limit)
        if not 0 <= limit <= self.num_subarrays:
            raise ConfigError(
                f"combine limit {limit} outside [0, {self.num_subarrays}]"
            )
        self._charge(Microop.REDUCE, False, n=limit)
        return self._emit_value("combine_tags_serial", limit)

    def combine_tags_serial_or(self, limit: Optional[int] = None) -> Token:
        limit = self.num_subarrays if limit is None else int(limit)
        if not 0 <= limit <= self.num_subarrays:
            raise ConfigError(
                f"combine limit {limit} outside [0, {self.num_subarrays}]"
            )
        self._charge(Microop.REDUCE, False, n=limit)
        return self._emit_value("combine_tags_serial_or", limit)

    # ------------------------------------------------------------------
    # Reduction / element rewrite
    # ------------------------------------------------------------------

    def redsum_step(self, subarray: int, row: int) -> Token:
        self._check_subarray(subarray)
        self._check_row(row)
        self._charge(Microop.SEARCH, True)
        self._charge(Microop.REDUCE, True)
        return self._emit_value("redsum_step", subarray, row)

    def rmw_register(
        self, vd: int, vs1: int, fn, width: Optional[int] = None
    ) -> None:
        # Charged dynamically at replay (cost depends on the live active
        # window), so no static charge here — the step routes through
        # the real chain's rmw path on both replay flavours.
        self._check_vreg(vd)
        self._check_vreg(vs1)
        self._emit("rmw_register", vd, vs1, fn, width)
