"""Whole-kernel superplans: fuse per-instruction plans into one trace.

PR 5's :class:`~repro.plan.plan.CompiledPlan` amortises the FSM walk of
*one* intrinsic; warm fig9 is then dominated by the Python interleaved
*between* intrinsics — a mirror peek + re-sync per instruction plus a
fresh pass over each plan's kernels. A :class:`Superplan` records a whole
kernel's instruction sequence (collected by
``CAPESystem.superplan_scope``) and fuses the per-instruction lowered
programs into a single kernel stream with three optimisations:

* **window hoisting** — the active window is programmed once per fused
  segment instead of once per instruction (``vsetvl``/``vstart`` changes
  are flush points, so the window is loop-invariant by construction);
* **search/LUT-gather CSE** — a search or LUT gather whose driven bit
  planes and destination tags are untouched since an identical earlier
  step would recompute the tags it already produced, and is dropped
  (loop-invariant searches hoist out of bit-serial walks this way);
* **pack reuse** — LUT gathers over the same ``(subarray, rows)`` pack
  share the packed index vector until one of the packed planes is
  written, turning most gathers into a single table lookup;
* **LUT stacking** — a final peephole collapses each ``pack; gather...``
  run over one slot into a single kernel whose stacked ``(k, 256)`` LUT
  matrix resolves all adjacent lookups with one ``take`` (byte-identical
  to the unfused sequence; see :func:`_peephole_luts`).

Cycle/energy charging is untouched (it is functional-side, per
instruction); the fused stream's static microop charges are the *sum* of
the member plans' charges — CSE drops kernels, never charges — so
``csb.microops`` totals stay bit-identical to per-instruction replay.
Validation and mirror re-sync happen once per flushed register in the
bit-plane domain (see ``CAPESystem._superplan_flush``), with exactly the
per-instruction predicate: modulo 2^SEW inside the active window (bit 0
for mask producers), bit-for-bit outside it.

Superplans are pure like their members: keyed by the instruction-key
sequence (never column count or data), cached in the same
:class:`~repro.plan.cache.PlanCache`, and safe to share across devices
and threads. Eligibility mirrors gang execution — plain bit-plane
backend, no fault injector, no microop trace — so the reference and
faulty per-primitive paths are untouched (``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigError
from repro.plan.plan import (
    CompiledPlan,
    _Ctx,
    _op_clear_tags,
    _op_combine_and,
    _op_combine_or,
    _op_redsum_step,
    _op_rmw,
    _op_search,
    _op_search_bp,
    _op_search_lut,
    _op_search_next,
    _op_set_tags,
    _op_update,
    _op_update_bp,
    _op_update_bp_select,
    _op_update_bp_values,
    _op_update_next,
    _op_update_prop,
    _op_update_row_full,
)

__all__ = [
    "SUPERPLAN_MODES",
    "Superplan",
    "fuse_plans",
    "resolve_superplan_mode",
    "superplan_key",
]

#: Valid values of every layer's ``superplan=`` knob (mirrors ``gang``).
SUPERPLAN_MODES = (True, False, "auto")


def resolve_superplan_mode(mode):
    """Validate a ``superplan`` knob (``True`` / ``False`` / ``"auto"``)."""
    if mode not in SUPERPLAN_MODES:
        raise ConfigError(
            f"superplan must be True, False, or 'auto', got {mode!r}"
        )
    return mode


def superplan_key(num_subarrays: int, sew: int, op_keys: Sequence) -> tuple:
    """The cache key of a fused segment.

    Purely structural — the per-instruction plan keys in dispatch order
    (those already carry mnemonic/SEW/roles/scalar/mask form), never the
    column count, window, or data — so one superplan serves every device
    and every ``vl`` the kernel runs at.
    """
    return ("superplan", num_subarrays, sew, tuple(op_keys))


class _SuperCtx(_Ctx):
    """Replay context with a pack-slot store for shared LUT indices."""

    __slots__ = ("packs",)


# ---------------------------------------------------------------------------
# Fused-only kernels
# ---------------------------------------------------------------------------


def _op_new_env(payload, ctx) -> None:
    """Instruction boundary: fresh token environment for the next plan."""
    ctx.env = [None] * payload


def _op_lut_pack(payload, ctx) -> None:
    """Pack the driven row planes into a shared index vector.

    ``weights @ planes`` sums ``plane[k] << k`` over the gathered row
    matrix in one call — measurably faster than a shift/or loop on the
    narrow per-subarray planes.
    """
    slot, sub, rows_arr, weights = payload
    ctx.packs[slot] = weights @ ctx.bits[sub, rows_arr]


def _op_lut_gather(payload, ctx) -> None:
    """Table lookup over a previously packed index vector."""
    slot, dest, lut = payload
    ctx.tags[dest][:] = lut[ctx.packs[slot]]


def _op_lut_pack_gather(payload, ctx) -> None:
    """Pack a row set and gather every adjacent lookup in one step.

    The peephole form of ``pack; gather; gather; ...`` over one slot:
    the packed vector is still stored (a later non-adjacent gather may
    reuse the slot) and the stacked LUT matrix resolves all adjacent
    lookups with a single ``take``.
    """
    slot, sub, rows_arr, weights, dests, stacked = payload
    acc = weights @ ctx.bits[sub, rows_arr]
    ctx.packs[slot] = acc
    rows_out = stacked.take(acc, axis=1)
    tags = ctx.tags
    for i in range(len(dests)):
        tags[dests[i]][:] = rows_out[i]


def _op_lut_gather_multi(payload, ctx) -> None:
    """Adjacent gathers over one already-packed slot, single ``take``."""
    slot, dests, stacked = payload
    rows_out = stacked.take(ctx.packs[slot], axis=1)
    tags = ctx.tags
    for i in range(len(dests)):
        tags[dests[i]][:] = rows_out[i]


# ---------------------------------------------------------------------------
# Fusion-time effect tracking
# ---------------------------------------------------------------------------
#
# The optimiser walks the concatenated kernel streams once, maintaining
# version counters for every bit plane (sub, row) and tag row it has
# seen written. A candidate step may be dropped (or its pack reused)
# only when every plane it reads and the tags it writes are at the same
# version as when the identical step last ran — i.e. re-running it would
# be a byte-identical no-op. ``rmw_register`` routes through the live
# chain and is treated as a full barrier.


class _Versions:
    """Write-version counters for bit planes and tag rows."""

    def __init__(self, num_subarrays: int) -> None:
        self.num_subarrays = num_subarrays
        self._clock = 0
        self.bits: Dict[Tuple[int, int], int] = {}
        self.tags: Dict[int, int] = {}
        self._tags_all = 0

    def tick(self) -> int:
        self._clock += 1
        return self._clock

    def write_bits(self, sub: int, row: int) -> None:
        self.bits[(sub, row)] = self.tick()

    def write_bits_row(self, row: int) -> None:
        t = self.tick()
        for sub in range(self.num_subarrays):
            self.bits[(sub, row)] = t

    def write_tags(self, sub: int) -> None:
        self.tags[sub] = self.tick()

    def write_tags_all(self) -> None:
        self._tags_all = self.tick()
        self.tags.clear()

    def barrier(self) -> None:
        t = self.tick()
        for key in self.bits:
            self.bits[key] = t
        self._tags_all = t
        self.tags.clear()

    def bits_ver(self, sub: int, row: int) -> int:
        return self.bits.get((sub, row), 0)

    def tags_ver(self, sub: int) -> int:
        return max(self.tags.get(sub, 0), self._tags_all)


def _apply_effects(fn, payload, vers: _Versions) -> None:
    """Record a kernel's writes into the version counters."""
    if fn in (_op_search, _op_search_lut):
        vers.write_tags(payload[0] if fn is _op_search else payload[1])
    elif fn is _op_search_next:
        vers.write_tags(payload[1])
    elif fn in (_op_search_bp, _op_clear_tags):
        vers.write_tags_all()
    elif fn is _op_update:
        vers.write_bits(payload[0], payload[1])
    elif fn is _op_update_prop:
        sub, nxt, row, _v, next_row, _nv = payload
        vers.write_bits(sub, row)
        vers.write_bits(nxt, next_row)
    elif fn is _op_update_next:
        vers.write_bits(payload[0], payload[1])
    elif fn is _op_update_row_full:
        vers.write_bits(payload[0], payload[1])
    elif fn in (_op_update_bp, _op_update_bp_select, _op_update_bp_values):
        vers.write_bits_row(payload[0])
    elif fn is _op_set_tags:
        vers.write_tags(payload[0])
    elif fn is _op_redsum_step:
        vers.write_tags(payload[0])
    elif fn is _op_rmw:
        vers.barrier()
    # _op_combine_and/_op_combine_or/_op_lut_gather read-only on state.


def _search_reads(fn, payload, vers: _Versions) -> int:
    """Newest version among the planes a search-like kernel reads."""
    if fn is _op_search or fn is _op_search_next:
        sub = payload[0]
        items = payload[2] if fn is _op_search_next else payload[1]
        return max((vers.bits_ver(sub, row) for row, _w in items), default=0)
    if fn is _op_search_lut:
        sub, _dest, rows, _lut = payload
        return max((vers.bits_ver(sub, row) for row in rows), default=0)
    raise AssertionError(fn)


class Superplan:
    """An immutable fused kernel stream for one instruction sequence.

    Built by :func:`fuse_plans`; replayed by
    ``CAPESystem._superplan_flush`` on the ganged chain of a plain
    bit-plane backend. ``writes`` lists the registers the sequence
    leaves written (in first-write order) with their mask-result flag —
    the flush validates and re-syncs exactly those.
    """

    __slots__ = (
        "key",
        "num_subarrays",
        "program",
        "charges",
        "writes",
        "num_packs",
        "num_instructions",
        "kernels_in",
        "kernels_out",
    )

    def __init__(
        self,
        key,
        num_subarrays: int,
        program: List[Tuple],
        charges: Counter,
        writes: Tuple[Tuple[int, bool], ...],
        num_packs: int,
        num_instructions: int,
        kernels_in: int,
    ) -> None:
        self.key = key
        self.num_subarrays = num_subarrays
        self.program = tuple(program)
        self.charges = dict(charges)
        self.writes = writes
        self.num_packs = num_packs
        self.num_instructions = num_instructions
        self.kernels_in = kernels_in
        self.kernels_out = len(program)

    def replay(self, chain) -> None:
        """Run the fused stream on a live ganged chain, then bulk-charge.

        The caller guarantees a plain
        :class:`~repro.csb.bitplane.BitplaneBackend` with no microop
        trace (the same precondition as the lowered per-instruction
        path); validation and mirror re-sync are the caller's job.
        """
        ctx = _SuperCtx(chain, [])
        ctx.packs = [None] * self.num_packs
        for fn, payload in self.program:
            fn(payload, ctx)
        stats = chain.stats
        for (op, bit_parallel), n in self.charges.items():
            stats.record(op, bit_parallel, n)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Superplan({self.num_instructions} instrs, "
            f"{self.kernels_in}->{self.kernels_out} kernels, "
            f"{self.num_packs} packs)"
        )


def fuse_plans(
    key,
    num_subarrays: int,
    entries: Sequence[Tuple[str, int, bool, CompiledPlan]],
) -> Superplan:
    """Fuse per-instruction plans into one optimised :class:`Superplan`.

    ``entries`` is the recorded sequence: ``(mnemonic, vd, is_mask,
    plan)`` per instruction in dispatch order. Charges are summed over
    the *unoptimised* streams so microop totals match per-instruction
    replay exactly; CSE and pack reuse only drop redundant kernels.
    """
    program: List[Tuple] = []
    charges: Counter = Counter()
    vers = _Versions(num_subarrays)
    #: (fn, hashable payload) -> (read version at emit, dest-tags version
    #: just after emit) for droppable search-like kernels.
    seen: Dict[tuple, Tuple[int, int]] = {}
    #: (sub, rows) -> (slot, read version at pack time).
    packs: Dict[Tuple[int, tuple], Tuple[int, int]] = {}
    num_packs = 0
    kernels_in = 0

    writes: List[Tuple[int, bool]] = []
    last_mask: Dict[int, bool] = {}
    for _mnemonic, vd, is_mask, _plan in entries:
        if vd not in last_mask:
            writes.append((vd, is_mask))
        last_mask[vd] = is_mask
    # The flag that matters is the *last* writer's (earlier intermediate
    # values are overwritten before the flush compares them).
    writes = [(vd, last_mask[vd]) for vd, _ in writes]

    for _mnemonic, _vd, _is_mask, plan in entries:
        for (op, bit_parallel), n in plan.charges.items():
            charges[(op, bit_parallel)] += n
        if plan._num_tokens:
            program.append((_op_new_env, plan._num_tokens))
        for fn, payload in plan._lowered:
            kernels_in += 1
            if fn is _op_search_lut:
                sub, dest, rows, lut = payload
                gate = (sub, dest, rows, lut.tobytes())
                reads = _search_reads(fn, payload, vers)
                prior = seen.get(gate)
                if prior is not None and prior == (reads, vers.tags_ver(dest)):
                    continue  # byte-identical no-op: drop
                pack_key = (sub, rows)
                slot_info = packs.get(pack_key)
                if slot_info is not None and slot_info[1] == reads:
                    slot = slot_info[0]
                else:
                    slot = num_packs
                    num_packs += 1
                    packs[pack_key] = (slot, reads)
                    program.append((_op_lut_pack, (slot, sub, rows)))
                program.append((_op_lut_gather, (slot, dest, lut)))
                vers.write_tags(dest)
                seen[gate] = (reads, vers.tags_ver(dest))
                continue
            if fn in (_op_search, _op_search_next):
                out = payload[-1]
                if out is None:
                    dest = payload[0] if fn is _op_search else payload[1]
                    gate = (fn, payload)
                    reads = _search_reads(fn, payload, vers)
                    prior = seen.get(gate)
                    if prior is not None and prior == (
                        reads, vers.tags_ver(dest)
                    ):
                        continue
                    program.append((fn, payload))
                    vers.write_tags(dest)
                    seen[gate] = (reads, vers.tags_ver(dest))
                    continue
            program.append((fn, payload))
            _apply_effects(fn, payload, vers)

    return Superplan(
        key,
        num_subarrays,
        _peephole_luts(program),
        charges,
        tuple(writes),
        num_packs,
        len(entries),
        kernels_in,
    )


def _peephole_luts(program: List[Tuple]) -> List[Tuple]:
    """Collapse adjacent same-slot LUT steps into stacked-LUT kernels.

    ``pack; gather*`` becomes one :func:`_op_lut_pack_gather` and a run
    of gathers over an already-packed slot becomes one
    :func:`_op_lut_gather_multi` — the per-256-entry LUTs are stacked
    into a ``(k, 256)`` matrix resolved by a single fancy index. Gathers
    read only the pack slot and write only their destination tag rows,
    and the fused form applies the same writes in the same order, so
    this is byte-identical to the unfused sequence. The packed vector is
    still stored for non-adjacent reuse of the slot.
    """
    def pack_arrays(rows):
        rows_arr = np.array(rows, dtype=np.intp)
        weights = (1 << np.arange(len(rows))).astype(np.int16)
        return rows_arr, weights

    fused: List[Tuple] = []
    i = 0
    n = len(program)
    while i < n:
        fn, payload = program[i]
        if fn is _op_lut_pack or fn is _op_lut_gather:
            slot = payload[0]
            j = i + 1 if fn is _op_lut_pack else i
            gathers = []
            while (
                j < n
                and program[j][0] is _op_lut_gather
                and program[j][1][0] == slot
            ):
                gathers.append(program[j][1])
                j += 1
            if len(gathers) > (1 if fn is _op_lut_gather else 0):
                stacked = np.stack([g[2] for g in gathers])
                dests = tuple(g[1] for g in gathers)
                if fn is _op_lut_pack:
                    _slot, sub, rows = payload
                    rows_arr, weights = pack_arrays(rows)
                    fused.append((
                        _op_lut_pack_gather,
                        (slot, sub, rows_arr, weights, dests, stacked),
                    ))
                else:
                    fused.append((_op_lut_gather_multi, (slot, dests, stacked)))
                i = j
                continue
        if fn is _op_lut_pack:
            _slot, sub, rows = payload
            rows_arr, weights = pack_arrays(rows)
            fused.append((_op_lut_pack, (slot, sub, rows_arr, weights)))
            i += 1
            continue
        fused.append((fn, payload))
        i += 1
    return fused
