"""Compiled microcode plans: record once, replay as batched kernels.

A :class:`CompiledPlan` is the immutable result of running a microcode
body (an associative algorithm, or the sequencer-FSM walk of a truth
table) against a :class:`~repro.plan.recorder.RecordingChain`. It holds

* the flat step stream (the exact chain-level microoperation sequence),
* the stream's static microop charges (pre-summed per flavour), and
* a *lowered* program for the bit-plane backend: steps pre-translated
  into direct kernels over the backend's fused ``bits``/``tags``
  matrices, with runs of accumulating searches over the same subarray
  batched into a single lookup-table kernel (pack the driven row planes
  into an index, one table gather replaces up to ``MAX_SEARCH_ROWS``-row
  search cascades).

Replay has two flavours with identical architectural effects:

* **generic** — re-issue every recorded step through the live
  :class:`~repro.csb.chain.Chain` API. Bit-exact and charge-exact by
  construction; used for the reference backend, fault-wrapped backends,
  and traced runs (``stats.keep_trace`` needs the interleaved order).
* **lowered** — run the pre-translated kernels straight on a
  :class:`~repro.csb.bitplane.BitplaneBackend`, then apply the static
  charges in bulk. Same state transitions, same microop totals, same
  observer counters — just far fewer Python dispatches.

Plans are pure: they capture no chain state, only structure, so one plan
serves every device whose chains share the subarray count (column count
is resolved at replay), and caching them never needs invalidation.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.csb.bitplane import BitplaneBackend
from repro.plan.recorder import RecordingChain, Token

#: Largest row-union a batched search group may pack into one lookup
#: table (2^10 = 1 KiB tables; real microcode unions stay at <= 4 rows).
MAX_LUT_ROWS = 10


def compile_chain_program(num_subarrays: int, body) -> "CompiledPlan":
    """Record ``body(chain)`` against a fresh recorder and compile it.

    ``body`` is any callable driving the chain-level microcode API; its
    return value (which may contain :class:`Token` placeholders, nested
    in tuples/lists) becomes the plan's result template.
    """
    recorder = RecordingChain(num_subarrays)
    result_spec = body(recorder)
    return CompiledPlan(recorder, result_spec)


def _resolve(spec, env):
    """Substitute token placeholders in a (possibly nested) result."""
    if type(spec) is Token:
        return env[spec.index]
    if isinstance(spec, tuple):
        return tuple(_resolve(item, env) for item in spec)
    if isinstance(spec, list):
        return [_resolve(item, env) for item in spec]
    return spec


def _mark_consumed(spec, consumed) -> None:
    if type(spec) is Token:
        consumed.add(spec.index)
    elif isinstance(spec, (tuple, list)):
        for item in spec:
            _mark_consumed(item, consumed)


class _Ctx:
    """Per-replay context handed to every lowered kernel."""

    __slots__ = (
        "bits", "tags", "env", "active_u8", "active_inv", "chain", "C",
    )

    def __init__(self, chain, env) -> None:
        backend = chain.backend
        self.bits = backend.bits
        self.tags = backend.tags
        self.env = env
        self.active_u8 = chain.active_columns
        self.active_inv = chain.active_columns ^ 1
        self.chain = chain
        self.C = backend.num_cols


# ---------------------------------------------------------------------------
# Lowered kernels. Each takes (payload, ctx) and mutates the backend
# state exactly like the corresponding Chain method (minus accounting,
# which the plan applies in bulk). Masked writes are expressed as
# in-place ``|=`` / ``&=`` over the 0/1 planes — writing value v under
# select s is ``plane |= s`` (v=1) or ``plane &= ~s`` (v=0) — because a
# masked ``np.copyto`` on the strided plane views costs ~40x more.
# ---------------------------------------------------------------------------

def _match(ctx: _Ctx, sub: int, items) -> np.ndarray:
    bits = ctx.bits
    if not items:
        return np.ones(ctx.C, dtype=np.uint8)
    # Seed the accumulator from the first term (``^ 1`` already yields a
    # fresh array; ``copy`` keeps the in-place ``&=`` off the live plane)
    # instead of allocating an all-ones array and AND-ing into it.
    row, want = items[0]
    plane = bits[sub, row]
    match = plane.copy() if want else plane ^ 1
    for row, want in items[1:]:
        plane = bits[sub, row]
        match &= plane if want else plane ^ 1
    return match


def _op_search(payload, ctx: _Ctx) -> None:
    sub, items, accumulate, out = payload
    match = _match(ctx, sub, items)
    tags = ctx.tags[sub]
    if accumulate:
        tags |= match
    else:
        tags[:] = match
    if out is not None:
        ctx.env[out] = tags.copy()


def _op_search_next(payload, ctx: _Ctx) -> None:
    sub, nxt, items, accumulate, out = payload
    match = _match(ctx, sub, items)
    tags = ctx.tags[nxt]
    if accumulate:
        tags |= match
    else:
        tags[:] = match
    if out is not None:
        ctx.env[out] = match


def _op_search_bp(payload, ctx: _Ctx) -> None:
    terms, accumulate, out = payload
    bits = ctx.bits

    def term_planes(kind, row, want):
        planes = bits[:, row, :]
        if kind == 1:
            return planes
        if kind == 0:
            return planes ^ 1
        return np.where(
            want == 1, planes, np.where(want == 0, planes ^ 1, np.uint8(1))
        )

    if terms:
        # Seed from the first term; only the ``kind == 1`` raw-plane view
        # needs a copy before the in-place ``&=``.
        kind, row, want = terms[0]
        first = term_planes(kind, row, want)
        match = first.copy() if kind == 1 else first
        for kind, row, want in terms[1:]:
            match &= term_planes(kind, row, want)
    else:
        match = np.ones((ctx.tags.shape[0], ctx.C), dtype=np.uint8)
    if accumulate:
        ctx.tags |= match
    else:
        ctx.tags[:] = match
    if out is not None:
        ctx.env[out] = ctx.tags.copy()


def _op_search_lut(payload, ctx: _Ctx) -> None:
    sub, dest, rows, lut = payload
    bits = ctx.bits
    acc = bits[sub, rows[0]].astype(np.int16)
    for k in range(1, len(rows)):
        acc |= bits[sub, rows[k]].astype(np.int16) << k
    ctx.tags[dest][:] = lut[acc]


def _op_update(payload, ctx: _Ctx) -> None:
    sub, row, value = payload
    sel = ctx.tags[sub] & ctx.active_u8
    if value:
        ctx.bits[sub, row] |= sel
    else:
        ctx.bits[sub, row] &= sel ^ 1


def _op_update_prop(payload, ctx: _Ctx) -> None:
    sub, nxt, row, value, next_row, next_value = payload
    here = ctx.tags[sub] & ctx.active_u8
    there = ctx.tags[nxt] & ctx.active_u8
    if value:
        ctx.bits[sub, row] |= here
    else:
        ctx.bits[sub, row] &= here ^ 1
    if next_value:
        ctx.bits[nxt, next_row] |= there
    else:
        ctx.bits[nxt, next_row] &= there ^ 1


def _op_update_next(payload, ctx: _Ctx) -> None:
    nxt, row, value = payload
    sel = ctx.tags[nxt] & ctx.active_u8
    if value:
        ctx.bits[nxt, row] |= sel
    else:
        ctx.bits[nxt, row] &= sel ^ 1


def _op_update_row_full(payload, ctx: _Ctx) -> None:
    sub, row, value = payload
    if value:
        ctx.bits[sub, row] |= ctx.active_u8
    else:
        ctx.bits[sub, row] &= ctx.active_inv


def _op_update_bp(payload, ctx: _Ctx) -> None:
    row, value, use_tags = payload
    plane = ctx.bits[:, row, :]
    if use_tags:
        sel = ctx.tags & ctx.active_u8
        if value:
            plane |= sel
        else:
            plane &= sel ^ 1
    elif value:
        plane |= ctx.active_u8
    else:
        plane &= ctx.active_inv


def _op_update_bp_select(payload, ctx: _Ctx) -> None:
    row, value, select = payload
    sel = ctx.env[select.index] if type(select) is Token else select
    sel = sel & ctx.active_u8
    if value:
        ctx.bits[:, row, :] |= sel
    else:
        ctx.bits[:, row, :] &= sel ^ 1


def _op_update_bp_values(payload, ctx: _Ctx) -> None:
    row, data, use_tags = payload
    plane = ctx.bits[:, row, :]
    if use_tags:
        sel = ctx.tags & ctx.active_u8
        plane &= sel ^ 1
        plane |= data & sel
    else:
        plane &= ctx.active_inv
        plane |= data & ctx.active_u8


def _op_set_tags(payload, ctx: _Ctx) -> None:
    sub, tags = payload
    value = ctx.env[tags.index] if type(tags) is Token else tags
    ctx.tags[sub][:] = np.asarray(value, dtype=np.uint8) & 1


def _op_clear_tags(payload, ctx: _Ctx) -> None:
    ctx.tags[:] = 0


def _op_combine_and(payload, ctx: _Ctx) -> None:
    limit, out = payload
    if limit:
        ctx.env[out] = np.bitwise_and.reduce(ctx.tags[:limit], axis=0)
    else:
        ctx.env[out] = np.ones(ctx.C, dtype=np.uint8)


def _op_combine_or(payload, ctx: _Ctx) -> None:
    limit, out = payload
    if limit:
        ctx.env[out] = np.bitwise_or.reduce(ctx.tags[:limit], axis=0)
    else:
        ctx.env[out] = np.zeros(ctx.C, dtype=np.uint8)


def _op_redsum_step(payload, ctx: _Ctx) -> None:
    sub, row, out = payload
    tags = ctx.tags[sub]
    tags[:] = ctx.bits[sub, row]
    ctx.env[out] = int((tags & ctx.active_u8).sum())


def _op_rmw(payload, ctx: _Ctx) -> None:
    vd, vs1, fn, width = payload
    ctx.chain.rmw_register(vd, vs1, fn, width)


class CompiledPlan:
    """An immutable, replayable microcode program.

    Built by :func:`compile_chain_program`; replay with :meth:`replay`.
    The plan is independent of column count and chain state, so it is
    safe to share across chains, devices, and threads.
    """

    def __init__(self, recorder: RecordingChain, result_spec) -> None:
        self.num_subarrays = recorder.num_subarrays
        self.steps: Tuple[Tuple[str, tuple, Optional[int]], ...] = tuple(
            recorder.steps
        )
        self.charges = dict(recorder.charges)
        self.result_spec = result_spec
        self._num_tokens = recorder.num_tokens
        consumed = set()
        for _method, args, _out in self.steps:
            for arg in args:
                if type(arg) is Token:
                    consumed.add(arg.index)
        _mark_consumed(result_spec, consumed)
        self._consumed = consumed
        self._lowered = self._lower()

    # -- introspection --------------------------------------------------

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    @property
    def num_kernels(self) -> int:
        """Lowered kernel count (≤ ``num_steps`` thanks to batching)."""
        return len(self._lowered)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledPlan(subarrays={self.num_subarrays}, "
            f"steps={self.num_steps}, kernels={self.num_kernels})"
        )

    # -- lowering -------------------------------------------------------

    def _lower(self) -> List[Tuple]:
        """Translate the step stream into bit-plane kernels, batching
        consecutive accumulate-search runs into lookup-table gathers."""
        program: List[Tuple] = []
        group: List[Tuple[int, dict]] = []   # (src_sub, key) of the run
        group_dest = group_src = None

        def flush() -> None:
            nonlocal group, group_dest, group_src
            if not group:
                return
            if len(group) == 1:
                sub, key = group[0]
                items = tuple(key.items())
                if group_dest == sub:
                    program.append(
                        (_op_search, (sub, items, False, None))
                    )
                else:
                    program.append(
                        (_op_search_next, (sub, group_dest, items, False, None))
                    )
            else:
                rows = sorted({row for _sub, key in group for row in key})
                lut = np.zeros(1 << len(rows), dtype=np.uint8)
                index = np.arange(lut.size)
                for _sub, key in group:
                    mask_bits = want_bits = 0
                    for k, row in enumerate(rows):
                        if row in key:
                            mask_bits |= 1 << k
                            want_bits |= key[row] << k
                    lut[(index & mask_bits) == want_bits] = 1
                program.append(
                    (_op_search_lut,
                     (group_src, group_dest, tuple(rows), lut))
                )
            group = []
            group_dest = group_src = None

        for method, args, out in self.steps:
            out = out if (out is not None and out in self._consumed) else None
            if method in ("search", "search_accumulate_next"):
                sub, key, accumulate = args
                dest = (
                    sub if method == "search"
                    else (sub + 1) % self.num_subarrays
                )
                if out is None:
                    if group and accumulate and sub == group_src \
                            and dest == group_dest \
                            and len({row for _s, k in group for row in k}
                                    | set(key)) <= MAX_LUT_ROWS:
                        group.append((sub, key))
                        continue
                    flush()
                    if not accumulate:
                        group = [(sub, key)]
                        group_src, group_dest = sub, dest
                        continue
                flush()
                items = tuple(key.items())
                if method == "search":
                    program.append((_op_search, (sub, items, accumulate, out)))
                else:
                    program.append(
                        (_op_search_next, (sub, dest, items, accumulate, out))
                    )
                continue
            flush()
            if method == "search_bit_parallel":
                keys, accumulate = args
                rows = sorted({row for key in keys for row in key})
                terms = []
                for row in rows:
                    wants = [key.get(row, -1) for key in keys]
                    if all(w == 1 for w in wants):
                        terms.append((1, row, None))
                    elif all(w == 0 for w in wants):
                        terms.append((0, row, None))
                    else:
                        terms.append(
                            (-1, row, np.array(wants, dtype=np.int8)[:, None])
                        )
                program.append((_op_search_bp, (tuple(terms), accumulate, out)))
            elif method == "update":
                program.append((_op_update, args))
            elif method == "update_prop":
                sub, row, value, next_row, next_value = args
                nxt = (sub + 1) % self.num_subarrays
                program.append(
                    (_op_update_prop,
                     (sub, nxt, row, value, next_row, next_value))
                )
            elif method == "update_next":
                sub, next_row, value = args
                nxt = (sub + 1) % self.num_subarrays
                program.append((_op_update_next, (nxt, next_row, value)))
            elif method == "update_row_full":
                program.append((_op_update_row_full, args))
            elif method == "update_bit_parallel":
                program.append((_op_update_bp, args))
            elif method == "update_bit_parallel_select":
                program.append((_op_update_bp_select, args))
            elif method == "update_bit_parallel_values":
                row, values, use_tags = args
                data = (np.asarray(values, dtype=np.uint8) & 1)[:, None]
                program.append((_op_update_bp_values, (row, data, use_tags)))
            elif method == "set_tags":
                program.append((_op_set_tags, args))
            elif method == "clear_tags":
                program.append((_op_clear_tags, None))
            elif method == "combine_tags_serial":
                program.append((_op_combine_and, (args[0], out)))
            elif method == "combine_tags_serial_or":
                program.append((_op_combine_or, (args[0], out)))
            elif method == "redsum_step":
                program.append((_op_redsum_step, (*args, out)))
            elif method == "rmw_register":
                program.append((_op_rmw, args))
            else:  # pragma: no cover - recorder and plan must stay in sync
                raise AssertionError(f"unloweable step {method!r}")
        flush()
        return program

    # -- replay ---------------------------------------------------------

    def replay(self, chain):
        """Re-execute the plan on a live chain; returns the resolved
        result template (e.g. the FSM walk's reduce values).

        The lowered kernels run only on a plain
        :class:`~repro.csb.bitplane.BitplaneBackend` (fault-injection
        wrappers and the reference backend replay step-by-step through
        the chain API) and only when the stats recorder is not keeping a
        microop trace (bulk charging would reorder the trace).
        """
        env: List = [None] * self._num_tokens
        stats = chain.stats
        if type(chain.backend) is BitplaneBackend and not stats.keep_trace:
            ctx = _Ctx(chain, env)
            for fn, payload in self._lowered:
                fn(payload, ctx)
            for (op, bit_parallel), n in self.charges.items():
                stats.record(op, bit_parallel, n)
            return _resolve(self.result_spec, env)
        for method, args, out in self.steps:
            bound = tuple(
                env[arg.index] if type(arg) is Token else arg for arg in args
            )
            result = getattr(chain, method)(*bound)
            if out is not None:
                env[out] = result
        return _resolve(self.result_spec, env)
