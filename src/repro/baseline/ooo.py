"""Out-of-order core interval timing model (Table III baseline).

An interval (bounds-based) model in the spirit of Karkhanis & Smith: for
each trace block the cycle count is the maximum of

* the front-end/issue bound (total uops / issue width),
* per-class functional-unit bounds (IntAdd/IntMul/FP/Mem units),
* the memory bound: every address is simulated through the cache
  hierarchy; latency beyond the (pipelined) L1 hit overlaps up to the
  core's memory-level parallelism, except for ``dependent_loads`` whose
  latency serialises,

plus branch-misprediction stalls. The defaults reproduce the paper's
baseline: 8-issue, 224-entry ROB, 72 LQ / 56 SQ, 4/4/4/3/1 units,
tournament predictor, 3.6 GHz.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.baseline.trace import Trace, TraceBlock
from repro.common.errors import ConfigError
from repro.memory.hierarchy import AccessType, CacheHierarchy


@dataclass(frozen=True)
class OoOConfig:
    """Out-of-order core parameters (defaults: Table III baseline)."""

    issue_width: int = 8
    rob_entries: int = 224
    load_queue: int = 72
    store_queue: int = 56
    int_units: int = 4
    mul_units: int = 4
    fp_units: int = 4
    mem_units: int = 3
    branch_units: int = 1
    mul_latency: int = 3
    fp_latency: int = 4
    branch_penalty: int = 14
    frequency_hz: float = 3.6e9
    #: Sustainable overlapped misses (MSHR-bound MLP); bounded by LQ but
    #: in practice limited by the miss-handling resources.
    max_mlp: float = 10.0

    def __post_init__(self) -> None:
        if self.issue_width <= 0:
            raise ConfigError("issue width must be positive")


@dataclass
class RunResult:
    """Timing outcome of running a trace on a core model."""

    name: str
    cycles: float
    seconds: float
    instructions: int
    frequency_hz: float

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


class OoOCore:
    """Interval-analysis OoO core bound to a cache hierarchy."""

    def __init__(
        self,
        config: OoOConfig = OoOConfig(),
        hierarchy: Optional[CacheHierarchy] = None,
    ) -> None:
        self.config = config
        self.hierarchy = hierarchy if hierarchy is not None else CacheHierarchy()

    def run(self, trace: Trace) -> RunResult:
        """Execute a whole trace; returns cycles/seconds/IPC."""
        total = 0.0
        for block in trace.blocks:
            total += self.block_cycles(block)
        total *= trace.repeat
        return RunResult(
            name=trace.name,
            cycles=total,
            seconds=total / self.config.frequency_hz,
            instructions=trace.total_ops * trace.repeat,
            frequency_hz=self.config.frequency_hz,
        )

    # ------------------------------------------------------------------

    def block_cycles(self, block: TraceBlock) -> float:
        """Interval-model cycles for one block."""
        cfg = self.config
        issue_bound = block.total_ops / cfg.issue_width
        unit_bounds = (
            block.int_ops / cfg.int_units,
            block.mul_ops * cfg.mul_latency / cfg.mul_units,
            block.fp_ops * cfg.fp_latency / cfg.fp_units,
            (len(block.loads) + len(block.stores)) / cfg.mem_units,
            block.branches / cfg.branch_units,
        )
        mem_bound = self._memory_cycles(block)
        branch_stall = block.branches * block.branch_miss_rate * cfg.branch_penalty
        return max(issue_bound, *unit_bounds, mem_bound) + branch_stall

    def _memory_cycles(self, block: TraceBlock) -> float:
        """Memory-bound cycles: simulate addresses, overlap miss latency.

        L1-hit latency is hidden by the pipeline. The portion of each
        access's latency beyond the L1 overlaps with other misses up to
        ``max_mlp``, except the block's ``dependent_loads`` whose full
        latency is serial (pointer chasing, serialized post-processing).
        """
        hierarchy = self.hierarchy
        l1_hit = hierarchy.config.l1_latency
        beyond_l1 = 0.0
        dep_budget = block.dependent_loads
        serial = 0.0
        for addr in block.loads:
            lat = hierarchy.access(int(addr), AccessType.LOAD)
            extra = max(0, lat - l1_hit)
            if dep_budget > 0 and extra > 0:
                serial += lat
                dep_budget -= 1
            else:
                beyond_l1 += extra
        for addr in block.stores:
            lat = hierarchy.access(int(addr), AccessType.STORE)
            # Stores retire through the store queue; only their
            # beyond-L1 latency consumes miss bandwidth.
            beyond_l1 += max(0, lat - l1_hit)
        return beyond_l1 / self.config.max_mlp + serial
